// Tests for the fault-injection subsystem (clip::fault) and the resilient
// runtime: plan validation and seeded generation, the injector's window
// resolution, the budget guard, crash/requeue/claw-back behavior of the
// power-aware queue, launcher degradation, and knowledge-DB hardening.
// All of it is seeded and deterministic — see docs/robustness.md.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/scheduler.hpp"
#include "fault/budget_guard.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/session.hpp"
#include "obs/timeline.hpp"
#include "runtime/launcher.hpp"
#include "runtime/queue.hpp"
#include "runtime/run_report.hpp"
#include "sim/executor.hpp"
#include "sim/power_meter.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

/// Bit-exact textual fingerprint of a QueueReport (hexfloat doubles), for
/// byte-identity assertions.
std::string fingerprint(const runtime::QueueReport& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.makespan_s << '|' << r.mean_turnaround_s << '|'
     << r.total_energy_j << '|' << r.node_seconds_used << '|'
     << r.node_seconds_available << '|' << r.retries << '|' << r.jobs_failed
     << '|' << r.caps_reprogrammed << '|' << r.violation_s << '|'
     << r.violation_ws << '|' << r.meter_reads_rejected;
  for (int n : r.crashed_nodes) os << "|crash:" << n;
  for (const auto& j : r.jobs)
    os << '\n'
       << j.app << ',' << j.parameters << ',' << j.submit_s << ','
       << j.start_s << ',' << j.end_s << ',' << j.nodes << ',' << j.budget_w
       << ',' << j.power_w << ',' << j.attempts << ',' << j.completed << ','
       << j.crashed_node;
  return os.str();
}

std::string metrics_fingerprint(obs::ObsSession& session) {
  std::ostringstream os;
  session.metrics().summary_table().print(os);
  return os.str();
}

/// One self-contained queue run: fresh executor/scheduler/queue so repeated
/// runs share no state (the knowledge DB warms per scheduler).
struct QueueRun {
  runtime::QueueReport report;
  std::string report_fp;
  std::string metrics_fp;
};

QueueRun run_queue(const std::vector<workloads::WorkloadSignature>& jobs,
                   runtime::QueueOptions opt,
                   const fault::FaultPlan* plan = nullptr) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  obs::ObsSession session;
  runtime::PowerAwareJobQueue queue(ex, sched, opt);
  queue.set_observer(&session);
  std::optional<fault::FaultInjector> injector;
  if (plan != nullptr) {
    injector.emplace(*plan, ex.spec().nodes);
    queue.set_fault_injector(&*injector);
  }
  QueueRun out;
  out.report = queue.run(jobs);
  out.report_fp = fingerprint(out.report);
  out.metrics_fp = metrics_fingerprint(session);
  return out;
}

std::uint64_t counter_of(obs::ObsSession& s, const char* name) {
  const auto* c = s.metrics().find_counter(name);
  return c != nullptr ? c->value() : 0;
}

/// Unique per test case *and* process: ctest -j runs each gtest case as its
/// own concurrent process, so a shared fixture path would race.
std::filesystem::path temp_file(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::filesystem::temp_directory_path() /
         (stem + "." + info->name() + "." + std::to_string(::getpid()) +
          ".csv");
}

// ------------------------------------------------------------- fault plan ----

TEST(FaultPlan, ValidateRejectsOutOfRangeNode) {
  fault::FaultPlan plan;
  plan.crashes.push_back({99, 10.0});
  EXPECT_THROW(plan.validate(8), PreconditionError);
  plan.crashes[0].node = -1;
  EXPECT_THROW(plan.validate(8), PreconditionError);
  plan.crashes[0].node = 7;
  EXPECT_NO_THROW(plan.validate(8));
}

TEST(FaultPlan, ValidateRejectsBadFields) {
  fault::FaultPlan plan;
  plan.degrades.push_back({0, 5.0, 0.0});  // factor must be in (0, 1]
  EXPECT_THROW(plan.validate(8), PreconditionError);
  plan.degrades[0].speed_factor = 1.5;
  EXPECT_THROW(plan.validate(8), PreconditionError);
  plan.degrades.clear();
  plan.meter_faults.push_back({0, 5.0, -1.0, fault::MeterFaultKind::kDropout,
                               0.0});
  EXPECT_THROW(plan.validate(8), PreconditionError);
  plan.meter_faults.clear();
  plan.cap_violations.push_back({0, 5.0, 30.0, -40.0});
  EXPECT_THROW(plan.validate(8), PreconditionError);
}

TEST(FaultPlan, RandomIsSeedDeterministic) {
  const auto a = fault::FaultPlan::random(7, 8, 500.0);
  const auto b = fault::FaultPlan::random(7, 8, 500.0);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.size(), b.size());
  const auto c = fault::FaultPlan::random(8, 8, 500.0);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlan, RandomHonorsShape) {
  fault::FaultPlanShape shape;
  shape.crashes = 2;
  shape.degrades = 3;
  shape.meter_faults = 4;
  shape.cap_violations = 5;
  const auto plan = fault::FaultPlan::random(1, 8, 1000.0, shape);
  EXPECT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.degrades.size(), 3u);
  EXPECT_EQ(plan.meter_faults.size(), 4u);
  EXPECT_EQ(plan.cap_violations.size(), 5u);
  EXPECT_FALSE(plan.empty());
  EXPECT_NO_THROW(plan.validate(8));
}

// ----------------------------------------------------------- retry policy ----

TEST(RetryPolicy, BackoffGrowsExponentially) {
  fault::RetryPolicy p;
  p.backoff_base_s = 5.0;
  p.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(p.backoff_s(1), 5.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(2), 10.0);
  EXPECT_DOUBLE_EQ(p.backoff_s(3), 20.0);
}

TEST(RetryPolicy, ValidateRejectsBadFields) {
  fault::RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), PreconditionError);
  p.max_attempts = 3;
  p.backoff_factor = 0.5;
  EXPECT_THROW(p.validate(), PreconditionError);
}

// --------------------------------------------------------------- injector ----

TEST(FaultInjector, ResolveCrashAbortsRun) {
  fault::FaultPlan plan;
  plan.crashes.push_back({2, 50.0});
  fault::FaultInjector inj(plan, 8);
  const auto res = inj.resolve(10.0, 100.0, {1, 2});
  EXPECT_TRUE(res.crashed);
  EXPECT_EQ(res.crashed_node, 2);
  EXPECT_DOUBLE_EQ(res.end_s, 50.0);
  // A run not holding the crashed node is untouched.
  const auto clean = inj.resolve(10.0, 100.0, {0, 3});
  EXPECT_FALSE(clean.crashed);
  EXPECT_DOUBLE_EQ(clean.end_s, 110.0);
  EXPECT_TRUE(inj.node_crashed(2, 60.0));
  EXPECT_FALSE(inj.node_crashed(2, 40.0));
}

TEST(FaultInjector, ResolveDegradeStretchesPiecewise) {
  fault::FaultPlan plan;
  plan.degrades.push_back({1, 50.0, 0.5});
  fault::FaultInjector inj(plan, 8);
  // 100 s of work from t=0: 50 s at full rate, the remaining 50 s of work
  // at half speed takes 100 s -> ends at 150.
  const auto res = inj.resolve(0.0, 100.0, {1});
  EXPECT_FALSE(res.crashed);
  EXPECT_DOUBLE_EQ(res.end_s, 150.0);
  EXPECT_DOUBLE_EQ(res.slowdown, 1.5);
  // A job started after the degrade runs at the degraded rate throughout.
  const auto after = inj.resolve(100.0, 100.0, {1});
  EXPECT_DOUBLE_EQ(after.end_s, 300.0);
  // The job paces at its slowest node even when healthy nodes are held too.
  const auto mixed = inj.resolve(100.0, 100.0, {0, 1});
  EXPECT_DOUBLE_EQ(mixed.end_s, 300.0);
}

TEST(FaultInjector, MeterCorruptionIsWindowed) {
  fault::FaultPlan plan;
  plan.meter_faults.push_back(
      {3, 100.0, 50.0, fault::MeterFaultKind::kStuckAt, 77.0});
  plan.meter_faults.push_back(
      {4, 100.0, 50.0, fault::MeterFaultKind::kDropout, 0.0});
  plan.meter_faults.push_back(
      {5, 100.0, 50.0, fault::MeterFaultKind::kSpike, 10.0});
  fault::FaultInjector inj(plan, 8);
  EXPECT_DOUBLE_EQ(inj.observed_node_power(3, 120.0, 200.0), 77.0);
  EXPECT_DOUBLE_EQ(inj.observed_node_power(4, 120.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(inj.observed_node_power(5, 120.0, 200.0), 2000.0);
  // Outside the window — and on unaffected nodes — truth passes through.
  EXPECT_DOUBLE_EQ(inj.observed_node_power(3, 99.0, 200.0), 200.0);
  EXPECT_DOUBLE_EQ(inj.observed_node_power(3, 150.0, 200.0), 200.0);
  EXPECT_DOUBLE_EQ(inj.observed_node_power(0, 120.0, 200.0), 200.0);
}

TEST(FaultInjector, CapExcessTruncationAndViolatingNodes) {
  fault::FaultPlan plan;
  plan.cap_violations.push_back({2, 100.0, 200.0, 40.0});
  fault::FaultInjector inj(plan, 8);
  EXPECT_DOUBLE_EQ(inj.cap_excess_w({2}, 150.0), 40.0);
  EXPECT_DOUBLE_EQ(inj.cap_excess_w({3}, 150.0), 0.0);
  EXPECT_DOUBLE_EQ(inj.cap_excess_w({2}, 99.0), 0.0);
  EXPECT_EQ(inj.violating_nodes({1, 2, 3}, 150.0), std::vector<int>{2});
  // Claw-back truncates the window at the enforcement instant.
  EXPECT_EQ(inj.truncate_cap_violations(2, 150.0), 1);
  EXPECT_DOUBLE_EQ(inj.cap_excess_w({2}, 151.0), 0.0);
  EXPECT_TRUE(inj.violating_nodes({1, 2, 3}, 151.0).empty());
  EXPECT_EQ(inj.truncate_cap_violations(2, 160.0), 0);
}

TEST(FaultInjector, WakeupsAreSortedWindowEdges) {
  fault::FaultPlan plan;
  plan.crashes.push_back({0, 300.0});
  plan.meter_faults.push_back(
      {1, 100.0, 50.0, fault::MeterFaultKind::kDropout, 0.0});
  plan.cap_violations.push_back({2, 200.0, 40.0, 30.0});
  fault::FaultInjector inj(plan, 8);
  const std::vector<double> expect = {100.0, 150.0, 200.0, 240.0, 300.0};
  EXPECT_EQ(inj.wakeups(), expect);
}

// ------------------------------------------------------------ budget guard ----

TEST(BudgetGuard, FiltersImplausibleReadings) {
  fault::BudgetGuardOptions opt;
  opt.min_plausible_node_w = 5.0;
  opt.max_plausible_node_w = 500.0;
  fault::BudgetGuard guard(opt, Watts(1000.0));
  EXPECT_DOUBLE_EQ(guard.filter_reading(120.0, 100.0), 120.0);
  EXPECT_DOUBLE_EQ(guard.filter_reading(0.0, 100.0), 100.0);     // dropout
  EXPECT_DOUBLE_EQ(guard.filter_reading(2400.0, 100.0), 100.0);  // spike
  EXPECT_EQ(guard.rejected_reads(), 2u);
}

TEST(BudgetGuard, OvershootAndAccounting) {
  fault::BudgetGuard guard(fault::BudgetGuardOptions{}, Watts(1000.0));
  EXPECT_FALSE(guard.overshoot(999.0));
  EXPECT_FALSE(guard.overshoot(1000.0));
  EXPECT_TRUE(guard.overshoot(1040.0));
  guard.account(10.0, 900.0);   // under budget: nothing accrues
  guard.account(5.0, 1040.0);   // 40 W over for 5 s
  EXPECT_DOUBLE_EQ(guard.violation_s(), 5.0);
  EXPECT_DOUBLE_EQ(guard.violation_ws(), 200.0);
  fault::BudgetGuardOptions off;
  off.enabled = false;
  fault::BudgetGuard disabled(off, Watts(1000.0));
  EXPECT_FALSE(disabled.overshoot(5000.0));
}

// --------------------------------------------------------- resilient queue ----

TEST(ResilientQueue, EmptyPlanIsByteIdenticalToNoInjector) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  const auto jobs = workloads::paper_benchmarks();
  const QueueRun plain = run_queue(jobs, opt);
  const fault::FaultPlan empty;
  const QueueRun faulted = run_queue(jobs, opt, &empty);
  EXPECT_EQ(plain.report_fp, faulted.report_fp);
  EXPECT_EQ(plain.report.retries, 0);
  EXPECT_EQ(faulted.report.retries, 0);
  EXPECT_EQ(faulted.report.violation_s, 0.0);
  EXPECT_EQ(faulted.report.jobs_completed(), jobs.size());
}

TEST(ResilientQueue, SurvivesTwoOfEightNodeCrashes) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  const auto jobs = workloads::paper_benchmarks();
  const QueueRun baseline = run_queue(jobs, opt);
  const double makespan = baseline.report.makespan_s;
  ASSERT_GT(makespan, 0.0);

  fault::FaultPlan plan;
  plan.crashes.push_back({2, 0.25 * makespan});
  plan.crashes.push_back({5, 0.5 * makespan});

  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  obs::ObsSession session;
  runtime::PowerAwareJobQueue queue(ex, sched, opt);
  queue.set_observer(&session);
  fault::FaultInjector injector(plan, ex.spec().nodes);
  queue.set_fault_injector(&injector);
  const auto report = queue.run(jobs);

  // Acceptance scenario: every job completes despite losing 2 of 8 nodes.
  EXPECT_EQ(report.jobs_completed(), jobs.size());
  EXPECT_EQ(report.jobs_failed, 0);
  EXPECT_EQ(report.crashed_nodes.size(), 2u);
  EXPECT_LE(report.retries,
            static_cast<int>(jobs.size()) * opt.retry.max_attempts);
  // No cap violations were injected, so the bound held throughout.
  EXPECT_DOUBLE_EQ(report.violation_s, 0.0);
  // Note: makespan may go *either* way — power, not nodes, is the binding
  // constraint, so concentrating 700 W on 6 survivors can speed jobs up.
  EXPECT_GT(report.makespan_s, 0.0);
  EXPECT_TRUE(std::isfinite(report.makespan_s));
  // Reserved power never exceeds the budget at any start instant.
  for (const auto& a : report.jobs) {
    double watts = 0.0;
    for (const auto& b : report.jobs)
      if (b.start_s <= a.start_s && a.start_s < b.end_s) watts += b.budget_w;
    EXPECT_LE(watts, 700.0 * 1.001) << "at t=" << a.start_s;
  }
  EXPECT_EQ(counter_of(session, "fault.crashes"), 2u);
  EXPECT_EQ(counter_of(session, "queue.retries"),
            static_cast<std::uint64_t>(report.retries));
}

TEST(ResilientQueue, AllNodesDeadMarksJobsFailed) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  fault::FaultPlan plan;
  for (int n = 0; n < 8; ++n) plan.crashes.push_back({n, 5.0});
  const std::vector<workloads::WorkloadSignature> jobs = {
      *workloads::find_benchmark("CoMD"), *workloads::find_benchmark("EP")};
  const QueueRun run = run_queue(jobs, opt, &plan);
  // Every job is accounted for: completed or failed, nothing in limbo.
  EXPECT_EQ(run.report.jobs_completed() +
                static_cast<std::size_t>(run.report.jobs_failed),
            jobs.size());
  EXPECT_EQ(run.report.jobs_failed, static_cast<int>(jobs.size()));
  EXPECT_EQ(run.report.crashed_nodes.size(), 8u);
  for (const auto& j : run.report.jobs) {
    EXPECT_FALSE(j.completed);
    EXPECT_LE(j.attempts, opt.retry.max_attempts);
  }
}

TEST(ResilientQueue, GuardClawsBackCapViolation) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  opt.guard.reaction_s = 2.0;
  fault::FaultPlan plan;
  plan.cap_violations.push_back({0, 1.0, 1e6, 100.0});  // effectively forever
  const std::vector<workloads::WorkloadSignature> jobs = {
      *workloads::find_benchmark("CoMD"), *workloads::find_benchmark("EP"),
      *workloads::find_benchmark("LULESH")};
  const QueueRun run = run_queue(jobs, opt, &plan);
  EXPECT_EQ(run.report.jobs_completed(), jobs.size());
  // The guard detected the overshoot and re-programmed the cap...
  EXPECT_GE(run.report.caps_reprogrammed, 1);
  // ...so the violation lasted about the reaction latency, not the window.
  EXPECT_GT(run.report.violation_s, 0.0);
  EXPECT_LE(run.report.violation_s, 10.0 * opt.guard.reaction_s);
  EXPECT_GT(run.report.violation_ws, 0.0);
}

TEST(ResilientQueue, DisabledGuardAccountsFullViolationWindow) {
  runtime::QueueOptions with_guard;
  with_guard.cluster_budget = Watts(700.0);
  runtime::QueueOptions no_guard = with_guard;
  no_guard.guard.enabled = false;
  fault::FaultPlan plan;
  plan.cap_violations.push_back({0, 1.0, 1e6, 100.0});
  const std::vector<workloads::WorkloadSignature> jobs = {
      *workloads::find_benchmark("CoMD"), *workloads::find_benchmark("EP")};
  const QueueRun guarded = run_queue(jobs, with_guard, &plan);
  const QueueRun unguarded = run_queue(jobs, no_guard, &plan);
  EXPECT_EQ(unguarded.report.caps_reprogrammed, 0);
  // Unenforced, the violation persists while node 0 is active; the guard
  // cuts it to roughly its reaction latency.
  EXPECT_GT(unguarded.report.violation_s, guarded.report.violation_s);
}

TEST(ResilientQueue, MeterDropoutDoesNotTriggerFalseReaction) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  fault::FaultPlan plan;
  plan.meter_faults.push_back(
      {0, 0.0, 1e6, fault::MeterFaultKind::kDropout, 0.0});
  plan.meter_faults.push_back(
      {1, 0.0, 1e6, fault::MeterFaultKind::kSpike, 50.0});
  const std::vector<workloads::WorkloadSignature> jobs = {
      *workloads::find_benchmark("CoMD"), *workloads::find_benchmark("EP")};
  const QueueRun run = run_queue(jobs, opt, &plan);
  EXPECT_EQ(run.report.jobs_completed(), jobs.size());
  // Implausible readings were filtered instead of believed...
  EXPECT_GT(run.report.meter_reads_rejected, 0u);
  // ...so no cap was clawed back and no violation was recorded.
  EXPECT_EQ(run.report.caps_reprogrammed, 0);
  EXPECT_DOUBLE_EQ(run.report.violation_s, 0.0);
}

TEST(ResilientQueue, DegradeStretchesMakespan) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  const std::vector<workloads::WorkloadSignature> jobs = {
      *workloads::find_benchmark("CoMD"), *workloads::find_benchmark("EP")};
  const QueueRun baseline = run_queue(jobs, opt);
  fault::FaultPlan plan;
  for (int n = 0; n < 8; ++n) plan.degrades.push_back({n, 0.0, 0.5});
  const QueueRun degraded = run_queue(jobs, opt, &plan);
  EXPECT_EQ(degraded.report.jobs_completed(), jobs.size());
  EXPECT_GT(degraded.report.makespan_s, baseline.report.makespan_s * 1.5);
}

TEST(ResilientQueue, SameSeedIsByteIdenticalAcrossRuns) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  const auto jobs = workloads::paper_benchmarks();
  fault::FaultPlanShape shape;
  shape.crashes = 2;
  shape.cap_violations = 2;
  const auto plan = fault::FaultPlan::random(42, 8, 2000.0, shape);
  const QueueRun a = run_queue(jobs, opt, &plan);
  const QueueRun b = run_queue(jobs, opt, &plan);
  EXPECT_EQ(a.report_fp, b.report_fp);
  EXPECT_EQ(a.metrics_fp, b.metrics_fp);
}

TEST(ResilientQueue, ValidationNamesTheOffendingField) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  const auto message_of = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const PreconditionError& e) {
      return e.what();
    }
    return {};
  };
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(0.0);
  EXPECT_NE(message_of([&] {
              runtime::PowerAwareJobQueue q(ex, sched, opt);
            }).find("cluster_budget"),
            std::string::npos);
  opt.cluster_budget = Watts(-5.0);
  EXPECT_NE(message_of([&] {
              runtime::PowerAwareJobQueue q(ex, sched, opt);
            }).find("cluster_budget"),
            std::string::npos);
  opt.cluster_budget = Watts(100.0);
  opt.min_node_power_w = -1.0;
  EXPECT_NE(message_of([&] {
              runtime::PowerAwareJobQueue q(ex, sched, opt);
            }).find("min_node_power_w"),
            std::string::npos);
  opt.min_node_power_w = 200.0;  // exceeds the 100 W budget
  EXPECT_NE(message_of([&] {
              runtime::PowerAwareJobQueue q(ex, sched, opt);
            }).find("min_node_power_w"),
            std::string::npos);
  runtime::QueueOptions ok;
  ok.cluster_budget = Watts(700.0);
  runtime::PowerAwareJobQueue queue(ex, sched, ok);
  const std::string msg = message_of([&] {
    (void)queue.run({runtime::QueueJob{*workloads::find_benchmark("EP"), 99}});
  });
  EXPECT_NE(msg.find("requested_nodes"), std::string::npos);
  EXPECT_NE(msg.find("99"), std::string::npos);
}

TEST(ResilientQueue, RequestedNodesIsHonored) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(900.0);
  runtime::PowerAwareJobQueue queue(ex, sched, opt);
  const auto report =
      queue.run({runtime::QueueJob{*workloads::find_benchmark("CoMD"), 2}});
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].nodes, 2);
  EXPECT_TRUE(report.jobs[0].completed);
}

// ----------------------------------------------------- launcher degradation ----

TEST(LauncherResilience, FallsBackOnCorruptKnowledgeRecord) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  runtime::Launcher launcher(ex, workloads::training_benchmarks());
  obs::ObsSession session;
  launcher.set_observer(&session);

  const auto app = *workloads::find_benchmark("CoMD");
  core::KnowledgeRecord bad;
  bad.name = app.name;
  bad.parameters = app.parameters;
  bad.perf_ratio = -1.0;  // physically impossible
  bad.time_all_s = 10.0;
  bad.time_half_s = 14.0;
  bad.cpu_power_all_w = 150.0;
  launcher.scheduler().knowledge_db().insert(bad);

  runtime::JobSpec spec;
  spec.app = app;
  spec.cluster_budget = Watts(700.0);
  const auto result = launcher.run(spec);
  EXPECT_EQ(result.method, "CLIP-fallback");
  EXPECT_GT(result.measurement.time.value(), 0.0);
  // Conservative degraded-mode shape: half the nodes, all cores.
  EXPECT_EQ(result.plan.nodes, ex.spec().nodes / 2);
  EXPECT_EQ(result.plan.node.threads, ex.spec().shape.total_cores());
  EXPECT_EQ(counter_of(session, "runtime.fallbacks"), 1u);

  // A healthy app on the same launcher still schedules normally.
  runtime::JobSpec healthy;
  healthy.app = *workloads::find_benchmark("EP");
  healthy.cluster_budget = Watts(700.0);
  EXPECT_EQ(launcher.run(healthy).method, "CLIP");
}

TEST(LauncherResilience, UserErrorsStillThrow) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  runtime::Launcher launcher(ex, workloads::training_benchmarks());
  runtime::JobSpec spec;
  spec.app = *workloads::find_benchmark("CoMD");
  spec.cluster_budget = Watts(-100.0);
  EXPECT_THROW((void)launcher.run(spec), PreconditionError);
}

TEST(LauncherResilience, SurvivesCorruptDbFileAtConstruction) {
  const auto path = temp_file("clip_test_fault_corrupt_db");
  {
    std::ofstream os(path);
    os << "not,a,knowledge,db\n1,2,3\n";
  }
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  runtime::Launcher launcher(ex, workloads::training_benchmarks(), path);
  EXPECT_FALSE(launcher.db_load_error().empty());
  EXPECT_EQ(launcher.scheduler().knowledge_db().size(), 0u);
  // The launcher still works: the app simply re-characterizes.
  runtime::JobSpec spec;
  spec.app = *workloads::find_benchmark("EP");
  spec.cluster_budget = Watts(700.0);
  EXPECT_EQ(launcher.run(spec).method, "CLIP");
  std::filesystem::remove(path);
}

// ------------------------------------------------------ knowledge-DB hardening ----

class KnowledgeDbHardening : public ::testing::Test {
 protected:
  void SetUp() override {
    core::KnowledgeRecord r;
    r.name = "app";
    r.parameters = "n=1";
    r.perf_ratio = 0.6;
    r.time_all_s = 10.0;
    r.time_half_s = 16.0;
    r.cpu_power_all_w = 150.0;
    r.mem_power_all_w = 20.0;
    db_.insert(r);
    r.parameters = "n=2";
    db_.insert(r);
    path_ = temp_file("clip_test_fault_kdb");
    db_.save(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  /// Load must throw and leave the two staged records untouched.
  void expect_rejected() {
    EXPECT_THROW(db_.load(path_), PreconditionError);
    EXPECT_EQ(db_.size(), 2u);
    EXPECT_TRUE(db_.lookup("app", "n=1").has_value());
    EXPECT_TRUE(db_.lookup("app", "n=2").has_value());
  }

  core::KnowledgeDb db_;
  std::filesystem::path path_;
};

TEST_F(KnowledgeDbHardening, RoundTripStillWorks) {
  core::KnowledgeDb fresh;
  fresh.load(path_);
  EXPECT_EQ(fresh.size(), 2u);
}

TEST_F(KnowledgeDbHardening, EmptyFileRejectsCleanly) {
  std::ofstream(path_, std::ios::trunc).close();
  expect_rejected();
}

TEST_F(KnowledgeDbHardening, WrongColumnCountRejectsCleanly) {
  std::ofstream os(path_, std::ios::trunc);
  os << "name,parameters,class\napp,n=3,linear\n";
  os.close();
  expect_rejected();
}

TEST_F(KnowledgeDbHardening, PartialLastLineRejectsCleanly) {
  // Truncate the file mid-row, as a crashed writer would leave it.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 30);
  expect_rejected();
}

TEST_F(KnowledgeDbHardening, GarbageNumericRejectsWithRowContext) {
  // Corrupt one numeric field in an otherwise well-formed file.
  std::ifstream is(path_);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  is.close();
  const auto pos = content.find("0.600000");
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos, 8, "garbage!");
  std::ofstream os(path_, std::ios::trunc);
  os << content;
  os.close();
  try {
    db_.load(path_);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("row"), std::string::npos) << msg;
    EXPECT_NE(msg.find("garbage!"), std::string::npos) << msg;
  }
  EXPECT_EQ(db_.size(), 2u);
}

// ------------------------------------------- flight recorder integration ----

/// Runs the acceptance scenario (2-of-8 crashes plus one guarded cap
/// violation) with the flight recorder attached and persists the run record.
/// When $CLIP_FLIGHT_DIR is set (as scripts/ci.sh does), the record is also
/// written there, so a red ctest leaves the telemetry behind as an artifact.
struct FlightRecordedRun {
  runtime::QueueReport report;
  obs::Timeline timeline;
};

void run_crash_scenario(FlightRecordedRun& out) {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  opt.guard.reaction_s = 2.0;
  const auto jobs = workloads::paper_benchmarks();
  const double makespan = run_queue(jobs, opt).report.makespan_s;

  fault::FaultPlan plan;
  plan.crashes.push_back({2, 0.25 * makespan});
  plan.crashes.push_back({5, 0.5 * makespan});
  plan.cap_violations.push_back({0, 0.1 * makespan, 1e6, 100.0});

  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  runtime::PowerAwareJobQueue queue(ex, sched, opt);
  fault::FaultInjector injector(plan, ex.spec().nodes);
  queue.set_fault_injector(&injector);
  queue.set_timeline(&out.timeline);
  out.report = queue.run(jobs);
}

TEST(FlightRecorder, ReportViolationSecondsMatchBudgetGuardGroundTruth) {
  FlightRecordedRun run;
  run_crash_scenario(run);
  ASSERT_EQ(run.report.crashed_nodes.size(), 2u);
  ASSERT_GT(run.report.violation_s, 0.0);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("flight_gt." + std::to_string(::getpid()));
  runtime::write_run_record(dir, Watts(700.0), run.report, run.timeline);

  // The rendered reports carry the BudgetGuard's accounting bit-for-bit:
  // shortest-exact formatting means a string compare is an exact compare.
  const std::string exact = obs::format_exact(run.report.violation_s);
  const std::string json = runtime::render_json_report(dir);
  EXPECT_NE(json.find("\"violation_s\": " + exact), std::string::npos)
      << json;
  const std::string md = runtime::render_markdown_report(dir);
  EXPECT_NE(md.find("| cap violation (s) | " + exact + " |"),
            std::string::npos);

  // Rendering is deterministic across repeats.
  EXPECT_EQ(json, runtime::render_json_report(dir));
  EXPECT_EQ(md, runtime::render_markdown_report(dir));

  // The timeline's own copy of the final accounting agrees too.
  const auto viol = run.timeline.samples("budget.violation_s");
  ASSERT_EQ(viol.size(), 1u);
  EXPECT_EQ(viol[0].value, run.report.violation_s);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, FaultEventsLandOnTheTimeline) {
  FlightRecordedRun run;
  run_crash_scenario(run);
  const auto faults = run.timeline.events("fault");
  std::size_t crashes = 0;
  std::size_t claw_backs = 0;
  std::size_t cap_violations = 0;
  for (const auto& e : faults) {
    if (e.label.rfind("crash ", 0) == 0) ++crashes;
    if (e.label.rfind("claw-back ", 0) == 0) ++claw_backs;
    if (e.label.rfind("cap-violation ", 0) == 0) ++cap_violations;
  }
  EXPECT_EQ(crashes, 2u);
  EXPECT_EQ(cap_violations, 1u);
  EXPECT_EQ(static_cast<int>(claw_backs), run.report.caps_reprogrammed);
  // fault.active tracks the injections.
  const auto active = run.timeline.summary("fault.active");
  EXPECT_GT(active.count, 0u);
  EXPECT_GE(active.max, 1.0);
  // Crashed nodes leave job-crash events behind.
  std::size_t job_crashes = 0;
  for (const auto& e : run.timeline.events("job"))
    if (e.label.rfind("crash ", 0) == 0) ++job_crashes;
  EXPECT_GE(job_crashes, 1u);
}

TEST(FlightRecorder, ArchivesRunRecordIntoFlightDirWhenSet) {
  FlightRecordedRun run;
  run_crash_scenario(run);
  const char* env = std::getenv("CLIP_FLIGHT_DIR");
  // Outside CI the behavior is exercised against a temp stand-in.
  const std::filesystem::path base =
      env != nullptr && *env != '\0'
          ? std::filesystem::path(env)
          : std::filesystem::temp_directory_path() /
                ("flight_dump." + std::to_string(::getpid()));
  const auto dir = base / "fault_integration";
  runtime::write_run_record(dir, Watts(700.0), run.report, run.timeline);
  for (const char* f :
       {runtime::RunRecordFiles::kTimeline, runtime::RunRecordFiles::kJobs,
        runtime::RunRecordFiles::kSummary})
    EXPECT_TRUE(std::filesystem::exists(dir / f)) << f;
  // Prove the dump is renderable — what a post-mortem will do first.
  EXPECT_NE(runtime::render_markdown_report(dir).find("# CLIP run report"),
            std::string::npos);
  if (env == nullptr || *env == '\0') std::filesystem::remove_all(base);
}

TEST(KnowledgeRecordValidate, RejectsImpossibleFields) {
  core::KnowledgeRecord r;
  r.name = "app";
  r.perf_ratio = 0.6;
  r.time_all_s = 10.0;
  r.time_half_s = 16.0;
  r.cpu_power_all_w = 150.0;
  EXPECT_NO_THROW(r.validate());
  r.time_all_s = 0.0;
  EXPECT_THROW(r.validate(), PreconditionError);
  r.time_all_s = 10.0;
  r.cpu_power_all_w = -5.0;
  EXPECT_THROW(r.validate(), PreconditionError);
}

}  // namespace
}  // namespace clip
