// Figure 1 — "Performance impacts of resource coordination for a power
// budget of 120 Watts": single-node NPB-SP under a 120 W node budget, swept
// over CPU/memory power splits and core assignments. The paper reports up to
// 75% improvement from application-aware coordination; this harness prints
// the same grid and the best/worst gap.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_exact_testbed();

  const auto sp = *workloads::find_benchmark("SP", "C");

  struct Split {
    double cpu;
    double mem;
  };
  const Split splits[] = {{90, 30}, {85, 35}, {80, 40}, {75, 45}, {70, 50}};
  const int core_counts[] = {6, 12, 18, 24};

  Table t({"CPU/mem split (W)", "affinity", "6 cores", "12 cores",
           "18 cores", "24 cores"});
  t.set_title(
      "Fig. 1 — NPB-SP on one node, 120 W budget: relative performance "
      "(1.0 = naive all-core 90/30 split)");

  // Reference: the naive configuration (all cores, 90/30 split, scatter).
  sim::ClusterConfig ref;
  ref.nodes = 1;
  ref.node.threads = 24;
  ref.node.affinity = parallel::AffinityPolicy::kScatter;
  ref.node.cpu_cap = Watts(90.0);
  ref.node.mem_cap = Watts(30.0);
  const double ref_time = ex.run_exact(sp, ref).time.value();

  double best = 0.0, worst = 1e30;
  std::string best_desc;
  for (const auto& split : splits) {
    for (parallel::AffinityPolicy affinity :
         {parallel::AffinityPolicy::kCompact,
          parallel::AffinityPolicy::kScatter}) {
      std::vector<std::string> row;
      row.push_back(format_double(split.cpu, 0) + "/" +
                    format_double(split.mem, 0));
      row.push_back(parallel::to_string(affinity));
      for (int cores : core_counts) {
        sim::ClusterConfig cfg;
        cfg.nodes = 1;
        cfg.node.threads = cores;
        cfg.node.affinity = affinity;
        cfg.node.cpu_cap = Watts(split.cpu);
        cfg.node.mem_cap = Watts(split.mem);
        const double time = ex.run_exact(sp, cfg).time.value();
        const double rel = ref_time / time;
        row.push_back(format_double(rel, 3));
        if (rel > best) {
          best = rel;
          best_desc = row[0] + " W, " + std::to_string(cores) + " cores, " +
                      parallel::to_string(affinity);
        }
        worst = std::min(worst, rel);
      }
      t.add_row(std::move(row));
    }
  }
  ctx.print(t);

  std::cout << "Best configuration: " << best_desc << " -> "
            << format_percent(best - 1.0)
            << " vs the naive all-core configuration (paper: up to +75%).\n"
            << "Best-vs-worst spread: " << format_double(best / worst, 2)
            << "x — coordination matters.\n";
  return 0;
}
