// Telemetry — the paper's "power meter reader ... automates the collection
// and recording of performance and power data for jobs" (§IV-B4).
//
// Produces a sampled time series of per-node power, frequency and phase for
// an executed job (flat or phased), with the meter's sampling noise, and
// exports it as CSV for external plotting or as Chrome-trace counter tracks
// through the clip::obs sink interface. With noise disabled, the rectangle-
// rule integral of the power series reproduces the job's measured energy to
// within the last partial sample — a test invariant asserted by
// test_runtime.cpp and test_dynamics.cpp.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "obs/sink.hpp"
#include "obs/timeline.hpp"
#include "sim/executor.hpp"
#include "sim/phased.hpp"
#include "util/csv.hpp"

namespace clip::runtime {

struct TelemetrySample {
  double time_s = 0.0;
  std::string phase;        ///< "-" for flat runs
  int node = 0;
  double cpu_power_w = 0.0;
  double mem_power_w = 0.0;
  double freq_ghz = 0.0;
  int threads = 0;
};

struct TelemetryOptions {
  double sample_period_s = 0.1;
  double noise_sigma = 0.01;  ///< per-sample multiplicative meter noise
  std::uint64_t seed = 11;
};

class Telemetry {
 public:
  using Options = TelemetryOptions;

  explicit Telemetry(TelemetryOptions options = TelemetryOptions{});

  /// Record a flat job: one steady operating point per node.
  [[nodiscard]] std::vector<TelemetrySample> record(
      const sim::Measurement& m, int threads) const;

  /// Record a phased job: the series steps at phase boundaries.
  [[nodiscard]] std::vector<TelemetrySample> record_phased(
      const sim::PhasedMeasurement& m, int nodes) const;

  /// Energy integral of a series in joules: Σ (cpu_w + mem_w) · Δt over all
  /// samples (rectangle rule — samples are uniformly spaced, so no
  /// trapezoid correction is needed).
  [[nodiscard]] static double energy_j(
      const std::vector<TelemetrySample>& series, double sample_period_s);

  /// Export as CSV (columns: time_s,phase,node,cpu_w,mem_w,freq_ghz,threads).
  static void write(const std::filesystem::path& path,
                    const std::vector<TelemetrySample>& series);

  /// Bridge into the obs sink interface: one Chrome-trace counter track per
  /// node ("power.node<N>" with cpu_w/mem_w series, seconds mapped to the
  /// trace's microsecond axis) so a job's power draw plots under its spans
  /// in Perfetto. Feed to obs::write_chrome_trace or a TraceSink.
  [[nodiscard]] static std::vector<obs::CounterSample> to_trace_counters(
      const std::vector<TelemetrySample>& series);

  /// Bridge into the flight recorder: per-node `node<N>.cpu_w` /
  /// `node<N>.mem_w` / `node<N>.freq_ghz` sample series on the simulated
  /// axis, plus one `job.phase` event per phase change (taken from node 0's
  /// samples; flat runs emit a single "-" event). Timestamps are shifted by
  /// `t0_s` so successive jobs land one after another on a shared timeline.
  static void to_timeline(obs::Timeline& timeline,
                          const std::vector<TelemetrySample>& series,
                          double t0_s = 0.0);

 private:
  TelemetryOptions options_;
};

}  // namespace clip::runtime
