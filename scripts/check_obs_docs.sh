#!/usr/bin/env sh
# Doc-drift gate: every observability name emitted from src/ with a literal
# string — metric names (obs::count / obs::gauge_set / obs::observe), span
# names (obs::ScopedSpan), flight-recorder series/event streams
# (Timeline record/event), and telemetry-server endpoint paths
# (src/obs/telemetry_server.cpp) — must appear, backticked, in
# docs/observability.md. Dynamically concatenated names (the per-node
# `node<N>.*` family) are intentionally out of scope; the catalog documents
# the pattern instead. Exit 0 = no drift, 1 = undocumented names (each is
# listed), 2 = usage error.
#
# Usage: scripts/check_obs_docs.sh [--selftest]
set -eu
cd "$(dirname "$0")/.."

DOC=docs/observability.md
[ -f "$DOC" ] || { echo "check_obs_docs: missing $DOC" >&2; exit 2; }

emitted_names() {
  # Metric names: helper(session, "name"...) — literal first string arg.
  # The session expression may be a variable (obs_) or a nullary accessor
  # call (action_obs()).
  grep -rhoE 'obs::(count|gauge_set|observe)\([A-Za-z_][A-Za-z0-9_]*(\(\))?,[[:space:]]*"[^"]+"[,)]' src \
    | sed -E 's/.*"([^"]+)".*/\1/'
  # Span names: ScopedSpan var(session, "name", ...).
  grep -rhoE 'ScopedSpan[[:space:]]+[A-Za-z_][A-Za-z0-9_]*\([A-Za-z_&*]+[A-Za-z0-9_]*,[[:space:]]*"[^"]+",' src \
    | sed -E 's/.*"([^"]+)".*/\1/'
  # Timeline series/event streams with a literal name (a trailing comma
  # excludes concatenations like "node" + std::to_string(n) + ".cap_w").
  grep -rhoE '(->|\.)(record|event)\("[^"]+",' src \
    | sed -E 's/.*"([^"]+)".*/\1/'
}

endpoint_paths() {
  # Telemetry endpoints: the literal paths respond() routes on. The doc
  # must list every one (a new endpoint without a catalog row is drift).
  grep -hoE 'path == "/[a-z]+"' src/obs/telemetry_server.cpp \
    | sed -E 's/.*"([^"]+)".*/\1/'
}

check() {
  status=0
  for name in $(emitted_names | sort -u); do
    if ! grep -qF "\`$name\`" "$DOC"; then
      echo "check_obs_docs: '$name' is emitted in src/ but not documented in $DOC" >&2
      status=1
    fi
  done
  for path in $(endpoint_paths | sort -u); do
    if ! grep -qF "\`$path\`" "$DOC"; then
      echo "check_obs_docs: endpoint '$path' is served but not documented in $DOC" >&2
      status=1
    fi
  done
  return $status
}

if [ "${1:-}" = "--selftest" ]; then
  # The extractor must see the known core of the catalog; an empty or
  # gutted extraction would make the gate pass vacuously.
  names=$(emitted_names | sort -u)
  # (queue.decision_latency_us is recorded via a multi-line ScopedTimer
  # call the line-based extractor cannot see; its catalog row is kept by
  # review, not by this gate.)
  for expect in queue.depth fault.injected budget.free_w redist.ticks \
                clip.schedule sim.run alert alert.firing; do
    echo "$names" | grep -qx "$expect" || {
      echo "check_obs_docs selftest: extractor lost '$expect'" >&2
      exit 2
    }
  done
  paths=$(endpoint_paths | sort -u)
  for expect in /metrics /healthz /status /timeline; do
    echo "$paths" | grep -qx "$expect" || {
      echo "check_obs_docs selftest: endpoint extractor lost '$expect'" >&2
      exit 2
    }
  done
  # And a name absent from the doc must be flagged.
  if grep -qF '`zz.selftest_bogus_name`' "$DOC"; then
    echo "check_obs_docs selftest: bogus name unexpectedly documented" >&2
    exit 2
  fi
  echo "check_obs_docs: selftest ok" >&2
fi

if check; then
  echo "check_obs_docs: all emitted names documented in $DOC" >&2
else
  exit 1
fi
