// Property-based suites (parameterized gtest): invariants swept over the
// whole workload catalog, budget grids, cap grids and thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/oracle.hpp"
#include "core/profiler.hpp"
#include "core/scheduler.hpp"
#include "sim/executor.hpp"
#include "sim/rapl.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

sim::SimExecutor& shared_executor() {
  static sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  return ex;
}

core::ClipScheduler& shared_scheduler() {
  static core::ClipScheduler sched{shared_executor(),
                                   workloads::training_benchmarks()};
  return sched;
}

std::vector<std::string> catalog_keys() {
  std::vector<std::string> keys;
  for (const auto& w : workloads::all_benchmarks())
    keys.push_back(w.name + "|" + w.parameters);
  return keys;
}

workloads::WorkloadSignature from_key(const std::string& key) {
  const auto bar = key.find('|');
  return *workloads::find_benchmark(key.substr(0, bar),
                                    key.substr(bar + 1));
}

std::string sanitize(const testing::TestParamInfo<std::string>& info) {
  std::string s = info.param;
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

// ------------------------------------------------- per-workload invariants ----

class PerWorkload : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Catalog, PerWorkload,
                         ::testing::ValuesIn(catalog_keys()), sanitize);

// Speedup never exceeds ideal: S(n) <= n for every thread count.
TEST_P(PerWorkload, SpeedupBoundedByIdeal) {
  const auto w = from_key(GetParam());
  auto& ex = shared_executor();
  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  cfg.node.threads = 1;
  const double t1 = ex.run_exact(w, cfg).time.value();
  for (int n : {2, 6, 12, 18, 24}) {
    cfg.node.threads = n;
    const double tn = ex.run_exact(w, cfg).time.value();
    EXPECT_LE(t1 / tn, n * 1.0001) << "n=" << n;
  }
}

// Frequency scaling never exceeds the frequency ratio.
TEST_P(PerWorkload, FrequencySpeedupBoundedByFrequencyRatio) {
  const auto w = from_key(GetParam());
  auto& ex = shared_executor();
  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.threads = 12;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  // Force the lowest frequency via a tiny but feasible cap? Instead compare
  // the unconstrained run with a run under a cap that lands on f_min.
  const double t_hi = ex.run_exact(w, cfg).time.value();
  cfg.node.cpu_cap = Watts(38.0);  // at/below the 12-thread f_min draw
  const double t_lo = ex.run_exact(w, cfg).time.value();
  EXPECT_GE(t_lo, t_hi);  // a cap can never speed you up
}

// Profiler classification agrees with the catalog's expected class for the
// entire catalog (the Fig. 6 property, extended to the training suite).
TEST_P(PerWorkload, ClassificationMatchesExpectedClass) {
  const auto w = from_key(GetParam());
  core::SmartProfiler profiler(shared_executor());
  const core::ScalabilityClassifier classifier;
  const auto p = profiler.profile(w);
  EXPECT_EQ(classifier.classify(p), w.expected_class)
      << "ratio=" << p.perf_ratio_half_over_all;
}

// CLIP's decision executes within every budget in a grid.
TEST_P(PerWorkload, ClipRespectsBudgetGrid) {
  const auto w = from_key(GetParam());
  auto& sched = shared_scheduler();
  auto& ex = shared_executor();
  for (double budget : {450.0, 700.0, 1000.0, 1300.0}) {
    const auto d = sched.schedule(w, Watts(budget));
    const auto m = ex.run_exact(w, d.cluster);
    EXPECT_LE(m.avg_power.value(), budget * 1.01) << budget;
    EXPECT_GE(d.cluster.nodes, 1);
    EXPECT_LE(d.cluster.nodes, 8);
    EXPECT_GE(d.cluster.node.threads, 1);
    EXPECT_LE(d.cluster.node.threads, 24);
  }
}

// CLIP's achieved performance is weakly monotone in the budget.
TEST_P(PerWorkload, ClipMonotoneInBudget) {
  const auto w = from_key(GetParam());
  auto& sched = shared_scheduler();
  auto& ex = shared_executor();
  double prev_time = 1e300;
  for (double budget : {450.0, 700.0, 1000.0, 1300.0}) {
    const auto d = sched.schedule(w, Watts(budget));
    const double t = ex.run_exact(w, d.cluster).time.value();
    EXPECT_LE(t, prev_time * 1.02) << budget;
    prev_time = t;
  }
}

// ------------------------------------------------------ RAPL cap sweep ----

class RaplSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    CapsByThreads, RaplSweep,
    ::testing::Combine(::testing::Values(30, 45, 60, 80, 100, 125),
                       ::testing::Values(4, 8, 12, 16, 20, 24)));

TEST_P(RaplSweep, CpuPowerNeverExceedsEnforceableCap) {
  const auto [cap, threads] = GetParam();
  const sim::MachineSpec spec;
  const sim::RaplSolver solver(spec);
  // Clock gating cannot cut the static draw: the enforceable floor is the
  // socket base power plus the deepest-modulation load remnant.
  const double base_w = spec.shape.sockets * spec.socket_base_w;
  for (const char* name : {"CoMD", "BT-MZ", "TeaLeaf", "STREAM-Triad"}) {
    const auto w = *workloads::find_benchmark(name);
    sim::NodeConfig cfg;
    cfg.threads = threads;
    cfg.affinity = parallel::AffinityPolicy::kScatter;
    cfg.cpu_cap = Watts(static_cast<double>(cap));
    cfg.mem_cap = Watts(45.0);
    const auto op = solver.solve(w, 50.0, cfg);
    const double floor_w =
        base_w + (threads * spec.core_max_w) / 16.0;  // loose upper floor
    EXPECT_LE(op.cpu_power.value(), std::max<double>(cap, floor_w) + 1e-9)
        << name;
    EXPECT_LE(op.mem_power.value(), 45.0 + 1e-9) << name;
    EXPECT_GT(op.perf.time.value(), 0.0) << name;
    EXPECT_GE(op.duty_factor, 1.0 / 16.0 - 1e-12);
    EXPECT_LE(op.duty_factor, 1.0);
  }
}

TEST_P(RaplSweep, FrequencyMonotoneInCap) {
  const auto [cap, threads] = GetParam();
  const sim::MachineSpec spec;
  const sim::RaplSolver solver(spec);
  const auto w = *workloads::find_benchmark("BT-MZ");
  sim::NodeConfig cfg;
  cfg.threads = threads;
  cfg.affinity = parallel::AffinityPolicy::kScatter;
  cfg.mem_cap = Watts(45.0);
  cfg.cpu_cap = Watts(static_cast<double>(cap));
  const auto tight = solver.solve(w, 50.0, cfg);
  cfg.cpu_cap = Watts(cap + 20.0);
  const auto loose = solver.solve(w, 50.0, cfg);
  EXPECT_GE(loose.frequency.value(), tight.frequency.value());
  EXPECT_LE(loose.perf.time.value(), tight.perf.time.value() * 1.0001);
}

// --------------------------------------------------- memory level sweep ----

class MemLevelSweep
    : public ::testing::TestWithParam<sim::MemPowerLevel> {};

INSTANTIATE_TEST_SUITE_P(Levels, MemLevelSweep,
                         ::testing::Values(sim::MemPowerLevel::kL0,
                                           sim::MemPowerLevel::kL1,
                                           sim::MemPowerLevel::kL2,
                                           sim::MemPowerLevel::kL3));

TEST_P(MemLevelSweep, LowerLevelNeverFasterAndNeverMoreMemPower) {
  const sim::MemPowerLevel level = GetParam();
  auto& ex = shared_executor();
  const auto w = *workloads::find_benchmark("STREAM-Triad");
  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.threads = 24;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  cfg.node.mem_level = sim::MemPowerLevel::kL0;
  const auto base = ex.run_exact(w, cfg);
  cfg.node.mem_level = level;
  const auto m = ex.run_exact(w, cfg);
  EXPECT_GE(m.time.value(), base.time.value() * 0.9999);
  EXPECT_LE(m.nodes[0].mem_power.value(),
            base.nodes[0].mem_power.value() + 1e-9);
}

// ----------------------------------------------------- node count sweep ----

class NodeSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Counts, NodeSweep, ::testing::Values(1, 2, 3, 4,
                                                              5, 6, 7, 8));

TEST_P(NodeSweep, UnboundedTimeDecreasesWithNodes) {
  const int nodes = GetParam();
  auto& ex = shared_executor();
  const auto w = *workloads::find_benchmark("CoMD");
  sim::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node.threads = 24;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  const double t = ex.run_exact(w, cfg).time.value();
  if (nodes > 1) {
    cfg.nodes = nodes - 1;
    const double t_fewer = ex.run_exact(w, cfg).time.value();
    EXPECT_LT(t, t_fewer);
  } else {
    EXPECT_GT(t, 0.0);
  }
}

TEST_P(NodeSweep, EnergyAccountingConsistent) {
  const int nodes = GetParam();
  auto& ex = shared_executor();
  const auto w = *workloads::find_benchmark("BT-MZ");
  sim::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node.threads = 16;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  const auto m = ex.run_exact(w, cfg);
  double watts = 0.0;
  for (const auto& n : m.nodes)
    watts += n.cpu_power.value() + n.mem_power.value();
  EXPECT_NEAR(m.avg_power.value(), watts, 1e-9);
  EXPECT_NEAR(m.energy.value(), watts * m.time.value(), 1e-6);
}

// ----------------------------------------- oracle-vs-CLIP quality sweep ----

class OracleQuality : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Budgets, OracleQuality,
                         ::testing::Values(800.0, 1100.0, 1400.0));

TEST_P(OracleQuality, ClipWithinFortyPercentOfOracleEverywhere) {
  // At moderate-to-high budgets CLIP must track the exhaustive optimum;
  // the paper reports "close to the optimal solution".
  const double budget = GetParam();
  auto& ex = shared_executor();
  auto& sched = shared_scheduler();
  baselines::OracleScheduler oracle(ex);
  for (const auto& w : workloads::paper_benchmarks()) {
    const double t_clip =
        ex.run_exact(w, sched.schedule(w, Watts(budget)).cluster)
            .time.value();
    const double t_oracle =
        ex.run_exact(w, oracle.plan(w, Watts(budget))).time.value();
    EXPECT_LE(t_clip, t_oracle * 1.40) << w.name << " @" << budget;
  }
}

}  // namespace
}  // namespace clip
