// Synthesis of the Table I hardware events.
//
// The paper's MLR inflection predictor consumes eight Haswell event rates
// collected during the sample-configuration profiles. The simulator derives
// the same rates from the workload signature and the operating point, so the
// prediction pipeline runs end-to-end exactly as on real hardware.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "sim/perf_model.hpp"
#include "workloads/signature.hpp"

namespace clip::sim {

/// Paper Table I. Event7 (the full/half perf ratio) is filled in by the
/// profiler, which is the only place both profiles exist.
struct EventRates {
  double icache_misses_per_s = 0.0;   ///< Event0
  double read_bw_gbps = 0.0;          ///< Event1
  double write_bw_gbps = 0.0;         ///< Event2
  double l3_miss_local_per_s = 0.0;   ///< Event3
  double l3_miss_remote_per_s = 0.0;  ///< Event4
  double cycles_active_per_s = 0.0;   ///< Event5
  double instructions_per_s = 0.0;    ///< Event6
  double perf_ratio_full_half = 0.0;  ///< Event7

  /// Feature vector for the MLR model, in Table I order.
  [[nodiscard]] std::vector<double> to_features() const;

  /// Table I descriptions, aligned with to_features().
  [[nodiscard]] static const std::array<std::string, 8>& names();
};

class EventModel {
 public:
  explicit EventModel(const MachineSpec& spec) : spec_(&spec) {}

  /// Event rates for a node running `w` with `threads` at `f` (GHz), given
  /// the perf-model outcome of that operating point.
  [[nodiscard]] EventRates synthesize(const workloads::WorkloadSignature& w,
                                      int threads, GHz freq,
                                      const NodePerfOutput& perf) const;

 private:
  const MachineSpec* spec_;
};

}  // namespace clip::sim
