// ExactRunCache — memoization in front of SimExecutor::run_exact.
//
// The noise-free simulator is a pure function of (machine spec, workload
// signature, cluster configuration): two identical exact runs return
// bit-identical measurements. That makes memoization *exact*, not
// approximate — a cache hit returns precisely what the model would have
// computed. The evaluation engine leans on this everywhere the paper's §V
// harnesses brute-force the simulator: the oracle's exhaustive grid, the
// comparison harness's per-cell timings, and every bench binary that sweeps
// budgets over the same configurations.
//
// Keys are a canonical byte encoding (no hashing ambiguity: the full key is
// stored and compared on lookup, so hash collisions can never alias two
// configurations). The map is sharded by key hash with one mutex per shard,
// so concurrent readers from the host-parallel harness (src/parallel) only
// contend when they land on the same shard. Each shard is bounded; insertion
// beyond the bound evicts in FIFO order — eviction only costs a recompute,
// never correctness. See docs/performance.md for the design rationale.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "workloads/signature.hpp"

namespace clip::sim {

struct ExactCacheOptions {
  /// Total entry bound across all shards (rounded up to a multiple of the
  /// shard count). One entry holds one Measurement (~a few hundred bytes on
  /// the 8-node testbed).
  std::size_t max_entries = 1u << 20;
  /// Shard count (clamped to >= 1). More shards = less lock contention.
  int shards = 16;
};

struct ExactCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

class ExactRunCache {
 public:
  explicit ExactRunCache(ExactCacheOptions options = ExactCacheOptions{});

  /// Copy the cached measurement for `key` into `out`; true on hit. Bumps
  /// the hit/miss statistics.
  [[nodiscard]] bool lookup(const std::string& key, Measurement& out) const;

  /// Insert (first writer wins; a concurrent duplicate insert is dropped).
  /// Evicts the shard's oldest entry when the shard is full.
  void insert(const std::string& key, const Measurement& m);

  [[nodiscard]] ExactCacheStats stats() const;

  /// Drop every entry (statistics are kept).
  void clear();

  // --- canonical key encoding ----------------------------------------------

  /// Append the raw bytes of a double/integer to `out` (canonical layout:
  /// little-endian memcpy of the in-memory representation; the cache never
  /// leaves the process, so host byte order is canonical enough).
  static void encode(std::string& out, double v);
  static void encode(std::string& out, std::uint64_t v);
  static void encode(std::string& out, int v);
  static void encode(std::string& out, const std::string& s);

  /// Everything `run_exact` reads from the machine: topology, DVFS ladder,
  /// power/bandwidth parameters and the variability draw. Executors with
  /// different specs can therefore share one cache without aliasing.
  [[nodiscard]] static std::string encode_spec(const MachineSpec& spec);

  /// Append the workload signature and cluster configuration to `prefix`
  /// (the executor's pre-encoded spec) to form the full lookup key.
  [[nodiscard]] static std::string encode_key(
      const std::string& prefix, const workloads::WorkloadSignature& w,
      const ClusterConfig& cfg);

 private:
  struct Shard {
    mutable std::mutex mu;
    // clip-lint: allow(D2) hot-path lookup/insert only; eviction walks `fifo` (insertion order), never the map
    std::unordered_map<std::string, Measurement> map;
    std::deque<const std::string*> fifo;  ///< keys in insertion order
  };

  [[nodiscard]] Shard& shard_for(const std::string& key) const;

  std::size_t per_shard_cap_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace clip::sim
