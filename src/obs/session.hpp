// ObsSession — the handle instrumented components hold.
//
// Bundles one Tracer and one MetricsRegistry behind a single pointer:
// scheduler, profiler, executor and runtime each accept an `ObsSession*` via
// `set_observer()` and treat nullptr as "observability off". The free
// helpers below fold that null test into the call site, so instrumentation
// reads as one line and costs one branch when detached.
//
// Typical wiring (see docs/observability.md for the full walkthrough):
//
//   obs::ObsSession session;             // SteadyClock by default
//   obs::MemorySink sink;
//   session.set_sink(&sink);
//   scheduler.set_observer(&session);
//   executor.set_observer(&session);
//   ... run ...
//   obs::write_chrome_trace("trace.json", sink.spans());
//   session.metrics().summary_table().print(std::cout);
#pragma once

#include <string_view>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace clip::obs {

struct ObsOptions {
  /// External clock (not owned; must outlive the session). Defaults to an
  /// internal SteadyClock; tests inject a FakeClock for determinism.
  const Clock* clock = nullptr;
};

class ObsSession {
 public:
  explicit ObsSession(ObsOptions options = ObsOptions{})
      : clock_(options.clock != nullptr ? options.clock : &default_clock_),
        tracer_(*clock_) {}

  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const Clock& clock() const { return *clock_; }

  void set_sink(TraceSink* sink) { tracer_.set_sink(sink); }

 private:
  SteadyClock default_clock_;
  const Clock* clock_;
  Tracer tracer_;
  MetricsRegistry metrics_;
};

// ---------------------------------------------------- null-safe helpers ----

inline void count(ObsSession* s, std::string_view name,
                  std::uint64_t delta = 1) {
  if (s != nullptr) s->metrics().counter(name).add(delta);
}

inline void gauge_set(ObsSession* s, std::string_view name, double v) {
  if (s != nullptr) s->metrics().gauge(name).set(v);
}

inline void observe(ObsSession* s, std::string_view name,
                    const HistogramSpec& spec, double v) {
  if (s != nullptr) s->metrics().histogram(name, spec).record(v);
}

/// Shared bucket layouts, so every latency histogram is quantile-comparable.
/// 1 µs … ~1 s in 20 exponential buckets.
[[nodiscard]] inline const HistogramSpec& latency_us_spec() {
  static const HistogramSpec spec = HistogramSpec::exponential(1.0, 2.0, 20);
  return spec;
}

/// Control-loop step counts: 0 … 16k in 32 linear buckets.
[[nodiscard]] inline const HistogramSpec& steps_spec() {
  static const HistogramSpec spec = HistogramSpec::linear(0.0, 16384.0, 32);
  return spec;
}

/// Batch frontier widths (sim.batch_width): 0 … 256 in 64 linear buckets.
[[nodiscard]] inline const HistogramSpec& batch_width_spec() {
  static const HistogramSpec spec = HistogramSpec::linear(0.0, 256.0, 64);
  return spec;
}

/// RAII wall-time timer: records the scope's duration in microseconds into a
/// histogram. Inert (one branch) when the session is null.
class ScopedTimer {
 public:
  ScopedTimer(ObsSession* session, std::string_view name,
              const HistogramSpec& spec = latency_us_spec())
      : session_(session) {
    if (session_ == nullptr) return;
    hist_ = &session_->metrics().histogram(name, spec);
    start_us_ = session_->clock().now_us();
  }
  ~ScopedTimer() {
    if (session_ != nullptr)
      hist_->record(session_->clock().now_us() - start_us_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ObsSession* session_ = nullptr;
  Histogram* hist_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace clip::obs
