// Crash-consistent file writes.
//
// A coordinator that can die mid-write must never leave a torn file behind:
// readers (KnowledgeDb::load, Journal::load) should only ever observe either
// the old complete contents or the new complete contents. The standard
// stage-and-swap recipe delivers that on POSIX: write the full contents to a
// sibling temp file, fsync it so the bytes are on disk before the name is,
// then atomically rename over the destination. See docs/robustness.md.
#pragma once

#include <filesystem>
#include <string_view>

namespace clip {

/// Durably replace `path` with `contents`: write `<path>.tmp`, fsync, then
/// atomically rename onto `path` (creating parent directories first). A kill
/// at any instant leaves either the previous file or the new one — never a
/// prefix. A stale `<path>.tmp` from an earlier kill is simply overwritten.
/// Throws clip::PreconditionError on I/O failure.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view contents);

}  // namespace clip
