// J1 fixture: every mutation of journaled state must reach an append.
// clip-lint: journaled(state_, attempts_)
#include <vector>

struct Loop {
  void bare_mutation(int i) {
    state_[i] = 2;
    attempts_[i] += 1;
  }

  void journaled_mutation(int i) {
    state_[i] = 3;
    journal_.append("launch", "payload");
  }

  void log_complete() { journal_.append("complete", "payload"); }

  void mutation_via_helper(int i) {
    attempts_[i] = 0;
    log_complete();
  }

  int reader(int i) const { return state_[i]; }

  std::vector<int> state_;
  std::vector<int> attempts_;
  Journal journal_;
};
