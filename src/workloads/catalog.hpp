// The workload catalog.
//
// `paper_benchmarks()` are the ten evaluation applications of paper Table II
// (CloverLeaf appears twice with different input decks, as in the paper).
// `training_benchmarks()` is the larger suite the paper trains its MLR
// inflection model on — analogues of NPB, HPCC, STREAM and PolyBench kernels
// spanning all three scalability classes.
//
// Parameters are calibrated so each benchmark reproduces the paper's
// *decision-relevant* behaviour on the simulated Haswell cluster: its Fig. 6
// half/all-core speedup ratio band, its scalability class, and an inflection
// point within the realistic 6..20 core range for the non-linear classes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workloads/signature.hpp"

namespace clip::workloads {

/// The ten Table II evaluation benchmarks.
[[nodiscard]] const std::vector<WorkloadSignature>& paper_benchmarks();

/// The training suite for the inflection-point MLR (paper §V-B2: NPB, HPCC,
/// STREAM, PolyBench and others).
[[nodiscard]] const std::vector<WorkloadSignature>& training_benchmarks();

/// Everything (paper + training).
[[nodiscard]] std::vector<WorkloadSignature> all_benchmarks();

/// Look up by name (and optional parameter string when a benchmark, like
/// CloverLeaf, has several input decks).
[[nodiscard]] std::optional<WorkloadSignature> find_benchmark(
    const std::string& name, const std::string& parameters = "");

}  // namespace clip::workloads
