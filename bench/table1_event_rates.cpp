// Table I — the Haswell hardware events used as MLR predictors, with the
// rates the simulated event subsystem reports for two contrasting
// applications at the all-core sample configuration.
#include <iostream>

#include "bench_common.hpp"
#include "core/profiler.hpp"
#include "util/strings.hpp"

using namespace clip;

namespace {

std::string human_rate(double v) {
  if (v >= 1e9) return format_double(v / 1e9, 2) + " G/s";
  if (v >= 1e6) return format_double(v / 1e6, 2) + " M/s";
  if (v >= 1e3) return format_double(v / 1e3, 2) + " K/s";
  return format_double(v, 2) + " /s";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  core::SmartProfiler profiler(ex);

  const auto compute = profiler.profile(*workloads::find_benchmark("CoMD"));
  const auto memory =
      profiler.profile(*workloads::find_benchmark("TeaLeaf"));

  Table t({"Predictor", "Description", "CoMD (compute)",
           "TeaLeaf (memory)"});
  t.set_title(
      "Table I — hardware events used in sample configurations for "
      "prediction (all-core profile rates)");

  const auto& names = sim::EventRates::names();
  const auto fc = compute.features();
  const auto fm = memory.features();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::string vc, vm;
    if (i == 1 || i == 2) {  // bandwidth events, GB/s
      vc = format_double(fc[i], 2) + " GB/s";
      vm = format_double(fm[i], 2) + " GB/s";
    } else if (i == 7) {  // dimensionless ratio
      vc = format_double(fc[i], 3);
      vm = format_double(fm[i], 3);
    } else {
      vc = human_rate(fc[i]);
      vm = human_rate(fm[i]);
    }
    t.add_row({"Event" + std::to_string(i), names[i], vc, vm});
  }
  ctx.print(t);
  std::cout << "Memory-bound TeaLeaf shows the saturated-bandwidth, "
               "low-active-cycle signature the MLR keys on.\n";
  return 0;
}
