// Fixture: D1 must fire on every wall-clock source outside the clock seam.
#include <chrono>
#include <ctime>

double bad_now_us() {
  auto t = std::chrono::system_clock::now();  // line 6: D1
  return std::chrono::duration<double, std::micro>(t.time_since_epoch())
      .count();
}

long bad_epoch() { return std::time(nullptr); }  // line 11: D1

long bad_monotonic() {
  using clock = std::chrono::steady_clock;  // line 14: D1
  return clock::now().time_since_epoch().count();
}
