// FaultPlan — a seeded, deterministic script of hardware misbehaviour for
// the simulated cluster.
//
// The paper targets production power-bounded clusters, where the substrate
// is imperfect: nodes die mid-job, thermal events lower a node's effective
// DVFS ceiling, power meters mis-read, and RAPL occasionally fails to hold a
// programmed cap. A FaultPlan is the injection side of the resilience story
// (docs/robustness.md): a list of timed events, each naming the node it hits
// and when, that the runtime replays against a queue run. Everything is
// plain data and every generator is seeded, so a plan — and therefore every
// failure a test provokes — is bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace clip::fault {

/// Ways a power meter can mis-read (paper §IV-B4's "system interface helper
/// tools" read RAPL energy counters; real counters exhibit all three).
enum class MeterFaultKind {
  kStuckAt,   ///< reading frozen at `value` watts
  kDropout,   ///< reading drops to zero (counter not updating)
  kSpike,     ///< reading multiplied by `value` (> 1)
};

[[nodiscard]] const char* to_string(MeterFaultKind k);

/// Node `node` dies at `at_s` and never comes back (fail-stop).
struct NodeCrash {
  int node = 0;
  double at_s = 0.0;
};

/// Node `node` is thermally throttled from `at_s` on: its effective DVFS
/// ceiling drops so work on it proceeds at `speed_factor` (< 1) of the
/// healthy rate. Permanent for the rest of the run (a tripped thermal
/// governor), and composable — two degrades multiply.
struct NodeDegrade {
  int node = 0;
  double at_s = 0.0;
  double speed_factor = 0.7;  ///< (0, 1]: fraction of healthy speed
};

/// The meter of node `node` mis-reads during [at_s, at_s + duration_s).
struct MeterFault {
  int node = 0;
  double at_s = 0.0;
  double duration_s = 10.0;
  MeterFaultKind kind = MeterFaultKind::kDropout;
  double value = 0.0;  ///< stuck-at watts, or spike multiplier
};

/// RAPL fails to enforce node `node`'s cap during [at_s, at_s + duration_s):
/// the node draws `excess_w` above its programmed cap. The budget guard's
/// job is to detect the cluster-level overshoot and claw the caps back.
struct CapViolation {
  int node = 0;
  double at_s = 0.0;
  double duration_s = 30.0;
  double excess_w = 40.0;
};

/// Every power meter in the cluster goes dark during
/// [at_s, at_s + duration_s) — the telemetry network partitioned or the BMC
/// aggregator died. No per-node reading is trustworthy, so the queue enters
/// METER_BLACKOUT: re-grants and slack sampling freeze and the static launch
/// caps (which RAPL still enforces) are the only protection. See
/// docs/robustness.md.
struct MeterBlackout {
  double at_s = 0.0;
  double duration_s = 30.0;
};

/// The facility cuts the cluster's power contract to `factor` of the
/// configured budget during [at_s, at_s + duration_s) — a demand-response
/// event or an upstream feeder derating. The queue enters BUDGET_BROWNOUT:
/// admissions pause and running slices are proportionally clawed back until
/// the reservation fits the cut budget.
struct BudgetCut {
  double at_s = 0.0;
  double duration_s = 60.0;
  double factor = 0.7;  ///< (0, 1]: fraction of the budget that remains
};

/// How many events of each kind FaultPlan::random draws.
struct FaultPlanShape {
  int crashes = 1;
  int degrades = 1;
  int meter_faults = 2;
  int cap_violations = 1;
  /// Degraded-mode events (docs/robustness.md). Default 0, and random()
  /// draws them after every other kind, so plans generated before these
  /// kinds existed are bit-identical for the same seed.
  int meter_blackouts = 0;
  int budget_cuts = 0;
  double min_at_s = 0.0;  ///< events land in [min_at_s, horizon_s)
};

struct FaultPlan {
  std::vector<NodeCrash> crashes;
  std::vector<NodeDegrade> degrades;
  std::vector<MeterFault> meter_faults;
  std::vector<CapViolation> cap_violations;
  std::vector<MeterBlackout> meter_blackouts;
  std::vector<BudgetCut> budget_cuts;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && degrades.empty() && meter_faults.empty() &&
           cap_violations.empty() && meter_blackouts.empty() &&
           budget_cuts.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return crashes.size() + degrades.size() + meter_faults.size() +
           cap_violations.size() + meter_blackouts.size() +
           budget_cuts.size();
  }

  /// Structural validity against a cluster of `cluster_nodes` nodes; throws
  /// clip::PreconditionError naming the offending event.
  void validate(int cluster_nodes) const;

  /// One line per event, sorted by time — for logs and plan diffs.
  [[nodiscard]] std::string describe() const;

  /// Draw a random plan: `shape` events with times uniform in
  /// [shape.min_at_s, horizon_s) on nodes uniform in [0, cluster_nodes).
  /// Same (seed, cluster_nodes, horizon_s, shape) ⇒ identical plan.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed, int cluster_nodes,
                                        double horizon_s,
                                        FaultPlanShape shape = FaultPlanShape{});
};

}  // namespace clip::fault
