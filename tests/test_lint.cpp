// clip-lint's own test suite: every rule must fire on its violation fixture
// at the exact line, stay silent on the clean fixture, and the suppression
// machinery must reject reasonless or unknown-rule entries. Fixture files
// live in tests/lint_fixtures/ and are lint *inputs*, never compiled.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace clip::lint {
namespace {

std::vector<Finding> lint_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURES_DIR) + "/" + name;
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << is.rdbuf();
  return lint_source(buf.str(), name);
}

/// (rule, line) pairs of the findings matching `suppressed`.
std::vector<std::pair<std::string, int>> hits(
    const std::vector<Finding>& findings, bool suppressed) {
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& f : findings)
    if (f.suppressed == suppressed) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

using Hits = std::vector<std::pair<std::string, int>>;

TEST(LintRules, D1FiresOnEveryWallClockSource) {
  const auto f = lint_fixture("d1_wall_clock.cpp");
  EXPECT_EQ(hits(f, false),
            (Hits{{"D1", 6}, {"D1", 11}, {"D1", 14}}));
}

TEST(LintRules, D2FiresOnDeclarationAndIteration) {
  const auto f = lint_fixture("d2_unordered.cpp");
  EXPECT_EQ(hits(f, false),
            (Hits{{"D2", 5}, {"D2", 9}, {"D2", 14}, {"D2", 16}}));
}

TEST(LintRules, D3FiresOnFixedPrecisionFormatting) {
  const auto f = lint_fixture("d3_raw_double.cpp");
  EXPECT_EQ(hits(f, false),
            (Hits{{"D3", 6}, {"D3", 11}, {"D3", 15}}));
}

TEST(LintRules, D4FiresOnStdRngPrimitives) {
  const auto f = lint_fixture("d4_rng.cpp");
  EXPECT_EQ(hits(f, false),
            (Hits{{"D4", 6}, {"D4", 11}, {"D4", 12}, {"D4", 16}}));
}

TEST(LintRules, C1FiresOnlyOnUnguardedHookDereferences) {
  const auto f = lint_fixture("c1_unguarded_hook.cpp");
  EXPECT_EQ(hits(f, false), (Hits{{"C1", 27}, {"C1", 33}}));
}

TEST(LintRules, H1FiresOnGuardlessHeaderAndUsingNamespace) {
  const auto f = lint_fixture("h1_header_hygiene.hpp");
  EXPECT_EQ(hits(f, false), (Hits{{"H1", 1}, {"H1", 5}}));
}

TEST(LintRules, CleanFixtureIsSilent) {
  const auto f = lint_fixture("clean.cpp");
  EXPECT_TRUE(f.empty()) << to_text(f, 1);
}

TEST(LintSuppressions, ValidFormsSuppressAndInvalidFormsAreFindings) {
  const auto f = lint_fixture("suppressions.cpp");
  // Same-line and standalone-comment suppressions take effect...
  EXPECT_EQ(hits(f, true), (Hits{{"D1", 7}, {"D1", 13}}));
  // ...while a reasonless one leaves its D1 open and adds a LINT finding,
  // an unknown rule id is rejected, and an unused entry is reported.
  EXPECT_EQ(hits(f, false),
            (Hits{{"D1", 18}, {"LINT", 18}, {"LINT", 22}, {"LINT", 25}}));
}

TEST(LintSuppressions, ReasonsAreCarriedIntoTheReport) {
  const auto f = lint_fixture("suppressions.cpp");
  for (const Finding& fi : f) {
    if (fi.suppressed) {
      EXPECT_FALSE(fi.reason.empty());
    }
  }
}

TEST(LintSuppressions, FileScopeSuppressionCoversEveryLine) {
  const std::string src =
      "// clip-lint: allow-file(D4) fixture exercises file scope\n"
      "#include <random>\n"
      "int a() { std::random_device rd; return 0; }\n"
      "int b() { return rand() % 2; }\n";
  const auto f = lint_source(src, "virtual.cpp");
  EXPECT_TRUE(hits(f, false).empty()) << to_text(f, 1);
  EXPECT_EQ(hits(f, true).size(), 2u);
}

TEST(LintReport, JsonCarriesCountsAndSuppressionTrend) {
  auto findings = lint_fixture("suppressions.cpp");
  const std::string json = to_json(findings, 1);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"per_rule\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\""), std::string::npos);
}

TEST(LintReport, SummaryCountsMatch) {
  const auto f = lint_fixture("suppressions.cpp");
  const Summary s = summarize(f, 1);
  EXPECT_EQ(s.files_scanned, 1);
  EXPECT_EQ(s.unsuppressed, 4);
  EXPECT_EQ(s.suppressed, 2);
}

TEST(LintRules, KnownRuleListIsStable) {
  const auto& rules = known_rules();
  EXPECT_EQ(rules, (std::vector<std::string>{"D1", "D2", "D3", "D4", "C1",
                                             "H1", "LINT"}));
}

TEST(LintLexer, StringsAndCommentsDoNotLeakIdentifiers) {
  // Identifier-like text inside strings/comments must not trip rules.
  const std::string src =
      "/* steady_clock in a block comment */\n"
      "const char* s = \"std::random_device\";  // system_clock\n";
  const auto f = lint_source(src, "virtual.cpp");
  EXPECT_TRUE(f.empty()) << to_text(f, 1);
}

TEST(LintLexer, IncludeDirectivesAreNotFindings) {
  const std::string src =
      "#include <unordered_map>\n#include <random>\n#include <ctime>\n";
  const auto f = lint_source(src, "virtual.cpp");
  EXPECT_TRUE(f.empty()) << to_text(f, 1);
}

}  // namespace
}  // namespace clip::lint
