// Figure 3 — performance impact of the processor power budget on the three
// classes (EP, STREAM, SP): performance versus node CPU budget for several
// concurrency levels. The paper's observations:
//  (a) linear: maximum concurrency is optimal unless the budget is very low;
//  (b) logarithmic: the optimal concurrency shifts down with the budget;
//  (c) parabolic: the all-core vs optimal gap widens as the budget shrinks.
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace clip;

namespace {

void panel(const bench::BenchContext& ctx, sim::SimExecutor& ex,
           const workloads::WorkloadSignature& w, const char* tag) {
  const int concurrency[] = {6, 12, 18, 24};
  Table t({"CPU budget (W)", "6 threads", "12 threads", "18 threads",
           "24 threads", "best"});
  t.set_title(std::string("Fig. 3") + tag + " — " + w.name + " (" +
              workloads::to_string(w.expected_class) +
              "): relative performance vs node CPU power budget");

  // Normalize to all-core at the largest budget.
  sim::ClusterConfig ref;
  ref.nodes = 1;
  ref.node.threads = 24;
  ref.node.affinity = parallel::AffinityPolicy::kScatter;
  ref.node.cpu_cap = Watts(130.0);
  const double ref_time = ex.run_exact(w, ref).time.value();

  for (double budget = 40.0; budget <= 130.0 + 1e-9; budget += 15.0) {
    std::vector<std::string> row{format_double(budget, 0)};
    double best_perf = 0.0;
    int best_n = 0;
    for (int n : concurrency) {
      sim::ClusterConfig cfg = ref;
      cfg.node.threads = n;
      cfg.node.cpu_cap = Watts(budget);
      const double perf = ref_time / ex.run_exact(w, cfg).time.value();
      row.push_back(format_double(perf, 3));
      if (perf > best_perf) {
        best_perf = perf;
        best_n = n;
      }
    }
    row.push_back(std::to_string(best_n) + " threads");
    t.add_row(std::move(row));
  }
  ctx.print(t);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_exact_testbed();
  ctx.attach(ex);
  panel(ctx, ex, *workloads::find_benchmark("EP"), "a");
  panel(ctx, ex, *workloads::find_benchmark("STREAM-Triad"), "b");
  panel(ctx, ex, *workloads::find_benchmark("SP", "C"), "c");
  return 0;
}
