#include "core/node_config.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace clip::core {

std::vector<int> NodeConfigSelector::candidate_threads(
    workloads::ScalabilityClass cls, int np) const {
  const int all = spec_->shape.total_cores();
  std::vector<int> out;
  switch (cls) {
    case workloads::ScalabilityClass::kLinear:
      // "We do not consider decreasing the concurrency" for linear apps —
      // the budget is absorbed by frequency alone (§II).
      out.push_back(all);
      break;
    case workloads::ScalabilityClass::kLogarithmic:
      for (int t = 2; t <= all; t += 2) out.push_back(t);
      break;
    case workloads::ScalabilityClass::kParabolic:
      // Beyond N_P parabolic apps burn more power for *less* performance —
      // that segment is never a candidate (§III-A2).
      CLIP_REQUIRE(np >= 2, "parabolic selection needs N_P");
      for (int t = 2; t <= std::min(np, all); t += 2) out.push_back(t);
      break;
  }
  return out;
}

sim::MemPowerLevel NodeConfigSelector::choose_mem_level(
    const PowerEstimator& power, int threads,
    parallel::AffinityPolicy affinity) const {
  const parallel::Placement placement =
      parallel::place_threads(spec_->shape, threads, affinity);
  const double demand =
      power.bw_demand_gbps(threads) * options_.mem_demand_guardband;
  // Scan from the most frugal level upward; keep the first that feeds the
  // demand. If even L0 cannot (saturated workload), L0 it is.
  sim::MemPowerLevel chosen = sim::MemPowerLevel::kL0;
  for (auto it = std::rbegin(sim::kAllMemLevels);
       it != std::rend(sim::kAllMemLevels); ++it) {
    const double capacity = placement.active_sockets() *
                            spec_->socket_bw_gbps * sim::bw_fraction(*it);
    if (capacity >= demand) {
      chosen = *it;
      break;
    }
  }
  return chosen;
}

NodeDecision NodeConfigSelector::select(const ProfileData& profile,
                                        workloads::ScalabilityClass cls,
                                        int np, Watts node_budget) const {
  return select_from(profile, cls, np, node_budget,
                     candidate_threads(cls, np));
}

NodeDecision NodeConfigSelector::select_forced(
    const ProfileData& profile, workloads::ScalabilityClass cls, int np,
    Watts node_budget, int threads) const {
  CLIP_REQUIRE(threads >= 1 && threads <= spec_->shape.total_cores(),
               "forced thread count outside the node");
  return select_from(profile, cls, np, node_budget, {threads});
}

NodeDecision NodeConfigSelector::select_from(
    const ProfileData& profile, workloads::ScalabilityClass cls, int np,
    Watts node_budget, const std::vector<int>& candidates) const {
  CLIP_REQUIRE(node_budget.value() > 0.0, "node budget must be positive");
  const PowerEstimator power(*spec_, profile);
  const PerfPredictor perf(*spec_, profile, cls, np);

  NodeDecision best;
  bool have_best = false;
  for (int threads : candidates) {
    // Affinity: the profiler's memory-intensity preference; once a config
    // spans both sockets the two policies converge, so the preference only
    // matters for t <= cores_per_socket.
    const parallel::AffinityPolicy affinity = profile.preferred_affinity;
    const double ceiling = std::max(1.0, perf.observed_bw_ceiling());

    // CPU <-> DRAM power split: every memory power level trades DRAM
    // bandwidth (and its activity watts) for CPU frequency headroom. The
    // predictor prices both sides; we keep the level with the best
    // predicted time (paper Fig. 1: the split is a first-class dimension).
    for (sim::MemPowerLevel level : sim::kAllMemLevels) {
      // The level caps the observed ceiling proportionally; the app never
      // draws more than its (guardbanded) demand.
      const double level_bw = ceiling * sim::bw_fraction(level);
      const double raw_demand = power.bw_demand_gbps(threads);
      const double demand = raw_demand * options_.mem_demand_guardband;
      // An unsaturated profile cannot reveal the memory-boundedness, so the
      // predictor cannot price a bandwidth cut below the measured demand —
      // never take that unpriced risk. L0 is exempt: it is the most
      // bandwidth the machine offers, so there is nothing safer to pick.
      if (perf.recovered_memory_boundedness() <= 0.0 &&
          level != sim::MemPowerLevel::kL0 && level_bw < raw_demand * 0.99)
        continue;
      const double planned_bw = std::min(level_bw, demand);
      const Watts mem_cap =
          power.mem_power_at_bw(threads, affinity, planned_bw) +
          Watts(options_.mem_cap_slack_w);
      // The slack is part of the DRAM allocation: CPU + DRAM caps add up
      // to exactly the node budget.
      const Watts cpu_budget = node_budget - mem_cap;
      if (cpu_budget.value() <= 0.0) continue;

      // Highest DVFS state the predicted CPU power fits under the
      // remaining budget; if even the lowest state does not fit, model the
      // RAPL duty-cycle penalty.
      double f_rel = 0.0;
      double duty = 1.0;
      const auto& states = spec_->ladder.states();
      for (auto it = states.rbegin(); it != states.rend(); ++it) {
        const double candidate = spec_->ladder.relative(*it);
        if (power.cpu_power(threads, affinity, candidate) <= cpu_budget) {
          f_rel = candidate;
          break;
        }
      }
      if (f_rel == 0.0) {
        // Clock-modulation region: gating cuts dynamic power only, so the
        // duty solves cpu_budget = base + load(f_min)*duty (mirroring the
        // enforcement model).
        f_rel = spec_->ladder.relative(spec_->ladder.min());
        const Watts floor_w = power.cpu_power(threads, affinity, f_rel);
        const parallel::Placement placement =
            parallel::place_threads(spec_->shape, threads, affinity);
        double base_w = 0.0;
        for (int t : placement.threads_per_socket)
          base_w += t > 0 ? spec_->socket_base_w : spec_->socket_parked_w;
        const double load_w = std::max(1e-6, floor_w.value() - base_w);
        duty = std::clamp((cpu_budget.value() - base_w) / load_w,
                          1.0 / 16.0, 1.0);
      }

      const double bw_for_prediction = std::max(planned_bw, 1e-3);
      const double predicted =
          perf.predict_time(threads, f_rel, bw_for_prediction).value() /
          duty;

      NodeDecision d;
      d.config.threads = threads;
      d.config.affinity = affinity;
      d.config.mem_level = level;
      d.config.mem_cap = mem_cap;
      d.config.cpu_cap = cpu_budget;
      d.f_rel_expected = f_rel * duty;
      d.predicted_time = Seconds(predicted);
      d.predicted_power =
          power.cpu_power(threads, affinity, f_rel) * duty + mem_cap;
      if (!have_best ||
          d.predicted_time.value() < best.predicted_time.value()) {
        best = d;
        have_best = true;
      }
    }
  }
  CLIP_REQUIRE(have_best,
               "no feasible node configuration under this budget");
  return best;
}

}  // namespace clip::core
