// Shared infrastructure for the figure/table reproduction harnesses.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (§V) on the simulated testbed and prints the same rows/series
// the paper plots. Common flags (parsed by BenchContext, shared by every
// binary):
//
//   --csv           emit machine-readable CSV instead of the aligned table
//   --jobs N        host threads for the evaluation engine (0 = all cores;
//                   default 1 = serial). Output is identical at any N.
//   --budgets a,b,c override the bench's default cluster budget sweep (W)
//   --stats         print evaluation-engine counters (sim.runs, cache
//                   hits/misses) to stderr on exit
//   --no-cache      disable the exact-run memoization cache
//   --no-prune      disable oracle search-space pruning (with --no-cache:
//                   the pre-engine evaluation count, for A/B measurement)
//
// See docs/performance.md for the evaluation-engine design.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/all_in.hpp"
#include "baselines/clip_adapter.hpp"
#include "baselines/coordinated.hpp"
#include "baselines/lower_limit.hpp"
#include "baselines/oracle.hpp"
#include "obs/session.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/comparison.hpp"
#include "sim/exec_cache.hpp"
#include "sim/executor.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

namespace clip::bench {

struct BenchContext {
  bool csv = false;
  bool stats = false;
  bool use_cache = true;
  bool prune = true;
  int jobs = 1;
  std::vector<double> budgets_override;

  BenchContext(int argc, char** argv);
  ~BenchContext();

  BenchContext(const BenchContext&) = delete;
  BenchContext& operator=(const BenchContext&) = delete;

  /// The bench's budget sweep: the --budgets override when given, otherwise
  /// the bench's own defaults.
  [[nodiscard]] std::vector<double> budgets_or(
      std::vector<double> defaults) const {
    return budgets_override.empty() ? std::move(defaults) : budgets_override;
  }

  /// Worker pool for --jobs > 1 (lazily spawned; nullptr when serial).
  [[nodiscard]] parallel::ThreadPool* pool() const;

  /// Hook an executor into the evaluation engine: attaches the shared
  /// exact-run cache (unless --no-cache) and, with --stats, the observation
  /// session whose counters are printed on exit. Call once per executor.
  void attach(sim::SimExecutor& executor) const;

  /// The shared exact-run cache (nullptr with --no-cache or before the
  /// first attach). Benches assert hit-rate expectations through this.
  [[nodiscard]] const sim::ExactRunCache* cache() const {
    return cache_.get();
  }

  void print(const Table& table) const {
    if (csv)
      table.print_csv(std::cout);
    else
      table.print(std::cout);
    std::cout << '\n';
  }

 private:
  mutable std::unique_ptr<parallel::ThreadPool> pool_;
  mutable std::unique_ptr<sim::ExactRunCache> cache_;
  mutable std::unique_ptr<obs::ObsSession> obs_;
};

/// The standard experimental setup: the 8-node Haswell-like cluster with the
/// default measurement noise (as on the real testbed).
inline sim::SimExecutor make_testbed() {
  return sim::SimExecutor(sim::MachineSpec{});
}

/// Noise-free twin for oracle searches and ground-truth curves.
inline sim::SimExecutor make_exact_testbed() {
  sim::MeterOptions quiet;
  quiet.enabled = false;
  return sim::SimExecutor(sim::MachineSpec{}, quiet);
}

/// The four §V-C methods plus the oracle, registered on a harness. With a
/// context, the oracle fans its search grid out over ctx->pool().
void register_all_methods(runtime::ComparisonHarness& harness,
                          sim::SimExecutor& executor,
                          const BenchContext* ctx = nullptr);

/// Build one figure's worth of comparison cells as app-rows ×
/// method-columns of relative performance.
[[nodiscard]] Table render_method_comparison(
    const runtime::ComparisonResult& result,
    const std::vector<workloads::WorkloadSignature>& apps, double budget,
    const std::string& title);

/// Render and print via the context.
void print_method_comparison(const BenchContext& ctx,
                             const runtime::ComparisonResult& result,
                             const std::vector<workloads::WorkloadSignature>&
                                 apps,
                             double budget, const std::string& title);

}  // namespace clip::bench
