#include "runtime/journal.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "util/check.hpp"
#include "util/fsio.hpp"

namespace clip::runtime {

namespace {

constexpr std::string_view kHeader = "clip-journal v1";
constexpr std::string_view kSnapshotKind = "snapshot";

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[n] = c;
    }
    return t;
  }();
  return table;
}

/// `<seq> <kind> <payload>` — the CRC covers exactly these bytes.
std::string record_body(const JournalRecord& r) {
  return std::to_string(r.seq) + " " + r.kind + " " + r.payload;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  const auto& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string journal_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case ' ':
        out += "\\s";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string journal_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n':
        out.push_back('\n');
        break;
      case 's':
        out.push_back(' ');
        break;
      default:
        out.push_back(s[i]);
    }
  }
  return out;
}

Journal::Journal(JournalOptions options) : options_(options) {
  CLIP_REQUIRE(options.snapshot_every >= 1,
               "journal snapshot_every must be >= 1");
}

void Journal::append(std::string_view kind, std::string payload) {
  CLIP_REQUIRE(!kind.empty(), "journal record kind must not be empty");
  CLIP_REQUIRE(kind.find(' ') == std::string_view::npos,
               "journal record kind must not contain spaces");
  CLIP_REQUIRE(payload.find('\n') == std::string_view::npos,
               "journal payload must be single-line (journal_escape it)");
  // Grow in one step: regrowing a vector of records mid-run interleaves
  // reallocations with the simulator's own, and that churn — not the append
  // itself — dominated journal-on overhead (bench/recovery.cpp).
  if (records_.capacity() == records_.size())
    records_.reserve(records_.size() < 64 ? 64 : records_.size() * 2);
  JournalRecord r;
  r.seq = records_.size() + 1;
  r.kind = std::string(kind);
  r.payload = std::move(payload);
  records_.push_back(std::move(r));
}

void Journal::truncate(std::size_t n) {
  if (n < records_.size()) records_.resize(n);
}

std::optional<std::size_t> Journal::last_snapshot() const {
  for (std::size_t i = records_.size(); i > 0; --i)
    if (records_[i - 1].kind == kSnapshotKind) return i - 1;
  return std::nullopt;
}

void Journal::save(const std::filesystem::path& path) const {
  std::ostringstream os;
  os << kHeader << '\n';
  for (const auto& r : records_) {
    const std::string body = record_body(r);
    os << body << '#' << crc_hex(crc32(body)) << '\n';
  }
  atomic_write_file(path, os.str());
}

JournalLoadResult Journal::load(const std::filesystem::path& path) {
  std::ifstream is(path);
  CLIP_REQUIRE(is.good(), "cannot open journal: " + path.string());
  std::string line;
  CLIP_REQUIRE(static_cast<bool>(std::getline(is, line)) && line == kHeader,
               "not a clip journal (bad header): " + path.string());

  records_.clear();
  JournalLoadResult result;
  std::size_t line_no = 1;
  auto bad = [&](const std::string& why) {
    result.salvaged = true;
    result.gap = "line " + std::to_string(line_no) + ": " + why;
    ++result.dropped_lines;
    // Count the remaining lines into the gap and stop: salvage the prefix.
    while (std::getline(is, line)) ++result.dropped_lines;
  };
  while (std::getline(is, line)) {
    ++line_no;
    // `<seq> <kind> <payload>#<crc8>` — the CRC is always the last 9 bytes.
    if (line.size() < 10 || line[line.size() - 9] != '#') {
      bad("torn record (no checksum)");
      break;
    }
    const std::string body = line.substr(0, line.size() - 9);
    const std::string crc = line.substr(line.size() - 8);
    if (crc_hex(crc32(body)) != crc) {
      bad("checksum mismatch");
      break;
    }
    const std::size_t sp1 = body.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : body.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
      bad("malformed record body");
      break;
    }
    JournalRecord r;
    char* end = nullptr;
    r.seq = std::strtoull(body.c_str(), &end, 10);
    if (end != body.c_str() + sp1 || r.seq != records_.size() + 1) {
      bad("sequence break (expected " + std::to_string(records_.size() + 1) +
          ")");
      break;
    }
    r.kind = body.substr(sp1 + 1, sp2 - sp1 - 1);
    r.payload = body.substr(sp2 + 1);
    if (r.kind.empty()) {
      bad("empty record kind");
      break;
    }
    records_.push_back(std::move(r));
  }
  result.records = records_.size();
  return result;
}

const std::vector<std::string>& known_record_kinds() {
  // One entry per jlog/append_or_verify producer in runtime/queue.cpp, in
  // lifecycle order. clip-analyze's J2 pass diffs this list against the
  // actual producer sites in both directions.
  static const std::vector<std::string> kKinds = {
      "begin",          "admit",         "launch",
      "complete",       "fail",          "crash-requeue",
      "guard-claw",     "enforce-scheduled",
      "claw-scheduled", "claw-actuate",  "claw-dissolve",
      "grant",          "grant-reject",  "shift",
      "tick",           "mode",          "brownout-claw",
      "snapshot",       "end"};
  return kKinds;
}

std::string Journal::describe() const {
  std::map<std::string, std::size_t> kinds;
  for (const auto& r : records_) ++kinds[r.kind];
  std::ostringstream os;
  os << kHeader << ": " << records_.size() << " records";
  const auto snap = kinds.find(std::string(kSnapshotKind));
  os << " (" << (snap != kinds.end() ? snap->second : 0) << " snapshots)\n";
  const auto& known = known_record_kinds();
  for (const auto& [kind, n] : kinds) {
    os << "  " << kind << ": " << n;
    if (std::find(known.begin(), known.end(), kind) == known.end())
      os << " (unregistered)";
    os << '\n';
  }
  return os.str();
}

}  // namespace clip::runtime
