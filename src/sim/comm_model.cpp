#include "sim/comm_model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace clip::sim {

Seconds CommModel::evaluate(const workloads::WorkloadSignature& w, int nodes,
                            double node_work_s) {
  CLIP_REQUIRE(nodes >= 1, "need at least one node");
  CLIP_REQUIRE(node_work_s > 0.0, "work share must be positive");
  if (nodes == 1) return Seconds(0.0);
  const double latency = w.comm_latency_s * std::log2(static_cast<double>(nodes));
  const double surface =
      w.comm_surface_coeff * std::pow(node_work_s, 2.0 / 3.0);
  return Seconds(latency + surface);
}

}  // namespace clip::sim
