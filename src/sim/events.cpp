#include "sim/events.hpp"

namespace clip::sim {

std::vector<double> EventRates::to_features() const {
  return {icache_misses_per_s, read_bw_gbps,          write_bw_gbps,
          l3_miss_local_per_s, l3_miss_remote_per_s,  cycles_active_per_s,
          instructions_per_s,  perf_ratio_full_half};
}

const std::array<std::string, 8>& EventRates::names() {
  static const std::array<std::string, 8> n = {
      "Instruction Cache (ICACHE) Misses",
      "Memory Access Read Bandwidth",
      "Memory Access Write Bandwidth",
      "L3 Cache Miss from Local DRAM",
      "L3 Cache Miss from Remote DRAM",
      "Cycles Active",
      "Instructions Retired",
      "Performance ratio by full cores and half cores"};
  return n;
}

EventRates EventModel::synthesize(const workloads::WorkloadSignature& w,
                                  int threads, GHz freq,
                                  const NodePerfOutput& perf) const {
  EventRates e;
  const double cycles_per_s = threads * freq.value() * 1e9;

  // ICACHE misses: pressure parameter expressed as misses per kilo-cycle.
  e.icache_misses_per_s = w.icache_pressure * 20.0 * cycles_per_s / 1000.0;

  e.read_bw_gbps = perf.achieved_bw_gbps * (1.0 - w.write_fraction);
  e.write_bw_gbps = perf.achieved_bw_gbps * w.write_fraction;

  // L3 misses: one per 64-byte line of DRAM traffic, split local/remote by
  // the placement-derived remote fraction (recovered from the bandwidth
  // model: bw_eff = cap * (1 - penalty*remote_frac)).
  const double lines_per_s = perf.achieved_bw_gbps * 1e9 / 64.0;
  e.l3_miss_local_per_s = lines_per_s * (1.0 - perf.remote_fraction);
  e.l3_miss_remote_per_s = lines_per_s * perf.remote_fraction;

  e.cycles_active_per_s = cycles_per_s * perf.utilization;
  e.instructions_per_s = e.cycles_active_per_s * w.ipc;
  // perf_ratio_full_half is assembled by the profiler.
  return e;
}

}  // namespace clip::sim
