#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace clip::sim {

double PerfModel::effective_bandwidth(const workloads::WorkloadSignature& w,
                                      const parallel::Placement& placement,
                                      double bw_cap_gbps) const {
  const double remote_fraction =
      w.shared_data_fraction * placement.cross_socket_factor();
  return bw_cap_gbps * (1.0 - spec_->remote_numa_penalty * remote_fraction);
}

NodePerfOutput PerfModel::evaluate(const workloads::WorkloadSignature& w,
                                   const NodePerfInput& in) const {
  CLIP_REQUIRE(in.work_s > 0.0, "work must be positive");
  CLIP_REQUIRE(in.threads >= 1, "need at least one thread");
  CLIP_REQUIRE(in.threads == in.placement.total_threads(),
               "placement/thread count mismatch");
  CLIP_REQUIRE(in.f_rel > 0.0 && in.f_rel <= 1.5, "f_rel out of range");

  const double n = in.threads;
  const double s = w.serial_fraction;
  const double m = w.memory_boundedness;

  NodePerfOutput out;
  out.remote_fraction =
      w.shared_data_fraction * in.placement.cross_socket_factor();
  out.bw_eff_gbps = effective_bandwidth(w, in.placement, in.bw_cap_gbps);

  const double demand = n * w.bw_per_core_gbps * in.f_rel;
  out.saturation =
      demand > 0.0 ? std::min(1.0, out.bw_eff_gbps / demand) : 1.0;
  CLIP_ENSURE(m == 0.0 || out.saturation > 0.0,
              "memory-bound work with zero usable bandwidth");
  out.utilization = (1.0 - m) + m * out.saturation;
  out.achieved_bw_gbps = std::min(demand, out.bw_eff_gbps);

  const double serial_term = s / in.f_rel;
  const double compute_term = (1.0 - s) * (1.0 - m) / (n * in.f_rel);
  const double memory_term =
      m > 0.0 ? (1.0 - s) * m / (n * in.f_rel * out.saturation) : 0.0;
  const double sync_term =
      w.sync_coeff_s * std::pow(n - 1.0, w.sync_exponent) / in.f_rel;

  const double time =
      in.work_s * (serial_term + compute_term + memory_term + sync_term) +
      w.fork_overhead_s * (n - 1.0);
  out.time = Seconds(time);
  CLIP_ENSURE(time > 0.0 && std::isfinite(time), "non-physical node time");
  return out;
}

}  // namespace clip::sim
