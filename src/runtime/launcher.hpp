// The application execution module (paper §IV-B3): the user-facing entry
// point that checks the knowledge database, invokes smart profiling and the
// recommendation pipeline when needed, generates the launch script, and
// executes the job on the (simulated) power-bounded cluster.
#pragma once

#include <filesystem>
#include <optional>

#include "core/scheduler.hpp"
#include "obs/session.hpp"
#include "runtime/job.hpp"
#include "sim/executor.hpp"

namespace clip::runtime {

class Launcher {
 public:
  /// `db_path`: optional knowledge-database file, loaded when it exists and
  /// saved after every new characterization.
  Launcher(sim::SimExecutor& executor,
           const std::vector<workloads::WorkloadSignature>& training_suite,
           std::optional<std::filesystem::path> db_path = std::nullopt,
           core::SchedulerOptions options = core::SchedulerOptions{});

  /// Schedule with CLIP and execute.
  [[nodiscard]] JobResult run(const JobSpec& spec);

  /// The launch script for a job (planning only, no execution).
  [[nodiscard]] std::string plan_script(const JobSpec& spec);

  [[nodiscard]] core::ClipScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] sim::SimExecutor& executor() { return *executor_; }

  /// Attach an observability session (nullptr detaches), forwarded to the
  /// owned scheduler: one "runtime.job" span and a `runtime.jobs` count per
  /// launched job. The executor is shared with the caller, who decides
  /// separately whether to observe it.
  void set_observer(obs::ObsSession* obs);

 private:
  void persist();

  sim::SimExecutor* executor_;
  core::ClipScheduler scheduler_;
  std::optional<std::filesystem::path> db_path_;
  obs::ObsSession* obs_ = nullptr;
};

}  // namespace clip::runtime
