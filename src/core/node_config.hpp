// Node-level application-aware configuration selection (paper §III-A, Fig. 5).
//
// Given the application's profile, scalability class and inflection point,
// and a per-node power budget, the selector chooses:
//   * the number of active cores (class-dependent candidate set),
//   * the core/memory affinity (from measured memory access intensity),
//   * the memory power level (lowest level that still feeds the demand —
//     every watt saved on DRAM is a watt of CPU frequency headroom),
//   * the CPU/DRAM power split (the caps actually programmed into RAPL).
//
// Candidates are ranked with the *prediction models* only — no exhaustive
// execution — which is the paper's central claim ("identify a (near) optimal
// configuration without exhaustively searching the configuration space").
#pragma once

#include "core/power_range.hpp"
#include "core/predictor.hpp"
#include "core/profile.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "workloads/signature.hpp"

namespace clip::core {

/// A ranked node configuration with its predictions.
struct NodeDecision {
  sim::NodeConfig config;
  double f_rel_expected = 1.0;   ///< frequency the budget should sustain
  Seconds predicted_time{0.0};
  Watts predicted_power{0.0};
};

struct NodeSelectorOptions {
  double mem_demand_guardband = 1.10;  ///< level must cover demand * this
  double mem_cap_slack_w = 0.5;        ///< extra watts on the DRAM cap
};

class NodeConfigSelector {
 public:
  NodeConfigSelector(const sim::MachineSpec& spec,
                     NodeSelectorOptions options = NodeSelectorOptions{})
      : spec_(&spec), options_(options) {}

  /// Choose the best node configuration under `node_budget` (CPU+DRAM watts).
  [[nodiscard]] NodeDecision select(const ProfileData& profile,
                                    workloads::ScalabilityClass cls, int np,
                                    Watts node_budget) const;

  /// Like select(), but with the thread count dictated by the caller (the
  /// §VII constrained-runtime mode): CLIP still coordinates affinity,
  /// memory level and the CPU/DRAM split at exactly `threads`.
  [[nodiscard]] NodeDecision select_forced(const ProfileData& profile,
                                           workloads::ScalabilityClass cls,
                                           int np, Watts node_budget,
                                           int threads) const;

  /// The class-dependent candidate thread counts (paper §II conclusions:
  /// linear keeps every core; logarithmic considers every even count up to
  /// all cores; parabolic never exceeds N_P).
  [[nodiscard]] std::vector<int> candidate_threads(
      workloads::ScalabilityClass cls, int np) const;

  /// Memory power level for a thread count: the lowest (most power-frugal)
  /// level whose bandwidth capacity covers the predicted demand with a
  /// guardband.
  [[nodiscard]] sim::MemPowerLevel choose_mem_level(
      const PowerEstimator& power, int threads,
      parallel::AffinityPolicy affinity) const;

 private:
  [[nodiscard]] NodeDecision select_from(const ProfileData& profile,
                                         workloads::ScalabilityClass cls,
                                         int np, Watts node_budget,
                                         const std::vector<int>& candidates)
      const;

  const sim::MachineSpec* spec_;
  NodeSelectorOptions options_;
};

}  // namespace clip::core
