// Chunked parallel-for on top of ThreadPool — the analogue of
// `#pragma omp parallel for schedule(static|dynamic)` that the real CLIP
// runtime throttles. Header-only templates.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace clip::parallel {

enum class Schedule { kStatic, kDynamic };

/// Run body(i) for i in [begin, end) across the pool's current team.
///
/// kStatic: contiguous block per worker (cache-friendly for streaming).
/// kDynamic: workers grab `chunk`-sized ranges from a shared counter
/// (load-balancing for irregular iterations).
template <class Body>
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const Body& body, Schedule schedule = Schedule::kStatic,
                  std::int64_t chunk = 64) {
  CLIP_REQUIRE(begin <= end, "parallel_for needs begin <= end");
  CLIP_REQUIRE(chunk > 0, "chunk must be positive");
  if (begin == end) return;

  if (schedule == Schedule::kStatic) {
    pool.run_region([&](int rank, int team) {
      const std::int64_t total = end - begin;
      const std::int64_t per = total / team;
      const std::int64_t extra = total % team;
      // First `extra` workers take one additional iteration.
      const std::int64_t my_begin =
          begin + rank * per + std::min<std::int64_t>(rank, extra);
      const std::int64_t my_count = per + (rank < extra ? 1 : 0);
      for (std::int64_t i = my_begin; i < my_begin + my_count; ++i) body(i);
    });
  } else {
    std::atomic<std::int64_t> next{begin};
    pool.run_region([&](int, int) {
      while (true) {
        const std::int64_t start =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (start >= end) break;
        const std::int64_t stop = std::min(start + chunk, end);
        for (std::int64_t i = start; i < stop; ++i) body(i);
      }
    });
  }
}

/// Run body(chunk_begin, chunk_end) over contiguous sub-ranges of
/// [begin, end) — the range-granular sibling of parallel_for, for bodies
/// that amortize per-call setup across a whole chunk (e.g. one
/// SimExecutor::run_batch per range).
///
/// kStatic: one contiguous range per worker. kDynamic: workers grab
/// `chunk`-sized ranges from a shared counter.
template <class Body>
void parallel_for_chunks(ThreadPool& pool, std::int64_t begin,
                         std::int64_t end, const Body& body,
                         Schedule schedule = Schedule::kStatic,
                         std::int64_t chunk = 64) {
  CLIP_REQUIRE(begin <= end, "parallel_for_chunks needs begin <= end");
  CLIP_REQUIRE(chunk > 0, "chunk must be positive");
  if (begin == end) return;

  if (schedule == Schedule::kStatic) {
    pool.run_region([&](int rank, int team) {
      const std::int64_t total = end - begin;
      const std::int64_t per = total / team;
      const std::int64_t extra = total % team;
      const std::int64_t my_begin =
          begin + rank * per + std::min<std::int64_t>(rank, extra);
      const std::int64_t my_count = per + (rank < extra ? 1 : 0);
      if (my_count > 0) body(my_begin, my_begin + my_count);
    });
  } else {
    std::atomic<std::int64_t> next{begin};
    pool.run_region([&](int, int) {
      while (true) {
        const std::int64_t start =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (start >= end) break;
        body(start, std::min(start + chunk, end));
      }
    });
  }
}

/// Parallel reduction: sums worker-local accumulators produced by
/// body(i, local_acc&). Deterministic per team size (worker-ordered merge).
template <class T, class Body>
T parallel_reduce(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  T init, const Body& body) {
  CLIP_REQUIRE(begin <= end, "parallel_reduce needs begin <= end");
  std::vector<T> partial(static_cast<std::size_t>(pool.max_threads()), T{});
  pool.run_region([&](int rank, int team) {
    const std::int64_t total = end - begin;
    const std::int64_t per = total / team;
    const std::int64_t extra = total % team;
    const std::int64_t my_begin =
        begin + rank * per + std::min<std::int64_t>(rank, extra);
    const std::int64_t my_count = per + (rank < extra ? 1 : 0);
    T acc{};
    for (std::int64_t i = my_begin; i < my_begin + my_count; ++i)
      body(i, acc);
    partial[static_cast<std::size_t>(rank)] = acc;
  });
  T result = init;
  for (const T& p : partial) result += p;
  return result;
}

}  // namespace clip::parallel
