// DVFS frequency ladder of the simulated processor.
//
// The testbed processor (Xeon E5-2670 v3) exposes discrete P-states between
// 1.2 and 2.3 GHz; RAPL enforcement effectively walks this ladder. CLIP's
// power-range estimation (paper §III-B1) profiles at the highest (L1) and
// lowest (L2) states.
#pragma once

#include <vector>

#include "util/units.hpp"

namespace clip::sim {

class FrequencyLadder {
 public:
  /// Ladder of evenly spaced states [min, max] with the given step.
  FrequencyLadder(GHz min, GHz max, GHz step, GHz nominal);

  /// The Haswell-like default: 1.2..2.3 GHz in 0.1 GHz steps, nominal 2.3.
  [[nodiscard]] static FrequencyLadder haswell();

  [[nodiscard]] const std::vector<GHz>& states() const { return states_; }
  [[nodiscard]] GHz min() const { return states_.front(); }
  [[nodiscard]] GHz max() const { return states_.back(); }
  [[nodiscard]] GHz nominal() const { return nominal_; }

  /// Relative speed of a state: f / nominal.
  [[nodiscard]] double relative(GHz f) const { return f / nominal_; }

  /// Highest state <= f (clamps to min). Useful for snapping model output
  /// onto a real state.
  [[nodiscard]] GHz snap_down(GHz f) const;

  [[nodiscard]] std::size_t state_count() const { return states_.size(); }

 private:
  std::vector<GHz> states_;  // ascending
  GHz nominal_;
};

}  // namespace clip::sim
