// Node power estimation and the acceptable power range (paper §III-B1).
//
// From the measured all-core profile, CLIP calibrates a per-core load power
// and a per-core DRAM demand, then predicts node power at any (threads,
// placement, frequency, memory level) point using the hardware constants of
// the power model (socket base powers, DVFS exponent — facts about the
// machine, not the application). The acceptable node power range is
//   [ P_cpu,L2 + P_mem,L2 ,  P_cpu,L1 + P_mem,L1 ]
// where L1/L2 are the highest/lowest DVFS states at the recommended
// configuration: below the lower bound "performance decreases significantly
// and the performance loss can outweigh the gain on the power savings";
// above the upper bound power is wasted.
#pragma once

#include <vector>

#include "core/profile.hpp"
#include "sim/machine.hpp"
#include "util/units.hpp"

namespace clip::core {

/// The acceptable power range of one node for one application+config.
struct PowerRange {
  Watts low{0.0};   ///< P_cpu,L2 + P_mem,L2 (lowest frequency)
  Watts high{0.0};  ///< P_cpu,L1 + P_mem,L1 (highest frequency)
};

class PowerEstimator {
 public:
  PowerEstimator(const sim::MachineSpec& spec, const ProfileData& profile);

  /// Predicted processor-domain power at an operating point.
  [[nodiscard]] Watts cpu_power(int threads,
                                parallel::AffinityPolicy affinity,
                                double f_rel) const;

  /// Predicted memory-domain power (achieved bandwidth capped by the level).
  [[nodiscard]] Watts mem_power(int threads,
                                parallel::AffinityPolicy affinity,
                                sim::MemPowerLevel level) const;

  /// Memory-domain power at an explicit achieved bandwidth (GB/s).
  [[nodiscard]] Watts mem_power_at_bw(int threads,
                                      parallel::AffinityPolicy affinity,
                                      double achieved_bw_gbps) const;

  [[nodiscard]] Watts node_power(int threads,
                                 parallel::AffinityPolicy affinity,
                                 sim::MemPowerLevel level,
                                 double f_rel) const;

  /// Acceptable range at a configuration (Eqs. of §III-B1).
  [[nodiscard]] PowerRange acceptable_range(
      int threads, parallel::AffinityPolicy affinity,
      sim::MemPowerLevel level) const;

  /// Calibrated per-core load power at nominal frequency.
  [[nodiscard]] double per_core_load_w() const { return per_core_load_w_; }

  /// Predicted DRAM demand (GB/s) of `threads` threads at nominal frequency.
  [[nodiscard]] double bw_demand_gbps(int threads) const;

 private:
  /// The placement for (threads, affinity) — the estimator asks for the
  /// same handful of placements tens of thousands of times per budget
  /// sweep, so they are built once here instead of per call. The returned
  /// object is identical to a fresh place_threads result.
  [[nodiscard]] const parallel::Placement& placement(
      int threads, parallel::AffinityPolicy affinity) const;

  const sim::MachineSpec* spec_;
  double per_core_load_w_ = 0.0;
  double per_core_bw_gbps_ = 0.0;
  std::vector<parallel::Placement> placements_;  ///< [(threads-1)*2 + policy]
};

}  // namespace clip::core
