#!/usr/bin/env sh
# clip-lint driver: build the analyzer and self-scan src/, examples/ and
# bench/. Exit 0 = zero unsuppressed findings (suppressions with reasons are
# fine), 1 = violations, 2 = build/usage error. The JSON report (default
# build/lint_report.json) records per-rule counts and the suppression total
# so reviews can watch it trend — see docs/static-analysis.md.
#
# Usage: scripts/lint.sh [--json PATH] [extra clip-lint args...]
#
# Environment:
#   BUILD_DIR  cmake build tree holding (or receiving) the clip-lint target
#              (default: build)
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JSON_OUT="$BUILD_DIR/lint_report.json"
if [ "${1:-}" = "--json" ] && [ $# -ge 2 ]; then
  JSON_OUT=$2
  shift 2
fi

LINT_BIN="$BUILD_DIR/tools/clip-lint/clip-lint"
if [ ! -x "$LINT_BIN" ]; then
  echo "lint: building clip-lint into $BUILD_DIR" >&2
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target clip-lint -j "$(nproc)" >/dev/null
fi

"$LINT_BIN" --root . --json "$JSON_OUT" "$@" src examples bench
echo "lint: report written to $JSON_OUT" >&2

# Observability doc drift: every series/metric/span/event name emitted in
# src/ must be documented in docs/observability.md.
scripts/check_obs_docs.sh
