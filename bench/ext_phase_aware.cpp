// Extension — phase-aware concurrency throttling (paper §V-B1: "we change
// the concurrency setting phase-by-phase for the BT benchmark to increase
// performance"). Compares flat CLIP (one configuration for the whole run,
// chosen from the blended whole-program profile) against per-phase
// reconfiguration on the phased multi-zone benchmarks.
#include <iostream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "util/strings.hpp"
#include "workloads/phases.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  core::ClipScheduler sched(ex, workloads::training_benchmarks());

  Table t({"benchmark", "budget (W)", "flat CLIP (s)", "phase-aware (s)",
           "gain", "phase configs (threads@phase)"});
  t.set_title(
      "Phase-aware vs flat CLIP on phased multi-zone benchmarks");

  for (const auto& p : workloads::phased_benchmarks()) {
    for (double budget : {600.0, 1000.0, 1400.0}) {
      const auto flat = sched.schedule(p.blended(), Watts(budget));
      sim::PhasedClusterConfig flat_cfg;
      flat_cfg.nodes = flat.cluster.nodes;
      flat_cfg.phase_nodes.assign(p.phases.size(), flat.cluster.node);
      const auto flat_m = ex.run_phased_exact(p, flat_cfg);

      const auto phased = sched.schedule_phased(p, Watts(budget));
      const auto phased_m = ex.run_phased_exact(p, phased.cluster);

      std::string configs;
      for (std::size_t i = 0; i < p.phases.size(); ++i) {
        if (i) configs += ", ";
        configs +=
            std::to_string(phased.cluster.phase_nodes[i].threads) + "@" +
            p.phases[i].name;
      }
      t.add_row({p.name, format_double(budget, 0),
                 format_double(flat_m.time.value(), 2),
                 format_double(phased_m.time.value(), 2),
                 format_percent(flat_m.time.value() /
                                    phased_m.time.value() -
                                1.0),
                 configs});
    }
  }
  ctx.print(t);
  std::cout << "The exchange phases saturate memory early and contend on "
               "synchronization; throttling them while keeping the solver "
               "phases wide recovers the compromise a single configuration "
               "must make.\n";
  return 0;
}
