#include "baselines/oracle.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <iterator>
#include <limits>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "util/check.hpp"

namespace clip::baselines {

namespace {

/// One (nodes, threads, affinity, level) combination with its feasible,
/// deduplicated DRAM-cap grid. `base` carries the knob settings with the
/// caps left at their unbounded defaults — which is exactly the
/// configuration whose exact time lower-bounds every capped grid point
/// (time is monotone non-increasing in either cap).
///
/// The dense part of the grid depends only on (active sockets, level), so
/// combos don't own it: they point into per-plan grids (`LevelGrid`) and
/// carry just the feasible prefix length plus the optional demand-tight
/// point — a budget sweep materializes thousands of combos per plan, and
/// per-combo cap vectors were a measurable slice of the search cost.
struct GridCombo {
  sim::ClusterConfig base;
  const double* grid = nullptr;  ///< dense feasible caps, serial grid order
  int n_grid = 0;                ///< feasible prefix of `grid`
  bool has_demand = false;       ///< demand-tight point appended?
  double demand_w = 0.0;
  double node_share = 0.0;

  [[nodiscard]] int n_caps() const { return n_grid + (has_demand ? 1 : 0); }
  [[nodiscard]] double cap(int j) const {
    return j < n_grid ? grid[j] : demand_w;
  }
};

/// The budget-independent cap grid for one (active sockets, level) pair.
struct LevelGrid {
  double base_w = 0.0;
  double level_bw = 0.0;
  std::vector<double> caps;  ///< strictly increasing when act_max > 0
};

/// Atomic running minimum (relaxed; used only to tighten pruning — the
/// final winner comes from a deterministic serial-order scan).
void update_min(std::atomic<double>& best, double v) {
  double cur = best.load(std::memory_order_relaxed);
  while (v < cur &&
         !best.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

sim::ClusterConfig OracleScheduler::plan(
    const workloads::WorkloadSignature& app, Watts cluster_budget) {
  app.validate();
  CLIP_REQUIRE(cluster_budget.value() > 0.0, "budget must be positive");
  const auto& spec = executor_->spec();
  const int all_cores = spec.shape.total_cores();

  std::vector<int> node_counts;
  if (app.has_predefined_process_counts) {
    for (int n = 1; n <= spec.nodes; n *= 2) node_counts.push_back(n);
  } else {
    for (int n = 1; n <= spec.nodes; ++n) node_counts.push_back(n);
  }

  last_search_cost_.store(0, std::memory_order_relaxed);

  // ---- materialize the candidate grid in canonical (serial) order --------
  // Thread placement depends only on (threads, affinity) — precompute the
  // active-socket counts once instead of once per (nodes, level).
  std::vector<std::array<int, 2>> active_sockets(
      static_cast<std::size_t>(all_cores / 2));
  for (int threads = 2; threads <= all_cores; threads += 2) {
    const std::size_t t = static_cast<std::size_t>(threads / 2 - 1);
    active_sockets[t][0] =
        parallel::place_threads(spec.shape, threads,
                                parallel::AffinityPolicy::kCompact)
            .active_sockets();
    active_sockets[t][1] =
        parallel::place_threads(spec.shape, threads,
                                parallel::AffinityPolicy::kScatter)
            .active_sockets();
  }

  // DRAM budgets to try at each level: a dense grid over the activity
  // headroom plus a demand-tight point (exact: demand only shrinks as RAPL
  // lowers the frequency, so the nominal-frequency draw is an upper
  // bound). The grid pitch bounds how far a continuum optimum can escape
  // the search. The dense grid depends only on (active sockets, level), so
  // it is built once per plan here; combos reference it. `level_grids`
  // must outlive `combos` (the combos hold pointers into it).
  const std::size_t n_levels = std::size(sim::kAllMemLevels);
  std::vector<LevelGrid> level_grids(
      static_cast<std::size_t>(spec.shape.sockets) * n_levels);
  for (int active = 1; active <= spec.shape.sockets; ++active) {
    const int parked = spec.shape.sockets - active;
    for (std::size_t li = 0; li < n_levels; ++li) {
      LevelGrid& g =
          level_grids[static_cast<std::size_t>(active - 1) * n_levels + li];
      g.base_w = active * spec.mem_base_w_per_socket +
                 parked * spec.mem_parked_w_per_socket;
      g.level_bw = active * spec.socket_bw_gbps *
                   sim::bw_fraction(sim::kAllMemLevels[li]);
      const double act_max = g.level_bw * spec.mem_w_per_gbps();
      if (act_max > 0.0) {
        for (double frac = 0.05; frac <= 1.0 + 1e-9; frac += 0.05)
          g.caps.push_back(g.base_w + frac * act_max);
      } else {
        // Degenerate grid: every point collapses onto base_w.
        g.caps.push_back(g.base_w);
      }
    }
  }

  std::vector<GridCombo> combos;
  combos.reserve(node_counts.size() * active_sockets.size() * 2 * n_levels);
  for (int nodes : node_counts) {
    const double node_share = cluster_budget.value() / nodes;
    for (int threads = 2; threads <= all_cores; threads += 2) {
      for (parallel::AffinityPolicy affinity :
           {parallel::AffinityPolicy::kCompact,
            parallel::AffinityPolicy::kScatter}) {
        const int active =
            active_sockets[static_cast<std::size_t>(threads / 2 - 1)]
                          [affinity == parallel::AffinityPolicy::kCompact ? 0
                                                                          : 1];
        for (std::size_t li = 0; li < n_levels; ++li) {
          const LevelGrid& g =
              level_grids[static_cast<std::size_t>(active - 1) * n_levels +
                          li];
          // Two DRAM budgets per level: the worst-case draw (full level
          // bandwidth) and a demand-tight budget — the oracle may peek at
          // the workload's true per-core demand, which is the whole point
          // of being an oracle. The tight budget frees watts for the CPU.
          const double demand_bw =
              threads * app.bw_per_core_gbps;  // at nominal frequency

          GridCombo combo;
          combo.node_share = node_share;
          combo.base.nodes = nodes;
          combo.base.node.threads = threads;
          combo.base.node.affinity = affinity;
          combo.base.node.mem_level = sim::kAllMemLevels[li];
          // Keep feasible caps only. The grid is non-decreasing, so
          // feasibility (`node_share - cap > 1.0` — evaluated exactly as
          // the historical per-cap check did) holds on a prefix; only the
          // appended demand-tight point can land on a grid point, so it
          // alone pays a duplicate scan (re-running it would waste an
          // exact execution).
          combo.grid = g.caps.data();
          int n = 0;
          while (n < static_cast<int>(g.caps.size()) &&
                 node_share - g.caps[static_cast<std::size_t>(n)] > 1.0)
            ++n;
          combo.n_grid = n;
          const double demand_w = g.base_w + std::min(demand_bw, g.level_bw) *
                                                 spec.mem_w_per_gbps();
          if (node_share - demand_w > 1.0 &&
              std::find(combo.grid, combo.grid + combo.n_grid, demand_w) ==
                  combo.grid + combo.n_grid) {
            combo.has_demand = true;
            combo.demand_w = demand_w;
          }
          if (combo.n_caps() > 0) combos.push_back(combo);
        }
      }
    }
  }
  CLIP_ENSURE(!combos.empty(), "oracle found no feasible configuration");

  // ---- evaluate -----------------------------------------------------------
  // Exact times per (combo, cap); rows are allocated by evaluate_combo, so a
  // pruned combo's row stays empty and the final scan skips it. All
  // evaluations are exact (noise-free) runs, so the filled values are
  // identical whatever the execution order — parallelism and pruning can
  // only change *which* rows get filled, never their values.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> times(combos.size());

  std::atomic<double> best_seen{kInf};
  const auto evaluate_combo = [&](std::size_t ci) {
    const GridCombo& combo = combos[ci];
    // A combo's cap grid shares one (workload, placement) prefix — exactly
    // the frontier shape run_batch vectorizes. The batch results are
    // bit-identical to per-point run_exact calls.
    std::vector<sim::CapPoint> caps(static_cast<std::size_t>(combo.n_caps()));
    for (int j = 0; j < combo.n_caps(); ++j) {
      const double mem_w = combo.cap(j);
      caps[static_cast<std::size_t>(j)].mem_cap = Watts(mem_w);
      caps[static_cast<std::size_t>(j)].cpu_cap =
          Watts(combo.node_share - mem_w);
    }
    const sim::FrontierResult ms = executor_->run_batch(app, combo.base, caps);
    last_search_cost_.fetch_add(static_cast<int>(caps.size()),
                                std::memory_order_relaxed);
    double local_best = kInf;
    times[ci].resize(ms->size());
    for (std::size_t j = 0; j < ms->size(); ++j) {
      times[ci][j] = (*ms)[j].time.value();
      local_best = std::min(local_best, times[ci][j]);
    }
    update_min(best_seen, local_best);
  };

  // Evaluation order over combos: with pruning, cheapest lower bound first
  // so a near-optimal incumbent appears early and prunes the rest.
  std::vector<std::size_t> order(combos.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> bound(combos.size(), -kInf);

  if (options_.prune) {
    // One uncapped run per combo: caps at the NodeConfig defaults (1e9 W)
    // dominate every grid point of the combo, so this time is a valid lower
    // bound for all of them. The uncapped config is budget-independent —
    // and never itself a candidate (its caps ignore the budget) — so bounds
    // are memoized per workload across plan() calls: a budget sweep pays
    // the scalar executor path (cache-key encoding and all) once per combo
    // instead of once per budget. The workload key is its full canonical
    // encoding, so two signatures that differ in any model input can never
    // share bounds. last_search_cost_ counts every requested bound either
    // way, keeping reported evaluation counts sweep-order independent.
    const auto key_of = [&](std::size_t ci) {
      return BoundKey{combos[ci].base.nodes, combos[ci].base.node.threads,
                      static_cast<int>(combos[ci].base.node.affinity),
                      static_cast<int>(combos[ci].base.node.mem_level)};
    };
    // Every bound is "requested" whether memoized or not.
    last_search_cost_.fetch_add(static_cast<int>(combos.size()),
                                std::memory_order_relaxed);
    const std::string app_key = sim::ExactRunCache::encode_batch_prefix(
        std::string(), app, sim::ClusterConfig{});
    std::vector<std::size_t> missing;
    {
      const std::lock_guard<std::mutex> lock(bound_memo_mu_);
      const std::map<BoundKey, double>& memo = bound_memo_[app_key];
      for (std::size_t ci = 0; ci < combos.size(); ++ci) {
        const auto it = memo.find(key_of(ci));
        if (it != memo.end())
          bound[ci] = it->second;
        else
          missing.push_back(ci);
      }
    }
    const auto evaluate_bound = [&](std::size_t ci) {
      // Uncached: the memo above is the only consumer of bound times, and
      // no candidate ever reuses the uncapped config, so filling the
      // per-point cache would buy nothing and cost key encoding per run.
      const sim::Measurement m =
          executor_->run_exact_uncached(app, combos[ci].base);
      bound[ci] = m.time.value();
    };
    if (pool_ != nullptr) {
      parallel::parallel_for_chunks(
          *pool_, 0, static_cast<std::int64_t>(missing.size()),
          [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i)
              evaluate_bound(missing[static_cast<std::size_t>(i)]);
          },
          parallel::Schedule::kDynamic, 8);
    } else {
      for (const std::size_t ci : missing) evaluate_bound(ci);
    }
    if (!missing.empty()) {
      const std::lock_guard<std::mutex> lock(bound_memo_mu_);
      std::map<BoundKey, double>& memo = bound_memo_[app_key];
      for (const std::size_t ci : missing) memo.emplace(key_of(ci), bound[ci]);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return bound[a] < bound[b];
                     });
  }

  // A combo whose lower bound cannot *strictly* beat the incumbent cannot
  // contain the winner (the final scan also uses strict <), so skipping it
  // is lossless. The incumbent only tightens over time; a stale read just
  // prunes less.
  const auto visit = [&](std::size_t ci) {
    if (options_.prune &&
        bound[ci] >= best_seen.load(std::memory_order_relaxed))
      return;
    evaluate_combo(ci);
  };
  if (pool_ != nullptr) {
    parallel::parallel_for(*pool_, 0,
                           static_cast<std::int64_t>(order.size()),
                           [&](std::int64_t i) {
                             visit(order[static_cast<std::size_t>(i)]);
                           },
                           parallel::Schedule::kDynamic, 1);
  } else {
    for (std::size_t i = 0; i < order.size(); ++i) visit(order[i]);
  }

  // ---- deterministic winner selection ------------------------------------
  // Scan in canonical grid order with strict improvement, exactly like the
  // historical serial search — so for a fully evaluated grid the chosen
  // configuration matches the legacy oracle bit for bit.
  sim::ClusterConfig best;
  double best_time = kInf;
  for (std::size_t ci = 0; ci < combos.size(); ++ci) {
    if (times[ci].empty()) continue;  // pruned — cannot contain the winner
    for (int j = 0; j < combos[ci].n_caps(); ++j) {
      if (times[ci][static_cast<std::size_t>(j)] < best_time) {
        best_time = times[ci][static_cast<std::size_t>(j)];
        best = combos[ci].base;
        const double mem_w = combos[ci].cap(j);
        best.node.mem_cap = Watts(mem_w);
        best.node.cpu_cap = Watts(combos[ci].node_share - mem_w);
      }
    }
  }
  CLIP_ENSURE(best_time < kInf, "oracle found no feasible configuration");
  return best;
}

}  // namespace clip::baselines
