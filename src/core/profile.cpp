#include "core/profile.hpp"

namespace clip::core {

std::vector<double> ProfileData::features() const {
  // Table I features come from the all-core sample (the configuration every
  // application is profiled at), with Event7 being the full/half ratio.
  return all_core.events.to_features();
}

}  // namespace clip::core
