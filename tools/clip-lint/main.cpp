// clip-lint CLI. Scans the given files/directories (recursively, .cpp/.hpp)
// and exits 0 when no unsuppressed finding remains, 1 when the tree has
// violations, 2 on usage or I/O errors — the contract scripts/ci.sh and the
// `ctest -L lint` entry gate on.
//
// Usage:
//   clip-lint [--root DIR] [--json PATH] [--quiet] [--list-rules] PATH...

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Paths are reported relative to --root so reports are machine-portable.
std::string display_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty() || rel.native().starts_with(".."))
    return p.generic_string();
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  bool quiet = false;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : clip::lint::known_rules())
        std::cout << r << '\n';
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: clip-lint [--root DIR] [--json PATH] [--quiet] "
                   "[--list-rules] PATH...\n"
                   "exit codes: 0 clean, 1 unsuppressed findings, 2 error\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "clip-lint: unknown option: " << arg << '\n';
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "clip-lint: no paths given (try: clip-lint src examples "
                 "bench)\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    const fs::path p = in.is_absolute() ? in : root / in;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec))
        if (entry.is_regular_file() && lintable(entry.path()))
          files.push_back(entry.path());
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "clip-lint: no such file or directory: " << p << '\n';
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<clip::lint::Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream is(file, std::ios::binary);
    if (!is) {
      std::cerr << "clip-lint: cannot read " << file << '\n';
      return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    auto file_findings =
        clip::lint::lint_source(buf.str(), display_path(file, root));
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  const int files_scanned = static_cast<int>(files.size());
  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::binary);
    if (!os) {
      std::cerr << "clip-lint: cannot write " << json_path << '\n';
      return 2;
    }
    os << clip::lint::to_json(findings, files_scanned);
  }
  if (!quiet) std::cout << clip::lint::to_text(findings, files_scanned);

  return clip::lint::summarize(findings, files_scanned).unsuppressed == 0 ? 0
                                                                          : 1;
}
