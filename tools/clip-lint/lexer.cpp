// Lexer for clip-lint: a minimal C++ tokenizer that is exact about the three
// things the rules need — line numbers, string-literal contents (D3 scans
// format strings), and comments (the suppression channel) — and deliberately
// coarse about everything else. Multi-character punctuators are only split
// out where a rule depends on them (`::`, `->`, `==`, `!=`, `&&`, `||`);
// `<` and `>` stay single tokens so template-argument skipping can balance
// them without special-casing shift operators.

#include <cctype>

#include "lint.hpp"

namespace clip::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Split a `(`-terminated directive list on commas/spaces.
std::vector<std::string> split_list(std::string_view list) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) out.push_back(current);
    current.clear();
  };
  for (char c : list) {
    if (c == ',' || c == ' ') {
      flush();
    } else {
      current.push_back(c);
    }
  }
  flush();
  return out;
}

/// Parse one `clip-lint:` comment body. Returns false when the comment is
/// not a clip-lint directive at all. A directive is ANCHORED: the comment
/// body must start with `clip-lint:` after stripping whitespace — prose
/// that merely mentions the tag (docs, the analyzer's own sources) is not a
/// directive. Verbs: allow / allow-file (suppressions), journaled / guards /
/// fallible (tracked-state declarations for J1, L1/L2, E1).
bool parse_directive(std::string_view body, int line, LexedFile& out) {
  std::string_view rest = body;
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest.front())))
    rest.remove_prefix(1);
  if (rest.rfind("clip-lint:", 0) != 0) return false;
  rest.remove_prefix(10);
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);

  auto malformed = [&](const std::string& what) {
    out.lex_findings.push_back({out.path, line, "LINT", what, false, {}});
    return true;
  };

  std::string verb;
  for (char c : rest) {
    if (c == '(') break;
    verb.push_back(c);
  }
  const bool known_verb = verb == "allow" || verb == "allow-file" ||
                          verb == "journaled" || verb == "guards" ||
                          verb == "fallible";
  if (!known_verb || rest.size() <= verb.size() ||
      rest[verb.size()] != '(') {
    return malformed(
        "malformed clip-lint directive (expected allow(RULE), "
        "allow-file(RULE), journaled(FIELDS), guards(MUTEX: FIELDS) or "
        "fallible(NAMES))");
  }
  rest.remove_prefix(verb.size() + 1);
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos)
    return malformed("unterminated " + verb + "(...) list");
  const std::string_view list = rest.substr(0, close);

  if (verb == "journaled" || verb == "fallible") {
    std::vector<std::string> names = split_list(list);
    if (names.empty())
      return malformed(verb + "() lists no names; declare the tracked " +
                       (verb == "journaled" ? std::string("fields")
                                            : std::string("calls")));
    auto& into =
        (verb == "journaled") ? out.journaled_fields : out.fallible_names;
    into.insert(into.end(), names.begin(), names.end());
    return true;
  }

  if (verb == "guards") {
    const std::size_t colon = list.find(':');
    if (colon == std::string_view::npos)
      return malformed(
          "guards() needs `mutex: field, field` (optionally mutex@label)");
    GuardDecl decl;
    decl.line = line;
    std::string mutex(list.substr(0, colon));
    while (!mutex.empty() && mutex.back() == ' ') mutex.pop_back();
    while (!mutex.empty() && mutex.front() == ' ') mutex.erase(0, 1);
    const std::size_t at = mutex.find('@');
    if (at != std::string::npos) {
      decl.label = mutex.substr(at + 1);
      mutex.resize(at);
    }
    decl.mutex = mutex;
    decl.fields = split_list(list.substr(colon + 1));
    if (decl.mutex.empty() || decl.fields.empty())
      return malformed(
          "guards() needs `mutex: field, field` (optionally mutex@label)");
    out.guards.push_back(std::move(decl));
    return true;
  }

  Suppression sup;
  sup.comment_line = line;
  sup.file_scope = (verb == "allow-file");
  sup.rules = split_list(list);

  std::string_view reason = rest.substr(close + 1);
  while (!reason.empty() &&
         std::isspace(static_cast<unsigned char>(reason.front())))
    reason.remove_prefix(1);
  while (!reason.empty() &&
         std::isspace(static_cast<unsigned char>(reason.back())))
    reason.remove_suffix(1);
  sup.reason = std::string(reason);
  out.suppressions.push_back(sup);
  return true;
}

}  // namespace

LexedFile lex(std::string_view src, std::string path) {
  LexedFile out;
  out.path = std::move(path);
  out.is_header = out.path.size() >= 4 &&
                  (out.path.ends_with(".hpp") || out.path.ends_with(".h"));

  std::size_t i = 0;
  int line = 1;
  int last_token_line = 0;  // detects comments trailing code on a line
  bool line_is_preproc = false;
  bool line_is_include = false;

  auto push = [&](Token::Kind kind, std::string text) {
    out.tokens.push_back({kind, std::move(text), line});
    last_token_line = line;
  };

  // Standalone suppression comments apply to the next code line; resolve
  // them once that line is known. -1 marks "pending".
  auto handle_comment = [&](std::string_view body, int at_line) {
    const std::size_t before = out.suppressions.size();
    if (!parse_directive(body, at_line, out)) return;
    if (out.suppressions.size() == before) return;  // malformed, no entry
    Suppression& sup = out.suppressions.back();
    sup.target_line = (last_token_line == at_line) ? at_line : -1;
  };

  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_is_preproc = false;
      line_is_include = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t eol = src.find('\n', i);
      const std::size_t end = (eol == std::string_view::npos) ? n : eol;
      handle_comment(src.substr(i + 2, end - i - 2), line);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      handle_comment(src.substr(i + 2, j - i - 2), start_line);
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Preprocessor directive: `#name`, with `#include <...>`/"..." consumed
    // whole so header names never masquerade as identifiers.
    if (c == '#' && !line_is_preproc) {
      line_is_preproc = true;
      std::size_t j = i + 1;
      while (j < n && src[j] == ' ') ++j;
      std::size_t k = j;
      while (k < n && ident_char(src[k])) ++k;
      const std::string name = "#" + std::string(src.substr(j, k - j));
      push(Token::Kind::kPreproc, name);
      line_is_include = (name == "#include");
      i = k;
      continue;
    }
    if (line_is_include && (c == '<' || c == '"')) {
      const char close = (c == '<') ? '>' : '"';
      std::size_t j = i + 1;
      while (j < n && src[j] != close && src[j] != '\n') ++j;
      push(Token::Kind::kString, std::string(src.substr(i, j - i + 1)));
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Raw string literal R"delim(...)delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      while (p < n && src[p] != '(') ++p;
      const std::string delim =
          ")" + std::string(src.substr(i + 2, p - i - 2)) + "\"";
      const std::size_t endpos = src.find(delim, p);
      const std::size_t stop =
          (endpos == std::string_view::npos) ? n : endpos + delim.size();
      std::string text(src.substr(i, stop - i));
      push(Token::Kind::kString, text);
      for (char ch : text)
        if (ch == '\n') ++line;
      i = stop;
      continue;
    }
    // String / char literals (escape-aware).
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != c) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      push(c == '"' ? Token::Kind::kString : Token::Kind::kChar,
           std::string(src.substr(i, j - i + 1)));
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      push(Token::Kind::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P'))))
        ++j;
      push(Token::Kind::kNumber, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    // Punctuation: keep only the pairs the rules read.
    if (i + 1 < n) {
      const std::string two(src.substr(i, 2));
      if (two == "::" || two == "->" || two == "==" || two == "!=" ||
          two == "&&" || two == "||") {
        push(Token::Kind::kPunct, two);
        i += 2;
        continue;
      }
    }
    push(Token::Kind::kPunct, std::string(1, c));
    ++i;
  }

  // Resolve pending (standalone-comment) suppressions to the next code line.
  for (Suppression& sup : out.suppressions) {
    if (sup.target_line != -1) continue;
    sup.target_line = sup.comment_line;  // fallback: nothing follows
    for (const Token& t : out.tokens) {
      if (t.line > sup.comment_line) {
        sup.target_line = t.line;
        break;
      }
    }
  }
  return out;
}

}  // namespace clip::lint
