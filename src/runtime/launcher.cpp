#include "runtime/launcher.hpp"

#include <algorithm>
#include <iostream>

#include "util/check.hpp"

namespace clip::runtime {

Launcher::Launcher(
    sim::SimExecutor& executor,
    const std::vector<workloads::WorkloadSignature>& training_suite,
    std::optional<std::filesystem::path> db_path,
    core::SchedulerOptions options)
    : executor_(&executor),
      scheduler_(executor, training_suite, options),
      db_path_(std::move(db_path)) {
  if (db_path_ && std::filesystem::exists(*db_path_)) {
    try {
      scheduler_.knowledge_db().load(*db_path_);
    } catch (const PreconditionError& e) {
      // A corrupt on-disk database must not kill the framework at startup:
      // continue with an empty DB (applications re-characterize) and keep
      // the diagnosis available via db_load_error().
      db_load_error_ = e.what();
      std::cerr << "clip: ignoring knowledge database "
                << db_path_->string() << ": " << e.what() << '\n';
    }
  }
}

void Launcher::set_observer(obs::ObsSession* obs) {
  obs_ = obs;
  scheduler_.set_observer(obs);
}

void Launcher::persist() {
  if (db_path_) scheduler_.knowledge_db().save(*db_path_);
}

sim::ClusterConfig Launcher::fallback_plan(const JobSpec& spec) const {
  // Conservative degraded-mode allocation when the decision pipeline cannot
  // produce a plan (corrupt knowledge record, insane profile): half the
  // cluster's nodes, all cores, scatter, an even power split with the
  // memory share the paper's baselines use. Deliberately assumption-free —
  // it consults no profile data at all — and under-committed, so it is safe
  // for any application class.
  sim::ClusterConfig cfg;
  const auto& mspec = executor_->spec();
  cfg.nodes = std::max(1, mspec.nodes / 2);
  cfg.node.threads = mspec.shape.total_cores();
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  cfg.node.mem_level = sim::MemPowerLevel::kL0;
  const double node_share = spec.cluster_budget.value() / cfg.nodes;
  cfg.node.mem_cap = Watts(30.0);
  cfg.node.cpu_cap = Watts(std::max(1.0, node_share - 30.0));
  return cfg;
}

JobResult Launcher::run(const JobSpec& spec) {
  return run(spec, obs::TraceContext{});
}

JobResult Launcher::run(const JobSpec& spec, const obs::TraceContext& trace) {
  // User errors stay loud: only internal scheduling failures (corrupt
  // profile inputs) downgrade to the fallback below.
  spec.app.validate();
  CLIP_REQUIRE(spec.cluster_budget.value() > 0.0,
               "cluster_budget must be positive");

  obs::ScopedSpan span(obs_, "runtime.job", "runtime");
  span.arg("app", spec.app.name);
  span.arg("budget_w", spec.cluster_budget.value());
  if (span.active() && trace.valid()) {
    span.arg("trace_id", trace.hex());
    span.arg("span_id", trace.span_hex("launcher"));
  }
  obs::count(obs_, "runtime.jobs");

  JobResult result;
  result.spec = spec;
  bool persist_needed = false;
  try {
    const core::ScheduleDecision decision =
        scheduler_.schedule(spec.app, spec.cluster_budget);
    persist_needed = !decision.from_knowledge_db;
    result.method = "CLIP";
    result.plan = decision.cluster;
    result.scheduling_overhead = decision.profiling_cost;
  } catch (const PreconditionError& e) {
    span.arg("fallback", e.what());
    obs::count(obs_, "runtime.fallbacks");
    std::cerr << "clip: scheduling failed for '" << spec.app.name
              << "', using conservative fallback: " << e.what() << '\n';
    result.method = "CLIP-fallback";
    result.plan = fallback_plan(spec);
  }
  if (persist_needed) persist();
  result.measurement = executor_->run(spec.app, result.plan);
  return result;
}

std::string Launcher::plan_script(const JobSpec& spec) {
  spec.app.validate();
  CLIP_REQUIRE(spec.cluster_budget.value() > 0.0,
               "cluster_budget must be positive");
  sim::ClusterConfig plan;
  bool persist_needed = false;
  try {
    const core::ScheduleDecision decision =
        scheduler_.schedule(spec.app, spec.cluster_budget);
    persist_needed = !decision.from_knowledge_db;
    plan = decision.cluster;
  } catch (const PreconditionError&) {
    obs::count(obs_, "runtime.fallbacks");
    plan = fallback_plan(spec);
  }
  if (persist_needed) persist();
  return render_launch_script(spec, plan);
}

}  // namespace clip::runtime
