// Crash-consistency suite (docs/robustness.md): the write-ahead journal,
// QueueEventLoop::recover, the degraded-mode state machine, and durable
// file persistence. The headline property test kills the event loop at
// *every* event boundary under every resilience scenario (plus the
// degraded-mode scenarios) and requires the recovered run to be
// byte-identical to one that never died.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/knowledge_db.hpp"
#include "core/scheduler.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/session.hpp"
#include "obs/timeline.hpp"
#include "resilience_scenarios.hpp"
#include "runtime/journal.hpp"
#include "runtime/queue.hpp"
#include "sim/executor.hpp"
#include "sim/power_meter.hpp"
#include "util/check.hpp"
#include "util/fsio.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

namespace fs = std::filesystem;

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

/// Bit-exact textual fingerprint of a QueueReport (hexfloat doubles), for
/// byte-identity assertions.
std::string fingerprint(const runtime::QueueReport& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.makespan_s << '|' << r.mean_turnaround_s << '|'
     << r.total_energy_j << '|' << r.node_seconds_used << '|'
     << r.node_seconds_available << '|' << r.retries << '|' << r.jobs_failed
     << '|' << r.caps_reprogrammed << '|' << r.violation_s << '|'
     << r.violation_ws << '|' << r.meter_reads_rejected << '|'
     << r.redist_claw_backs << '|' << r.redist_regrants << '|'
     << r.redist_subsystem_shifts << '|' << r.redist_reclaimed_w << '|'
     << r.redist_granted_w;
  for (int n : r.crashed_nodes) os << "|crash:" << n;
  for (const auto& j : r.jobs)
    os << '\n'
       << j.app << ',' << j.parameters << ',' << j.submit_s << ','
       << j.start_s << ',' << j.end_s << ',' << j.nodes << ',' << j.budget_w
       << ',' << j.power_w << ',' << j.attempts << ',' << j.completed << ','
       << j.crashed_node;
  return os.str();
}

std::vector<runtime::QueueJob> paper_jobs() {
  std::vector<runtime::QueueJob> jobs;
  for (const auto& a : workloads::paper_benchmarks()) jobs.push_back({a, 0});
  return jobs;
}

std::string journal_text(const runtime::Journal& j) {
  std::ostringstream os;
  for (const auto& r : j.records())
    os << r.seq << ' ' << r.kind << ' ' << r.payload << '\n';
  return os.str();
}

// ------------------------------------------------------- journal basics ----

TEST(Journal, AppendAssignsContiguousSequenceAndTruncates) {
  runtime::Journal j;
  j.append("begin", "a=1");
  j.append("launch", "job=0");
  j.append("snapshot", "now=0");
  j.append("complete", "job=0");
  ASSERT_EQ(j.size(), 4u);
  EXPECT_EQ(j.records()[0].seq, 1u);
  EXPECT_EQ(j.records()[3].seq, 4u);
  ASSERT_TRUE(j.last_snapshot().has_value());
  EXPECT_EQ(*j.last_snapshot(), 2u);
  j.truncate(2);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_FALSE(j.last_snapshot().has_value());
  j.truncate(99);  // beyond the end: no-op
  EXPECT_EQ(j.size(), 2u);
}

TEST(Journal, AppendValidatesKindAndPayload) {
  runtime::Journal j;
  EXPECT_THROW(j.append("", "x"), PreconditionError);
  EXPECT_THROW(j.append("two words", "x"), PreconditionError);
  EXPECT_THROW(j.append("k", "line\nbreak"), PreconditionError);
  EXPECT_NO_THROW(j.append("k", ""));
}

TEST(Journal, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(runtime::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(runtime::crc32(""), 0x00000000u);
}

TEST(Journal, EscapeRoundTripsSpacesNewlinesAndBackslashes) {
  const std::string raw = "a b\nc\\d \\n e,f;g";
  const std::string esc = runtime::journal_escape(raw);
  EXPECT_EQ(esc.find(' '), std::string::npos);
  EXPECT_EQ(esc.find('\n'), std::string::npos);
  EXPECT_EQ(runtime::journal_unescape(esc), raw);
  EXPECT_EQ(runtime::journal_unescape(runtime::journal_escape("")), "");
}

TEST(Journal, SaveLoadRoundTripsExactly) {
  const fs::path path = fs::path(::testing::TempDir()) / "roundtrip.clipj";
  runtime::Journal j;
  j.append("begin", "budget=700 nodes=8");
  j.append("snapshot", "now=0 tl=a\\sb");
  j.append("end", "makespan=42");
  j.save(path);

  runtime::Journal loaded;
  const runtime::JournalLoadResult res = loaded.load(path);
  EXPECT_FALSE(res.salvaged);
  EXPECT_EQ(res.records, 3u);
  EXPECT_EQ(res.dropped_lines, 0u);
  ASSERT_EQ(loaded.size(), j.size());
  for (std::size_t i = 0; i < j.size(); ++i) {
    EXPECT_EQ(loaded.records()[i].seq, j.records()[i].seq);
    EXPECT_EQ(loaded.records()[i].kind, j.records()[i].kind);
    EXPECT_EQ(loaded.records()[i].payload, j.records()[i].payload);
  }
  fs::remove(path);
}

TEST(Journal, LoadSalvagesACorruptTail) {
  const fs::path path = fs::path(::testing::TempDir()) / "corrupt.clipj";
  runtime::Journal j;
  j.append("begin", "a=1");
  j.append("launch", "job=0");
  j.append("complete", "job=0");
  j.save(path);

  // Flip one payload byte of the second record: its CRC no longer matches.
  std::ifstream is(path);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  is.close();
  const std::size_t pos = text.find("job=0");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 4] = '7';
  std::ofstream(path, std::ios::trunc) << text;

  runtime::Journal loaded;
  const runtime::JournalLoadResult res = loaded.load(path);
  EXPECT_TRUE(res.salvaged);
  EXPECT_EQ(res.records, 1u);  // the valid prefix
  EXPECT_EQ(res.dropped_lines, 2u);
  EXPECT_NE(res.gap.find("checksum mismatch"), std::string::npos) << res.gap;
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.records()[0].kind, "begin");
  fs::remove(path);
}

TEST(Journal, LoadSalvagesATornLastLine) {
  const fs::path path = fs::path(::testing::TempDir()) / "torn.clipj";
  runtime::Journal j;
  j.append("begin", "a=1");
  j.append("launch", "job=0 attempt=1");
  j.save(path);

  std::ifstream is(path);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  is.close();
  // Kill mid-write of the final record: its tail (CRC included) is lost.
  std::ofstream(path, std::ios::trunc) << text.substr(0, text.size() - 8);

  runtime::Journal loaded;
  const runtime::JournalLoadResult res = loaded.load(path);
  EXPECT_TRUE(res.salvaged);
  EXPECT_EQ(res.records, 1u);
  EXPECT_NE(res.gap.find("line 3"), std::string::npos) << res.gap;
  fs::remove(path);
}

TEST(Journal, LoadRejectsMissingFileAndForeignHeader) {
  runtime::Journal j;
  EXPECT_THROW((void)j.load(fs::path(::testing::TempDir()) / "no-such.clipj"),
               PreconditionError);
  const fs::path path = fs::path(::testing::TempDir()) / "foreign.txt";
  std::ofstream(path) << "name,parameters\nfoo,bar\n";
  EXPECT_THROW((void)j.load(path), PreconditionError);
  fs::remove(path);
}

TEST(Journal, DescribeCountsRecordsByKind) {
  runtime::Journal j;
  j.append("begin", "");
  j.append("launch", "");
  j.append("launch", "");
  j.append("snapshot", "");
  const std::string d = j.describe();
  EXPECT_NE(d.find("4 records"), std::string::npos) << d;
  EXPECT_NE(d.find("(1 snapshots)"), std::string::npos) << d;
  EXPECT_NE(d.find("launch: 2"), std::string::npos) << d;
}

// ------------------------------------------------- durable persistence ----

TEST(DurableWrites, AtomicWriteReplacesContentsAndLeavesNoTemp) {
  const fs::path path =
      fs::path(::testing::TempDir()) / "fsio" / "nested" / "file.txt";
  atomic_write_file(path, "first");
  atomic_write_file(path, "second contents");
  std::ifstream is(path);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, "second contents");
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  fs::remove_all(fs::path(::testing::TempDir()) / "fsio");
}

core::KnowledgeRecord sample_record(const std::string& name) {
  core::KnowledgeRecord r;
  r.name = name;
  r.parameters = "C";
  r.perf_ratio = 1.4;
  r.time_all_s = 10.0;
  r.time_half_s = 14.0;
  r.cpu_power_all_w = 80.0;
  r.mem_power_all_w = 12.0;
  r.node_bw_gbps = 30.0;
  r.per_core_bw_gbps = 2.0;
  r.cycles_active_all = 1e9;
  return r;
}

TEST(DurableWrites, KnowledgeDbSurvivesAMidSaveKill) {
  const fs::path dir = fs::path(::testing::TempDir()) / "kdb";
  fs::create_directories(dir);
  const fs::path path = dir / "knowledge.csv";

  core::KnowledgeDb db;
  db.insert(sample_record("BT-MZ"));
  db.insert(sample_record("SP-MZ"));
  db.save(path);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));  // rename consumed it

  // A coordinator killed mid-save dies after writing part of the temp file
  // and before the rename: the published DB must be untouched.
  std::ofstream(path.string() + ".tmp") << "name,parameters\nBT-MZ";
  core::KnowledgeDb reread;
  reread.load(path);
  EXPECT_EQ(reread.size(), 2u);
  EXPECT_TRUE(reread.lookup("BT-MZ", "C").has_value());

  // The next save simply overwrites the stale temp and publishes atomically.
  db.insert(sample_record("LU-MZ"));
  db.save(path);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  reread.load(path);
  EXPECT_EQ(reread.size(), 3u);
  fs::remove_all(dir);
}

TEST(DurableWrites, KnowledgeDbRejectsATornFileWithoutPoisoningItself) {
  const fs::path dir = fs::path(::testing::TempDir()) / "kdb-torn";
  fs::create_directories(dir);
  const fs::path good = dir / "good.csv";
  const fs::path torn = dir / "torn.csv";

  core::KnowledgeDb db;
  db.insert(sample_record("BT-MZ"));
  db.save(good);

  // A prefix cut mid-row models pre-atomic-rename torn output.
  std::ifstream is(good);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  is.close();
  std::ofstream(torn) << text.substr(0, text.size() - text.size() / 3);

  core::KnowledgeDb loaded;
  loaded.load(good);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_THROW(loaded.load(torn), PreconditionError);
  // The staged load left the in-memory DB exactly as it was.
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.lookup("BT-MZ", "C").has_value());
  fs::remove_all(dir);
}

// --------------------------------------------------- journaled running ----

/// Shared substrate for queue runs: one executor and one scheduler whose
/// knowledge DB is warmed by a fault-free run, so the reference run and
/// every recovery schedule from identical cached profiles.
struct Cluster {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  runtime::QueueOptions opt;
  std::vector<runtime::QueueJob> jobs = paper_jobs();
  double horizon_s = 0.0;

  Cluster() {
    opt.cluster_budget = Watts(700.0);
    runtime::PowerAwareJobQueue warm(ex, sched, opt);
    horizon_s = warm.run(jobs).makespan_s;
  }

  struct Run {
    runtime::QueueReport report;
    std::string fp;
    std::string timeline_csv;
  };

  Run run(const fault::FaultPlan& plan, runtime::Journal* journal,
          obs::ObsSession* session = nullptr) {
    runtime::QueueEventLoop loop(ex, sched, opt, jobs);
    obs::Timeline timeline;
    loop.set_timeline(&timeline);
    std::optional<fault::FaultInjector> injector;
    if (!plan.empty()) {
      injector.emplace(plan, ex.spec().nodes);
      loop.set_fault_injector(&*injector);
    }
    if (journal != nullptr) loop.set_journal(journal);
    if (session != nullptr) loop.set_observer(session);
    Run out;
    out.report = loop.run();
    out.fp = fingerprint(out.report);
    out.timeline_csv = timeline.to_csv_string();
    return out;
  }

  Run recover(const fault::FaultPlan& plan, runtime::Journal& journal,
              obs::ObsSession* session = nullptr) {
    runtime::QueueEventLoop loop(ex, sched, opt, jobs);
    obs::Timeline timeline;
    loop.set_timeline(&timeline);
    std::optional<fault::FaultInjector> injector;
    if (!plan.empty()) {
      injector.emplace(plan, ex.spec().nodes);
      loop.set_fault_injector(&*injector);
    }
    if (session != nullptr) loop.set_observer(session);
    Run out;
    out.report = loop.recover(journal);
    out.fp = fingerprint(out.report);
    out.timeline_csv = timeline.to_csv_string();
    return out;
  }
};

Cluster& cluster() {
  static Cluster c;
  return c;
}

/// The shared catalog: 7 resilience scenarios + 3 degraded-mode ones.
std::vector<bench::Scenario> recovery_scenarios(double horizon_s) {
  return bench::make_recovery_scenarios(horizon_s);
}
constexpr int kRecoveryScenarios = 10;  // 7 catalog + 3 degraded-mode

TEST(JournaledRun, AttachingAJournalDoesNotChangeTheRun) {
  Cluster& c = cluster();
  const auto scenarios = recovery_scenarios(c.horizon_s);
  const fault::FaultPlan& plan = scenarios.back().plan;  // modes-combined
  const Cluster::Run plain = c.run(plan, nullptr);
  runtime::Journal journal;
  const Cluster::Run journaled = c.run(plan, &journal);
  EXPECT_EQ(journaled.fp, plain.fp);
  EXPECT_EQ(journaled.timeline_csv, plain.timeline_csv);
}

TEST(JournaledRun, JournalRecordsTheWholeRun) {
  Cluster& c = cluster();
  runtime::JournalOptions jopt;
  jopt.snapshot_every = 5;  // dense: the snapshot counter must tick
  runtime::Journal journal(jopt);
  obs::ObsSession session;
  const Cluster::Run run = c.run({}, &journal, &session);
  ASSERT_FALSE(journal.empty());
  const auto& records = journal.records();
  EXPECT_EQ(records.front().kind, "begin");
  EXPECT_EQ(records[1].kind, "admit");  // one record, the whole job stream
  EXPECT_EQ(records.back().kind, "end");
  int launches = 0;
  int completes = 0;
  for (const auto& r : records) {
    launches += r.kind == "launch" ? 1 : 0;
    completes += r.kind == "complete" ? 1 : 0;
  }
  EXPECT_EQ(launches, static_cast<int>(c.jobs.size()));
  EXPECT_EQ(completes, static_cast<int>(run.report.jobs_completed()));
  const auto* n = session.metrics().find_counter("journal.records");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->value(), journal.size());
  const auto* snaps = session.metrics().find_counter("journal.snapshots");
  ASSERT_NE(snaps, nullptr);
  EXPECT_GE(snaps->value(), 1u);
}

// The tentpole property: kill the coordinator at every event boundary of
// every scenario; recovery must finish the run with byte-identical report
// and timeline, and leave the journal byte-identical to the uninterrupted
// run's.
class KillPoint : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Scenarios, KillPoint,
                         ::testing::Range(0, kRecoveryScenarios));

TEST_P(KillPoint, EveryEventBoundaryRecoversByteIdentically) {
  Cluster& c = cluster();
  const auto scenarios = recovery_scenarios(c.horizon_s);
  const bench::Scenario& s =
      scenarios[static_cast<std::size_t>(GetParam())];

  runtime::JournalOptions jopt;
  jopt.snapshot_every = 5;  // dense snapshots: more distinct restore points
  runtime::Journal reference(jopt);
  const Cluster::Run ref = c.run(s.plan, &reference);
  ASSERT_EQ(ref.report.jobs_completed(), c.jobs.size()) << s.name;
  const std::string ref_journal = journal_text(reference);

  for (std::size_t kill = 0; kill <= reference.size(); ++kill) {
    runtime::Journal j = reference;
    j.truncate(kill);
    const Cluster::Run rec = c.recover(s.plan, j);
    ASSERT_EQ(rec.fp, ref.fp) << s.name << " kill@" << kill;
    ASSERT_EQ(rec.timeline_csv, ref.timeline_csv)
        << s.name << " kill@" << kill;
    ASSERT_EQ(journal_text(j), ref_journal) << s.name << " kill@" << kill;
  }
}

TEST(Recovery, CountersAccountReplayAndRecovery) {
  Cluster& c = cluster();
  const auto scenarios = recovery_scenarios(c.horizon_s);
  const fault::FaultPlan& plan = scenarios[1].plan;  // crash-1
  runtime::JournalOptions jopt;
  jopt.snapshot_every = 5;  // dense: recovery must replay, not restart
  runtime::Journal journal(jopt);
  const Cluster::Run ref = c.run(plan, &journal);
  ASSERT_TRUE(journal.last_snapshot().has_value());

  runtime::Journal j = journal;
  // Die one record past the last snapshot: recovery must restore it and
  // replay (at least) that one surviving record before resuming.
  const std::size_t snap = *journal.last_snapshot();
  ASSERT_LE(snap + 2, journal.size());
  j.truncate(snap + 2);
  obs::ObsSession session;
  const Cluster::Run rec = c.recover(plan, j, &session);
  EXPECT_EQ(rec.fp, ref.fp);
  const auto* recoveries = session.metrics().find_counter("journal.recoveries");
  ASSERT_NE(recoveries, nullptr);
  EXPECT_EQ(recoveries->value(), 1u);
  const auto* replayed = session.metrics().find_counter("journal.replayed");
  ASSERT_NE(replayed, nullptr);
  EXPECT_GE(replayed->value(), 1u);
  EXPECT_EQ(session.metrics().find_counter("journal.gaps"), nullptr);
}

TEST(Recovery, DivergentSuffixIsTruncatedAsALoggedGap) {
  Cluster& c = cluster();
  const auto scenarios = recovery_scenarios(c.horizon_s);
  const fault::FaultPlan& plan = scenarios[1].plan;  // crash-1
  runtime::JournalOptions jopt;
  jopt.snapshot_every = 5;  // dense: the divergent record must follow a snapshot
  runtime::Journal journal(jopt);
  const Cluster::Run ref = c.run(plan, &journal);
  ASSERT_TRUE(journal.last_snapshot().has_value());

  // Corrupt the journal *after* the last snapshot in a way the CRC cannot
  // catch (the record is well-formed, just wrong): replay must detect the
  // divergence, salvage the prefix, and still finish byte-identically.
  runtime::Journal j = journal;
  j.truncate(*journal.last_snapshot() + 1);
  j.append("launch", "job=0 attempt=9 nodes=0 slice=1 end=2 crashed=0");

  obs::ObsSession session;
  const Cluster::Run rec = c.recover(plan, j, &session);
  EXPECT_EQ(rec.fp, ref.fp);
  const auto* gaps = session.metrics().find_counter("journal.gaps");
  ASSERT_NE(gaps, nullptr);
  EXPECT_EQ(gaps->value(), 1u);
  EXPECT_EQ(journal_text(j), journal_text(journal));
}

TEST(Recovery, RejectsAJournalFromADifferentConfiguration) {
  Cluster& c = cluster();
  runtime::Journal journal;
  (void)c.run({}, &journal);

  // Different budget: the begin record no longer matches.
  runtime::QueueOptions other = c.opt;
  other.cluster_budget = Watts(800.0);
  runtime::QueueEventLoop wrong_budget(c.ex, c.sched, other, c.jobs);
  obs::Timeline tl1;
  wrong_budget.set_timeline(&tl1);
  runtime::Journal j1 = journal;
  EXPECT_THROW((void)wrong_budget.recover(j1), PreconditionError);

  // Different job stream: the admit records no longer match.
  std::vector<runtime::QueueJob> fewer(c.jobs.begin(), c.jobs.end() - 1);
  runtime::QueueEventLoop wrong_jobs(c.ex, c.sched, c.opt, fewer);
  obs::Timeline tl2;
  wrong_jobs.set_timeline(&tl2);
  runtime::Journal j2 = journal;
  EXPECT_THROW((void)wrong_jobs.recover(j2), PreconditionError);
}

TEST(Recovery, EmptyJournalRecoversByRestartingFromScratch) {
  Cluster& c = cluster();
  const Cluster::Run plain = c.run({}, nullptr);
  runtime::Journal j;
  const Cluster::Run rec = c.recover({}, j);
  EXPECT_EQ(rec.fp, plain.fp);
  ASSERT_FALSE(j.empty());
  EXPECT_EQ(j.records().front().kind, "begin");
  EXPECT_EQ(j.records().back().kind, "end");
}

// Redistribution emits its own journal record kinds (tick/shift/grant/claw)
// and snapshot tokens (det=/claw-scheduled); a redist-enabled run with
// crashes must recover byte-identically from every snapshot boundary too.
TEST(Recovery, RedistributionEnabledRunsRecoverByteIdentically) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  opt.redist.enabled = true;
  const std::vector<runtime::QueueJob> jobs = paper_jobs();
  double horizon_s = 0.0;
  {
    runtime::PowerAwareJobQueue warm(ex, sched, opt);
    horizon_s = warm.run(jobs).makespan_s;
  }
  fault::FaultPlan plan;
  plan.crashes.push_back({2, 0.25 * horizon_s});
  plan.crashes.push_back({6, 0.55 * horizon_s});

  const auto drive = [&](runtime::Journal* journal,
                         runtime::Journal* resume) {
    runtime::QueueEventLoop loop(ex, sched, opt, jobs);
    obs::Timeline timeline;
    fault::FaultInjector injector(plan, ex.spec().nodes);
    loop.set_timeline(&timeline);
    loop.set_fault_injector(&injector);
    if (journal != nullptr) loop.set_journal(journal);
    const runtime::QueueReport r =
        resume != nullptr ? loop.recover(*resume) : loop.run();
    return fingerprint(r) + '\n' + timeline.to_csv_string();
  };

  runtime::JournalOptions jopt;
  jopt.snapshot_every = 5;  // dense: the kill sweep must cross snapshots
  runtime::Journal reference(jopt);
  const std::string ref = drive(&reference, nullptr);
  const std::string ref_journal = journal_text(reference);
  bool saw_redist_kind = false;
  for (const auto& r : reference.records())
    saw_redist_kind |= r.kind == "tick" || r.kind == "grant" ||
                       r.kind == "claw-scheduled" || r.kind == "shift";
  EXPECT_TRUE(saw_redist_kind)
      << "plan produced no redistribution records; test covers nothing";

  // Every 7th boundary plus the very end: cheap but still crosses several
  // snapshots and the redistribution record kinds.
  for (std::size_t kill = 0; kill <= reference.size(); kill += 7) {
    runtime::Journal j = reference;
    j.truncate(kill);
    ASSERT_EQ(drive(nullptr, &j), ref) << "kill@" << kill;
    ASSERT_EQ(journal_text(j), ref_journal) << "kill@" << kill;
  }
  runtime::Journal j = reference;
  j.truncate(reference.size());
  EXPECT_EQ(drive(nullptr, &j), ref);
}

// ----------------------------------------------------- degraded modes ----

TEST(DegradedModes, PlansWithoutModeEventsNeverLeaveNormal) {
  Cluster& c = cluster();
  fault::FaultPlan plan;
  plan.crashes.push_back({3, 0.3 * c.horizon_s});
  runtime::QueueEventLoop loop(c.ex, c.sched, c.opt, c.jobs);
  obs::Timeline timeline;
  obs::ObsSession session;
  fault::FaultInjector injector(plan, c.ex.spec().nodes);
  loop.set_timeline(&timeline);
  loop.set_observer(&session);
  loop.set_fault_injector(&injector);
  (void)loop.run();
  EXPECT_EQ(loop.mode(), runtime::DegradedMode::kNormal);
  EXPECT_TRUE(timeline.events("mode").empty());
  EXPECT_TRUE(timeline.samples("mode.current").empty());
  EXPECT_EQ(session.metrics().find_counter("mode.transitions"), nullptr);
}

TEST(DegradedModes, MeterBlackoutFreezesTheGuardAndLogsTheMode) {
  Cluster& c = cluster();
  // A cap violation the guard normally claws back within its reaction
  // latency...
  fault::FaultPlan lit;
  lit.cap_violations.push_back(
      {0, 0.1 * c.horizon_s, 0.5 * c.horizon_s, 90.0});
  const Cluster::Run with_guard = c.run(lit, nullptr);
  EXPECT_GE(with_guard.report.caps_reprogrammed, 1);

  // ...goes unanswered while every meter is dark: nothing trustworthy to
  // read, so no overshoot detection, no claw-back, more violation seconds.
  fault::FaultPlan dark = lit;
  dark.meter_blackouts.push_back({0.05 * c.horizon_s, 0.9 * c.horizon_s});
  obs::ObsSession session;
  runtime::QueueEventLoop loop(c.ex, c.sched, c.opt, c.jobs);
  obs::Timeline timeline;
  fault::FaultInjector injector(dark, c.ex.spec().nodes);
  loop.set_timeline(&timeline);
  loop.set_observer(&session);
  loop.set_fault_injector(&injector);
  const runtime::QueueReport r = loop.run();
  EXPECT_EQ(r.caps_reprogrammed, 0);
  EXPECT_GT(r.violation_s, with_guard.report.violation_s);
  ASSERT_FALSE(timeline.events("mode").empty());
  EXPECT_EQ(timeline.events("mode").front().label, "METER_BLACKOUT");
  const auto* transitions = session.metrics().find_counter("mode.transitions");
  ASSERT_NE(transitions, nullptr);
  EXPECT_GE(transitions->value(), 1u);
  const auto* blackouts = session.metrics().find_counter("fault.blackouts");
  ASSERT_NE(blackouts, nullptr);
  EXPECT_EQ(blackouts->value(), 1u);
}

TEST(DegradedModes, BudgetCutClawsBackProportionallyAndPausesAdmission) {
  Cluster& c = cluster();
  fault::FaultPlan plan;
  const fault::BudgetCut cut{0.2 * c.horizon_s, 0.5 * c.horizon_s, 0.5};
  plan.budget_cuts.push_back(cut);

  obs::ObsSession session;
  runtime::QueueEventLoop loop(c.ex, c.sched, c.opt, c.jobs);
  obs::Timeline timeline;
  fault::FaultInjector injector(plan, c.ex.spec().nodes);
  loop.set_timeline(&timeline);
  loop.set_observer(&session);
  loop.set_fault_injector(&injector);
  const runtime::QueueReport r = loop.run();

  // Every job still completes: a brownout slows the cluster, it does not
  // lose work.
  EXPECT_EQ(r.jobs_completed(), c.jobs.size());
  bool entered = false;
  for (const auto& e : timeline.events("mode"))
    entered = entered || e.label == "BUDGET_BROWNOUT";
  EXPECT_TRUE(entered);
  const auto* claws = session.metrics().find_counter("mode.brownout_claws");
  ASSERT_NE(claws, nullptr);
  EXPECT_GE(claws->value(), 1u);
  const auto* cuts = session.metrics().find_counter("fault.budget_cuts");
  ASSERT_NE(cuts, nullptr);
  EXPECT_EQ(cuts->value(), 1u);
  // Admission pause: no job starts inside the cut window.
  for (const auto& job : r.jobs) {
    const bool inside = job.start_s >= cut.at_s &&
                        job.start_s < cut.at_s + cut.duration_s;
    EXPECT_FALSE(inside && job.attempts == 1)
        << job.app << " started at " << job.start_s
        << " inside the brownout window";
  }
}

TEST(DegradedModes, BrownoutTakesDisplayPrecedenceOverBlackout) {
  Cluster& c = cluster();
  fault::FaultPlan plan;
  plan.meter_blackouts.push_back({0.1 * c.horizon_s, 0.6 * c.horizon_s});
  plan.budget_cuts.push_back({0.2 * c.horizon_s, 0.2 * c.horizon_s, 0.7});

  runtime::QueueEventLoop loop(c.ex, c.sched, c.opt, c.jobs);
  obs::Timeline timeline;
  fault::FaultInjector injector(plan, c.ex.spec().nodes);
  loop.set_timeline(&timeline);
  loop.set_fault_injector(&injector);
  (void)loop.run();

  // The "mode" stream carries transition labels and brownout-claw events;
  // keep only the transitions (claws precede the BUDGET_BROWNOUT label,
  // which update_mode emits after applying the new budget).
  std::vector<std::string> labels;
  for (const auto& e : timeline.events("mode"))
    if (e.label.rfind("brownout-claw", 0) != 0) labels.push_back(e.label);
  ASSERT_GE(labels.size(), 3u);
  EXPECT_EQ(labels[0], "METER_BLACKOUT");
  EXPECT_EQ(labels[1], "BUDGET_BROWNOUT");
  // The cut ends inside the blackout: the machine falls back to blackout,
  // not straight to normal.
  EXPECT_EQ(labels[2], "METER_BLACKOUT");
}

// ------------------------------------------------------- facade wiring ----

TEST(Facade, PowerAwareJobQueueForwardsTheJournal) {
  Cluster& c = cluster();
  runtime::PowerAwareJobQueue queue(c.ex, c.sched, c.opt);
  runtime::Journal journal;
  queue.set_journal(&journal);
  const runtime::QueueReport direct = queue.run(c.jobs);
  ASSERT_FALSE(journal.empty());
  EXPECT_EQ(journal.records().back().kind, "end");
  const Cluster::Run plain = c.run({}, nullptr);
  EXPECT_EQ(fingerprint(direct), plain.fp);
}

}  // namespace
}  // namespace clip
