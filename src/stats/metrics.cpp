#include "stats/metrics.hpp"

#include <cmath>

#include "util/check.hpp"

namespace clip::stats {

namespace {
void check_sizes(const std::vector<double>& truth,
                 const std::vector<double>& pred) {
  CLIP_REQUIRE(!truth.empty(), "metrics need at least one sample");
  CLIP_REQUIRE(truth.size() == pred.size(), "truth/pred size mismatch");
}
}  // namespace

double mean_absolute_error(const std::vector<double>& truth,
                           const std::vector<double>& pred) {
  check_sizes(truth, pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    acc += std::fabs(truth[i] - pred[i]);
  return acc / static_cast<double>(truth.size());
}

double mean_absolute_percentage_error(const std::vector<double>& truth,
                                      const std::vector<double>& pred) {
  check_sizes(truth, pred);
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0.0) continue;
    acc += std::fabs((truth[i] - pred[i]) / truth[i]);
    ++counted;
  }
  CLIP_REQUIRE(counted > 0, "MAPE undefined: all truth values are zero");
  return acc / static_cast<double>(counted);
}

double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& pred) {
  check_sizes(truth, pred);
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double rmse(const std::vector<double>& truth,
            const std::vector<double>& pred) {
  check_sizes(truth, pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    acc += (truth[i] - pred[i]) * (truth[i] - pred[i]);
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

}  // namespace clip::stats
