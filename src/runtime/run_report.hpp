// Run records and run reports — the persistence and reporting side of the
// cluster flight recorder (obs/timeline.hpp).
//
// A *run record* is a directory capturing one queue run: the timeline CSV,
// the per-job outcomes, the report scalars (including fault::BudgetGuard's
// ground-truth violation accounting — see docs/robustness.md), the decision
// pipeline's spans, and optionally a Prometheus metrics snapshot. Everything
// is CSV / text with shortest-exact double formatting, so a record written
// from a deterministic run is byte-stable and round-trips exactly.
//
// A *run report* renders a record back for humans (Markdown) or tooling
// (JSON): summary scalars, the per-node power timeline resampled to a small
// table, per-node energy integrals, the job completion/retry table, the
// fault event log, and the slowest decision-pipeline spans. Rendering is a
// pure function of the record directory — repeat invocations are
// byte-identical (`clipctl report` asserts nothing and recomputes nothing
// stochastic). Format reference: docs/observability.md.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/timeline.hpp"
#include "runtime/queue.hpp"

namespace clip::runtime {

/// File names inside a run-record directory.
struct RunRecordFiles {
  static constexpr const char* kTimeline = "timeline.csv";
  static constexpr const char* kJobs = "jobs.csv";
  static constexpr const char* kSummary = "summary.csv";
  static constexpr const char* kSpans = "spans.csv";
  static constexpr const char* kMetrics = "metrics.prom";
  /// Write-ahead journal (runtime/journal.hpp) — written by `clipctl record`,
  /// consumed by `clipctl journal` / `clipctl recover`. Not produced by
  /// write_run_record (the journal is live state, saved by its owner).
  static constexpr const char* kJournal = "journal.clipj";
};

/// Persist one queue run into `dir` (created if needed): timeline.csv,
/// jobs.csv, summary.csv (key/value scalars incl. violation accounting),
/// spans.csv, and — when `metrics` is non-null — metrics.prom.
void write_run_record(const std::filesystem::path& dir, Watts cluster_budget,
                      const QueueReport& report,
                      const obs::Timeline& timeline,
                      const std::vector<obs::SpanRecord>& spans = {},
                      const obs::MetricsRegistry* metrics = nullptr);

struct RunReportOptions {
  int power_points = 12;  ///< instants in the per-node power table
  int top_spans = 5;      ///< rows in the slowest-spans table
};

/// Render a run record as a deterministic Markdown report.
[[nodiscard]] std::string render_markdown_report(
    const std::filesystem::path& dir,
    RunReportOptions options = RunReportOptions{});

/// Render a run record as a deterministic JSON report. Doubles print
/// shortest-exact, so e.g. `violation_s` equals the recorded
/// BudgetGuard figure bit-for-bit after parse-back.
[[nodiscard]] std::string render_json_report(
    const std::filesystem::path& dir,
    RunReportOptions options = RunReportOptions{});

/// Render one job's causal story (Markdown): its jobs.csv row, every
/// flight-recorder event attributable to it (admit/start/finish/crash/
/// requeue/fail on the `job` stream, claw/regrant/shift on `redist`,
/// brownout claws on `mode`), the `journal` stream's recovery/gap events,
/// and — when journal.clipj sits in the record directory — every journal
/// record carrying the job's index. Attribution uses the job's trace id
/// when the record was written with tracing on (QueueOptions::trace),
/// falling back to app-name matching for untraced records. `clipctl
/// report --job N` prints this.
[[nodiscard]] std::string render_job_story(const std::filesystem::path& dir,
                                           std::size_t job_index);

}  // namespace clip::runtime
