#include "workloads/random.hpp"

#include <atomic>
#include <string>

namespace clip::workloads {

WorkloadSignature random_signature(Rng& rng) {
  WorkloadSignature w;
  static std::atomic<int> counter{0};
  w.name = "random-" + std::to_string(counter.fetch_add(1));
  w.parameters = "fuzz";
  w.node_base_time_s = rng.uniform(30.0, 500.0);
  w.serial_fraction = rng.uniform(0.0, 0.05);
  w.fork_overhead_s = rng.uniform(0.0, 3e-3);
  w.shared_data_fraction = rng.uniform(0.0, 0.5);
  w.compute_intensity = rng.uniform(0.4, 1.1);
  w.ipc = rng.uniform(0.5, 3.0);
  w.icache_pressure = rng.uniform(0.0, 0.3);
  w.write_fraction = rng.uniform(0.1, 0.6);
  w.comm_latency_s = rng.uniform(0.0, 0.05);
  w.comm_surface_coeff = rng.uniform(0.0, 0.05);
  w.has_predefined_process_counts = rng.uniform() < 0.5;

  const double archetype = rng.uniform();
  if (archetype < 0.34) {
    // Compute-bound: little traffic, no contention.
    w.memory_boundedness = rng.uniform(0.0, 0.15);
    w.bw_per_core_gbps =
        w.memory_boundedness > 0.0 ? rng.uniform(0.2, 2.0) : 0.0;
    w.sync_coeff_s = 0.0;
    w.expected_class = ScalabilityClass::kLinear;
  } else if (archetype < 0.67) {
    // Bandwidth-saturating.
    w.memory_boundedness = rng.uniform(0.35, 0.9);
    w.bw_per_core_gbps = rng.uniform(4.0, 11.0);
    w.sync_coeff_s = 0.0;
    w.expected_class = ScalabilityClass::kLogarithmic;
  } else {
    // Contended.
    w.memory_boundedness = rng.uniform(0.2, 0.7);
    w.bw_per_core_gbps = rng.uniform(3.0, 9.0);
    w.sync_coeff_s = rng.uniform(1e-4, 5e-4);
    w.sync_exponent = rng.uniform(1.7, 2.3);
    w.expected_class = ScalabilityClass::kParabolic;
  }
  w.validate();
  return w;
}

std::vector<WorkloadSignature> random_signatures(std::uint64_t seed,
                                                 int count) {
  Rng rng(seed);
  std::vector<WorkloadSignature> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(random_signature(rng));
  return out;
}

}  // namespace clip::workloads
