// Power-aware job queue — operating the cluster on a stream of jobs.
//
// The paper's execution module launches single jobs "through our job
// scheduler" (§IV-B3); this queue is that scheduler: it packs multiple jobs
// onto the cluster at once while the *sum* of their power allocations never
// exceeds the cluster budget (the defining constraint of power-bounded
// computing — cf. POWsched [11], which shifts power between concurrent
// applications).
//
// Policy (FCFS with optional backfill), evaluated event-driven:
//   * a job may start when free nodes and free watts remain;
//   * CLIP first shapes the job as if the free watts were all its own, then
//     is constrained to the free nodes with a proportional budget slice;
//   * completions free nodes and watts, unblocking the queue.
#pragma once

#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "obs/session.hpp"
#include "sim/executor.hpp"
#include "util/units.hpp"
#include "workloads/signature.hpp"

namespace clip::runtime {

struct QueueOptions {
  Watts cluster_budget{1000.0};
  bool backfill = true;          ///< allow later jobs to jump a blocked head
  double min_node_power_w = 45.0;  ///< below this a node is not worth waking
};

/// One job's trajectory through the queue.
struct QueuedJobResult {
  std::string app;
  std::string parameters;
  double submit_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  int nodes = 0;
  double budget_w = 0.0;   ///< power slice while running
  double power_w = 0.0;    ///< measured draw
  [[nodiscard]] double turnaround_s() const { return end_s - submit_s; }
  [[nodiscard]] double wait_s() const { return start_s - submit_s; }
};

struct QueueReport {
  std::vector<QueuedJobResult> jobs;
  double makespan_s = 0.0;
  double mean_turnaround_s = 0.0;
  double total_energy_j = 0.0;
  double node_seconds_used = 0.0;
  double node_seconds_available = 0.0;  ///< makespan * cluster nodes

  [[nodiscard]] double node_utilization() const {
    return node_seconds_available > 0.0
               ? node_seconds_used / node_seconds_available
               : 0.0;
  }
};

class PowerAwareJobQueue {
 public:
  PowerAwareJobQueue(sim::SimExecutor& executor,
                     core::ClipScheduler& scheduler,
                     QueueOptions options = QueueOptions{});

  /// Run all jobs (submitted at t=0, FCFS order) to completion and report.
  [[nodiscard]] QueueReport run(
      const std::vector<workloads::WorkloadSignature>& jobs);

  /// Attach an observability session (nullptr detaches): `queue.depth` /
  /// `queue.running` gauges track the event loop, each start attempt emits
  /// a "queue.try_start" span, and per-job waits (simulated seconds, so
  /// deterministic) feed the `queue.job_wait_s` histogram.
  void set_observer(obs::ObsSession* obs) { obs_ = obs; }

 private:
  sim::SimExecutor* executor_;
  core::ClipScheduler* scheduler_;
  QueueOptions options_;
  obs::ObsSession* obs_ = nullptr;
};

/// Reference policy: one job at a time with the whole budget (what a
/// conventional power-bounded site does). Used by the throughput bench.
[[nodiscard]] QueueReport run_serially(
    sim::SimExecutor& executor, core::ClipScheduler& scheduler,
    Watts cluster_budget,
    const std::vector<workloads::WorkloadSignature>& jobs);

}  // namespace clip::runtime
