// The application execution module (paper §IV-B3): the user-facing entry
// point that checks the knowledge database, invokes smart profiling and the
// recommendation pipeline when needed, generates the launch script, and
// executes the job on the (simulated) power-bounded cluster.
#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "core/scheduler.hpp"
#include "obs/session.hpp"
#include "obs/trace_context.hpp"
#include "runtime/job.hpp"
#include "sim/executor.hpp"

namespace clip::runtime {

class Launcher {
 public:
  /// `db_path`: optional knowledge-database file, loaded when it exists and
  /// saved after every new characterization. A corrupt or truncated file is
  /// logged and skipped — the launcher starts with an empty database rather
  /// than dying (see db_load_error()).
  Launcher(sim::SimExecutor& executor,
           const std::vector<workloads::WorkloadSignature>& training_suite,
           std::optional<std::filesystem::path> db_path = std::nullopt,
           core::SchedulerOptions options = core::SchedulerOptions{});

  /// Schedule with CLIP and execute. If the decision pipeline throws a
  /// PreconditionError (corrupt knowledge record, insane profile inputs),
  /// the job still runs, on a conservative half-node-all-core allocation;
  /// the result's method reads "CLIP-fallback" and `runtime.fallbacks` is
  /// counted. User errors (invalid app, non-positive budget) still throw.
  [[nodiscard]] JobResult run(const JobSpec& spec);

  /// As run(spec), carrying a causal trace context: when `trace` is valid
  /// the "runtime.job" span gains `trace_id` / `span_id` args, so the
  /// launch shows up on the job's track in the Chrome-trace export
  /// (obs::group_spans_by_trace) next to its queue/requeue spans. An
  /// invalid context behaves exactly like the untraced overload.
  [[nodiscard]] JobResult run(const JobSpec& spec,
                              const obs::TraceContext& trace);

  /// The launch script for a job (planning only, no execution).
  [[nodiscard]] std::string plan_script(const JobSpec& spec);

  [[nodiscard]] core::ClipScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] sim::SimExecutor& executor() { return *executor_; }

  /// Attach an observability session (nullptr detaches), forwarded to the
  /// owned scheduler: one "runtime.job" span and a `runtime.jobs` count per
  /// launched job. The executor is shared with the caller, who decides
  /// separately whether to observe it.
  void set_observer(obs::ObsSession* obs);

  /// Why the knowledge database failed to load at construction; empty when
  /// it loaded fine (or no db_path was given / the file didn't exist).
  [[nodiscard]] const std::string& db_load_error() const {
    return db_load_error_;
  }

 private:
  void persist();
  [[nodiscard]] sim::ClusterConfig fallback_plan(const JobSpec& spec) const;

  sim::SimExecutor* executor_;
  core::ClipScheduler scheduler_;
  std::optional<std::filesystem::path> db_path_;
  std::string db_load_error_;
  obs::ObsSession* obs_ = nullptr;
};

}  // namespace clip::runtime
