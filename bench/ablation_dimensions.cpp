// Ablation study — how much each CLIP design dimension contributes
// (DESIGN.md §4). Variants:
//   full            — the complete framework;
//   strict-alg1     — literal Algorithm 1 node counts instead of the scored
//                     candidate search of §III-B1;
//   no-validation   — skip the third sample configuration;
//   threshold-0.6 / threshold-0.8 — classification-threshold sensitivity;
//   no-var-coord    — disable inter-node variability coordination (evaluated
//                     on a heterogeneous cluster where it matters).
#include <iostream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "util/strings.hpp"

using namespace clip;

namespace {

double mean_relative_performance(sim::SimExecutor& ex,
                                 core::SchedulerOptions options,
                                 const std::vector<double>& budgets) {
  core::ClipScheduler sched(ex, workloads::training_benchmarks(), options);
  baselines::AllInScheduler reference(ex.spec());
  double acc = 0.0;
  int count = 0;
  for (const auto& w : workloads::paper_benchmarks()) {
    const double ref_time =
        ex.run_exact(w, reference.plan(w, Watts(1e6))).time.value();
    for (double b : budgets) {
      const auto d = sched.schedule(w, Watts(b));
      acc += ref_time / ex.run_exact(w, d.cluster).time.value();
      ++count;
    }
  }
  return acc / count;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  const std::vector<double> budgets =
      ctx.budgets_or({600.0, 800.0, 1000.0, 1400.0});

  Table t({"variant", "mean relative performance", "vs full"});
  t.set_title("Ablation — contribution of each CLIP design dimension");

  sim::SimExecutor ex = bench::make_testbed();
  ctx.attach(ex);
  const double full =
      mean_relative_performance(ex, core::SchedulerOptions{}, budgets);
  t.add_row({"full CLIP", format_double(full, 3), "--"});

  {
    core::SchedulerOptions opt;
    opt.allocator.strict_algorithm1 = true;
    const double v = mean_relative_performance(ex, opt, budgets);
    t.add_row({"strict Algorithm 1 node counts", format_double(v, 3),
               format_percent(v / full - 1.0)});
  }
  {
    core::SchedulerOptions opt;
    opt.take_validation_sample = false;
    const double v = mean_relative_performance(ex, opt, budgets);
    t.add_row({"no validation sample (2 profiles)", format_double(v, 3),
               format_percent(v / full - 1.0)});
  }
  for (double threshold : {0.6, 0.8}) {
    core::SchedulerOptions opt;
    opt.classifier.linear_below = threshold;
    const double v = mean_relative_performance(ex, opt, budgets);
    t.add_row({"classification threshold " + format_double(threshold, 1),
               format_double(v, 3), format_percent(v / full - 1.0)});
  }

  // Variability coordination: evaluated on a heterogeneous cluster.
  {
    sim::MachineSpec spec;
    spec.variability_sigma = 0.08;
    sim::MeterOptions noise;
    sim::SimExecutor hetero(spec, noise);
    ctx.attach(hetero);
    const double with_coord = mean_relative_performance(
        hetero, core::SchedulerOptions{}, budgets);
    core::SchedulerOptions opt;
    opt.variability.activation_threshold = 1e9;  // never engages
    const double without =
        mean_relative_performance(hetero, opt, budgets);
    t.add_row({"heterogeneous cluster, with variability coordination",
               format_double(with_coord, 3), "--"});
    t.add_row({"heterogeneous cluster, WITHOUT coordination",
               format_double(without, 3),
               format_percent(without / with_coord - 1.0)});
  }

  ctx.print(t);
  return 0;
}
