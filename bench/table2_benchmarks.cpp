// Table II — the benchmark list: description stand-ins, parameters, workload
// pattern and the *measured* scalability type (classified by the CLIP
// pipeline, which must agree with the paper's column).
#include <iostream>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/profiler.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  core::SmartProfiler profiler(ex);
  const core::ScalabilityClassifier classifier;

  Table t({"Benchmark", "Parameters", "Workload Pattern",
           "Scalability (paper)", "Scalability (measured)", "half/all ratio",
           "match"});
  t.set_title("Table II — benchmarks used in this study");
  int matches = 0;
  const auto& suite = workloads::paper_benchmarks();
  for (const auto& w : suite) {
    const auto p = profiler.profile(w);
    const auto cls = classifier.classify(p);
    const bool ok = cls == w.expected_class;
    matches += ok;
    t.add_row({w.name, w.parameters, workloads::to_string(w.pattern),
               workloads::to_string(w.expected_class),
               workloads::to_string(cls),
               format_double(p.perf_ratio_half_over_all, 3),
               ok ? "yes" : "NO"});
  }
  ctx.print(t);
  std::cout << matches << "/" << suite.size()
            << " benchmarks classified as in the paper's Table II.\n";
  return 0;
}
