// Tests for runtime power redistribution (runtime/redistribution.hpp and its
// integration into the power-aware queue): slack detection from ring-bounded
// samples, phase lookup, claw-back sizing and the claw-vs-crash race,
// re-grant admission against the facility cap, PKG→DRAM subsystem shifts,
// and the byte-identity contract with the feature disabled. All runs are
// deterministic — see docs/power-redistribution.md.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "core/scheduler.hpp"
#include "fault/budget_guard.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/session.hpp"
#include "obs/timeline.hpp"
#include "runtime/queue.hpp"
#include "runtime/redistribution.hpp"
#include "sim/config.hpp"
#include "sim/executor.hpp"
#include "sim/power_meter.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

/// Bit-exact textual fingerprint of a QueueReport (hexfloat doubles), for
/// byte-identity assertions.
std::string fingerprint(const runtime::QueueReport& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.makespan_s << '|' << r.mean_turnaround_s << '|'
     << r.total_energy_j << '|' << r.node_seconds_used << '|'
     << r.node_seconds_available << '|' << r.retries << '|' << r.jobs_failed
     << '|' << r.caps_reprogrammed << '|' << r.violation_s << '|'
     << r.violation_ws << '|' << r.meter_reads_rejected << '|'
     << r.redist_claw_backs << '|' << r.redist_regrants << '|'
     << r.redist_subsystem_shifts << '|' << r.redist_reclaimed_w << '|'
     << r.redist_granted_w;
  for (int n : r.crashed_nodes) os << "|crash:" << n;
  for (const auto& j : r.jobs)
    os << '\n'
       << j.app << ',' << j.parameters << ',' << j.submit_s << ','
       << j.start_s << ',' << j.end_s << ',' << j.nodes << ',' << j.budget_w
       << ',' << j.power_w << ',' << j.attempts << ',' << j.completed << ','
       << j.crashed_node;
  return os.str();
}

struct QueueRun {
  runtime::QueueReport report;
  std::string report_fp;
};

/// One self-contained queue run: fresh executor/scheduler/queue so repeated
/// runs share no state.
QueueRun run_queue(const std::vector<runtime::QueueJob>& jobs,
                   runtime::QueueOptions opt,
                   const fault::FaultPlan* plan = nullptr,
                   obs::ObsSession* session = nullptr,
                   obs::Timeline* timeline = nullptr) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  core::ClipScheduler sched{ex, workloads::training_benchmarks()};
  runtime::PowerAwareJobQueue queue(ex, sched, opt);
  if (session != nullptr) queue.set_observer(session);
  if (timeline != nullptr) queue.set_timeline(timeline);
  std::optional<fault::FaultInjector> injector;
  if (plan != nullptr) {
    injector.emplace(*plan, ex.spec().nodes);
    queue.set_fault_injector(&*injector);
  }
  QueueRun out;
  out.report = queue.run(jobs);
  out.report_fp = fingerprint(out.report);
  return out;
}

std::vector<runtime::QueueJob> wrap(
    const std::vector<workloads::WorkloadSignature>& apps) {
  std::vector<runtime::QueueJob> jobs;
  for (const auto& a : apps) jobs.push_back({a, 0});
  return jobs;
}

// ---------------------------------------------------------------- options ----

TEST(RedistOptions, ValidateRejectsBadValues) {
  runtime::RedistributionOptions o;
  EXPECT_NO_THROW(o.validate());
  o.period_s = 0.0;
  EXPECT_THROW(o.validate(), PreconditionError);
  o = {};
  o.headroom_frac = 1.0;
  EXPECT_THROW(o.validate(), PreconditionError);
  o = {};
  o.window_samples = 0;
  EXPECT_THROW(o.validate(), PreconditionError);
  o = {};
  o.min_claw_w = 0.0;
  EXPECT_THROW(o.validate(), PreconditionError);
}

TEST(RedistOptions, DisabledByDefault) {
  EXPECT_FALSE(runtime::QueueOptions{}.redist.enabled);
}

// --------------------------------------------------------- slack detector ----

TEST(SlackDetector, NoSamplesMeansNoSlack) {
  runtime::RedistributionOptions o;
  runtime::SlackDetector d(o);
  EXPECT_EQ(d.node_slack_w(0, 100.0), 0.0);
}

TEST(SlackDetector, JudgesAgainstMaxOfRecentWindow) {
  runtime::RedistributionOptions o;
  o.headroom_frac = 0.08;
  o.window_samples = 3;
  runtime::SlackDetector d(o);
  d.observe(0, 1.0, 50.0);
  d.observe(0, 2.0, 80.0);
  d.observe(0, 3.0, 60.0);
  // cap − max(recent) − headroom·cap = 100 − 80 − 8.
  EXPECT_DOUBLE_EQ(d.node_slack_w(0, 100.0), 12.0);
  // Another node's samples are independent.
  EXPECT_EQ(d.node_slack_w(1, 100.0), 0.0);
}

TEST(SlackDetector, RingEvictsSamplesBeyondWindow) {
  runtime::RedistributionOptions o;
  o.headroom_frac = 0.0;
  o.window_samples = 2;
  runtime::SlackDetector d(o);
  d.observe(0, 1.0, 90.0);
  d.observe(0, 2.0, 40.0);
  d.observe(0, 3.0, 40.0);  // evicts the 90 W sample
  EXPECT_DOUBLE_EQ(d.node_slack_w(0, 100.0), 60.0);
  EXPECT_EQ(d.samples().samples("node0.power_w").size(), 2u);
}

TEST(SlackDetector, SlackNeverNegative) {
  runtime::RedistributionOptions o;
  runtime::SlackDetector d(o);
  d.observe(0, 1.0, 150.0);  // drawing above the cap (violation window)
  EXPECT_EQ(d.node_slack_w(0, 100.0), 0.0);
}

TEST(SlackDetector, PhaseAtMapsElapsedFractionOntoPhases) {
  const auto bt = workloads::find_benchmark("BT-MZ");
  ASSERT_TRUE(bt.has_value());
  // BT-MZ-phased is 80% solve (compute) then 20% exch_qbc (memory).
  const auto early = runtime::SlackDetector::phase_at(*bt, 0.0, 100.0, 10.0);
  EXPECT_TRUE(early.known);
  EXPECT_EQ(early.phase, "solve");
  EXPECT_FALSE(early.memory_bound);
  const auto late = runtime::SlackDetector::phase_at(*bt, 0.0, 100.0, 90.0);
  EXPECT_TRUE(late.known);
  EXPECT_EQ(late.phase, "exch_qbc");
  EXPECT_TRUE(late.memory_bound);
}

TEST(SlackDetector, PhaseAtFallsBackToFlatSignature) {
  workloads::WorkloadSignature app;
  app.name = "no-such-app";
  app.memory_boundedness = 0.7;
  const auto sig = runtime::SlackDetector::phase_at(app, 0.0, 10.0, 5.0);
  EXPECT_FALSE(sig.known);
  EXPECT_TRUE(sig.memory_bound);
}

// ------------------------------------------------------------ redistributor ----

TEST(Redistributor, ClawRespectsFloorAndMinimum) {
  runtime::RedistributionOptions o;
  o.min_claw_w = 4.0;
  runtime::Redistributor r(o);
  // Slack-limited claw.
  EXPECT_DOUBLE_EQ(r.claw_w(200.0, 30.0, 100.0), 30.0);
  // Floor-limited claw: never below floor_w.
  EXPECT_DOUBLE_EQ(r.claw_w(200.0, 150.0, 120.0), 80.0);
  // Below min_claw_w: not worth a cap rewrite.
  EXPECT_EQ(r.claw_w(200.0, 3.0, 100.0), 0.0);
  EXPECT_EQ(r.claw_w(102.0, 50.0, 100.0), 0.0);
}

TEST(Redistributor, PicksBestGainAboveThreshold) {
  runtime::RedistributionOptions o;
  o.min_gain_s = 0.05;
  runtime::Redistributor r(o);
  const std::vector<runtime::RegrantCandidate> cands = {
      {0, 50.0, 0.2}, {1, 50.0, 1.5}, {2, 50.0, 0.01}};
  const auto* best = r.pick(cands);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->job, 1u);
  const std::vector<runtime::RegrantCandidate> weak = {{0, 50.0, 0.01}};
  EXPECT_EQ(r.pick(weak), nullptr);
  EXPECT_EQ(r.pick({}), nullptr);
}

// ------------------------------------------------------- subsystem shifts ----

TEST(SubsystemShift, MovesCapsAndStepsMemoryLevel) {
  sim::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.cpu_cap = Watts(80.0);
  cfg.node.mem_cap = Watts(30.0);
  cfg.node.mem_level = sim::MemPowerLevel::kL2;
  cfg.cpu_cap_overrides = {Watts(78.0), Watts(82.0)};
  const auto s = sim::shift_pkg_to_dram(cfg, Watts(5.0), Watts(40.0));
  EXPECT_DOUBLE_EQ(s.node.cpu_cap.value(), 75.0);
  EXPECT_DOUBLE_EQ(s.node.mem_cap.value(), 35.0);
  EXPECT_EQ(s.node.mem_level, sim::MemPowerLevel::kL1);
  EXPECT_DOUBLE_EQ(s.cpu_cap_overrides[0].value(), 73.0);
  EXPECT_DOUBLE_EQ(s.cpu_cap_overrides[1].value(), 77.0);
}

TEST(SubsystemShift, ClampsDeltaAtCpuFloor) {
  sim::ClusterConfig cfg;
  cfg.node.cpu_cap = Watts(42.0);
  cfg.node.mem_cap = Watts(20.0);
  cfg.node.mem_level = sim::MemPowerLevel::kL0;
  const auto s = sim::shift_pkg_to_dram(cfg, Watts(5.0), Watts(40.0));
  EXPECT_DOUBLE_EQ(s.node.cpu_cap.value(), 40.0);  // clamped to the floor
  EXPECT_DOUBLE_EQ(s.node.mem_cap.value(), 22.0);
  EXPECT_EQ(s.node.mem_level, sim::MemPowerLevel::kL0);
}

// --------------------------------------------------------- work accounting ----

TEST(WorkDone, IntegratesDegradesLikeResolve) {
  fault::FaultPlan plan;
  plan.degrades.push_back({0, 10.0, 0.5});
  fault::FaultInjector inj(plan, 4);
  // 10 s at full rate + 10 s at half rate = 15 s of work.
  EXPECT_DOUBLE_EQ(inj.work_done_s(0.0, 20.0, {0}), 15.0);
  // Inverse of resolve: 15 s of work starting at 0 ends at 20.
  EXPECT_DOUBLE_EQ(inj.resolve(0.0, 15.0, {0}).end_s, 20.0);
  // Unaffected node integrates at full rate.
  EXPECT_DOUBLE_EQ(inj.work_done_s(0.0, 20.0, {1}), 20.0);
}

// -------------------------------------------------------- regrant admission ----

TEST(BudgetGuard, AdmitRegrantEnforcesFacilityCap) {
  fault::BudgetGuardOptions o;
  o.enabled = true;
  fault::BudgetGuard guard(o, Watts(700.0));
  EXPECT_TRUE(guard.admit_regrant(650.0, 40.0));
  EXPECT_EQ(guard.regrants_rejected(), 0u);
  EXPECT_FALSE(guard.admit_regrant(680.0, 40.0));
  EXPECT_EQ(guard.regrants_rejected(), 1u);
  EXPECT_THROW((void)guard.admit_regrant(650.0, -1.0), PreconditionError);
}

TEST(BudgetGuard, AdmitRegrantDisabledGuardAdmitsAll) {
  fault::BudgetGuardOptions o;
  o.enabled = false;
  fault::BudgetGuard guard(o, Watts(700.0));
  EXPECT_TRUE(guard.admit_regrant(700.0, 1000.0));
  EXPECT_EQ(guard.regrants_rejected(), 0u);
}

// --------------------------------------------------- queue: byte identity ----

TEST(RedistQueue, DisabledRunsAreByteIdenticalAndSilent) {
  const auto jobs = wrap(workloads::paper_benchmarks());
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  ASSERT_FALSE(opt.redist.enabled);

  obs::ObsSession session;
  obs::Timeline timeline;
  const QueueRun a = run_queue(jobs, opt, nullptr, &session, &timeline);
  const QueueRun b = run_queue(jobs, opt);
  EXPECT_EQ(a.report_fp, b.report_fp);

  // Disabled means silent: no redist metrics, series, or events exist.
  EXPECT_EQ(session.metrics().find_counter("redist.ticks"), nullptr);
  EXPECT_TRUE(timeline.samples("redist.slack_w").empty());
  EXPECT_TRUE(timeline.events("redist").empty());
  EXPECT_EQ(a.report.redist_claw_backs, 0);
  EXPECT_EQ(a.report.redist_regrants, 0);
  EXPECT_EQ(a.report.redist_subsystem_shifts, 0);
  EXPECT_EQ(a.report.redist_reclaimed_w, 0.0);
  EXPECT_EQ(a.report.redist_granted_w, 0.0);
}

TEST(RedistQueue, ZeroSlackFleetIsANoOp) {
  // Thresholds no fleet can clear: the loop ticks but never acts, and the
  // report matches the disabled queue bit-for-bit — under faults too.
  const auto jobs = wrap(workloads::paper_benchmarks());
  runtime::QueueOptions off;
  off.cluster_budget = Watts(700.0);
  runtime::QueueOptions on = off;
  on.redist.enabled = true;
  on.redist.min_claw_w = 1e9;
  on.redist.min_grant_w = 1e9;
  on.redist.min_gain_s = 1e9;
  on.redist.subsystem_split = false;

  EXPECT_EQ(run_queue(jobs, off).report_fp, run_queue(jobs, on).report_fp);

  fault::FaultPlan plan;
  plan.degrades.push_back({1, 8.0, 0.7});
  plan.crashes.push_back({3, 12.0});
  EXPECT_EQ(run_queue(jobs, off, &plan).report_fp,
            run_queue(jobs, on, &plan).report_fp);
}

// ------------------------------------------------------ queue: claw-backs ----

/// A deliberately over-provisioned placement: one job given every node and
/// far more watts than it can draw, so the first tick detects slack.
runtime::QueueOptions overprovisioned_options() {
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(1600.0);
  opt.redist.enabled = true;
  opt.redist.period_s = 0.5;
  opt.redist.reaction_s = 0.2;
  return opt;
}

TEST(RedistQueue, ClawsBackSlackWithoutSlowingTheJob) {
  sim::SimExecutor probe{sim::MachineSpec{}, no_noise()};
  std::vector<runtime::QueueJob> jobs = {
      {workloads::paper_benchmarks().front(), probe.spec().nodes}};

  runtime::QueueOptions off = overprovisioned_options();
  off.redist.enabled = false;
  const QueueRun stat = run_queue(jobs, off);

  obs::ObsSession session;
  obs::Timeline timeline;
  const QueueRun redist =
      run_queue(jobs, overprovisioned_options(), nullptr, &session, &timeline);

  EXPECT_GE(redist.report.redist_claw_backs, 1);
  EXPECT_GT(redist.report.redist_reclaimed_w, 0.0);
  // Claw-backs reclaim only watts the caps guarantee are unused: the job's
  // completion time and the true draw are untouched.
  EXPECT_DOUBLE_EQ(redist.report.makespan_s, stat.report.makespan_s);
  EXPECT_EQ(redist.report.violation_s, 0.0);
  // The reclaimed watts stepped the job's recorded budget down.
  EXPECT_LT(redist.report.jobs[0].budget_w, stat.report.jobs[0].budget_w);
  EXPECT_FALSE(timeline.events("redist").empty());
}

TEST(RedistQueue, ClawNeverRacesACrashOnItsOwnPlacement) {
  // The claw-vs-crash race is resolved pre-emptively: placements are
  // resolved against the fault plan at start, so the tick skips a placement
  // that will abort — its full slice returns to the free pool at the abort
  // instant, and no claw is ever left pending against it.
  sim::SimExecutor probe{sim::MachineSpec{}, no_noise()};
  std::vector<runtime::QueueJob> jobs = {
      {workloads::paper_benchmarks().front(), probe.spec().nodes}};

  runtime::QueueOptions opt = overprovisioned_options();
  opt.redist.period_s = 1.0;
  opt.redist.reaction_s = 5.0;
  opt.retry.max_attempts = 1;  // the crash kills the job for good

  fault::FaultPlan plan;
  plan.crashes.push_back({2, 1.5});  // aborts the slack-rich placement

  obs::Timeline timeline;
  const QueueRun run = run_queue(jobs, opt, &plan, nullptr, &timeline);

  // Ticks fired before the abort (the same setup claws within two ticks in
  // ClawsBackSlackWithoutSlowingTheJob), but the doomed placement was never
  // targeted: no decision, no actuation, no reclaimed watts.
  EXPECT_FALSE(timeline.samples("redist.slack_w").empty());
  for (const auto& e : timeline.events("redist"))
    EXPECT_TRUE(e.label.rfind("claw", 0) != 0) << e.label;
  EXPECT_EQ(run.report.redist_claw_backs, 0);
  EXPECT_EQ(run.report.redist_reclaimed_w, 0.0);
  EXPECT_EQ(run.report.jobs_failed, 1);
}

TEST(RedistQueue, StaleClawAgainstAGonePlacementDissolves) {
  // A scheduled claw whose placement is gone by the time the reaction
  // latency elapses must dissolve without effect — the watts already
  // returned to the pool when the placement ended. With reaction_s at 5 s
  // the second claw decision actuates past the job's completion.
  sim::SimExecutor probe{sim::MachineSpec{}, no_noise()};
  std::vector<runtime::QueueJob> jobs = {
      {workloads::paper_benchmarks().front(), probe.spec().nodes}};

  runtime::QueueOptions opt = overprovisioned_options();
  opt.redist.period_s = 1.0;
  opt.redist.reaction_s = 5.0;

  obs::Timeline timeline;
  const QueueRun run = run_queue(jobs, opt, nullptr, nullptr, &timeline);

  int scheduled = 0;
  int actuated = 0;
  for (const auto& e : timeline.events("redist")) {
    if (e.label.rfind("claw-scheduled", 0) == 0) ++scheduled;
    else if (e.label.rfind("claw", 0) == 0) ++actuated;
  }
  // More decisions than actuations: at least one claw found its placement
  // gone and dissolved.
  EXPECT_GE(scheduled, 2);
  EXPECT_EQ(actuated, run.report.redist_claw_backs);
  EXPECT_LT(run.report.redist_claw_backs, scheduled);
  EXPECT_GE(run.report.redist_claw_backs, 1);
}

// -------------------------------------------------------- queue: regrants ----

TEST(RedistQueue, RedistributionNeverWorseAcrossFaultScenarios) {
  // The headline contract on the Table II stream: enabling redistribution
  // never increases the makespan or the ground-truth violation seconds.
  const auto jobs = wrap(workloads::paper_benchmarks());
  runtime::QueueOptions off;
  off.cluster_budget = Watts(700.0);
  runtime::QueueOptions on = off;
  on.redist.enabled = true;

  std::vector<fault::FaultPlan> plans(3);
  plans[1].crashes.push_back({3, 15.0});
  plans[2].degrades.push_back({1, 8.0, 0.6});
  plans[2].cap_violations.push_back({0, 5.0, 30.0, 90.0});

  for (std::size_t i = 0; i < plans.size(); ++i) {
    const QueueRun stat = run_queue(jobs, off, &plans[i]);
    const QueueRun redist = run_queue(jobs, on, &plans[i]);
    EXPECT_LE(redist.report.makespan_s, stat.report.makespan_s)
        << "plan " << i;
    EXPECT_LE(redist.report.violation_s, stat.report.violation_s + 1e-9)
        << "plan " << i;
    EXPECT_EQ(redist.report.jobs_completed(), stat.report.jobs_completed())
        << "plan " << i;
  }
}

TEST(RedistQueue, RegrantsFreedWattsAfterACrash) {
  // A crash mid-stream frees watts with jobs still running; once nothing is
  // pending the free pool is re-granted to the job it helps most.
  const auto jobs = wrap(workloads::paper_benchmarks());
  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  opt.redist.enabled = true;

  fault::FaultPlan plan;
  plan.crashes.push_back({3, 15.0});

  obs::ObsSession session;
  const QueueRun run = run_queue(jobs, opt, &plan, &session);
  EXPECT_GE(run.report.redist_regrants, 1);
  EXPECT_GT(run.report.redist_granted_w, 0.0);
  const auto* c = session.metrics().find_counter("redist.regrants");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(run.report.redist_regrants));
}

}  // namespace
}  // namespace clip
