#!/usr/bin/env bash
# CI entry point: configure, build and test every preset (release, asan,
# tsan). The fault/resilience suite is labeled `fault`, so a quick
# sanitizer-only pass over it is:
#
#   PRESETS="asan tsan" CTEST_ARGS="-L fault" scripts/ci.sh
#
# Environment:
#   PRESETS     space-separated subset of presets (default: all three)
#   CTEST_ARGS  extra arguments for ctest (e.g. "-L fault", "-R Queue")
#   JOBS        parallelism for build and test (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS="${PRESETS:-release asan tsan}"
JOBS="${JOBS:-$(nproc)}"

for preset in $PRESETS; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==> [$preset] test"
  # shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
  ctest --preset "$preset" -j "$JOBS" --output-on-failure ${CTEST_ARGS:-}
done

echo "==> all presets passed: $PRESETS"
