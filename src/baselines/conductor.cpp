#include "baselines/conductor.hpp"

#include <limits>

#include "util/check.hpp"

namespace clip::baselines {

sim::ClusterConfig ConductorScheduler::plan(
    const workloads::WorkloadSignature& app, Watts cluster_budget) {
  app.validate();
  CLIP_REQUIRE(cluster_budget.value() > 0.0, "budget must be positive");
  const auto& spec = executor_->spec();
  const int all_cores = spec.shape.total_cores();

  // Every supplied node participates — the method does not discern the
  // optimal node count (§VI).
  const int nodes = spec.nodes;
  const double node_share = cluster_budget.value() / nodes;

  sim::ClusterConfig best;
  double best_time = std::numeric_limits<double>::infinity();
  last_search_cost_ = 0;

  // Exhaustive concurrency search × a coarse CPU/DRAM split grid, each
  // candidate *executed* (the run-time-system approach).
  for (int threads = 2; threads <= all_cores; threads += 2) {
    for (double mem_w : {15.0, 22.0, 30.0, 38.0}) {
      const double cpu_w = node_share - mem_w;
      if (cpu_w <= 1.0) continue;
      sim::ClusterConfig cfg;
      cfg.nodes = nodes;
      cfg.node.threads = threads;
      cfg.node.affinity = parallel::AffinityPolicy::kScatter;
      cfg.node.mem_level = sim::MemPowerLevel::kL0;
      cfg.node.mem_cap = Watts(mem_w);
      cfg.node.cpu_cap = Watts(cpu_w);
      double time;
      try {
        time = executor_->run_exact(app, cfg).time.value();
      } catch (const PreconditionError&) {
        continue;  // infeasible split (DRAM cap below base for this app)
      }
      ++last_search_cost_;
      if (time < best_time) {
        best_time = time;
        best = cfg;
      }
    }
  }
  CLIP_ENSURE(best_time < std::numeric_limits<double>::infinity(),
              "Conductor found no feasible configuration");
  return best;
}

}  // namespace clip::baselines
