// Run configurations and measurements — the interface between the schedulers
// (CLIP and the baselines) and the simulated cluster.
#pragma once

#include <string>
#include <vector>

#include "parallel/affinity.hpp"
#include "sim/events.hpp"
#include "sim/machine.hpp"
#include "util/units.hpp"

namespace clip::sim {

/// Per-node execution configuration: the four knobs the paper's node level
/// controls (threads, affinity, memory power level, CPU/DRAM power caps).
struct NodeConfig {
  int threads = 1;
  parallel::AffinityPolicy affinity = parallel::AffinityPolicy::kScatter;
  MemPowerLevel mem_level = MemPowerLevel::kL0;
  Watts cpu_cap{1e9};  ///< RAPL PKG cap for the node (both sockets combined)
  Watts mem_cap{1e9};  ///< RAPL DRAM cap for the node

  [[nodiscard]] std::string describe() const;
};

/// Cluster execution configuration: node count plus the (SPMD) node config;
/// per-node CPU-cap overrides express inter-node variability coordination.
struct ClusterConfig {
  int nodes = 1;
  NodeConfig node;
  /// Optional per-node CPU caps (size == nodes). Empty = uniform node.cpu_cap.
  std::vector<Watts> cpu_cap_overrides;

  [[nodiscard]] std::string describe() const;
};

/// Subsystem (PKG↔DRAM) power shift: `delta_w` watts moved per node from
/// the CPU cap to the DRAM cap, keeping the node's total budget constant —
/// the Subramaniam & Feng-style trade the runtime redistribution loop uses
/// so memory-phase jobs buy bandwidth with CPU watts
/// (docs/power-redistribution.md). The CPU cap never drops below
/// `min_cpu_cap_w` (delta is clamped, possibly to zero); the memory power
/// level steps one notch toward full bandwidth so the level ceiling cannot
/// silently swallow the granted DRAM watts. Per-node CPU-cap overrides are
/// shifted by the same clamped delta.
[[nodiscard]] ClusterConfig shift_pkg_to_dram(const ClusterConfig& cfg,
                                              Watts delta_w,
                                              Watts min_cpu_cap_w);

/// What the "system interface helper tools" report for one node.
struct NodeMeasurement {
  Seconds time{0.0};
  GHz frequency{0.0};
  double duty_factor = 1.0;  ///< < 1 when even the lowest DVFS state exceeds the cap
  Watts cpu_power{0.0};
  Watts mem_power{0.0};
  double achieved_bw_gbps = 0.0;
  double saturation = 1.0;
  EventRates events;
};

/// One candidate (PKG cap, DRAM cap) point of a batch frontier — the only
/// fields that vary across a SimExecutor::run_batch call.
struct CapPoint {
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
  friend bool operator==(const CapPoint&, const CapPoint&) = default;
};

/// Cluster-level measurement of one run.
struct Measurement {
  Seconds time{0.0};       ///< makespan: max node time + communication
  Seconds comm_time{0.0};
  Watts avg_power{0.0};    ///< average power of the active nodes
  Joules energy{0.0};
  std::vector<NodeMeasurement> nodes;

  /// Relative performance = 1 / time. The paper's figures plot performance
  /// relative to a reference method; callers divide two of these.
  [[nodiscard]] double performance() const { return 1.0 / time.value(); }
};

}  // namespace clip::sim
