// The node-level performance model.
//
// One formula generates the paper's three scalability classes (§II, Fig. 2):
//
//   T(W, n, f, ...) = W * [  s / f_rel                       (serial, Amdahl)
//                     + (1-s) * (1-m) / (n * f_rel)          (compute-bound)
//                     + (1-s) * m / (n * f_rel * sat)        (memory-bound)
//                     + k_sync * (n-1)^e / f_rel ]           (contention)
//                     + k_fork * (n-1)                       (thread mgmt)
//
// with sat = min(1, bw_eff / (n * b * f_rel)) the DRAM saturation factor.
//
//  * linear:       m≈0, k_sync=0      → speedup ∝ n, ∝ f
//  * logarithmic:  m>0                → linear until N_P = bw_eff/(b·f_rel),
//                                        reduced (but positive) growth after
//  * parabolic:    m>0 and k_sync>0   → performance peaks near N_P and
//                                        degrades beyond it
//
// Note N_P rises as f drops — lowering frequency (e.g. under a power cap)
// pushes the saturation point outward, which is exactly the concurrency/
// frequency trade CLIP exploits ("we would prefer high frequency to high
// concurrency for logarithmic applications", §III-A2).
#pragma once

#include "parallel/affinity.hpp"
#include "sim/machine.hpp"
#include "util/units.hpp"
#include "workloads/signature.hpp"

namespace clip::sim {

struct NodePerfInput {
  double work_s = 0.0;        ///< this node's share: 1-core full-freq seconds
  int threads = 1;
  parallel::Placement placement;
  double f_rel = 1.0;         ///< frequency / nominal
  double bw_cap_gbps = 0.0;   ///< hardware bandwidth ceiling after memory
                              ///< power level / DRAM cap throttling
};

struct NodePerfOutput {
  Seconds time{0.0};
  double saturation = 1.0;       ///< sat factor at this operating point
  double utilization = 1.0;      ///< (1-m) + m*sat — drives core power
  double achieved_bw_gbps = 0.0; ///< total DRAM traffic generated
  double bw_eff_gbps = 0.0;      ///< NUMA-adjusted usable bandwidth
  double remote_fraction = 0.0;  ///< share of traffic hitting remote NUMA
};

class PerfModel {
 public:
  explicit PerfModel(const MachineSpec& spec) : spec_(&spec) {}

  /// Evaluate the node-time model for a workload at an operating point.
  [[nodiscard]] NodePerfOutput evaluate(
      const workloads::WorkloadSignature& w, const NodePerfInput& in) const;

  /// NUMA-effective bandwidth: the raw ceiling reduced by remote-access
  /// penalty for this placement and workload sharing pattern.
  [[nodiscard]] double effective_bandwidth(
      const workloads::WorkloadSignature& w,
      const parallel::Placement& placement, double bw_cap_gbps) const;

 private:
  const MachineSpec* spec_;
};

}  // namespace clip::sim
