// Incremental result cache for clip-analyze. One versioned text file maps
// display path -> (FNV-1a 64 content hash, per-file findings, facts,
// project-rule suppressions). A warm full-tree scan then costs one read +
// one hash per file instead of a lex + nine rule passes; the project
// passes (J2/L2) are recomputed from the cached facts every run, so they
// never go stale. The header is salted with the rule list: adding or
// renaming a rule invalidates every entry at once.
//
// The format is line-based and deterministic (sorted by path, no
// timestamps — the tool obeys its own D1). A missing, truncated, or
// foreign-version file loads as empty; the cache is a pure accelerator and
// must never change findings, which the fixture suite asserts.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "lint.hpp"

namespace clip::lint {

namespace {

constexpr std::string_view kMagic = "clip-lint-cache v1";

std::string rules_salt() {
  std::string salt;
  for (const std::string& r : known_rules()) salt += r + ",";
  return salt;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default: out += s[i];
    }
  }
  return out;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  for (char c : line) {
    if (c == '\t') {
      out.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(field);
  return out;
}

std::string join_rules(const std::vector<std::string>& rules) {
  std::string out;
  for (const std::string& r : rules) out += (out.empty() ? "" : ",") + r;
  return out;
}

std::vector<std::string> split_rules(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

std::uint64_t content_hash(std::string_view source) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (char c : source) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

bool ResultCache::load(const std::string& path) {
  entries_.clear();
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::string line;
  if (!std::getline(is, line) ||
      line != std::string(kMagic) + " " + rules_salt())
    return false;

  Entry* current = nullptr;
  std::string current_path;
  try {
  while (std::getline(is, line)) {
    const std::vector<std::string> f = split_tabs(line);
    if (f.empty()) continue;
    if (f[0] == "file" && f.size() >= 3) {
      current_path = unescape(f[1]);
      Entry e;
      e.hash = std::stoull(f[2], nullptr, 16);
      e.result.path = current_path;
      current = &entries_.emplace(current_path, std::move(e)).first->second;
    } else if (current == nullptr) {
      entries_.clear();
      return false;
    } else if (f[0] == "F" && f.size() >= 6) {
      Finding fi;
      fi.file = current_path;
      fi.line = std::stoi(f[1]);
      fi.rule = f[2];
      fi.suppressed = f[3] == "1";
      fi.reason = unescape(f[4]);
      fi.message = unescape(f[5]);
      current->result.findings.push_back(std::move(fi));
    } else if (f[0] == "KP" && f.size() >= 3) {
      current->result.facts.produced_kinds.push_back(
          {unescape(f[2]), std::stoi(f[1])});
    } else if (f[0] == "KR" && f.size() >= 3) {
      current->result.facts.registered_kinds.push_back(
          {unescape(f[2]), std::stoi(f[1])});
    } else if (f[0] == "E" && f.size() >= 4) {
      current->result.facts.lock_edges.push_back(
          {unescape(f[2]), unescape(f[3]), std::stoi(f[1])});
    } else if (f[0] == "S" && f.size() >= 7) {
      Suppression sup;
      sup.comment_line = std::stoi(f[1]);
      sup.target_line = std::stoi(f[2]);
      sup.file_scope = f[3] == "1";
      sup.used = f[4] == "1";
      sup.rules = split_rules(f[5]);
      sup.reason = unescape(f[6]);
      current->result.project_suppressions.push_back(std::move(sup));
    }
  }
  } catch (const std::exception&) {  // stoi/stoull on a corrupt field
    entries_.clear();
    return false;
  }
  return true;
}

bool ResultCache::save(const std::string& path) const {
  std::ostringstream os;
  os << kMagic << " " << rules_salt() << "\n";
  for (const auto& [p, e] : entries_) {
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(e.hash));
    os << "file\t" << escape(p) << "\t" << hex << "\n";
    for (const Finding& fi : e.result.findings)
      os << "F\t" << fi.line << "\t" << fi.rule << "\t"
         << (fi.suppressed ? 1 : 0) << "\t" << escape(fi.reason) << "\t"
         << escape(fi.message) << "\n";
    for (const KindSite& k : e.result.facts.produced_kinds)
      os << "KP\t" << k.line << "\t" << escape(k.kind) << "\n";
    for (const KindSite& k : e.result.facts.registered_kinds)
      os << "KR\t" << k.line << "\t" << escape(k.kind) << "\n";
    for (const LockEdge& le : e.result.facts.lock_edges)
      os << "E\t" << le.line << "\t" << escape(le.held) << "\t"
         << escape(le.acquired) << "\n";
    for (const Suppression& sup : e.result.project_suppressions)
      os << "S\t" << sup.comment_line << "\t" << sup.target_line << "\t"
         << (sup.file_scope ? 1 : 0) << "\t" << (sup.used ? 1 : 0) << "\t"
         << join_rules(sup.rules) << "\t" << escape(sup.reason) << "\n";
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << os.str();
  return static_cast<bool>(out);
}

const FileResult* ResultCache::find(const std::string& path,
                                    std::uint64_t hash) const {
  const auto it = entries_.find(path);
  if (it == entries_.end() || it->second.hash != hash) return nullptr;
  return &it->second.result;
}

const FileResult* ResultCache::find_any(const std::string& path) const {
  const auto it = entries_.find(path);
  return it == entries_.end() ? nullptr : &it->second.result;
}

void ResultCache::put(std::uint64_t hash, FileResult result) {
  Entry e;
  e.hash = hash;
  std::string key = result.path;
  e.result = std::move(result);
  entries_[key] = std::move(e);
}

std::vector<std::string> ResultCache::paths() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [p, e] : entries_) out.push_back(p);
  return out;
}

}  // namespace clip::lint
