#include "baselines/oracle.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace clip::baselines {

sim::ClusterConfig OracleScheduler::plan(
    const workloads::WorkloadSignature& app, Watts cluster_budget) {
  app.validate();
  CLIP_REQUIRE(cluster_budget.value() > 0.0, "budget must be positive");
  const auto& spec = executor_->spec();
  const int all_cores = spec.shape.total_cores();

  std::vector<int> node_counts;
  if (app.has_predefined_process_counts) {
    for (int n = 1; n <= spec.nodes; n *= 2) node_counts.push_back(n);
  } else {
    for (int n = 1; n <= spec.nodes; ++n) node_counts.push_back(n);
  }

  sim::ClusterConfig best;
  double best_time = std::numeric_limits<double>::infinity();
  last_search_cost_ = 0;

  for (int nodes : node_counts) {
    const double node_share = cluster_budget.value() / nodes;
    for (int threads = 2; threads <= all_cores; threads += 2) {
      for (parallel::AffinityPolicy affinity :
           {parallel::AffinityPolicy::kCompact,
            parallel::AffinityPolicy::kScatter}) {
        const parallel::Placement placement =
            parallel::place_threads(spec.shape, threads, affinity);
        const int active = placement.active_sockets();
        const int parked = spec.shape.sockets - active;
        for (sim::MemPowerLevel level : sim::kAllMemLevels) {
          const double base_w =
              active * spec.mem_base_w_per_socket +
              parked * spec.mem_parked_w_per_socket;
          const double level_bw =
              active * spec.socket_bw_gbps * sim::bw_fraction(level);
          // Two DRAM budgets per level: the worst-case draw (full level
          // bandwidth) and a demand-tight budget — the oracle may peek at
          // the workload's true per-core demand, which is the whole point
          // of being an oracle. The tight budget frees watts for the CPU.
          const double demand_bw =
              threads * app.bw_per_core_gbps;  // at nominal frequency
          // DRAM budgets to try at this level: a dense grid over the
          // activity headroom plus the demand-tight point (exact: demand
          // only shrinks as RAPL lowers the frequency, so the
          // nominal-frequency draw is an upper bound). The grid pitch
          // bounds how far a continuum optimum can escape the search.
          const double act_max = level_bw * spec.mem_w_per_gbps();
          std::vector<double> caps;
          for (double frac = 0.05; frac <= 1.0 + 1e-9; frac += 0.05)
            caps.push_back(base_w + frac * act_max);
          caps.push_back(base_w + std::min(demand_bw, level_bw) *
                                      spec.mem_w_per_gbps());
          for (double mem_w : caps) {
            const double cpu_w = node_share - mem_w;
            if (cpu_w <= 1.0) continue;

            sim::ClusterConfig cfg;
            cfg.nodes = nodes;
            cfg.node.threads = threads;
            cfg.node.affinity = affinity;
            cfg.node.mem_level = level;
            cfg.node.mem_cap = Watts(mem_w);
            cfg.node.cpu_cap = Watts(cpu_w);

            const sim::Measurement m = executor_->run_exact(app, cfg);
            ++last_search_cost_;
            if (m.time.value() < best_time) {
              best_time = m.time.value();
              best = cfg;
            }
          }
        }
      }
    }
  }
  CLIP_ENSURE(best_time < std::numeric_limits<double>::infinity(),
              "oracle found no feasible configuration");
  return best;
}

}  // namespace clip::baselines
