#include "sim/rapl_controller.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "obs/timeline.hpp"
#include "util/check.hpp"

namespace clip::sim {

double RaplTrace::duty_low_fraction() const {
  if (freq_ghz.empty()) return 0.0;
  const std::size_t half = freq_ghz.size() / 2;
  const auto begin = freq_ghz.begin() + static_cast<std::ptrdiff_t>(half);
  const double lo = *std::min_element(begin, freq_ghz.end());
  const double hi = *std::max_element(begin, freq_ghz.end());
  if (lo == hi) return 0.0;
  double low_steps = 0.0;
  for (auto it = begin; it != freq_ghz.end(); ++it)
    if (*it == lo) ++low_steps;
  return low_steps / static_cast<double>(freq_ghz.size() - half);
}

RaplTrace RaplControllerSim::simulate(const workloads::WorkloadSignature& w,
                                      int threads,
                                      parallel::AffinityPolicy affinity,
                                      double bw_cap_gbps, Watts cpu_cap,
                                      RaplControllerOptions options) const {
  obs::ScopedSpan obs_span(obs_, "sim.rapl_controller.simulate", "sim");
  obs_span.arg("app", w.name);
  obs_span.arg("threads", threads);
  obs::count(obs_, "sim.rapl_controller.runs");
  CLIP_REQUIRE(options.steps > 10, "need a meaningful horizon");
  CLIP_REQUIRE(options.step_s > 0.0 && options.window_s >= options.step_s,
               "window must cover at least one step");
  CLIP_REQUIRE(cpu_cap.value() > 0.0, "cap must be positive");
  const auto& states = spec_->ladder.states();
  CLIP_REQUIRE(options.initial_state < states.size(),
               "initial state outside the ladder");

  // Pre-compute per-state (power, work-rate): the workload is stationary,
  // so each operating state has one operating point. Below the lowest
  // P-state sit the clock-modulation T-states (duty 75/50/25/12.5 % of
  // f_min): dynamic power and throughput scale with the duty while the
  // base draw stays — this is the hardware mechanism behind the analytic
  // solver's duty factor.
  const parallel::Placement placement =
      parallel::place_threads(spec_->shape, threads, affinity);
  std::vector<double> state_power;
  std::vector<double> state_rate;
  std::vector<double> state_freq;

  double fmin_load_w = 0.0, fmin_rate = 0.0, base_w = 0.0;
  {
    for (int t : placement.threads_per_socket)
      base_w += t > 0 ? spec_->socket_base_w : spec_->socket_parked_w;
  }
  for (std::size_t s = 0; s < states.size(); ++s) {
    NodePerfInput in;
    in.work_s = 1.0;
    in.threads = threads;
    in.placement = placement;
    in.f_rel = spec_->ladder.relative(states[s]);
    in.bw_cap_gbps = bw_cap_gbps;
    const NodePerfOutput out = perf_.evaluate(w, in);
    NodeActivity activity{.placement = placement,
                          .f_rel = in.f_rel,
                          .utilization = out.utilization,
                          .compute_intensity = w.compute_intensity,
                          .achieved_bw_gbps = out.achieved_bw_gbps,
                          .cpu_load_multiplier = 1.0};
    if (s == 0) {
      fmin_load_w = power_.cpu_power(activity).value() - base_w;
      fmin_rate = 1.0 / out.time.value();
      for (double duty : {0.125, 0.25, 0.5, 0.75}) {
        state_power.push_back(base_w + fmin_load_w * duty);
        state_rate.push_back(fmin_rate * duty);
        state_freq.push_back(states[0].value() * duty);
      }
    }
    state_power.push_back(power_.cpu_power(activity).value());
    state_rate.push_back(1.0 / out.time.value());
    state_freq.push_back(states[s].value());
  }
  // Normalize throughput so the top unsaturated state would be 1.
  const double top_rate = state_rate.back();

  const std::size_t window_steps = static_cast<std::size_t>(
      std::max(1.0, options.window_s / options.step_s));

  RaplTrace trace;
  trace.time_s.reserve(static_cast<std::size_t>(options.steps));
  trace.power_w.reserve(static_cast<std::size_t>(options.steps));
  trace.freq_ghz.reserve(static_cast<std::size_t>(options.steps));

  std::deque<double> window;
  double window_sum = 0.0;
  // Map the caller's ladder index onto the extended (T-state + P-state)
  // array: ladder index 0 is extended index 4.
  std::size_t state = options.initial_state + 4;

  // The cap-crossing pair: the controller may oscillate between the highest
  // state fitting under the cap and the one just above it — never higher.
  // (Without this bound the lagging window average lets it staircase far
  // past the cap before reacting.)
  std::size_t highest_fitting = 0;
  for (std::size_t s = 0; s < state_power.size(); ++s)
    if (state_power[s] <= cpu_cap.value()) highest_fitting = s;
  const std::size_t ceiling_state =
      std::min(highest_fitting + 1, state_power.size() - 1);
  double steady_work = 0.0;
  double steady_power = 0.0, steady_freq = 0.0;
  int steady_steps = 0;
  int transitions = 0;

  // Flight recorder: the cap once at the run start, then per-step power and
  // frequency. The time axis continues across simulate() calls.
  const double t0 = timeline_t0_s_;
  const double top_freq = states.back().value();
  if (timeline_ != nullptr)
    timeline_->record("rapl.cap_w", t0, cpu_cap.value());

  for (int step = 0; step < options.steps; ++step) {
    const double p = state_power[state];
    window.push_back(p);
    window_sum += p;
    if (window.size() > window_steps) {
      window_sum -= window.front();
      window.pop_front();
    }
    const double avg = window_sum / static_cast<double>(window.size());

    trace.time_s.push_back(step * options.step_s);
    trace.power_w.push_back(p);
    trace.freq_ghz.push_back(state_freq[state]);
    if (timeline_ != nullptr) {
      const double t = t0 + step * options.step_s;
      timeline_->record("rapl.power_w", t, p);
      timeline_->record("rapl.freq_ghz", t, state_freq[state]);
      timeline_->record("rapl.freq_rel", t, state_freq[state] / top_freq);
    }
    if (step >= options.steps / 2) {
      steady_work += state_rate[state] * options.step_s;
      steady_power += p;
      steady_freq += state_freq[state];
      ++steady_steps;
    }

    // The RAPL decision. Above the limit: step down. Below: step up when
    // the projected window average (oldest sample replaced by the next
    // state's draw) stays under the limit — bounded by the cap-crossing
    // pair so the steady state oscillates between adjacent states.
    if (avg > cpu_cap.value()) {
      if (state > 0) {
        --state;
        ++transitions;
      }
    } else if (state + 1 <= ceiling_state) {
      const double projected =
          (window_sum - window.front() + state_power[state + 1]) /
          static_cast<double>(window.size());
      if (projected <= cpu_cap.value()) {
        ++state;
        ++transitions;
      }
    }
  }
  if (timeline_ != nullptr) timeline_t0_s_ = t0 + options.steps * options.step_s;
  obs::observe(obs_, "sim.rapl_controller.steps", obs::steps_spec(),
               static_cast<double>(options.steps));
  obs::observe(obs_, "sim.rapl_controller.transitions", obs::steps_spec(),
               static_cast<double>(transitions));

  trace.avg_power_w = steady_power / steady_steps;
  trace.avg_freq_ghz = steady_freq / steady_steps;
  trace.throughput =
      (steady_work / (options.steps / 2 * options.step_s)) / top_rate;
  return trace;
}

}  // namespace clip::sim
