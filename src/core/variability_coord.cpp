#include "core/variability_coord.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace clip::core {

double VariabilityCoordinator::spread(
    const std::vector<double>& multipliers) {
  CLIP_REQUIRE(!multipliers.empty(), "need at least one node");
  const auto [lo, hi] =
      std::minmax_element(multipliers.begin(), multipliers.end());
  CLIP_REQUIRE(*lo > 0.0, "multipliers must be positive");
  return (*hi - *lo) / *lo;
}

std::vector<Watts> VariabilityCoordinator::coordinate(
    Watts uniform_cpu_cap, const std::vector<double>& multipliers,
    Watts node_base_power) const {
  CLIP_REQUIRE(uniform_cpu_cap.value() > 0.0, "cap must be positive");
  CLIP_REQUIRE(node_base_power.value() >= 0.0, "base power must be >= 0");
  if (spread(multipliers) <= options_.activation_threshold) return {};
  const double base = node_base_power.value();
  // No load headroom to shift around: leave the uniform cap alone.
  if (uniform_cpu_cap.value() <= base) return {};

  double sum = 0.0;
  for (double m : multipliers) sum += m;
  const double nodes = static_cast<double>(multipliers.size());
  const double load_total = (uniform_cpu_cap.value() - base) * nodes;
  std::vector<Watts> caps;
  caps.reserve(multipliers.size());
  for (double m : multipliers)
    caps.emplace_back(base + load_total * m / sum);
  return caps;
}

void VariabilityCoordinator::apply(sim::ClusterConfig& cfg,
                                   const std::vector<double>& multipliers,
                                   Watts node_base_power) const {
  CLIP_REQUIRE(static_cast<int>(multipliers.size()) == cfg.nodes,
               "multiplier count must match active nodes");
  cfg.cpu_cap_overrides =
      coordinate(cfg.node.cpu_cap, multipliers, node_base_power);
}

}  // namespace clip::core
