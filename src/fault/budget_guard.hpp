// BudgetGuard — the cluster-budget watchdog in the scheduler path.
//
// Under unenforced RAPL caps a node can draw above its programmed limit and
// push the *cluster* past the site's contractual power bound. The guard (a)
// sanity-filters per-node meter readings so a faulty meter cannot trigger a
// false reaction (a dropout reads 0 W, a spike reads physically impossible
// watts — both are replaced by the node's expected draw and counted), (b)
// detects overshoot of the filtered cluster total over the budget, and (c)
// accounts violation time and energy: `violation_s` is how long the true
// draw exceeded the budget, `violation_ws` the watt-seconds above it. The
// resilient queue reacts to a detection by re-coordinating per-node caps
// (clawing the violating node's cap back) after `reaction_s` of actuation
// latency. See docs/robustness.md.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace clip::fault {

struct BudgetGuardOptions {
  bool enabled = true;
  /// Latency between detecting overshoot and the re-programmed caps taking
  /// effect (telemetry period + RAPL MSR writes settling).
  double reaction_s = 2.0;
  /// Per-node plausibility band for meter readings. Readings outside
  /// [min_plausible_node_w, max_plausible_node_w] are rejected and replaced
  /// by the expected draw. The queue widens the upper bound to the machine's
  /// max node power.
  double min_plausible_node_w = 1.0;
  double max_plausible_node_w = 1e9;

  void validate() const;
};

class BudgetGuard {
 public:
  BudgetGuard(BudgetGuardOptions options, Watts cluster_budget);

  [[nodiscard]] const BudgetGuardOptions& options() const { return options_; }

  /// Filter one per-node meter reading: implausible values fall back to
  /// `expected_w` (the node's reserved share — the last trustworthy figure)
  /// and bump `rejected_reads`.
  [[nodiscard]] double filter_reading(double observed_w, double expected_w);

  /// Would the guard flag `observed_total_w` as overshoot? (Only meaningful
  /// when enabled.)
  [[nodiscard]] bool overshoot(double observed_total_w) const {
    return options_.enabled && observed_total_w > budget_w_ + 1e-9;
  }

  /// Integrate ground-truth accounting over a dt-long interval during which
  /// the true cluster draw was `true_total_w`.
  void account(double dt_s, double true_total_w);

  /// Admission check for a runtime watt re-grant (the redistribution loop,
  /// docs/power-redistribution.md): with `reserved_total_w` already
  /// reserved across the running jobs, may `grant_w` more be committed?
  /// The facility cap is the hard line — a grant that would push the
  /// reservation past the cluster budget is rejected and counted. A
  /// disabled guard admits everything (the caller's free-pool arithmetic is
  /// then the only protection, as before the guard existed).
  [[nodiscard]] bool admit_regrant(double reserved_total_w, double grant_w);
  [[nodiscard]] std::uint64_t regrants_rejected() const {
    return regrants_rejected_;
  }

  [[nodiscard]] double violation_s() const { return violation_s_; }
  [[nodiscard]] double violation_ws() const { return violation_ws_; }
  [[nodiscard]] std::uint64_t rejected_reads() const {
    return rejected_reads_;
  }

  /// The budget the guard currently holds the cluster to.
  [[nodiscard]] double budget_w() const { return budget_w_; }

  /// Re-point the guard at a new facility budget — the BUDGET_BROWNOUT
  /// state machine (docs/robustness.md) lowers it for the cut window and
  /// restores it after. Violation accounting from the change on is against
  /// the new budget; accrued counters are untouched.
  void set_budget(Watts cluster_budget) { budget_w_ = cluster_budget.value(); }

  /// Restore accrued counters from a scheduler-journal snapshot (recovery
  /// path; see runtime/journal.hpp). Counters are replaced, not added.
  void restore_counters(double violation_s, double violation_ws,
                        std::uint64_t rejected_reads,
                        std::uint64_t regrants_rejected) {
    violation_s_ = violation_s;
    violation_ws_ = violation_ws;
    rejected_reads_ = rejected_reads;
    regrants_rejected_ = regrants_rejected;
  }

 private:
  BudgetGuardOptions options_;
  double budget_w_;
  double violation_s_ = 0.0;
  double violation_ws_ = 0.0;
  std::uint64_t rejected_reads_ = 0;
  std::uint64_t regrants_rejected_ = 0;
};

}  // namespace clip::fault
