#include "sim/exec_cache.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

namespace clip::sim {

ExactRunCache::ExactRunCache(ExactCacheOptions options) {
  const int shards = std::max(1, options.shards);
  const std::size_t max_entries = std::max<std::size_t>(
      options.max_entries, static_cast<std::size_t>(shards));
  per_shard_cap_ =
      (max_entries + static_cast<std::size_t>(shards) - 1) /
      static_cast<std::size_t>(shards);
  shards_ = std::vector<Shard>(static_cast<std::size_t>(shards));
}

ExactRunCache::Shard& ExactRunCache::shard_for(const std::string& key) const {
  const std::size_t h = std::hash<std::string>{}(key);
  return shards_[h % shards_.size()];
}

bool ExactRunCache::lookup(const std::string& key, Measurement& out) const {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  out = it->second;
  return true;
}

void ExactRunCache::insert(const std::string& key, const Measurement& m) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.map.try_emplace(key, m);
  if (!inserted) return;  // a concurrent miss already filled it — identical
  shard.fifo.push_back(&it->first);
  if (shard.fifo.size() > per_shard_cap_) {
    const std::string* oldest = shard.fifo.front();
    shard.fifo.pop_front();
    shard.map.erase(*oldest);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ExactCacheStats ExactRunCache::stats() const {
  ExactCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += shard.map.size();
  }
  return s;
}

void ExactRunCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.fifo.clear();
  }
}

void ExactRunCache::encode(std::string& out, double v) {
  char bytes[sizeof(double)];
  std::memcpy(bytes, &v, sizeof(double));
  out.append(bytes, sizeof(double));
}

void ExactRunCache::encode(std::string& out, std::uint64_t v) {
  char bytes[sizeof(std::uint64_t)];
  std::memcpy(bytes, &v, sizeof(std::uint64_t));
  out.append(bytes, sizeof(std::uint64_t));
}

void ExactRunCache::encode(std::string& out, int v) {
  encode(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

void ExactRunCache::encode(std::string& out, const std::string& s) {
  encode(out, static_cast<std::uint64_t>(s.size()));
  out.append(s);
}

std::string ExactRunCache::encode_spec(const MachineSpec& spec) {
  std::string out;
  out.reserve(256);
  encode(out, spec.nodes);
  encode(out, spec.shape.sockets);
  encode(out, spec.shape.cores_per_socket);
  encode(out, static_cast<std::uint64_t>(spec.ladder.state_count()));
  for (const GHz f : spec.ladder.states()) encode(out, f.value());
  encode(out, spec.ladder.nominal().value());
  encode(out, spec.socket_base_w);
  encode(out, spec.socket_parked_w);
  encode(out, spec.core_max_w);
  encode(out, spec.core_power_floor);
  encode(out, spec.power_exponent);
  encode(out, spec.socket_bw_gbps);
  encode(out, spec.mem_base_w_per_socket);
  encode(out, spec.mem_parked_w_per_socket);
  encode(out, spec.mem_activity_w_per_socket);
  encode(out, spec.remote_numa_penalty);
  encode(out, spec.variability_sigma);
  encode(out, spec.variability_seed);
  return out;
}

std::string ExactRunCache::encode_key(const std::string& prefix,
                                      const workloads::WorkloadSignature& w,
                                      const ClusterConfig& cfg) {
  std::string key;
  key.reserve(prefix.size() + 256 + w.name.size() + w.parameters.size());
  key.append(prefix);

  // Workload signature: every generative parameter the model reads. The
  // name/parameters strings ride along for human traceability and to keep
  // distinct catalog entries with coincidentally equal parameters apart.
  encode(key, w.name);
  encode(key, w.parameters);
  encode(key, static_cast<int>(w.pattern));
  encode(key, w.node_base_time_s);
  encode(key, w.serial_fraction);
  encode(key, w.memory_boundedness);
  encode(key, w.bw_per_core_gbps);
  encode(key, w.fork_overhead_s);
  encode(key, w.sync_coeff_s);
  encode(key, w.sync_exponent);
  encode(key, w.shared_data_fraction);
  encode(key, w.compute_intensity);
  encode(key, w.ipc);
  encode(key, w.icache_pressure);
  encode(key, w.write_fraction);
  encode(key, w.comm_latency_s);
  encode(key, w.comm_surface_coeff);
  encode(key, static_cast<int>(w.has_predefined_process_counts));

  // Cluster configuration.
  encode(key, cfg.nodes);
  encode(key, cfg.node.threads);
  encode(key, static_cast<int>(cfg.node.affinity));
  encode(key, static_cast<int>(cfg.node.mem_level));
  encode(key, cfg.node.cpu_cap.value());
  encode(key, cfg.node.mem_cap.value());
  encode(key, static_cast<std::uint64_t>(cfg.cpu_cap_overrides.size()));
  for (const Watts w_i : cfg.cpu_cap_overrides) encode(key, w_i.value());
  return key;
}

}  // namespace clip::sim
