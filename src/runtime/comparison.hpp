// Comparison harness: runs a set of scheduling methods over applications and
// budgets, reporting performance relative to the paper's reference ("we use
// the relative performance based on the All-In method without a power
// bound", §V-C). Shared by the Fig. 8/9 benchmark binaries, the summary
// harness, and the campaign example.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/scheduler_iface.hpp"
#include "sim/executor.hpp"
#include "workloads/signature.hpp"

namespace clip::runtime {

/// One (application, budget, method) evaluation.
struct ComparisonCell {
  std::string app;
  std::string parameters;
  double budget_w = 0.0;
  std::string method;
  double time_s = 0.0;
  double relative_performance = 0.0;  ///< vs unbounded All-In
  sim::ClusterConfig plan;
};

struct ComparisonResult {
  std::vector<ComparisonCell> cells;

  /// Mean relative performance of a method across all apps at one budget.
  [[nodiscard]] double mean_relative(const std::string& method,
                                     double budget_w) const;

  /// Mean improvement of `method` over `reference` across apps & budgets.
  /// With `budgets` non-empty, only those budgets enter the mean (useful to
  /// exclude degenerate regimes, e.g. budgets below a method's enforceable
  /// floor where its slowdown is unbounded and would dominate the mean).
  [[nodiscard]] double mean_improvement(
      const std::string& method, const std::string& reference,
      const std::vector<double>& budgets = {}) const;

  [[nodiscard]] const ComparisonCell* find(const std::string& app,
                                           const std::string& parameters,
                                           double budget_w,
                                           const std::string& method) const;
};

class ComparisonHarness {
 public:
  explicit ComparisonHarness(sim::SimExecutor& executor)
      : executor_(&executor) {}

  /// Register a method. Ownership shared so harnesses can also keep a
  /// handle (e.g. to query the oracle's search cost).
  void add_method(std::shared_ptr<baselines::PowerScheduler> method);

  /// Evaluate every method on every (app, budget) pair. The reference
  /// performance per app is All-In at an effectively unlimited budget.
  [[nodiscard]] ComparisonResult run(
      const std::vector<workloads::WorkloadSignature>& apps,
      const std::vector<double>& budgets_w);

 private:
  [[nodiscard]] double unbounded_reference_time(
      const workloads::WorkloadSignature& app);

  sim::SimExecutor* executor_;
  std::vector<std::shared_ptr<baselines::PowerScheduler>> methods_;
};

}  // namespace clip::runtime
