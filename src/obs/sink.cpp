#include "obs/sink.hpp"

// MemorySink collects from whatever thread emits spans/counters; storage
// mutates only under mu_ (clip-analyze L1 enforces the write side).
// clip-lint: guards(mu_: spans_, counters_)

#include "obs/chrome_trace.hpp"
#include "util/check.hpp"

namespace clip::obs {

void MemorySink::on_span(const SpanRecord& span) {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(span);
}

void MemorySink::on_counter(const CounterSample& sample) {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back(sample);
}

std::vector<SpanRecord> MemorySink::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<CounterSample> MemorySink::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t MemorySink::span_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void MemorySink::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  counters_.clear();
}

JsonlFileSink::JsonlFileSink(const std::filesystem::path& path) : out_(path) {
  CLIP_REQUIRE(out_.good(), "cannot open JSONL sink file: " + path.string());
}

void JsonlFileSink::on_span(const SpanRecord& span) {
  const std::string line = span_to_json(span);
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();  // crash tolerance beats throughput for a debug stream
}

void JsonlFileSink::on_counter(const CounterSample& sample) {
  const std::string line = counter_to_json(sample);
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();
}

}  // namespace clip::obs
