#include "sim/config.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace clip::sim {

std::string NodeConfig::describe() const {
  std::ostringstream os;
  os << threads << " threads/" << parallel::to_string(affinity) << ", mem "
     << to_string(mem_level) << ", caps cpu=" << cpu_cap.value()
     << "W mem=" << mem_cap.value() << "W";
  return os.str();
}

ClusterConfig shift_pkg_to_dram(const ClusterConfig& cfg, Watts delta_w,
                                Watts min_cpu_cap_w) {
  CLIP_REQUIRE(delta_w.value() >= 0.0, "subsystem shift must be >= 0 W");
  ClusterConfig shifted = cfg;
  const double delta = std::min(
      delta_w.value(),
      std::max(cfg.node.cpu_cap.value() - min_cpu_cap_w.value(), 0.0));
  shifted.node.cpu_cap = Watts(cfg.node.cpu_cap.value() - delta);
  shifted.node.mem_cap = Watts(cfg.node.mem_cap.value() + delta);
  switch (cfg.node.mem_level) {
    case MemPowerLevel::kL0:
      break;  // already at full bandwidth
    case MemPowerLevel::kL1:
      shifted.node.mem_level = MemPowerLevel::kL0;
      break;
    case MemPowerLevel::kL2:
      shifted.node.mem_level = MemPowerLevel::kL1;
      break;
    case MemPowerLevel::kL3:
      shifted.node.mem_level = MemPowerLevel::kL2;
      break;
  }
  for (auto& cap : shifted.cpu_cap_overrides)
    cap = Watts(std::max(cap.value() - delta, min_cpu_cap_w.value()));
  return shifted;
}

std::string ClusterConfig::describe() const {
  std::ostringstream os;
  os << nodes << " node(s) x [" << node.describe() << "]";
  if (!cpu_cap_overrides.empty()) os << " + per-node cap overrides";
  return os.str();
}

}  // namespace clip::sim
