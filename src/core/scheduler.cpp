#include "core/scheduler.hpp"

#include <sstream>

#include "util/check.hpp"

namespace clip::core {

std::string ScheduleDecision::describe() const {
  std::ostringstream os;
  os << "class=" << workloads::to_string(cls);
  if (inflection > 0) os << " N_P=" << inflection;
  os << " | " << cluster.describe() << " | node budget "
     << node_budget.value() << " W (range [" << node_range.low.value()
     << ", " << node_range.high.value() << "])"
     << (from_knowledge_db ? " [cached profile]" : " [freshly profiled]");
  return os.str();
}

ClipScheduler::ClipScheduler(
    sim::SimExecutor& executor,
    const std::vector<workloads::WorkloadSignature>& training_suite,
    SchedulerOptions options)
    : executor_(&executor),
      options_(options),
      profiler_(executor, options.profiler),
      classifier_(options.classifier),
      inflection_(options.inflection),
      selector_(executor.spec(), options.selector),
      allocator_(executor.spec(), selector_, options.allocator),
      variability_(options.variability),
      db_(KnowledgeDbShape{executor.spec().shape.total_cores(),
                           executor.spec().fingerprint()}) {
  CLIP_REQUIRE(!training_suite.empty(),
               "CLIP needs a training suite for the inflection model");
  const auto samples =
      build_training_set(profiler_, classifier_, training_suite);
  inflection_.train(samples);
}

void ClipScheduler::set_observer(obs::ObsSession* obs) {
  obs_ = obs;
  profiler_.set_observer(obs);
  allocator_.set_observer(obs);
}

std::pair<ProfileData, KnowledgeRecord> ClipScheduler::characterize(
    const workloads::WorkloadSignature& app) {
  ProfileData profile;
  {
    obs::ScopedSpan span(obs_, "pipeline.profile", "pipeline");
    span.arg("app", app.name);
    profile = profiler_.profile(app);
    span.arg("memory_intensity", profile.memory_intensity);
  }

  workloads::ScalabilityClass cls;
  {
    obs::ScopedSpan span(obs_, "pipeline.classify", "pipeline");
    span.arg("half_over_all", profile.perf_ratio_half_over_all);
    cls = classifier_.classify(profile);
    span.arg("class", workloads::to_string(cls));
  }

  int np = 0;
  {
    obs::ScopedSpan span(obs_, "pipeline.inflect", "pipeline");
    if (cls != workloads::ScalabilityClass::kLinear) {
      np = inflection_.predict(profile, cls,
                               executor_->spec().shape.total_cores());
      if (options_.take_validation_sample) {
        // Third sample configuration: measure at the predicted inflection to
        // anchor the scaling segment of the performance model.
        profiler_.validate_at(app, profile, np);
      }
    }
    span.arg("n_p", np);
  }
  return {profile, make_record(profile, cls, np)};
}

std::tuple<ProfileData, KnowledgeRecord, bool>
ClipScheduler::get_or_characterize(const workloads::WorkloadSignature& app) {
  if (auto hit = db_.lookup(app.name, app.parameters)) {
    // A record that parsed but is physically impossible must not drive a
    // decision — surface it here so the Launcher can fall back.
    hit->validate();
    return {hit->to_profile(db_.shape()), *hit, true};
  }
  auto [profile, record] = characterize(app);
  db_.insert(record);
  return {std::move(profile), std::move(record), false};
}

ScheduleDecision ClipScheduler::schedule(
    const workloads::WorkloadSignature& app, Watts cluster_budget) {
  obs::ScopedSpan root(obs_, "clip.schedule", "pipeline");
  root.arg("app", app.name);
  root.arg("budget_w", cluster_budget.value());
  const obs::ScopedTimer timer(obs_, "scheduler.plan_us");
  obs::count(obs_, "scheduler.schedules");

  auto [profile, record, cached] = get_or_characterize(app);
  obs::count(obs_, cached ? "scheduler.db_hits" : "scheduler.db_misses");

  const std::vector<int> predefined =
      app.has_predefined_process_counts ? allocator_.power_of_two_counts()
                                        : std::vector<int>{};
  ClusterDecision alloc;
  {
    obs::ScopedSpan span(obs_, "pipeline.allocate", "pipeline");
    alloc = allocator_.allocate(profile, record.cls, record.inflection,
                                cluster_budget, predefined);
    span.arg("nodes", alloc.nodes);
    span.arg("node_budget_w", alloc.node_budget.value());
  }

  ScheduleDecision d;
  d.cls = record.cls;
  d.inflection = record.inflection;
  d.node_budget = alloc.node_budget;
  d.node_range = alloc.node_range;
  d.predicted_node_time = alloc.node.predicted_time;
  d.from_knowledge_db = cached;
  d.profiling_cost = cached ? Seconds(0.0) : profile.profiling_cost;

  d.cluster.nodes = alloc.nodes;
  d.cluster.node = alloc.node.config;

  // Inter-node coordination against manufacturing variability (the
  // multipliers come from the one-time cluster power characterization).
  // Variability scales core load power only; the socket base draw is the
  // hardware constant the coordinator must not redistribute.
  {
    obs::ScopedSpan span(obs_, "pipeline.coordinate", "pipeline");
    const auto& spec = executor_->spec();
    const Watts node_base(spec.shape.sockets * spec.socket_base_w);
    variability_.apply(d.cluster, node_multipliers(alloc.nodes), node_base);
    span.arg("overrides",
             static_cast<int>(d.cluster.cpu_cap_overrides.size()));
  }
  return d;
}

std::vector<double> ClipScheduler::node_multipliers(int nodes) const {
  std::vector<double> multipliers;
  multipliers.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i)
    multipliers.push_back(executor_->variability().cpu_multiplier(i));
  return multipliers;
}

ClipScheduler::PhasedDecision ClipScheduler::schedule_phased(
    const workloads::PhasedWorkload& app, Watts cluster_budget) {
  obs::ScopedSpan root(obs_, "clip.schedule_phased", "pipeline");
  root.arg("app", app.name);
  root.arg("phases", static_cast<int>(app.phases.size()));
  obs::count(obs_, "scheduler.phased_schedules");
  app.validate();
  // Node count and per-node budget from the whole-program (blended)
  // profile: the allocation cannot change at phase boundaries.
  const ScheduleDecision base = schedule(app.blended(), cluster_budget);

  PhasedDecision d;
  d.cluster.nodes = base.cluster.nodes;
  d.node_budget = base.node_budget;
  for (std::size_t i = 0; i < app.phases.size(); ++i) {
    const workloads::WorkloadSignature phase = app.phase_signature(i);
    auto [profile, record, cached] = get_or_characterize(phase);
    (void)cached;
    const NodeDecision nd = selector_.select(
        profile, record.cls, record.inflection,
        Watts(std::min(base.node_budget.value(),
                       executor_->spec().max_node_w())));
    d.cluster.phase_nodes.push_back(nd.config);
    d.phase_classes.push_back(record.cls);
    d.phase_inflections.push_back(record.inflection);
  }
  return d;
}

ScheduleDecision ClipScheduler::schedule_constrained(
    const workloads::WorkloadSignature& app, Watts cluster_budget,
    int fixed_nodes, int fixed_threads) {
  obs::ScopedSpan root(obs_, "clip.schedule_constrained", "pipeline");
  root.arg("app", app.name);
  root.arg("fixed_nodes", fixed_nodes);
  const obs::ScopedTimer timer(obs_, "scheduler.plan_us");
  obs::count(obs_, "scheduler.constrained_schedules");
  CLIP_REQUIRE(fixed_nodes >= 1 && fixed_nodes <= executor_->spec().nodes,
               "fixed node count outside the cluster");
  CLIP_REQUIRE(fixed_threads >= 0 &&
                   fixed_threads <= executor_->spec().shape.total_cores(),
               "fixed thread count outside the node");
  auto [profile, record, cached] = get_or_characterize(app);
  obs::count(obs_, cached ? "scheduler.db_hits" : "scheduler.db_misses");

  const Watts node_budget(cluster_budget.value() / fixed_nodes);
  NodeDecision nd;
  {
    obs::ScopedSpan span(obs_, "pipeline.node_select", "pipeline");
    span.arg("nodes", fixed_nodes);
    nd = fixed_threads > 0
             ? selector_.select_forced(profile, record.cls,
                                       record.inflection, node_budget,
                                       fixed_threads)
             : selector_.select(profile, record.cls, record.inflection,
                                node_budget);
    span.arg("threads", nd.config.threads);
  }

  ScheduleDecision d;
  d.cls = record.cls;
  d.inflection = record.inflection;
  d.node_budget = node_budget;
  const PowerEstimator power(executor_->spec(), profile);
  d.node_range = power.acceptable_range(
      nd.config.threads, nd.config.affinity, nd.config.mem_level);
  d.predicted_node_time = nd.predicted_time;
  d.from_knowledge_db = cached;
  d.profiling_cost = cached ? Seconds(0.0) : profile.profiling_cost;
  d.cluster.nodes = fixed_nodes;
  d.cluster.node = nd.config;

  {
    obs::ScopedSpan span(obs_, "pipeline.coordinate", "pipeline");
    const auto& spec = executor_->spec();
    const Watts node_base(spec.shape.sockets * spec.socket_base_w);
    variability_.apply(d.cluster, node_multipliers(fixed_nodes), node_base);
  }
  return d;
}

sim::Measurement ClipScheduler::schedule_and_run(
    const workloads::WorkloadSignature& app, Watts cluster_budget) {
  const ScheduleDecision d = schedule(app, cluster_budget);
  return executor_->run(app, d.cluster);
}

}  // namespace clip::core
