// Tests for the Conductor baseline (§VI related work).
#include <gtest/gtest.h>

#include "baselines/conductor.hpp"
#include "baselines/clip_adapter.hpp"
#include "baselines/oracle.hpp"
#include "sim/executor.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip::baselines {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

class ConductorTest : public ::testing::Test {
 protected:
  sim::SimExecutor ex_{sim::MachineSpec{}, no_noise()};
  ConductorScheduler conductor_{ex_};
};

TEST_F(ConductorTest, AlwaysUsesAllNodes) {
  for (const char* name : {"CoMD", "SP-MZ", "TeaLeaf"}) {
    const auto w = *workloads::find_benchmark(name);
    for (double budget : {500.0, 900.0, 1400.0}) {
      EXPECT_EQ(conductor_.plan(w, Watts(budget)).nodes, 8)
          << name << " @" << budget;
    }
  }
}

TEST_F(ConductorTest, FindsThrottledConcurrencyForParabolicApps) {
  const auto w = *workloads::find_benchmark("miniAero");
  const sim::ClusterConfig cfg = conductor_.plan(w, Watts(1200.0));
  EXPECT_LT(cfg.node.threads, 24);
}

TEST_F(ConductorTest, SearchCostIsLarge) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  (void)conductor_.plan(w, Watts(900.0));
  EXPECT_GT(conductor_.last_search_cost(), 20);
}

TEST_F(ConductorTest, RespectsBudget) {
  for (const char* name : {"BT-MZ", "TeaLeaf"}) {
    const auto w = *workloads::find_benchmark(name);
    for (double budget : {600.0, 1000.0}) {
      const auto m = ex_.run_exact(w, conductor_.plan(w, Watts(budget)));
      EXPECT_LE(m.avg_power.value(), budget * 1.01) << name;
    }
  }
}

TEST_F(ConductorTest, OracleDominatesConductor) {
  OracleScheduler oracle(ex_);
  const auto w = *workloads::find_benchmark("SP-MZ");
  for (double budget : {700.0, 1100.0}) {
    const double c =
        ex_.run_exact(w, conductor_.plan(w, Watts(budget))).time.value();
    const double o =
        ex_.run_exact(w, oracle.plan(w, Watts(budget))).time.value();
    EXPECT_LE(o, c * 1.001) << budget;
  }
}

TEST_F(ConductorTest, ClipBeatsConductorAtLowBudgetOnAverage) {
  // Conductor's all-nodes assumption thins the per-node share at low
  // budgets — the paper's §VI argument for discerning the node count.
  ClipAdapter clip(ex_, workloads::training_benchmarks());
  const Watts budget(600.0);
  double conductor_total = 0.0, clip_total = 0.0;
  for (const auto& w : workloads::paper_benchmarks()) {
    conductor_total +=
        ex_.run_exact(w, conductor_.plan(w, budget)).time.value();
    clip_total += ex_.run_exact(w, clip.plan(w, budget)).time.value();
  }
  EXPECT_LT(clip_total, conductor_total);
}

TEST_F(ConductorTest, RejectsNonPositiveBudget) {
  const auto w = *workloads::find_benchmark("CoMD");
  EXPECT_THROW((void)conductor_.plan(w, Watts(0.0)), PreconditionError);
}

}  // namespace
}  // namespace clip::baselines
