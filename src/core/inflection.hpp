// Inflection-point prediction (paper §III-A2).
//
// For the two non-linear scalability classes, CLIP must know N_P — the
// thread count where the scalability trend breaks (saturation knee for
// logarithmic workloads, performance peak for parabolic ones). The paper
// trains a multivariate linear regression per class on the Table I hardware
// event rates of a benchmark suite (NPB, HPCC, STREAM, PolyBench), with the
// ground-truth inflection identified manually (here: by exhaustive search on
// the simulator), then predicts N_P for new applications from their profile
// events alone. Predictions are floored to an even count: "applications
// perform worse with an odd-value concurrency than with a close even-value
// concurrency" (§V-B2).
#pragma once

#include <map>
#include <vector>

#include "core/classifier.hpp"
#include "core/profile.hpp"
#include "core/profiler.hpp"
#include "sim/executor.hpp"
#include "stats/linreg.hpp"
#include "workloads/signature.hpp"

namespace clip::core {

struct TrainingSample {
  std::string name;
  std::vector<double> features;  ///< Table I event rates (8 values)
  workloads::ScalabilityClass cls = workloads::ScalabilityClass::kLinear;
  double inflection = 0.0;  ///< ground-truth N_P (even)
};

struct InflectionOptions {
  double ridge_lambda = 4.0;  ///< few samples vs 8 features: regularize
};

class InflectionPredictor {
 public:
  using Options = InflectionOptions;

  explicit InflectionPredictor(InflectionOptions options = InflectionOptions{})
      : options_(options) {}

  /// Fit one MLR per non-linear class ("trains each type of workload
  /// independently", §III-A). Linear-class samples are ignored: linear
  /// workloads have no inflection inside the node.
  void train(const std::vector<TrainingSample>& samples);

  [[nodiscard]] bool is_trained(workloads::ScalabilityClass cls) const;

  /// Predict N_P from a profile; result is floored to even and clamped to
  /// [2, max_threads].
  [[nodiscard]] int predict(const ProfileData& profile,
                            workloads::ScalabilityClass cls,
                            int max_threads) const;

 private:
  InflectionOptions options_;
  std::map<workloads::ScalabilityClass, stats::LinearModel> models_;
};

/// Ground-truth inflection of a workload, by exhaustive search over even
/// thread counts on the exact (noise-free) simulator:
///  * parabolic:    the even concurrency minimizing node execution time;
///  * logarithmic:  the breakpoint of a two-segment piecewise-linear fit of
///    the speedup curve, floored to even.
[[nodiscard]] double measure_inflection(sim::SimExecutor& executor,
                                        const workloads::WorkloadSignature& w,
                                        workloads::ScalabilityClass cls,
                                        parallel::AffinityPolicy affinity);

/// Profile every training workload, classify it from its *measured* ratio,
/// and attach the ground-truth inflection: the dataset of paper Fig. 7's
/// model. Linear-classified workloads are included (the trainer skips them).
[[nodiscard]] std::vector<TrainingSample> build_training_set(
    SmartProfiler& profiler, const ScalabilityClassifier& classifier,
    const std::vector<workloads::WorkloadSignature>& suite);

}  // namespace clip::core
