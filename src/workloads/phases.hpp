// Phased workloads — applications whose iterations alternate between
// phases with different resource characters.
//
// Paper §V-B1: "The stagnant scalability of BT-MZ ... is due to function
// exch_qbc ... Thus, we change the concurrency setting phase-by-phase for
// the BT benchmark to increase performance." A single configuration must
// compromise between a compute-dominated solver phase (scales well) and a
// boundary-exchange phase (saturates early, even degrades); per-phase
// throttling removes the compromise.
//
// A PhasedWorkload is a weighted sequence of WorkloadSignatures sharing one
// problem: phase i contributes `weight_i` of the single-core work. The flat
// signature a phase-blind scheduler sees is the weighted blend.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workloads/signature.hpp"

namespace clip::workloads {

struct Phase {
  std::string name;
  double weight = 1.0;  ///< fraction of total single-core work (sums to 1)
  WorkloadSignature signature;  ///< node_base_time_s is ignored; weight rules
};

struct PhasedWorkload {
  std::string name;
  std::string parameters;
  double node_base_time_s = 100.0;  ///< total single-core work
  std::vector<Phase> phases;

  /// Equal-weight blend the phase-blind pipeline profiles: a single flat
  /// signature whose parameters are the work-weighted averages. This is
  /// what a whole-program profile measures on real hardware.
  [[nodiscard]] WorkloadSignature blended() const;

  /// The signature of one phase scaled to its work share, ready for the
  /// standard node-time model.
  [[nodiscard]] WorkloadSignature phase_signature(std::size_t index) const;

  void validate() const;
};

/// Phased versions of the multi-zone paper benchmarks: a dominant solver
/// phase plus a boundary-exchange phase (exch_qbc-like), calibrated so the
/// blend matches the corresponding flat catalog entry's class.
[[nodiscard]] const std::vector<PhasedWorkload>& phased_benchmarks();

[[nodiscard]] std::optional<PhasedWorkload> find_phased(
    const std::string& name);

}  // namespace clip::workloads
