// Runtime power redistribution between running jobs.
//
// CLIP allocates a job's power slice once, at launch, and never revisits it
// (Algorithm 1 runs per submission). On a real power-bounded cluster that
// strands watts: a job whose caps exceed its measured draw holds headroom
// nobody can use, while queued jobs wait for watts and critical-path jobs
// run capped. Medhat et al. (*Power Redistribution for Optimizing
// Performance in MPI Clusters*) show a runtime claw-back/re-grant loop
// recovers that makespan; Subramaniam & Feng's subsystem-level power
// management motivates extending the shift to the PKG↔DRAM boundary inside
// a node. This header is that loop's policy layer, used by
// runtime::PowerAwareJobQueue (docs/power-redistribution.md):
//
//   * SlackDetector — estimates per-node slack watts under the current cap
//     from recent power samples (kept in a private, ring-bounded
//     obs::Timeline) plus the job's phase signal (the ext_phase_aware phase
//     model, looked up by application name);
//   * Redistributor — sizes claw-backs (how much of a job's slice to
//     reclaim after the reaction latency) and picks the re-grant target:
//     the running job whose completion improves the most per granted watt,
//     as evaluated by the caller through the memoized evaluation engine.
//
// Both classes are pure policy: they never touch the executor, the
// scheduler, or the clock. All decisions are deterministic functions of the
// samples fed in, so a queue run with redistribution enabled is exactly
// reproducible — and with it disabled the queue never constructs either
// class on a hot path and stays byte-identical to the static runtime.
#pragma once

#include <string>
#include <vector>

#include "obs/timeline.hpp"
#include "workloads/signature.hpp"

namespace clip::runtime {

struct RedistributionOptions {
  /// Master switch. Off (the default) keeps the queue byte-identical to the
  /// static-allocation runtime — no ticks, no samples, no extra FP ops.
  bool enabled = false;
  /// Slack sampling cadence on the simulated-seconds axis.
  double period_s = 20.0;
  /// Latency between deciding a claw-back and the re-programmed caps taking
  /// effect (telemetry period + RAPL MSR writes settling), mirroring
  /// fault::BudgetGuardOptions::reaction_s.
  double reaction_s = 2.0;
  /// Slack kept above the observed draw when clawing back, as a fraction of
  /// the job's current slice: claw down to draw + headroom, never further.
  double headroom_frac = 0.08;
  /// Claw-backs below this are not worth the cap rewrite.
  double min_claw_w = 4.0;
  /// Re-grants below this are not worth the evaluation.
  double min_grant_w = 4.0;
  /// A re-grant or subsystem shift must buy at least this much completion
  /// time for its job; below it the watts stay in the free pool.
  double min_gain_s = 0.05;
  /// Recent samples per node the slack estimator reads (its Timeline ring
  /// capacity). Slack is judged against the *max* recent draw, so one
  /// low-power phase sample cannot trigger a claw-back the next compute
  /// phase would regret.
  int window_samples = 3;
  /// Enable intra-node PKG→DRAM shifting for memory-phase jobs.
  bool subsystem_split = true;
  /// Watts moved per subsystem shift (per node, PKG cap to DRAM cap).
  double shift_step_w = 5.0;

  void validate() const;
};

/// What the phase model says a job is doing at an instant.
struct PhaseSignal {
  bool known = false;        ///< false: no phased model for this application
  std::string phase;         ///< active phase name when known
  bool memory_bound = false; ///< active (or whole-program) memory character
};

/// Estimates per-node slack watts from recent power samples and phase
/// signals. The detector owns a ring-bounded obs::Timeline of the samples
/// the queue feeds it — the same flight-recorder machinery, pointed inward —
/// so "recent" is defined by RedistributionOptions::window_samples and the
/// estimate is a pure function of the recorded window.
class SlackDetector {
 public:
  explicit SlackDetector(const RedistributionOptions& options);

  /// Record one plausibility-filtered per-node power sample.
  void observe(int node, double t_s, double draw_w);

  /// Slack watts node `node` holds under `cap_w`: cap minus the max recent
  /// draw minus the headroom share of the cap. Zero when no samples have
  /// been recorded yet (an unobserved node is never clawed), never
  /// negative.
  [[nodiscard]] double node_slack_w(int node, double cap_w) const;

  /// The phase `app` is in at `t_s`, given its run spans [start_s, end_s):
  /// looks up the ext_phase_aware phased model (`<name>-phased` in
  /// workloads::phased_benchmarks) and maps elapsed run fraction onto the
  /// phase sequence by work weight. Falls back to the flat signature's
  /// memory character when no phased model exists.
  [[nodiscard]] static PhaseSignal phase_at(
      const workloads::WorkloadSignature& app, double start_s, double end_s,
      double t_s);

  /// The sample store (for tests and the flight recorder bridge).
  [[nodiscard]] const obs::Timeline& samples() const { return timeline_; }

 private:
  RedistributionOptions options_;
  obs::Timeline timeline_;
};

/// One running job's re-grant evaluation, produced by the caller via the
/// memoized evaluation engine (schedule_constrained + run_exact at the
/// boosted slice) and judged here.
struct RegrantCandidate {
  std::size_t job = 0;        ///< caller's identifier for the running job
  double grant_w = 0.0;       ///< watts the candidate would receive
  double gain_s = 0.0;        ///< completion-time reduction the watts buy
};

/// Sizes claw-backs and picks re-grant targets. Pure policy; the queue owns
/// application of every decision.
class Redistributor {
 public:
  explicit Redistributor(const RedistributionOptions& options);

  /// Watts to claw back from a job holding `slack_w` of detected slack over
  /// a slice of `reserved_w`, such that the slice never drops below
  /// `floor_w` (the job's observed draw plus headroom, and never below the
  /// queue's minimum viable reservation). Returns 0 when the worthwhile
  /// claw is below min_claw_w.
  [[nodiscard]] double claw_w(double reserved_w, double slack_w,
                              double floor_w) const;

  /// The candidate with the best marginal makespan gain, or nullptr when no
  /// candidate clears min_gain_s. Ties break toward the first candidate in
  /// the (deterministic) caller order.
  [[nodiscard]] const RegrantCandidate* pick(
      const std::vector<RegrantCandidate>& candidates) const;

 private:
  RedistributionOptions options_;
};

}  // namespace clip::runtime
