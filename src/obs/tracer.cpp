#include "obs/tracer.hpp"

// The thread-index table is the tracer's only cross-thread mutable state.
// clip-lint: guards(mu_: thread_indices_)

#include "obs/session.hpp"
#include "obs/timeline.hpp"

namespace clip::obs {

namespace {

/// Per-thread nesting depth. Process-wide rather than per-tracer: spans nest
/// lexically within a thread regardless of which session records them, and a
/// plain thread_local keeps the hot path free of map lookups.
thread_local int t_span_depth = 0;

}  // namespace

void Tracer::emit(const SpanRecord& span) {
  if (TraceSink* sink = sink_.load(std::memory_order_acquire))
    sink->on_span(span);
}

void Tracer::emit_counter(const CounterSample& sample) {
  if (TraceSink* sink = sink_.load(std::memory_order_acquire))
    sink->on_counter(sample);
}

int Tracer::thread_index() {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = thread_indices_.emplace(
      std::this_thread::get_id(),
      static_cast<int>(thread_indices_.size()));
  (void)inserted;
  return it->second;
}

ScopedSpan::ScopedSpan(ObsSession* session, std::string_view name,
                       std::string_view category) {
  if (session == nullptr || !session->tracer().active()) return;
  tracer_ = &session->tracer();
  record_.name = name;
  record_.category = category;
  record_.tid = tracer_->thread_index();
  record_.depth = t_span_depth++;
  record_.start_us = tracer_->clock().now_us();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  record_.duration_us = tracer_->clock().now_us() - record_.start_us;
  --t_span_depth;
  tracer_->emit(record_);
}

void ScopedSpan::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  record_.args.push_back({std::string(key), std::string(value), false});
}

void ScopedSpan::arg(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  // Shortest-exact (clip-lint D3): trace args must parse back to the value
  // the instrumented code saw, not a 3-decimal rounding of it.
  record_.args.push_back({std::string(key), format_exact(value), true});
}

void ScopedSpan::arg(std::string_view key, int value) {
  if (tracer_ == nullptr) return;
  record_.args.push_back({std::string(key), std::to_string(value), true});
}

}  // namespace clip::obs
