// Oracle: exhaustive configuration search on the exact simulator.
//
// The paper validates CLIP as "close to the optimal solution" by exhaustive
// search (and uses exhaustive search for the ground-truth inflection points
// of Fig. 7). The oracle enumerates node count × even thread counts ×
// placement × memory power level, splits each node budget between the
// domains according to the level's worst-case draw, and returns the
// configuration with the smallest *exact* (noise-free) execution time.
//
// It is deliberately outside the CLIP framework: it peeks at ground truth
// and costs thousands of executions per (application, budget) pair — the
// paper's argument for CLIP is getting within a few percent of this with at
// most three profiles. Because that brute force dominates every comparison
// bench, the search engine here is built for speed without changing the
// answer (docs/performance.md):
//
//  * the candidate grid can fan out across a clip::parallel::ThreadPool
//    (`set_pool`); every evaluation is an exact run, so the winner is
//    order-independent and selected by a deterministic serial-order scan;
//  * dominated cap grids are pruned: one uncapped run per (nodes, threads,
//    affinity, level) combo lower-bounds every capped point of that combo
//    (execution time is monotone non-increasing in either cap), so a combo
//    whose bound cannot strictly beat the incumbent is skipped wholesale;
//  * the per-level cap grid is deduplicated (the demand-tight point often
//    coincides with a grid point) and memoized via the executor's
//    ExactRunCache when one is attached — the uncapped bound runs are
//    budget-independent, so budget sweeps pay for them once.
#pragma once

#include <atomic>

#include "baselines/scheduler_iface.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/executor.hpp"

namespace clip::baselines {

struct OracleOptions {
  /// Lower-bound pruning of dominated cap grids. Never changes the optimal
  /// *time*; on exact ties between configurations the reported plan may
  /// differ from the unpruned scan (both are optimal).
  bool prune = true;
};

class OracleScheduler final : public PowerScheduler {
 public:
  explicit OracleScheduler(sim::SimExecutor& executor,
                           OracleOptions options = OracleOptions{})
      : executor_(&executor), options_(options) {}

  [[nodiscard]] std::string name() const override { return "Oracle"; }

  /// Fan the candidate grid out across `pool` (nullptr = serial). The pool
  /// is borrowed, not owned, and must outlive the scheduler's plan() calls.
  void set_pool(parallel::ThreadPool* pool) { pool_ = pool; }

  void set_options(OracleOptions options) { options_ = options; }

  [[nodiscard]] sim::ClusterConfig plan(
      const workloads::WorkloadSignature& app,
      Watts cluster_budget) override;

  /// Number of simulator executions the last plan() consumed (including
  /// pruning-bound runs) — the search cost CLIP's ≤3-sample profiling
  /// avoids. Atomic because the grid evaluates concurrently.
  [[nodiscard]] int last_search_cost() const {
    return last_search_cost_.load(std::memory_order_relaxed);
  }

 private:
  sim::SimExecutor* executor_;
  OracleOptions options_;
  parallel::ThreadPool* pool_ = nullptr;
  std::atomic<int> last_search_cost_{0};
};

}  // namespace clip::baselines
