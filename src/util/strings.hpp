// Small string formatting helpers shared by the table/CSV writers and the
// benchmark harnesses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace clip {

/// printf-style double formatting with a fixed number of decimals.
[[nodiscard]] std::string format_double(double v, int decimals = 3);

/// Format as a percentage with sign, e.g. +23.4%.
[[nodiscard]] std::string format_percent(double fraction, int decimals = 1);

/// Left/right padding to a fixed width (spaces).
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// Split on a delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string trim(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Escape a CSV field (quote when it contains comma/quote/newline).
[[nodiscard]] std::string csv_escape(std::string_view field);

}  // namespace clip
