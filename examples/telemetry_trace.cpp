// Telemetry trace — the "power meter reader" helper tool (§IV-B4) in
// action: run a phase-aware CLIP job, record the sampled per-node power/
// frequency/phase time series, print a compact view, and export the full
// series as CSV for external plotting.
#include <filesystem>
#include <iostream>

#include "core/scheduler.hpp"
#include "workloads/catalog.hpp"
#include "runtime/telemetry.hpp"
#include "util/strings.hpp"
#include "workloads/phases.hpp"

using namespace clip;

int main() {
  sim::MeterOptions quiet;
  quiet.enabled = false;
  sim::SimExecutor cluster(sim::MachineSpec{}, quiet);
  core::ClipScheduler clip(cluster, workloads::training_benchmarks());

  const auto app = *workloads::find_phased("BT-MZ-phased");
  const auto decision = clip.schedule_phased(app, Watts(900.0));
  const auto measurement = cluster.run_phased_exact(app, decision.cluster);

  std::cout << "Phase-aware plan for " << app.name << " @900 W:\n";
  for (std::size_t i = 0; i < app.phases.size(); ++i)
    std::cout << "  " << app.phases[i].name << ": "
              << decision.cluster.phase_nodes[i].describe() << "\n";

  runtime::TelemetryOptions opt;
  opt.sample_period_s = 0.05;
  runtime::Telemetry telemetry(opt);
  const auto series =
      telemetry.record_phased(measurement, decision.cluster.nodes);

  // Compact terminal view: node 0's power over time, phase-annotated.
  std::cout << "\nnode 0 power trace (every 4th sample):\n"
            << "  t(s)   phase      cpu+mem (W)  freq  threads\n";
  int shown = 0;
  for (const auto& s : series) {
    if (s.node != 0) continue;
    if (shown++ % 4 != 0) continue;
    std::cout << "  " << pad_left(format_double(s.time_s, 2), 5) << "  "
              << pad_right(s.phase, 9) << "  "
              << pad_left(format_double(s.cpu_power_w + s.mem_power_w, 1), 10)
              << "  " << format_double(s.freq_ghz, 2) << "  " << s.threads
              << "\n";
  }

  const std::filesystem::path csv = "clip_trace.csv";
  runtime::Telemetry::write(csv, series);
  std::cout << "\nFull series (" << series.size() << " samples, "
            << decision.cluster.nodes << " nodes) written to " << csv
            << ".\nEnergy integral: "
            << format_double(
                   runtime::Telemetry::energy_j(series,
                                                opt.sample_period_s) /
                       1000.0,
                   2)
            << " kJ vs measured "
            << format_double(measurement.energy.value() / 1000.0, 2)
            << " kJ.\n";
  std::filesystem::remove(csv);
  return 0;
}
