#include "sim/presets.hpp"

namespace clip::sim {

MachineSpec haswell_testbed() { return MachineSpec{}; }

MachineSpec broadwell_fat() {
  MachineSpec s;
  s.nodes = 8;
  s.shape = {.sockets = 2, .cores_per_socket = 14};
  s.ladder = FrequencyLadder(GHz(1.2), GHz(2.6), GHz(0.1), GHz(2.6));
  s.socket_base_w = 19.0;
  s.core_max_w = 4.4;
  s.socket_bw_gbps = 38.4;
  s.mem_base_w_per_socket = 6.0;
  s.mem_activity_w_per_socket = 16.0;
  s.validate();
  return s;
}

MachineSpec ivybridge_wide_cluster() {
  MachineSpec s;
  s.nodes = 16;
  s.shape = {.sockets = 2, .cores_per_socket = 8};
  s.ladder = FrequencyLadder(GHz(1.2), GHz(2.0), GHz(0.1), GHz(2.0));
  s.socket_base_w = 14.0;
  s.core_max_w = 4.8;
  s.socket_bw_gbps = 25.6;
  s.mem_base_w_per_socket = 5.0;
  s.mem_activity_w_per_socket = 12.0;
  s.validate();
  return s;
}

MachineSpec bandwidth_rich() {
  MachineSpec s;
  s.nodes = 8;
  s.shape = {.sockets = 2, .cores_per_socket = 16};
  s.ladder = FrequencyLadder(GHz(1.0), GHz(2.1), GHz(0.1), GHz(2.1));
  s.socket_base_w = 18.0;
  s.core_max_w = 3.6;
  s.socket_bw_gbps = 60.0;
  s.mem_base_w_per_socket = 7.0;
  s.mem_activity_w_per_socket = 20.0;
  s.validate();
  return s;
}

std::vector<NamedSpec> all_presets() {
  return {{"haswell_testbed", haswell_testbed()},
          {"broadwell_fat", broadwell_fat()},
          {"ivybridge_wide_cluster", ivybridge_wide_cluster()},
          {"bandwidth_rich", bandwidth_rich()}};
}

}  // namespace clip::sim
