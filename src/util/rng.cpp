#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace clip {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed; splitmix64 guarantees a non-degenerate state even for
  // seed == 0, which xoshiro would otherwise map to the all-zero fixed point.
  for (auto& word : s_) word = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0,1) with full mantissa coverage.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CLIP_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CLIP_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = span * (UINT64_MAX / span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  CLIP_REQUIRE(stddev >= 0.0, "normal() requires stddev >= 0");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace clip
