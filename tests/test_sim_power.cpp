// Unit tests for the power side of the simulator: frequency ladder, machine
// spec, power model (paper Eqs. 5–9), RAPL enforcement, variability, meter.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/frequency.hpp"
#include "sim/machine.hpp"
#include "sim/power_meter.hpp"
#include "sim/power_model.hpp"
#include "sim/rapl.hpp"
#include "sim/variability.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip::sim {
namespace {

using clip::parallel::AffinityPolicy;
using clip::parallel::place_threads;
using namespace clip::literals;

MachineSpec default_spec() { return MachineSpec{}; }

workloads::WorkloadSignature compute_workload() {
  auto w = *workloads::find_benchmark("CoMD");
  return w;
}

workloads::WorkloadSignature memory_workload() {
  return *workloads::find_benchmark("STREAM-Triad");
}

// ------------------------------------------------------------- frequency ----

TEST(FrequencyLadder, HaswellHasTwelveStates) {
  const FrequencyLadder l = FrequencyLadder::haswell();
  EXPECT_EQ(l.state_count(), 12u);
  EXPECT_DOUBLE_EQ(l.min().value(), 1.2);
  EXPECT_DOUBLE_EQ(l.max().value(), 2.3);
  EXPECT_DOUBLE_EQ(l.nominal().value(), 2.3);
}

TEST(FrequencyLadder, StatesAreAscending) {
  const FrequencyLadder l = FrequencyLadder::haswell();
  for (std::size_t i = 1; i < l.states().size(); ++i)
    EXPECT_LT(l.states()[i - 1].value(), l.states()[i].value());
}

TEST(FrequencyLadder, RelativeOfNominalIsOne) {
  const FrequencyLadder l = FrequencyLadder::haswell();
  EXPECT_DOUBLE_EQ(l.relative(l.nominal()), 1.0);
  EXPECT_NEAR(l.relative(l.min()), 1.2 / 2.3, 1e-12);
}

TEST(FrequencyLadder, SnapDown) {
  const FrequencyLadder l = FrequencyLadder::haswell();
  EXPECT_DOUBLE_EQ(l.snap_down(GHz(1.97)).value(), 1.9);
  EXPECT_DOUBLE_EQ(l.snap_down(GHz(1.2)).value(), 1.2);
  EXPECT_DOUBLE_EQ(l.snap_down(GHz(0.8)).value(), 1.2);  // clamps to min
  EXPECT_DOUBLE_EQ(l.snap_down(GHz(9.9)).value(), 2.3);
}

TEST(FrequencyLadder, InvalidConstructionThrows) {
  EXPECT_THROW(FrequencyLadder(2.0_GHz, 1.0_GHz, 0.1_GHz, 2.0_GHz),
               PreconditionError);
  EXPECT_THROW(FrequencyLadder(1.0_GHz, 2.0_GHz, 0.0_GHz, 2.0_GHz),
               PreconditionError);
}

// ---------------------------------------------------------------- machine ----

TEST(MachineSpec, DefaultsValidate) {
  EXPECT_NO_THROW(default_spec().validate());
}

TEST(MachineSpec, PeakPowerArithmetic) {
  const MachineSpec s = default_spec();
  EXPECT_DOUBLE_EQ(s.max_node_cpu_w(), 2 * 16.0 + 24 * 4.0);
  EXPECT_DOUBLE_EQ(s.max_node_mem_w(), 2 * (5.0 + 14.0));
  EXPECT_DOUBLE_EQ(s.max_cluster_w(), 8 * s.max_node_w());
}

TEST(MachineSpec, MemLevelBandwidthFractionsAreOrdered) {
  EXPECT_GT(bw_fraction(MemPowerLevel::kL0), bw_fraction(MemPowerLevel::kL1));
  EXPECT_GT(bw_fraction(MemPowerLevel::kL1), bw_fraction(MemPowerLevel::kL2));
  EXPECT_GT(bw_fraction(MemPowerLevel::kL2), bw_fraction(MemPowerLevel::kL3));
  EXPECT_DOUBLE_EQ(bw_fraction(MemPowerLevel::kL0), 1.0);
}

TEST(MachineSpec, RejectsBadParameters) {
  MachineSpec s = default_spec();
  s.nodes = 0;
  EXPECT_THROW(s.validate(), PreconditionError);
  s = default_spec();
  s.remote_numa_penalty = 1.0;
  EXPECT_THROW(s.validate(), PreconditionError);
  s = default_spec();
  s.core_power_floor = 1.5;
  EXPECT_THROW(s.validate(), PreconditionError);
}

// ------------------------------------------------------------ power model ----

class PowerModelTest : public ::testing::Test {
 protected:
  MachineSpec spec_ = default_spec();
  PowerModel model_{spec_};

  NodeActivity activity(int threads, AffinityPolicy aff, double f_rel,
                        double util = 1.0, double bw = 0.0) {
    return NodeActivity{
        .placement = place_threads(spec_.shape, threads, aff),
        .f_rel = f_rel,
        .utilization = util,
        .compute_intensity = 1.0,
        .achieved_bw_gbps = bw,
        .cpu_load_multiplier = 1.0};
  }
};

TEST_F(PowerModelTest, AllCoreFullFreqMatchesSpecPeak) {
  const Watts p =
      model_.cpu_power(activity(24, AffinityPolicy::kScatter, 1.0));
  EXPECT_NEAR(p.value(), spec_.max_node_cpu_w(), 1e-9);
}

TEST_F(PowerModelTest, PowerDecreasesWithFrequency) {
  const Watts hi =
      model_.cpu_power(activity(24, AffinityPolicy::kScatter, 1.0));
  const Watts lo = model_.cpu_power(
      activity(24, AffinityPolicy::kScatter, 1.2 / 2.3));
  EXPECT_LT(lo.value(), hi.value());
  // Dynamic part follows f^2.2.
  const double dyn_hi = hi.value() - 32.0;
  const double dyn_lo = lo.value() - 32.0;
  EXPECT_NEAR(dyn_lo / dyn_hi, std::pow(1.2 / 2.3, 2.2), 1e-9);
}

TEST_F(PowerModelTest, ParkedSocketDrawsParkedPower) {
  const Watts compact12 =
      model_.cpu_power(activity(12, AffinityPolicy::kCompact, 1.0));
  const Watts scatter12 =
      model_.cpu_power(activity(12, AffinityPolicy::kScatter, 1.0));
  // Compact keeps socket 1 parked: 2 W instead of 16 W base.
  EXPECT_NEAR(scatter12.value() - compact12.value(),
              spec_.socket_base_w - spec_.socket_parked_w, 1e-9);
}

TEST_F(PowerModelTest, StalledCoresDrawLessThanBusyCores) {
  const Watts busy =
      model_.cpu_power(activity(24, AffinityPolicy::kScatter, 1.0, 1.0));
  const Watts stalled =
      model_.cpu_power(activity(24, AffinityPolicy::kScatter, 1.0, 0.3));
  EXPECT_LT(stalled.value(), busy.value());
  // Floor: even a fully stalled core draws core_power_floor of max.
  const Watts idle =
      model_.cpu_power(activity(24, AffinityPolicy::kScatter, 1.0, 0.0));
  EXPECT_NEAR(idle.value(), 32.0 + 24 * 4.0 * 0.35, 1e-9);
}

TEST_F(PowerModelTest, MemoryPowerScalesWithBandwidth) {
  const Watts idle =
      model_.mem_power(activity(24, AffinityPolicy::kScatter, 1.0, 1.0, 0.0));
  const Watts busy = model_.mem_power(
      activity(24, AffinityPolicy::kScatter, 1.0, 1.0, 68.0));
  EXPECT_NEAR(idle.value(), 2 * 5.0, 1e-9);
  EXPECT_NEAR(busy.value(), 2 * 5.0 + 68.0 * (14.0 / 34.0), 1e-9);
}

TEST_F(PowerModelTest, UnusedSocketMemoryParks) {
  const Watts compact = model_.mem_power(
      activity(12, AffinityPolicy::kCompact, 1.0, 1.0, 10.0));
  // One active socket: base 5 + activity; one parked: 1.
  EXPECT_NEAR(compact.value(), 5.0 + 1.0 + 10.0 * (14.0 / 34.0), 1e-9);
}

TEST_F(PowerModelTest, NodePowerIsSumOfDomains) {
  const NodeActivity a =
      activity(16, AffinityPolicy::kScatter, 0.8, 0.7, 30.0);
  EXPECT_NEAR(model_.node_power(a).value(),
              model_.cpu_power(a).value() + model_.mem_power(a).value(),
              1e-12);
}

TEST_F(PowerModelTest, VariabilityMultiplierScalesLoadOnly) {
  NodeActivity a = activity(24, AffinityPolicy::kScatter, 1.0);
  a.cpu_load_multiplier = 1.10;
  const Watts inflated = model_.cpu_power(a);
  // Base 32 W unscaled, load 96 W scaled by 1.1.
  EXPECT_NEAR(inflated.value(), 32.0 + 96.0 * 1.1, 1e-9);
}

TEST_F(PowerModelTest, CorePowerRejectsBadInputs) {
  EXPECT_THROW((void)model_.core_power(0.0, 1.0, 1.0), PreconditionError);
  EXPECT_THROW((void)model_.core_power(1.0, 1.5, 1.0), PreconditionError);
}

// ------------------------------------------------------------------ rapl ----

class RaplTest : public ::testing::Test {
 protected:
  MachineSpec spec_ = default_spec();
  RaplSolver solver_{spec_};

  NodeConfig config(int threads, Watts cpu_cap,
                    Watts mem_cap = Watts(1e9),
                    MemPowerLevel level = MemPowerLevel::kL0) {
    NodeConfig c;
    c.threads = threads;
    c.affinity = AffinityPolicy::kScatter;
    c.mem_level = level;
    c.cpu_cap = cpu_cap;
    c.mem_cap = mem_cap;
    return c;
  }
};

TEST_F(RaplTest, UnlimitedCapRunsAtNominal) {
  const OperatingPoint op =
      solver_.solve(compute_workload(), 100.0, config(24, Watts(1e9)));
  EXPECT_DOUBLE_EQ(op.frequency.value(), 2.3);
  EXPECT_DOUBLE_EQ(op.duty_factor, 1.0);
}

TEST_F(RaplTest, CpuPowerNeverExceedsCap) {
  for (double cap : {40.0, 60.0, 80.0, 100.0, 120.0}) {
    const OperatingPoint op =
        solver_.solve(compute_workload(), 100.0, config(24, Watts(cap)));
    EXPECT_LE(op.cpu_power.value(), cap + 1e-9) << "cap=" << cap;
  }
}

TEST_F(RaplTest, TighterCapMeansLowerFrequency) {
  const OperatingPoint loose =
      solver_.solve(compute_workload(), 100.0, config(24, Watts(120.0)));
  const OperatingPoint tight =
      solver_.solve(compute_workload(), 100.0, config(24, Watts(70.0)));
  EXPECT_GT(loose.frequency.value(), tight.frequency.value());
}

TEST_F(RaplTest, TighterCapMeansLongerTime) {
  const OperatingPoint loose =
      solver_.solve(compute_workload(), 100.0, config(24, Watts(130.0)));
  const OperatingPoint tight =
      solver_.solve(compute_workload(), 100.0, config(24, Watts(60.0)));
  EXPECT_GT(tight.perf.time.value(), loose.perf.time.value());
}

TEST_F(RaplTest, CapBelowMinFrequencyDutyCycles) {
  const OperatingPoint op =
      solver_.solve(compute_workload(), 100.0, config(24, Watts(40.0)));
  EXPECT_LT(op.duty_factor, 1.0);
  EXPECT_DOUBLE_EQ(op.frequency.value(), 1.2);
  EXPECT_NEAR(op.cpu_power.value(), 40.0, 1e-9);
}

TEST_F(RaplTest, DutyCycleGatesDynamicPowerOnly) {
  // Clock modulation stops the pipeline, not the socket base draw: the
  // duty solves cap = base + load(f_min)*duty, and throughput scales with
  // the duty.
  const double base_w = 2 * spec_.socket_base_w;
  const OperatingPoint at_min =
      solver_.solve(compute_workload(), 100.0, config(24, Watts(56.0)));
  const OperatingPoint duty =
      solver_.solve(compute_workload(), 100.0, config(24, Watts(44.0)));
  ASSERT_EQ(at_min.duty_factor, 1.0);
  ASSERT_LT(duty.duty_factor, 1.0);
  const double load_w = at_min.cpu_power.value() - base_w;
  EXPECT_NEAR(duty.duty_factor, (44.0 - base_w) / load_w, 1e-9);
  EXPECT_NEAR(duty.perf.time.value(),
              at_min.perf.time.value() / duty.duty_factor, 1e-9);
}

TEST_F(RaplTest, CapBelowBasePowerFloorsAtDeepestModulation) {
  // A cap under the static draw is unenforceable by clock gating: the node
  // floors at the deepest modulation step and the draw sits above the cap.
  const OperatingPoint op =
      solver_.solve(compute_workload(), 100.0, config(24, Watts(20.0)));
  EXPECT_NEAR(op.duty_factor, 1.0 / 16.0, 1e-12);
  EXPECT_GT(op.cpu_power.value(), 20.0);
  EXPECT_LT(op.cpu_power.value(), 2 * spec_.socket_base_w + 4.0);
}

TEST_F(RaplTest, MemCapThrottlesBandwidth) {
  const auto w = memory_workload();
  const OperatingPoint open =
      solver_.solve(w, 60.0, config(24, Watts(1e9), Watts(1e9)));
  const OperatingPoint capped =
      solver_.solve(w, 60.0, config(24, Watts(1e9), Watts(20.0)));
  EXPECT_LT(capped.perf.achieved_bw_gbps, open.perf.achieved_bw_gbps);
  EXPECT_LE(capped.mem_power.value(), 20.0 + 1e-9);
  EXPECT_GT(capped.perf.time.value(), open.perf.time.value());
}

TEST_F(RaplTest, MemLevelCapsBandwidthLikePower) {
  const auto w = memory_workload();
  const OperatingPoint l0 = solver_.solve(
      w, 60.0, config(24, Watts(1e9), Watts(1e9), MemPowerLevel::kL0));
  const OperatingPoint l3 = solver_.solve(
      w, 60.0, config(24, Watts(1e9), Watts(1e9), MemPowerLevel::kL3));
  EXPECT_LT(l3.perf.achieved_bw_gbps, l0.perf.achieved_bw_gbps);
  EXPECT_GT(l3.perf.time.value(), l0.perf.time.value());
}

TEST_F(RaplTest, BandwidthCeilingComputation) {
  const auto placement =
      place_threads(spec_.shape, 24, AffinityPolicy::kScatter);
  // Unlimited cap: ceiling = level bandwidth.
  EXPECT_NEAR(solver_.bandwidth_ceiling(placement, MemPowerLevel::kL0,
                                        Watts(1e9)),
              68.0, 1e-9);
  EXPECT_NEAR(solver_.bandwidth_ceiling(placement, MemPowerLevel::kL2,
                                        Watts(1e9)),
              34.0, 1e-9);
  // Power-capped: (cap - base) / w_per_gbps.
  const double ceiling = solver_.bandwidth_ceiling(
      placement, MemPowerLevel::kL0, Watts(24.0));
  EXPECT_NEAR(ceiling, (24.0 - 10.0) / (14.0 / 34.0), 1e-9);
}

TEST_F(RaplTest, MemoryBoundWithZeroBandwidthBudgetThrows) {
  // DRAM cap below base power leaves zero bandwidth for a memory-bound app.
  EXPECT_THROW(
      (void)solver_.solve(memory_workload(), 60.0,
                          config(24, Watts(1e9), Watts(8.0))),
      PreconditionError);
}

TEST_F(RaplTest, VariabilityMakesInefficentNodeSlower) {
  const NodeConfig cfg = config(24, Watts(90.0));
  const OperatingPoint good =
      solver_.solve(compute_workload(), 100.0, cfg, 0.95);
  const OperatingPoint bad =
      solver_.solve(compute_workload(), 100.0, cfg, 1.10);
  EXPECT_LE(good.perf.time.value(), bad.perf.time.value());
}

TEST_F(RaplTest, InvalidConfigsRejected) {
  EXPECT_THROW(
      (void)solver_.solve(compute_workload(), 100.0, config(25, Watts(100))),
      PreconditionError);
  EXPECT_THROW(
      (void)solver_.solve(compute_workload(), 100.0, config(24, Watts(0))),
      PreconditionError);
}

// ------------------------------------------------------------ variability ----

TEST(Variability, SigmaZeroGivesIdenticalNodes) {
  MachineSpec spec = default_spec();
  spec.variability_sigma = 0.0;
  const Variability v(spec);
  for (int i = 0; i < spec.nodes; ++i)
    EXPECT_DOUBLE_EQ(v.cpu_multiplier(i), 1.0);
  EXPECT_DOUBLE_EQ(v.spread(), 0.0);
}

TEST(Variability, SeededDrawsAreReproducible) {
  MachineSpec spec = default_spec();
  spec.variability_sigma = 0.05;
  const Variability a(spec), b(spec);
  for (int i = 0; i < spec.nodes; ++i)
    EXPECT_DOUBLE_EQ(a.cpu_multiplier(i), b.cpu_multiplier(i));
}

TEST(Variability, DifferentSeedsDiffer) {
  MachineSpec spec = default_spec();
  spec.variability_sigma = 0.05;
  const Variability a(spec);
  spec.variability_seed = 99;
  const Variability b(spec);
  bool any_diff = false;
  for (int i = 0; i < spec.nodes; ++i)
    if (a.cpu_multiplier(i) != b.cpu_multiplier(i)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Variability, SpreadGrowsWithSigma) {
  MachineSpec spec = default_spec();
  spec.variability_sigma = 0.02;
  const double small = Variability(spec).spread();
  spec.variability_sigma = 0.10;
  const double large = Variability(spec).spread();
  EXPECT_GT(large, small);
}

TEST(Variability, MultipliersNearOne) {
  MachineSpec spec = default_spec();
  spec.variability_sigma = 0.03;
  const Variability v(spec);
  for (int i = 0; i < spec.nodes; ++i) {
    EXPECT_GT(v.cpu_multiplier(i), 0.85);
    EXPECT_LT(v.cpu_multiplier(i), 1.15);
  }
}

TEST(Variability, OutOfRangeIndexThrows) {
  const Variability v(default_spec());
  EXPECT_THROW((void)v.cpu_multiplier(-1), PreconditionError);
  EXPECT_THROW((void)v.cpu_multiplier(8), PreconditionError);
}

// ------------------------------------------------------------ power meter ----

TEST(PowerMeter, DisabledMeterIsExact) {
  MeterOptions opt;
  opt.enabled = false;
  PowerMeter meter(opt);
  EXPECT_DOUBLE_EQ(meter.read_power(Watts(100.0)).value(), 100.0);
  EXPECT_DOUBLE_EQ(meter.read_time(Seconds(5.0)).value(), 5.0);
}

TEST(PowerMeter, NoiseIsSmallAndBounded) {
  MeterOptions opt;
  opt.power_noise_sigma = 0.005;
  PowerMeter meter(opt);
  for (int i = 0; i < 1000; ++i) {
    const double v = meter.read_power(Watts(100.0)).value();
    EXPECT_GT(v, 98.0);  // 4-sigma clamp = 2%
    EXPECT_LT(v, 102.0);
  }
}

TEST(PowerMeter, SeededNoiseReproducible) {
  MeterOptions opt;
  PowerMeter a(opt), b(opt);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.read_power(Watts(50.0)).value(),
                     b.read_power(Watts(50.0)).value());
}

TEST(PowerMeter, ObserveKeepsEnergyConsistent) {
  Measurement m;
  m.time = Seconds(10.0);
  NodeMeasurement nm;
  nm.time = Seconds(10.0);
  nm.cpu_power = Watts(90.0);
  nm.mem_power = Watts(30.0);
  m.nodes.push_back(nm);
  PowerMeter meter;
  meter.observe(m);
  EXPECT_NEAR(m.energy.value(), m.avg_power.value() * m.time.value(),
              1e-9);
}

}  // namespace
}  // namespace clip::sim
