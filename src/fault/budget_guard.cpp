#include "fault/budget_guard.hpp"

#include "util/check.hpp"

namespace clip::fault {

void BudgetGuardOptions::validate() const {
  CLIP_REQUIRE(reaction_s >= 0.0, "guard.reaction_s must be non-negative");
  CLIP_REQUIRE(min_plausible_node_w >= 0.0,
               "guard.min_plausible_node_w must be non-negative");
  CLIP_REQUIRE(max_plausible_node_w > min_plausible_node_w,
               "guard.max_plausible_node_w must exceed the minimum");
}

BudgetGuard::BudgetGuard(BudgetGuardOptions options, Watts cluster_budget)
    : options_(options), budget_w_(cluster_budget.value()) {
  options_.validate();
  CLIP_REQUIRE(budget_w_ > 0.0, "guard needs a positive cluster budget");
}

double BudgetGuard::filter_reading(double observed_w, double expected_w) {
  if (observed_w < options_.min_plausible_node_w ||
      observed_w > options_.max_plausible_node_w) {
    ++rejected_reads_;
    return expected_w;
  }
  return observed_w;
}

bool BudgetGuard::admit_regrant(double reserved_total_w, double grant_w) {
  CLIP_REQUIRE(grant_w >= 0.0, "re-grant watts must be non-negative");
  if (!options_.enabled) return true;
  if (reserved_total_w + grant_w <= budget_w_ + 1e-9) return true;
  ++regrants_rejected_;
  return false;
}

void BudgetGuard::account(double dt_s, double true_total_w) {
  CLIP_REQUIRE(dt_s >= 0.0, "accounting interval must be non-negative");
  const double over = true_total_w - budget_w_;
  if (over <= 1e-9) return;
  violation_s_ += dt_s;
  violation_ws_ += over * dt_s;
}

}  // namespace clip::fault
