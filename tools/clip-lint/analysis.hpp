// Internal semantic layer for clip-analyze: token helpers, function-span
// detection (scopes.cpp) and the reusable intra-procedural flow engine
// (flow.cpp). Everything here works on the lexer's token stream only — no
// type information — which is why each consumer documents exactly which
// token shapes it recognizes.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace clip::lint {

using Tokens = std::vector<Token>;

inline bool tok_is(const Tokens& t, std::size_t i, std::string_view text) {
  return i < t.size() && t[i].text == text;
}

inline bool tok_ident(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent;
}

/// Index of the `)` matching the `(` at (or after) `open`; t.size() when
/// unbalanced. `open` may point at the `(` itself.
std::size_t find_close_paren(const Tokens& t, std::size_t open);

/// One function body in a file: `[body_begin, body_end]` are the token
/// indexes of the outermost `{`/`}`. `name` is the last identifier of the
/// declarator (`QueueEventLoop::try_start` -> "try_start"); operators are
/// reported as "operator".
struct FunctionSpan {
  std::string name;
  int line = 0;             ///< line of the opening brace
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// Detect function bodies by classifying every top-level `{`: a brace
/// preceded (after skipping cv/ref/noexcept/override/try qualifiers, a
/// trailing return type, and a constructor init list) by a balanced
/// parameter list `name(...)` opens a function; namespace/class/enum/array
/// braces fall through as transparent containers. Nested braces inside a
/// function body belong to that function. Unbalanced input never crashes —
/// the last span simply ends at the final token.
std::vector<FunctionSpan> find_functions(const Tokens& t);

/// The flow engine generalized out of C1's forward token simulation: a
/// per-token structural walk tracking brace depth, paren depth, try-block
/// nesting, and named facts with three lifetimes —
///   kScope  true until the enclosing brace closes (early-exit guards,
///           assignments, lock_guard declarations)
///   kBlock  true inside one `{ ... }` block (if (x) { ... })
///   kStmt   true for a single statement (if (x) stmt;)
/// Call step(i) for every token IN ORDER before reading state for that
/// token; rule logic then adds facts/queries between steps.
class ScopeSim {
 public:
  enum class FactKind { kScope, kBlock, kStmt };

  explicit ScopeSim(const Tokens& t) : t_(&t) {}

  void step(std::size_t i);

  /// kScope at the current depth; kBlock at depth+1 (the block about to
  /// open); kStmt at the current depth, auto-promoted when a block opens.
  void add_fact(std::string name, FactKind kind);
  [[nodiscard]] bool has_fact(std::string_view name) const;

  [[nodiscard]] int brace() const { return brace_; }
  [[nodiscard]] int paren() const { return paren_; }
  [[nodiscard]] bool in_try() const { return !try_braces_.empty(); }

 private:
  struct Fact {
    std::string name;
    FactKind kind;
    int depth = 0;  ///< brace depth the fact was created at
    bool entered_block = false;
  };

  const Tokens* t_;
  std::vector<Fact> facts_;
  std::vector<int> try_braces_;
  int brace_ = 0;
  int paren_ = 0;
  bool pending_try_ = false;
};

}  // namespace clip::lint
