// Phased execution on the simulated cluster.
//
// At a phase boundary the node runtime can re-throttle the OpenMP team,
// re-pin it, and re-program the RAPL caps (all phase-local operations the
// paper's helper tools support); the node count is fixed for the job's
// lifetime. A PhasedClusterConfig therefore carries one NodeConfig per
// phase over a single node allocation.
#pragma once

#include <vector>

#include "sim/config.hpp"
#include "workloads/phases.hpp"

namespace clip::sim {

struct PhasedClusterConfig {
  int nodes = 1;
  std::vector<NodeConfig> phase_nodes;  ///< one entry per workload phase

  [[nodiscard]] std::string describe() const;
};

/// Per-phase slice of a phased measurement.
struct PhaseMeasurement {
  std::string phase;
  Seconds time{0.0};
  Watts avg_power{0.0};
  Joules energy{0.0};
  GHz frequency{0.0};
  int threads = 0;
};

struct PhasedMeasurement {
  Seconds time{0.0};
  Watts avg_power{0.0};  ///< energy / time
  Joules energy{0.0};
  std::vector<PhaseMeasurement> phases;

  [[nodiscard]] double performance() const { return 1.0 / time.value(); }
};

}  // namespace clip::sim
