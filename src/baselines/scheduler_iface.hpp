// Common interface for the power-bounded scheduling methods compared in the
// paper's evaluation (§V-C): All-In, Lower Limit, Coordinated, CLIP, plus an
// exhaustive-search Oracle used as the "optimal" reference.
#pragma once

#include <memory>
#include <string>

#include "sim/config.hpp"
#include "util/units.hpp"
#include "workloads/signature.hpp"

namespace clip::baselines {

class PowerScheduler {
 public:
  virtual ~PowerScheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Plan an execution of `app` under the cluster-wide power budget.
  [[nodiscard]] virtual sim::ClusterConfig plan(
      const workloads::WorkloadSignature& app, Watts cluster_budget) = 0;
};

}  // namespace clip::baselines
