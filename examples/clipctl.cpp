// clipctl — the command-line front door of the framework (the paper's
// "user-friendly convenient power-bounded computing environment", §IV-A).
//
//   clipctl apps                         list the known applications
//   clipctl profile <app>                smart-profile + classify
//   clipctl schedule <app> <watts>       print the CLIP decision
//   clipctl script <app> <watts>         print the generated launch script
//   clipctl run <app> <watts>            schedule + execute + report
//   clipctl compare <app> <watts>        all methods side by side
//   clipctl trace <app> <watts> [out]    schedule + execute under the obs
//                                        layer: dumps a Chrome-trace JSON
//                                        (Perfetto-loadable, spans for every
//                                        pipeline stage + per-node power
//                                        counter tracks) and prints the
//                                        metrics summary table
//   clipctl metrics <app> <watts>        schedule + execute, then dump the
//                                        metrics registry in Prometheus text
//                                        exposition format
//   clipctl record <watts> <out-dir>     run the Table II job mix through the
//                    [--trace]           power-aware queue with the flight
//                                        recorder attached; persist the run
//                                        record (timeline/jobs/summary/spans
//                                        CSVs + metrics.prom) into <out-dir>.
//                                        --trace mints a causal trace id per
//                                        job (jobs.csv gains a trace_id
//                                        column; journal/timeline entries
//                                        carry trace= tokens)
//   clipctl report <run-dir>             render a recorded run as a
//                    [--json|--job N]    deterministic Markdown (or JSON)
//                                        report; --job N prints one job's
//                                        causal story instead (admit, launch,
//                                        claws, crashes, recovery replay)
//   clipctl journal <run-dir|file>       inspect a write-ahead journal:
//                                        salvage status, record/snapshot
//                                        counts, per-kind totals
//   clipctl recover <watts> <run-dir>    resume a crash-interrupted record
//                    [--trace]           run from its journal (latest
//                                        snapshot + replay) and rewrite the
//                                        completed run record (--trace must
//                                        match the recording run's setting)
//   clipctl serve <watts> [--port N]     run the job mix with the read-only
//                    [--trace]           telemetry server attached, then keep
//                                        serving /metrics /healthz /status
//                                        /timeline until stdin closes
//   clipctl top <port> [--once]          live terminal view polling a serve
//                                        instance's /status endpoint
//   clipctl alerts <run-dir> [--json]    evaluate the SLO/alert rule catalog
//                    [--rules FILE]      over a recorded run's flight
//                                        recorder; exit 0 = quiet, 1 = fired
//                                        (the CI-gate contract), 2 = error
//
// Applications are named as in Table II (e.g. SP-MZ, TeaLeaf, CoMD).
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "baselines/all_in.hpp"
#include "baselines/coordinated.hpp"
#include "baselines/lower_limit.hpp"
#include "core/scheduler.hpp"
#include "obs/obs.hpp"
#include "runtime/journal.hpp"
#include "runtime/launcher.hpp"
#include "runtime/queue.hpp"
#include "runtime/run_report.hpp"
#include "runtime/telemetry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

// Journal::load reports salvage; the journal/recover subcommands must
// surface a torn tail to the operator rather than drop it on the floor.
// clip-lint: fallible(load)

using namespace clip;

namespace {

int usage() {
  std::cerr << "usage: clipctl apps\n"
               "       clipctl profile  <app>\n"
               "       clipctl schedule <app> <watts>\n"
               "       clipctl script   <app> <watts>\n"
               "       clipctl run      <app> <watts>\n"
               "       clipctl compare  <app> <watts>\n"
               "       clipctl trace    <app> <watts> [out.json]\n"
               "       clipctl metrics  <app> <watts>\n"
               "       clipctl record   <watts> <out-dir> [--trace]\n"
               "       clipctl report   <run-dir> [--json|--job N]\n"
               "       clipctl journal  <run-dir|journal-file>\n"
               "       clipctl recover  <watts> <run-dir> [--trace]\n"
               "       clipctl serve    <watts> [--port N] [--trace]\n"
               "       clipctl top      <port> [--once]\n"
               "       clipctl alerts   <run-dir> [--json] [--rules FILE]\n";
  return 2;
}

workloads::WorkloadSignature lookup_or_die(const std::string& name) {
  if (auto w = workloads::find_benchmark(name)) return *w;
  std::cerr << "unknown application '" << name
            << "' — try `clipctl apps`\n";
  std::exit(2);
}

double watts_or_die(const std::string& arg) {
  try {
    const double v = std::stod(arg);
    if (v > 0.0) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "'" << arg << "' is not a positive wattage\n";
  std::exit(2);
}

/// Raw token after `"key":` in a flat JSON object (StatusSnapshot::to_json
/// emits no nesting), surrounding quotes stripped. "?" when absent.
std::string json_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = body.find(needle);
  if (pos == std::string::npos) return "?";
  const auto start = pos + needle.size();
  auto end = body.find_first_of(",}", start);
  if (end == std::string::npos) end = body.size();
  std::string v = body.substr(start, end - start);
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"')
    v = v.substr(1, v.size() - 2);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  sim::SimExecutor cluster{sim::MachineSpec{}};

  if (command == "apps") {
    Table t({"name", "parameters", "pattern", "scalability (Table II)"});
    t.set_title("Known applications");
    for (const auto& w : workloads::paper_benchmarks())
      t.add_row({w.name, w.parameters, workloads::to_string(w.pattern),
                 workloads::to_string(w.expected_class)});
    t.print(std::cout);
    return 0;
  }

  if (command == "record") {
    if (argc < 4) return usage();
    const Watts cluster_budget(watts_or_die(argv[2]));
    const std::filesystem::path dir(argv[3]);
    bool traced = false;
    for (int i = 4; i < argc; ++i) {
      if (std::string(argv[i]) == "--trace")
        traced = true;
      else
        return usage();
    }

    obs::ObsSession session;
    obs::MemorySink sink;
    session.set_sink(&sink);
    obs::Timeline timeline;
    core::ClipScheduler scheduler(cluster, workloads::training_benchmarks());
    scheduler.set_observer(&session);
    cluster.set_observer(&session);

    runtime::QueueOptions qopt;
    qopt.cluster_budget = cluster_budget;
    qopt.trace.enabled = traced;
    runtime::Journal journal;
    runtime::PowerAwareJobQueue queue(cluster, scheduler, qopt);
    queue.set_observer(&session);
    queue.set_timeline(&timeline);
    queue.set_journal(&journal);
    const auto report = queue.run(workloads::paper_benchmarks());

    try {
      runtime::write_run_record(dir, cluster_budget, report, timeline,
                                sink.spans(), &session.metrics());
      journal.save(dir / runtime::RunRecordFiles::kJournal);
    } catch (const std::exception& e) {
      std::cerr << "cannot write run record: " << e.what() << "\n";
      return 1;
    }
    std::cout << "recorded " << report.jobs.size() << " jobs ("
              << report.jobs_completed() << " completed, makespan "
              << format_double(report.makespan_s, 1) << " s) into "
              << dir.string() << "\nrender it with: clipctl report "
              << dir.string() << "\n";
    return 0;
  }
  if (command == "report") {
    if (argc < 3) return usage();
    const std::filesystem::path dir(argv[2]);
    bool json = false;
    std::optional<std::size_t> job;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        json = true;
      } else if (arg == "--job" && i + 1 < argc) {
        try {
          job = static_cast<std::size_t>(std::stoul(argv[++i]));
        } catch (const std::exception&) {
          return usage();
        }
      } else {
        return usage();
      }
    }
    try {
      if (job)
        std::cout << runtime::render_job_story(dir, *job);
      else
        std::cout << (json ? runtime::render_json_report(dir)
                           : runtime::render_markdown_report(dir));
    } catch (const std::exception& e) {
      std::cerr << "cannot render report: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (command == "journal") {
    if (argc < 3) return usage();
    std::filesystem::path path(argv[2]);
    if (std::filesystem::is_directory(path))
      path /= runtime::RunRecordFiles::kJournal;
    runtime::Journal journal;
    runtime::JournalLoadResult loaded;
    try {
      loaded = journal.load(path);
    } catch (const std::exception& e) {
      std::cerr << "cannot load journal: " << e.what() << "\n";
      return 1;
    }
    std::cout << "journal     : " << path.string() << "\n"
              << journal.describe();
    if (loaded.salvaged)
      std::cout << "salvaged    : dropped " << loaded.dropped_lines
                << " corrupt tail line(s) — " << loaded.gap << "\n";
    return 0;
  }
  if (command == "recover") {
    if (argc < 4) return usage();
    const Watts cluster_budget(watts_or_die(argv[2]));
    const std::filesystem::path dir(argv[3]);
    bool traced = false;
    for (int i = 4; i < argc; ++i) {
      if (std::string(argv[i]) == "--trace")
        traced = true;
      else
        return usage();
    }
    const auto path = dir / runtime::RunRecordFiles::kJournal;

    runtime::Journal journal;
    runtime::JournalLoadResult loaded;
    try {
      loaded = journal.load(path);
    } catch (const std::exception& e) {
      std::cerr << "cannot load journal: " << e.what() << "\n";
      return 1;
    }
    if (loaded.salvaged)
      std::cout << "salvaged journal: dropped " << loaded.dropped_lines
                << " corrupt tail line(s) — " << loaded.gap << "\n";

    // Mirror `record`'s configuration exactly: recover() verifies the
    // journal's begin record against it and refuses a mismatched resume.
    obs::ObsSession session;
    obs::MemorySink sink;
    session.set_sink(&sink);
    obs::Timeline timeline;
    core::ClipScheduler scheduler(cluster, workloads::training_benchmarks());
    scheduler.set_observer(&session);
    cluster.set_observer(&session);

    runtime::QueueOptions qopt;
    qopt.cluster_budget = cluster_budget;
    qopt.trace.enabled = traced;
    std::vector<runtime::QueueJob> jobs;
    for (const auto& w : workloads::paper_benchmarks()) jobs.push_back({w, 0});
    runtime::QueueEventLoop loop(cluster, scheduler, qopt, jobs);
    loop.set_observer(&session);
    loop.set_timeline(&timeline);

    runtime::QueueReport report;
    try {
      report = loop.recover(journal);
    } catch (const std::exception& e) {
      std::cerr << "cannot recover: " << e.what() << "\n";
      return 1;
    }
    try {
      runtime::write_run_record(dir, cluster_budget, report, timeline,
                                sink.spans(), &session.metrics());
      journal.save(path);
    } catch (const std::exception& e) {
      std::cerr << "cannot write run record: " << e.what() << "\n";
      return 1;
    }
    std::cout << "recovered " << report.jobs.size() << " jobs ("
              << report.jobs_completed() << " completed, makespan "
              << format_double(report.makespan_s, 1) << " s) into "
              << dir.string() << "\nrender it with: clipctl report "
              << dir.string() << "\n";
    return 0;
  }

  if (command == "serve") {
    if (argc < 3) return usage();
    const Watts cluster_budget(watts_or_die(argv[2]));
    int port = 0;
    bool traced = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace") {
        traced = true;
      } else if (arg == "--port" && i + 1 < argc) {
        port = std::atoi(argv[++i]);
        if (port <= 0) return usage();
      } else {
        return usage();
      }
    }

    obs::ObsSession session;
    obs::Timeline timeline;
    core::ClipScheduler scheduler(cluster, workloads::training_benchmarks());
    scheduler.set_observer(&session);
    cluster.set_observer(&session);

    runtime::QueueOptions qopt;
    qopt.cluster_budget = cluster_budget;
    qopt.telemetry_port = port;  // 0 = ephemeral, printed below
    qopt.trace.enabled = traced;
    std::vector<runtime::QueueJob> jobs;
    for (const auto& w : workloads::paper_benchmarks()) jobs.push_back({w, 0});
    runtime::QueueEventLoop loop(cluster, scheduler, qopt, jobs);
    loop.set_observer(&session);
    loop.set_timeline(&timeline);

    runtime::QueueReport report;
    try {
      report = loop.run();
    } catch (const std::exception& e) {
      std::cerr << "run failed: " << e.what() << "\n";
      return 1;
    }
    const obs::TelemetryServer* server = loop.telemetry_server();
    if (server == nullptr) {
      std::cerr << "telemetry server did not start\n";
      return 1;
    }
    std::cout << "ran " << report.jobs.size() << " jobs ("
              << report.jobs_completed() << " completed, makespan "
              << format_double(report.makespan_s, 1)
              << " s)\nserving http://127.0.0.1:" << server->port()
              << "  endpoints: /metrics /healthz /status "
                 "/timeline?series=NAME\ntry: clipctl top "
              << server->port() << " --once\npress Ctrl-D to stop\n";
    // Serve until stdin closes: blocking on the pipe needs no clock and no
    // polling, so the command stays clip-lint D1 clean.
    std::string line;
    while (std::getline(std::cin, line)) {
    }
    return 0;
  }
  if (command == "top") {
    if (argc < 3) return usage();
    const int port = std::atoi(argv[2]);
    if (port <= 0) return usage();
    bool once = false;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--once")
        once = true;
      else
        return usage();
    }
    for (;;) {
      std::string body;
      try {
        body = obs::http_body(obs::http_get("127.0.0.1", port, "/status"));
      } catch (const std::exception& e) {
        std::cerr << "cannot reach telemetry server on port " << port << ": "
                  << e.what() << "\n";
        return 1;
      }
      std::ostringstream view;
      view << "clip cluster @ 127.0.0.1:" << port << "\n"
           << "  sim time   : " << json_field(body, "now_s") << " s\n"
           << "  mode       : " << json_field(body, "mode") << "\n"
           << "  run active : " << json_field(body, "run_active") << "\n"
           << "  waiting    : " << json_field(body, "queue_depth") << "\n"
           << "  running    : " << json_field(body, "running_jobs") << "\n"
           << "  completed  : " << json_field(body, "jobs_completed") << "\n"
           << "  failed     : " << json_field(body, "jobs_failed") << "\n"
           << "  free power : " << json_field(body, "free_watts") << " W\n"
           << "  journal seq: " << json_field(body, "journal_seq") << "\n";
      if (once) {
        std::cout << view.str();
        return 0;
      }
      // Home + clear per refresh gives the classic top(1) repaint.
      std::cout << "\x1b[H\x1b[2J" << view.str() << "(Ctrl-C to quit)\n"
                << std::flush;
      std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    }
  }
  if (command == "alerts") {
    if (argc < 3) return usage();
    const std::filesystem::path dir(argv[2]);
    bool json = false;
    std::optional<std::filesystem::path> rules_path;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        json = true;
      } else if (arg == "--rules" && i + 1 < argc) {
        rules_path = argv[++i];
      } else {
        return usage();
      }
    }

    obs::Timeline timeline;
    try {
      timeline.load_csv(dir / runtime::RunRecordFiles::kTimeline);
    } catch (const std::exception& e) {
      std::cerr << "cannot load run record: " << e.what() << "\n";
      return 2;
    }
    std::vector<obs::AlertRule> rules;
    if (rules_path) {
      std::ifstream in(*rules_path);
      if (!in.good()) {
        std::cerr << "cannot open rules file: " << rules_path->string()
                  << "\n";
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      try {
        rules = obs::AlertEngine::parse_rules(text.str(),
                                              rules_path->string());
      } catch (const std::exception& e) {
        std::cerr << "cannot parse rules: " << e.what() << "\n";
        return 2;
      }
    } else {
      rules = obs::AlertEngine::default_rules();
    }
    const obs::AlertEngine engine(std::move(rules));
    const auto outcomes = engine.evaluate(timeline);
    std::cout << (json ? obs::AlertEngine::render_json(outcomes)
                       : obs::AlertEngine::render_table(outcomes));
    return obs::AlertEngine::exit_code(outcomes);
  }

  if (argc < 3) return usage();
  const auto app = lookup_or_die(argv[2]);

  if (command == "profile") {
    core::SmartProfiler profiler(cluster);
    const core::ScalabilityClassifier classifier;
    const auto p = profiler.profile(app);
    std::cout << "application : " << app.name << " " << app.parameters
              << "\nhalf/all    : "
              << format_double(p.perf_ratio_half_over_all, 3)
              << "\nclass       : "
              << workloads::to_string(classifier.classify(p))
              << "\naffinity    : "
              << parallel::to_string(p.preferred_affinity)
              << "\nnode BW     : " << format_double(p.node_bw_gbps, 1)
              << " GB/s (intensity "
              << format_double(p.memory_intensity, 2) << ")"
              << "\nprofile cost: "
              << format_double(p.profiling_cost.value(), 2) << " s\n";
    return 0;
  }

  if (argc < 4) return usage();
  const Watts budget(watts_or_die(argv[3]));
  core::ClipScheduler clip(cluster, workloads::training_benchmarks());

  if (command == "schedule") {
    const auto d = clip.schedule(app, budget);
    std::cout << d.describe() << "\npredicted node time: "
              << format_double(d.predicted_node_time.value(), 2) << " s\n";
    return 0;
  }
  if (command == "script") {
    runtime::Launcher launcher(cluster, workloads::training_benchmarks());
    runtime::JobSpec spec;
    spec.app = app;
    spec.cluster_budget = budget;
    std::cout << launcher.plan_script(spec);
    return 0;
  }
  if (command == "run") {
    const auto d = clip.schedule(app, budget);
    const auto m = cluster.run(app, d.cluster);
    std::cout << d.describe() << "\nexecuted: "
              << format_double(m.time.value(), 2) << " s at "
              << format_double(m.avg_power.value(), 1) << " W ("
              << format_double(m.energy.value() / 1000.0, 2) << " kJ)\n";
    return 0;
  }
  if (command == "trace") {
    // Observe one decision end-to-end: sink attached after construction so
    // the trace shows this schedule() alone, not the training sweep.
    obs::ObsSession session;
    obs::MemorySink sink;
    session.set_sink(&sink);
    clip.set_observer(&session);
    cluster.set_observer(&session);

    const auto d = clip.schedule(app, budget);
    const auto m = cluster.run(app, d.cluster);

    // Per-node power counter tracks from the power-meter series (noise off:
    // the trace should show the planned operating point, not meter jitter).
    runtime::TelemetryOptions topt;
    topt.noise_sigma = 0.0;
    const runtime::Telemetry telemetry(topt);
    const auto counters = runtime::Telemetry::to_trace_counters(
        telemetry.record(m, d.cluster.node.threads));

    const std::filesystem::path out =
        argc >= 5 ? std::filesystem::path(argv[4])
                  : std::filesystem::path("clip_trace.json");
    try {
      obs::write_chrome_trace(out, sink.spans(), counters);
    } catch (const std::exception& e) {
      std::cerr << "cannot write trace: " << e.what() << "\n";
      return 1;
    }

    std::cout << d.describe() << "\nexecuted: "
              << format_double(m.time.value(), 2) << " s at "
              << format_double(m.avg_power.value(), 1) << " W\n\n";
    session.metrics().summary_table().print(std::cout);
    std::cout << "\ntrace: " << out.string() << " (" << sink.span_count()
              << " spans) — load it at https://ui.perfetto.dev or "
                 "chrome://tracing\n";
    return 0;
  }
  if (command == "metrics") {
    obs::ObsSession session;
    clip.set_observer(&session);
    cluster.set_observer(&session);
    const auto d = clip.schedule(app, budget);
    (void)cluster.run(app, d.cluster);
    std::cout << session.metrics().render_prometheus();
    return 0;
  }
  if (command == "compare") {
    baselines::AllInScheduler all_in(cluster.spec());
    baselines::LowerLimitScheduler lower(cluster.spec());
    baselines::CoordinatedScheduler coordinated(cluster);
    Table t({"method", "nodes", "threads", "time (s)", "power (W)"});
    t.set_title(app.name + " @" + format_double(budget.value(), 0) + " W");
    auto row = [&](const std::string& name, const sim::ClusterConfig& cfg) {
      const auto m = cluster.run_exact(app, cfg);
      t.add_row({name, std::to_string(cfg.nodes),
                 std::to_string(cfg.node.threads),
                 format_double(m.time.value(), 2),
                 format_double(m.avg_power.value(), 1)});
    };
    row("All-In", all_in.plan(app, budget));
    row("Lower Limit", lower.plan(app, budget));
    row("Coordinated", coordinated.plan(app, budget));
    row("CLIP", clip.schedule(app, budget).cluster);
    t.print(std::cout);
    return 0;
  }
  return usage();
}
