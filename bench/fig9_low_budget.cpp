// Figure 9 — performance comparison of the power-allocation methods under
// LOW cluster power budgets, where CLIP's class-aware throttling and node
// allocation matter most (paper: ~20% average improvement at low budgets,
// up to 60% vs Coordinated on parabolic applications).
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  ctx.attach(ex);

  runtime::ComparisonHarness harness(ex);
  bench::register_all_methods(harness, ex, &ctx);

  const std::vector<double> budgets =
      ctx.budgets_or({500.0, 600.0, 700.0, 800.0});
  const auto& apps = workloads::paper_benchmarks();
  const auto result = harness.run(apps, budgets, ctx.pool());

  const std::vector<workloads::WorkloadSignature> panel_a(apps.begin(),
                                                          apps.begin() + 5);
  const std::vector<workloads::WorkloadSignature> panel_b(apps.begin() + 5,
                                                          apps.end());
  for (double budget : budgets) {
    bench::print_method_comparison(
        ctx, result, panel_a, budget,
        "Fig. 9a — relative performance, low budget " +
            std::to_string(static_cast<int>(budget)) + " W");
    bench::print_method_comparison(
        ctx, result, panel_b, budget,
        "Fig. 9b — relative performance, low budget " +
            std::to_string(static_cast<int>(budget)) + " W");
  }

  // The 500 W column shows the enforceable-floor cliff: All-In's per-node
  // CPU share drops to the socket base power and clock modulation bottoms
  // out, so its slowdown there is unbounded. Report the mean over the
  // non-degenerate low budgets and call the cliff out separately.
  const std::vector<double> sane = {600.0, 700.0, 800.0};
  std::cout << "CLIP mean improvement at low budgets (600-800 W):  vs All-In "
            << format_percent(result.mean_improvement("CLIP", "All-In", sane))
            << ",  vs Coordinated "
            << format_percent(
                   result.mean_improvement("CLIP", "Coordinated", sane))
            << ",  vs Lower-Limit "
            << format_percent(
                   result.mean_improvement("CLIP", "Lower Limit", sane))
            << "\n(paper: average improvements close to 20% under low power "
               "budgets).\nAt 500 W All-In collapses entirely (per-node CPU "
               "share ~= socket base power): "
            << format_percent(
                   result.mean_improvement("CLIP", "All-In", {500.0}))
            << " — the cost of budget-blind node allocation.\n";
  return 0;
}
