// Tests for the observability layer: metric semantics, histogram quantile
// invariants, span nesting/pairing, Chrome-trace JSON well-formedness
// (validated by parsing the output back with a small strict JSON parser),
// multi-threaded recording, fake-clock determinism, and the end-to-end
// pipeline spans the scheduler emits (the `clipctl trace` contract: one span
// per decision stage).
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <variant>

#include "core/scheduler.hpp"
#include "obs/obs.hpp"
#include "sim/executor.hpp"
#include "sim/rapl_controller.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

using obs::FakeClock;
using obs::HistogramSpec;
using obs::MemorySink;
using obs::ObsSession;
using obs::ScopedSpan;
using obs::SpanRecord;

// ------------------------------------------------- minimal JSON parser ----
// Strict recursive-descent parser, just enough to validate trace output and
// navigate it. Throws std::runtime_error on any malformed input.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v;

  [[nodiscard]] const JsonObject& object() const {
    return std::get<JsonObject>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return std::get<JsonArray>(v);
  }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] double num() const { return std::get<double>(v); }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    return object().at(key);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return std::holds_alternative<JsonObject>(v) && object().count(key) > 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }

  void literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("bad literal");
    pos_ += lit.size();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += '?';  // code point fidelity is not under test
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
    ++pos_;
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("bad number");
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  JsonValue array() {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(items)};
    }
    while (true) {
      items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(items)};
    }
  }

  JsonValue object() {
    expect('{');
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(members)};
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      members.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(members)};
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------- counter / gauge ----

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, LastWriteWinsAndAdds) {
  obs::Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(RegistryTest, GetOrCreateReturnsStableMetrics) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.find_counter("x")->value(), 3u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("x"), nullptr);  // kinds are separate namespaces
}

// ------------------------------------------------------------- histogram ----

TEST(HistogramSpecTest, Validation) {
  EXPECT_THROW(HistogramSpec::linear(10.0, 10.0, 4), PreconditionError);
  EXPECT_THROW(HistogramSpec::linear(0.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(HistogramSpec::exponential(0.0, 2.0, 4), PreconditionError);
  EXPECT_THROW(HistogramSpec::exponential(1.0, 1.0, 4), PreconditionError);
  HistogramSpec descending;
  descending.bounds = {2.0, 1.0};
  EXPECT_THROW(obs::Histogram{descending}, PreconditionError);

  const HistogramSpec lin = HistogramSpec::linear(0.0, 100.0, 10);
  ASSERT_EQ(lin.bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(lin.bounds.front(), 10.0);
  EXPECT_DOUBLE_EQ(lin.bounds.back(), 100.0);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  obs::Histogram h(HistogramSpec::linear(0.0, 10.0, 10));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (double v : {1.0, 3.0, 5.0, 7.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
}

TEST(HistogramTest, QuantileInvariants) {
  // 1000 uniform values in [0, 100) across a matching linear spec.
  obs::Histogram h(HistogramSpec::linear(0.0, 100.0, 20));
  for (int i = 0; i < 1000; ++i) h.record(i % 100 + 0.5);

  double prev = -1.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "quantile must be monotone in q at " << q;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // The interpolated median of a uniform distribution sits near the true
  // median; bucket resolution is 5, so allow one bucket of slack.
  EXPECT_NEAR(h.quantile(0.5), 50.0, 5.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 5.0);
}

TEST(HistogramTest, OverflowBucketClampsToObservedMax) {
  obs::Histogram h(HistogramSpec::linear(0.0, 10.0, 5));
  h.record(5.0);
  h.record(1e6);  // overflow bucket
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e6);
  EXPECT_LE(h.quantile(0.99), 1e6);
  EXPECT_GE(h.quantile(0.0), 5.0);
}

TEST(HistogramTest, QuantileAtExactBucketEdges) {
  // Bucket upper bounds are inclusive: a value recorded exactly on an edge
  // counts in that edge's bucket, and quantiles stay within the observed
  // [min, max] even when every observation sits on an edge.
  obs::Histogram h(HistogramSpec{{10.0, 20.0, 30.0}});
  for (double v : {10.0, 20.0, 30.0}) h.record(v);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);  // nothing overflowed

  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  double prev = h.min();
  for (double q : {0.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
}

TEST(HistogramTest, UnderflowLandsInFirstBucket) {
  // Values below the first bound have no underflow bucket of their own —
  // they count in the first bucket, and the quantile floor is the observed
  // minimum, not the bucket's notional lower edge.
  obs::Histogram h(HistogramSpec{{100.0, 200.0}});
  h.record(3.0);
  h.record(5.0);
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
  EXPECT_GE(h.quantile(0.5), 3.0);
  EXPECT_LE(h.quantile(0.5), 5.0);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::json_escape("a\nb\rc\td"), "a\\nb\\rc\\td");
  // Control characters without shorthand escape to \u00XX (lowercase hex).
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(obs::json_escape(std::string(1, '\0') + "x"), "\\u0000x");
}

TEST(JsonEscapeTest, PassesMultiByteUtf8Through) {
  // Multi-byte UTF-8 sequences have all bytes >= 0x80; none may be mangled
  // by the < 0x20 control check (a signed-char comparison bug would trip it).
  const std::string utf8 = "n\xc3\xb8" "de \xe2\x82\xac \xf0\x9f\x94\x8b";
  EXPECT_EQ(obs::json_escape(utf8), utf8);
}

TEST(JsonEscapeTest, EscapedStringsParseBack) {
  // The embedded test JsonParser maps \uXXXX to '?', so parse-back is
  // asserted for the shorthand escapes and structural validity only.
  const std::string hostile = "a\"b\\c\nd\te";
  const std::string json = "{\"s\": \"" + obs::json_escape(hostile) + "\"}";
  EXPECT_NO_THROW(JsonParser(json).parse());
}

// ------------------------------------------------------ spans + pairing ----

TEST(TracerTest, DetachedSpanIsInert) {
  ScopedSpan null_session(nullptr, "x");
  EXPECT_FALSE(null_session.active());

  ObsSession session;  // no sink attached
  ScopedSpan no_sink(&session, "x");
  EXPECT_FALSE(no_sink.active());
}

TEST(TracerTest, NestedSpansPairAndNestCorrectly) {
  FakeClock clock;
  ObsSession session(obs::ObsOptions{.clock = &clock});
  MemorySink sink;
  session.set_sink(&sink);
  {
    ScopedSpan outer(&session, "outer");
    clock.advance_us(10.0);
    {
      ScopedSpan inner(&session, "inner");
      clock.advance_us(5.0);
    }
    clock.advance_us(10.0);
  }
  const std::vector<SpanRecord> spans = sink.spans();
  ASSERT_EQ(spans.size(), 2u);
  // LIFO completion: the child closes (and is emitted) before the parent.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].depth, 0);
  // Temporal containment on the same track.
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
  EXPECT_LE(spans[0].start_us + spans[0].duration_us,
            spans[1].start_us + spans[1].duration_us);
  EXPECT_DOUBLE_EQ(spans[0].duration_us, 5.0);
  EXPECT_DOUBLE_EQ(spans[1].duration_us, 25.0);
}

TEST(TracerTest, ScopedTimerRecordsFakeClockDuration) {
  FakeClock clock;
  ObsSession session(obs::ObsOptions{.clock = &clock});
  {
    const obs::ScopedTimer t(&session, "lat_us");
    clock.advance_us(33.0);
  }
  const obs::Histogram* h = session.metrics().find_histogram("lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 33.0);
}

// ------------------------------------------------- chrome trace export ----

TEST(ChromeTraceTest, EscapesAndParsesBack) {
  FakeClock clock;
  ObsSession session(obs::ObsOptions{.clock = &clock});
  MemorySink sink;
  session.set_sink(&sink);
  {
    ScopedSpan span(&session, "na\"me\\with\nspice", "cat");
    span.arg("app", "SP-MZ");
    span.arg("budget_w", 900.0);
    span.arg("nodes", 8);
    clock.advance_us(1.5);
  }

  const std::string json = obs::chrome_trace_json(sink.spans());
  const JsonValue doc = JsonParser(json).parse();
  ASSERT_TRUE(doc.has("traceEvents"));
  const JsonArray& events = doc.at("traceEvents").array();
  ASSERT_EQ(events.size(), 1u);
  const JsonValue& e = events[0];
  EXPECT_EQ(e.at("name").str(), "na\"me\\with\nspice");
  EXPECT_EQ(e.at("ph").str(), "X");
  EXPECT_EQ(e.at("cat").str(), "cat");
  EXPECT_DOUBLE_EQ(e.at("dur").num(), 1.5);
  EXPECT_EQ(e.at("args").at("app").str(), "SP-MZ");
  EXPECT_DOUBLE_EQ(e.at("args").at("budget_w").num(), 900.0);
  EXPECT_DOUBLE_EQ(e.at("args").at("nodes").num(), 8.0);
}

TEST(ChromeTraceTest, CounterEventsParseBack) {
  obs::CounterSample c;
  c.name = "power.node0";
  c.time_us = 1000.0;
  c.series = {{"cpu_w", 85.25}, {"mem_w", 21.0}};
  const JsonValue doc = JsonParser(obs::chrome_trace_json({}, {c})).parse();
  const JsonValue& e = doc.at("traceEvents").array().at(0);
  EXPECT_EQ(e.at("ph").str(), "C");
  EXPECT_DOUBLE_EQ(e.at("args").at("cpu_w").num(), 85.25);
}

TEST(ChromeTraceTest, DeterministicWithFakeClock) {
  const auto make_trace = [] {
    FakeClock clock;
    ObsSession session(obs::ObsOptions{.clock = &clock});
    MemorySink sink;
    session.set_sink(&sink);
    for (int i = 0; i < 3; ++i) {
      ScopedSpan span(&session, "step", "test");
      span.arg("i", i);
      clock.advance_us(7.0);
    }
    return obs::chrome_trace_json(sink.spans());
  };
  const std::string a = make_trace();
  const std::string b = make_trace();
  EXPECT_EQ(a, b) << "fake-clock traces must be byte-identical";
  EXPECT_NE(a.find("\"ts\":0.000"), std::string::npos);
}

TEST(JsonlFileSinkTest, OneParseableObjectPerLine) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "clip_obs_test.jsonl";
  {
    FakeClock clock;
    ObsSession session(obs::ObsOptions{.clock = &clock});
    obs::JsonlFileSink sink(path);
    session.set_sink(&sink);
    for (int i = 0; i < 4; ++i) {
      ScopedSpan span(&session, "line", "test");
      clock.advance_us(1.0);
    }
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const JsonValue v = JsonParser(line).parse();
    EXPECT_EQ(v.at("name").str(), "line");
    ++lines;
  }
  EXPECT_EQ(lines, 4);
  std::filesystem::remove(path);
}

// ------------------------------------------------------- thread safety ----

TEST(ObsThreadingTest, ConcurrentRecordingLosesNothing) {
  ObsSession session;
  MemorySink sink;
  session.set_sink(&sink);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&session] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(&session, "work", "mt");
        session.metrics().counter("mt.ops").add();
        session.metrics()
            .histogram("mt.vals", obs::HistogramSpec::linear(0.0, 1000.0, 10))
            .record(static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(session.metrics().find_counter("mt.ops")->value(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(session.metrics().find_histogram("mt.vals")->count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.span_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Every span got a stable small thread index.
  for (const auto& s : sink.spans()) {
    EXPECT_GE(s.tid, 0);
    EXPECT_LT(s.tid, kThreads + 1);  // +1: main thread may hold index 0
  }
  // The whole trace still serializes to valid JSON.
  EXPECT_NO_THROW(JsonParser(obs::chrome_trace_json(sink.spans())).parse());
}

// ------------------------------------------- pipeline integration spans ----

class PipelineObsTest : public ::testing::Test {
 protected:
  static sim::MeterOptions no_noise() {
    sim::MeterOptions m;
    m.enabled = false;
    return m;
  }
  sim::SimExecutor executor_{sim::MachineSpec{}, no_noise()};
};

TEST_F(PipelineObsTest, SchedulerEmitsOneSpanPerPipelineStage) {
  core::ClipScheduler scheduler(executor_,
                                workloads::training_benchmarks());
  ObsSession session;
  MemorySink sink;
  session.set_sink(&sink);
  scheduler.set_observer(&session);
  executor_.set_observer(&session);

  const auto app = *workloads::find_benchmark("SP-MZ");
  const core::ScheduleDecision d = scheduler.schedule(app, Watts(900.0));
  EXPECT_GE(d.cluster.nodes, 1);

  std::map<std::string, int> by_name;
  for (const auto& s : sink.spans()) ++by_name[s.name];

  // The clipctl-trace contract: every decision stage shows up.
  const char* stages[] = {"pipeline.profile",     "pipeline.classify",
                          "pipeline.inflect",     "pipeline.node_select",
                          "pipeline.allocate",    "pipeline.coordinate"};
  for (const char* stage : stages)
    EXPECT_GE(by_name[stage], 1) << "missing stage span: " << stage;
  EXPECT_EQ(by_name["clip.schedule"], 1);
  // SP-MZ is parabolic: two profile samples plus one validation sample.
  EXPECT_EQ(by_name["profiler.sample"], 3);

  // Metrics moved in lockstep.
  const auto& metrics = session.metrics();
  EXPECT_EQ(metrics.find_counter("scheduler.schedules")->value(), 1u);
  EXPECT_EQ(metrics.find_counter("scheduler.db_misses")->value(), 1u);
  EXPECT_EQ(metrics.find_counter("profiler.samples")->value(), 3u);
  EXPECT_GE(metrics.find_counter("sim.runs")->value(), 3u);
  EXPECT_EQ(metrics.find_histogram("scheduler.plan_us")->count(), 1u);

  // A second schedule of the same app hits the knowledge DB: no profiling.
  sink.clear();
  (void)scheduler.schedule(app, Watts(900.0));
  std::map<std::string, int> cached;
  for (const auto& s : sink.spans()) ++cached[s.name];
  EXPECT_EQ(cached["pipeline.profile"], 0);
  EXPECT_EQ(cached["pipeline.allocate"], 1);
  EXPECT_EQ(metrics.find_counter("scheduler.db_hits")->value(), 1u);

  // The full export parses back (the Perfetto-loadability proxy).
  const std::string json = obs::chrome_trace_json(sink.spans());
  EXPECT_NO_THROW(JsonParser(json).parse());
}

TEST_F(PipelineObsTest, RaplControllerFeedsStepHistograms) {
  ObsSession session;
  sim::RaplControllerSim controller(executor_.spec());
  controller.set_observer(&session);
  const auto w = *workloads::find_benchmark("CoMD");
  (void)controller.simulate(w, 24, parallel::AffinityPolicy::kScatter, 68.0,
                            Watts(80.0));
  EXPECT_EQ(session.metrics().find_counter("sim.rapl_controller.runs")
                ->value(),
            1u);
  const obs::Histogram* steps =
      session.metrics().find_histogram("sim.rapl_controller.steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_EQ(steps->count(), 1u);
  EXPECT_DOUBLE_EQ(steps->max(), 4000.0);  // default option steps
}

TEST(MetricsSummaryTest, TableListsEveryMetricDeterministically) {
  ObsSession session;
  session.metrics().counter("b.counter").add(2);
  session.metrics().gauge("a.gauge").set(1.5);
  session.metrics()
      .histogram("c.hist", obs::HistogramSpec::linear(0.0, 10.0, 5))
      .record(4.0);
  const Table t = session.metrics().summary_table();
  EXPECT_EQ(t.row_count(), 3u);
  std::ostringstream a, b;
  t.print(a);
  session.metrics().summary_table().print(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace clip
