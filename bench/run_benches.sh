#!/usr/bin/env sh
# Run the bench suite with the evaluation engine on, record wall-clock and
# engine counters per binary, and emit BENCH_eval_engine.json.
#
# Usage: bench/run_benches.sh [build-dir] [jobs] [out-json] [redist-json]
#                             [recovery-json] [obs-json]
#   build-dir      cmake binary dir containing bench/ (default: build)
#   jobs           --jobs value passed to each bench (default: number of cores)
#   out-json       output path (default: BENCH_eval_engine.json in the cwd)
#   redist-json    output path for the redistribution sweep
#                  (default: BENCH_redist.json in the cwd)
#   recovery-json  output path for the crash-consistency sweep
#                  (default: BENCH_recovery.json in the cwd)
#   obs-json       output path for the observability-plane sweep
#                  (default: BENCH_obs.json in the cwd)
#
# Each binary runs twice: once with the engine (cache + pruning + --jobs)
# and once as the pre-engine baseline (--no-cache --no-prune, serial). The
# CSV outputs of the two runs are asserted byte-identical — the engine's
# core contract — and the JSON records both wall-clocks plus the sim.runs /
# cache-hit counters parsed from the --stats line.
set -eu

build_dir=${1:-build}
jobs=${2:-$(nproc 2>/dev/null || echo 2)}
out_json=${3:-BENCH_eval_engine.json}
redist_json=${4:-BENCH_redist.json}
recovery_json=${5:-BENCH_recovery.json}
obs_json=${6:-BENCH_obs.json}
bench_dir="$build_dir/bench"

[ -d "$bench_dir" ] || {
  echo "error: $bench_dir not found (build first: cmake --preset release && cmake --build build -j)" >&2
  exit 1
}

# Benches built on the evaluation engine. micro_runtime (google-benchmark)
# and the purely analytic binaries are out of scope.
benches="fig3_power_budget_impact fig7_inflection fig8_high_budget \
fig9_low_budget summary_claims ablation_dimensions scale_cluster"

# Millisecond wall clock. `date +%s%N` is GNU-only (BSD/busybox print a
# literal 'N'), so probe it once and fall back to python3, then to
# second-resolution POSIX date.
if [ "$(date +%N 2>/dev/null | tr -d '0-9')" = "" ] && \
   [ -n "$(date +%N 2>/dev/null)" ]; then
  now_ms() { echo $(( $(date +%s%N) / 1000000 )); }
elif command -v python3 >/dev/null 2>&1; then
  now_ms() { python3 -c 'import time; print(int(time.time() * 1000))'; }
else
  now_ms() { echo $(( $(date +%s) * 1000 )); }
fi

stat_field() { # stats-file key -> value (0 when absent)
  sed -n "s/.*$2=\([0-9][0-9]*\).*/\1/p" "$1" | head -n 1 | grep . || echo 0
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Provenance stamp: which tree produced these numbers, and when. The
# regression gate prints both stamps when comparing files.
git_sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
utc_date=$(TZ=UTC date -u '+%Y-%m-%dT%H:%M:%SZ')

printf '{\n  "git_sha": "%s",\n  "date_utc": "%s",\n  "jobs": %s,\n  "benches": [\n' \
  "$git_sha" "$utc_date" "$jobs" > "$out_json"
first=1
for b in $benches; do
  bin="$bench_dir/$b"
  [ -x "$bin" ] || { echo "skip $b (not built)" >&2; continue; }

  echo "== $b (baseline: serial, no cache, no pruning)" >&2
  t0=$(now_ms)
  "$bin" --csv --no-cache --no-prune --stats \
      > "$tmp/$b.base.csv" 2> "$tmp/$b.base.stats"
  t1=$(now_ms)
  base_ms=$((t1 - t0))

  echo "== $b (engine: cache + pruning, --jobs $jobs)" >&2
  t0=$(now_ms)
  "$bin" --csv --jobs "$jobs" --stats \
      > "$tmp/$b.fast.csv" 2> "$tmp/$b.fast.stats"
  t1=$(now_ms)
  fast_ms=$((t1 - t0))

  # Byte-identity applies to the model-derived figures. Search-cost and
  # plan-latency reporting legitimately changes with pruning/host timing:
  # summary_claims' cost row is filtered; scale_cluster's per-row latency
  # columns make its table timing-dependent, so it is exempt.
  if [ "$b" != "scale_cluster" ]; then
    grep -v 'oracle needs' "$tmp/$b.base.csv" > "$tmp/$b.base.cmp"
    grep -v 'oracle needs' "$tmp/$b.fast.csv" > "$tmp/$b.fast.cmp"
    cmp -s "$tmp/$b.base.cmp" "$tmp/$b.fast.cmp" || {
      echo "FAIL: $b output differs between baseline and engine runs" >&2
      exit 1
    }
  fi

  base_runs=$(stat_field "$tmp/$b.base.stats" sim.runs)
  fast_runs=$(stat_field "$tmp/$b.fast.stats" sim.runs)
  hits=$(stat_field "$tmp/$b.fast.stats" sim.exact_cache_hits)
  misses=$(stat_field "$tmp/$b.fast.stats" sim.exact_cache_misses)
  batch_runs=$(stat_field "$tmp/$b.fast.stats" sim.batch_runs)
  batch_p50=$(stat_field "$tmp/$b.fast.stats" sim.batch_width_p50)
  # Simulator-run throughput of the engine run (integer runs/s). This is
  # what the batch core optimizes; `regression_gate.sh --batch` floors it.
  runs_per_sec=$(awk -v r="$fast_runs" -v m="$fast_ms" \
    'BEGIN { printf "%d", r * 1000 / (m < 1 ? 1 : m) }')

  [ $first -eq 1 ] || printf ',\n' >> "$out_json"
  first=0
  printf '    {"name": "%s", "baseline_ms": %s, "engine_ms": %s, "baseline_sim_runs": %s, "engine_sim_runs": %s, "cache_hits": %s, "cache_misses": %s, "runs_per_sec": %s, "batch_runs": %s, "batch_width_p50": %s, "output_identical": true}' \
    "$b" "$base_ms" "$fast_ms" "$base_runs" "$fast_runs" "$hits" "$misses" \
    "$runs_per_sec" "$batch_runs" "$batch_p50" \
    >> "$out_json"
  echo "   $b: ${base_ms}ms -> ${fast_ms}ms, sim.runs $base_runs -> $fast_runs, ${runs_per_sec} runs/s" >&2
done
printf '\n  ]\n}\n' >> "$out_json"

echo "wrote $out_json" >&2

# Redistribution sweep: static vs redistribution-enabled queue across the
# resilience scenario catalog. The binary writes BENCH_redist.json into its
# cwd, so run it in the scratch dir and move the result into place.
# `scripts/regression_gate.sh --redist` gates on its counters.
redist_bin=$(cd "$bench_dir" && pwd)/redistribution
if [ -x "$redist_bin" ]; then
  echo "== redistribution (static vs redistribution-enabled queue)" >&2
  ( cd "$tmp" && "$redist_bin" --json > redist.out 2> redist.err )
  case "$redist_json" in
    /*) mv "$tmp/BENCH_redist.json" "$redist_json" ;;
    *)  mv "$tmp/BENCH_redist.json" "./$redist_json" ;;
  esac
  echo "wrote $redist_json" >&2
else
  echo "skip redistribution (not built)" >&2
fi

# Crash-consistency sweep: kill + recover at every catalog scenario plus the
# journal-overhead measurement. Writes BENCH_recovery.json into its cwd;
# `scripts/regression_gate.sh --recovery` gates on its counters.
recovery_bin=$(cd "$bench_dir" && pwd)/recovery
if [ -x "$recovery_bin" ]; then
  echo "== recovery (kill + recover, journal overhead)" >&2
  ( cd "$tmp" && "$recovery_bin" --json > recovery.out 2> recovery.err )
  case "$recovery_json" in
    /*) mv "$tmp/BENCH_recovery.json" "$recovery_json" ;;
    *)  mv "$tmp/BENCH_recovery.json" "./$recovery_json" ;;
  esac
  echo "wrote $recovery_json" >&2
else
  echo "skip recovery (not built)" >&2
fi

# Observability-plane sweep: purity (bare vs fully instrumented run),
# telemetry endpoint probes and the telemetry+tracing duty-cycle overhead.
# Writes BENCH_obs.json into its cwd; `scripts/regression_gate.sh --obs`
# gates on its counters.
obs_bin=$(cd "$bench_dir" && pwd)/obs_overhead
if [ -x "$obs_bin" ]; then
  echo "== obs_overhead (observability plane: purity + endpoints + overhead)" >&2
  ( cd "$tmp" && "$obs_bin" --json > obs.out 2> obs.err )
  case "$obs_json" in
    /*) mv "$tmp/BENCH_obs.json" "$obs_json" ;;
    *)  mv "$tmp/BENCH_obs.json" "./$obs_json" ;;
  esac
  echo "wrote $obs_json" >&2
else
  echo "skip obs_overhead (not built)" >&2
fi
