// Unit tests for the performance side of the simulator: the node time model
// (paper §II scalability classes), communication model, event synthesis, and
// the cluster executor.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/comm_model.hpp"
#include "sim/events.hpp"
#include "sim/executor.hpp"
#include "sim/perf_model.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip::sim {
namespace {

using clip::parallel::AffinityPolicy;
using clip::parallel::place_threads;

MachineSpec spec_default() { return MachineSpec{}; }

MeterOptions no_noise() {
  MeterOptions m;
  m.enabled = false;
  return m;
}

NodePerfInput input(const MachineSpec& spec, double work, int threads,
                    AffinityPolicy aff, double f_rel = 1.0,
                    double bw_cap = 68.0) {
  NodePerfInput in;
  in.work_s = work;
  in.threads = threads;
  in.placement = place_threads(spec.shape, threads, aff);
  in.f_rel = f_rel;
  in.bw_cap_gbps = bw_cap;
  return in;
}

// -------------------------------------------------------------- perf model ----

class PerfModelTest : public ::testing::Test {
 protected:
  MachineSpec spec_ = spec_default();
  PerfModel model_{spec_};
};

TEST_F(PerfModelTest, LinearWorkloadScalesNearIdeally) {
  const auto w = *workloads::find_benchmark("EP");
  const double t1 =
      model_.evaluate(w, input(spec_, 100, 1, AffinityPolicy::kScatter))
          .time.value();
  const double t24 =
      model_.evaluate(w, input(spec_, 100, 24, AffinityPolicy::kScatter))
          .time.value();
  EXPECT_NEAR(t1 / t24, 24.0, 1.0);  // speedup within ~4% of ideal
}

TEST_F(PerfModelTest, FrequencyScalingLinearForComputeBound) {
  const auto w = *workloads::find_benchmark("EP");
  const double t_hi =
      model_.evaluate(w, input(spec_, 100, 24, AffinityPolicy::kScatter, 1.0))
          .time.value();
  const double t_lo =
      model_.evaluate(w,
                      input(spec_, 100, 24, AffinityPolicy::kScatter,
                            1.2 / 2.3))
          .time.value();
  EXPECT_NEAR(t_lo / t_hi, 2.3 / 1.2, 0.01);  // S(freq) ∝ freq
}

TEST_F(PerfModelTest, FrequencyScalingSubLinearForMemoryBound) {
  const auto w = *workloads::find_benchmark("STREAM-Triad");
  const double t_hi =
      model_.evaluate(w, input(spec_, 60, 24, AffinityPolicy::kScatter, 1.0))
          .time.value();
  const double t_lo =
      model_.evaluate(w,
                      input(spec_, 60, 24, AffinityPolicy::kScatter,
                            1.2 / 2.3))
          .time.value();
  // Saturated STREAM barely cares about frequency.
  EXPECT_LT(t_lo / t_hi, 1.4);
}

TEST_F(PerfModelTest, LogarithmicWorkloadHasSaturationKnee) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  // Growth rate of speedup drops sharply past the knee but stays positive.
  double prev = model_.evaluate(w, input(spec_, 100, 2,
                                         AffinityPolicy::kScatter))
                    .time.value();
  double min_gain = 1e9, max_gain = 0.0;
  for (int n = 4; n <= 24; n += 2) {
    const double t = model_.evaluate(
                             w, input(spec_, 100, n, AffinityPolicy::kScatter))
                         .time.value();
    const double gain = prev / t;
    min_gain = std::min(min_gain, gain);
    max_gain = std::max(max_gain, gain);
    EXPECT_GT(gain, 1.0) << "logarithmic perf must keep increasing";
    prev = t;
  }
  EXPECT_GT(max_gain, min_gain * 1.1);  // the growth rate is not constant
}

TEST_F(PerfModelTest, ParabolicWorkloadPeaksInsideTheNode) {
  const auto w = *workloads::find_benchmark("SP-MZ");
  double best_time = 1e30;
  int best_n = 0;
  for (int n = 2; n <= 24; n += 2) {
    const double t = model_.evaluate(
                             w, input(spec_, 100, n, AffinityPolicy::kScatter))
                         .time.value();
    if (t < best_time) {
      best_time = t;
      best_n = n;
    }
  }
  EXPECT_GE(best_n, 8);
  EXPECT_LE(best_n, 20);
  const double t24 = model_.evaluate(
                             w, input(spec_, 100, 24, AffinityPolicy::kScatter))
                         .time.value();
  EXPECT_GT(t24, best_time);  // all-core is strictly worse
}

TEST_F(PerfModelTest, SaturationReducesUtilization) {
  const auto w = *workloads::find_benchmark("STREAM-Triad");
  const NodePerfOutput out =
      model_.evaluate(w, input(spec_, 60, 24, AffinityPolicy::kScatter));
  EXPECT_LT(out.saturation, 0.5);
  EXPECT_LT(out.utilization, 0.6);
  EXPECT_NEAR(out.achieved_bw_gbps, out.bw_eff_gbps, 1e-9);  // saturated
}

TEST_F(PerfModelTest, ComputeBoundIsUnsaturated) {
  const auto w = *workloads::find_benchmark("EP");
  const NodePerfOutput out =
      model_.evaluate(w, input(spec_, 100, 24, AffinityPolicy::kScatter));
  EXPECT_DOUBLE_EQ(out.saturation, 1.0);
  EXPECT_DOUBLE_EQ(out.utilization, 1.0);
}

TEST_F(PerfModelTest, CrossNumaPenaltyReducesEffectiveBandwidth) {
  const auto w = *workloads::find_benchmark("TeaLeaf");
  const double compact = model_.effective_bandwidth(
      w, place_threads(spec_.shape, 12, AffinityPolicy::kCompact), 34.0);
  const double scatter = model_.effective_bandwidth(
      w, place_threads(spec_.shape, 12, AffinityPolicy::kScatter), 34.0);
  EXPECT_DOUBLE_EQ(compact, 34.0);  // single socket: all local
  EXPECT_LT(scatter, 34.0);         // pays the remote share
}

TEST_F(PerfModelTest, ScatterWinsForMemoryBoundDespitePenalty) {
  // At 12 threads scatter doubles the raw bandwidth; the NUMA penalty must
  // not erase that for a memory-hungry workload.
  const auto w = *workloads::find_benchmark("STREAM-Triad");
  const double t_compact =
      model_.evaluate(w, input(spec_, 60, 12, AffinityPolicy::kCompact, 1.0,
                               34.0))
          .time.value();
  const double t_scatter =
      model_.evaluate(w, input(spec_, 60, 12, AffinityPolicy::kScatter, 1.0,
                               68.0))
          .time.value();
  EXPECT_LT(t_scatter, t_compact);
}

TEST_F(PerfModelTest, MoreWorkTakesProportionallyLonger) {
  const auto w = *workloads::find_benchmark("EP");
  const double t100 =
      model_.evaluate(w, input(spec_, 100, 8, AffinityPolicy::kScatter))
          .time.value();
  const double t200 =
      model_.evaluate(w, input(spec_, 200, 8, AffinityPolicy::kScatter))
          .time.value();
  EXPECT_NEAR(t200 / t100, 2.0, 0.01);
}

TEST_F(PerfModelTest, InvalidInputsRejected) {
  const auto w = *workloads::find_benchmark("EP");
  EXPECT_THROW(
      (void)model_.evaluate(w, input(spec_, 0.0, 8, AffinityPolicy::kScatter)),
      PreconditionError);
  NodePerfInput bad = input(spec_, 100, 8, AffinityPolicy::kScatter);
  bad.threads = 9;  // placement/thread mismatch
  EXPECT_THROW((void)model_.evaluate(w, bad), PreconditionError);
}

// -------------------------------------------------------------- comm model ----

TEST(CommModel, SingleNodeHasNoCost) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  EXPECT_DOUBLE_EQ(CommModel::evaluate(w, 1, 100.0).value(), 0.0);
}

TEST(CommModel, CostGrowsWithNodeCountLatency) {
  auto w = *workloads::find_benchmark("BT-MZ");
  w.comm_surface_coeff = 0.0;  // isolate the latency term
  const double c2 = CommModel::evaluate(w, 2, 100.0).value();
  const double c8 = CommModel::evaluate(w, 8, 100.0).value();
  EXPECT_NEAR(c8 / c2, 3.0, 1e-9);  // log2(8)/log2(2)
}

TEST(CommModel, SurfaceTermScalesWithTwoThirdsPower) {
  auto w = *workloads::find_benchmark("BT-MZ");
  w.comm_latency_s = 0.0;
  const double small = CommModel::evaluate(w, 2, 10.0).value();
  const double large = CommModel::evaluate(w, 2, 80.0).value();
  EXPECT_NEAR(large / small, std::pow(8.0, 2.0 / 3.0), 1e-9);
}

TEST(CommModel, InvalidInputsRejected) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  EXPECT_THROW((void)CommModel::evaluate(w, 0, 100.0), PreconditionError);
  EXPECT_THROW((void)CommModel::evaluate(w, 2, 0.0), PreconditionError);
}

// ------------------------------------------------------------------ events ----

class EventTest : public ::testing::Test {
 protected:
  MachineSpec spec_ = spec_default();
  PerfModel perf_{spec_};
  EventModel events_{spec_};
};

TEST_F(EventTest, FeatureVectorHasTableIOrder) {
  EventRates e;
  e.icache_misses_per_s = 1;
  e.read_bw_gbps = 2;
  e.write_bw_gbps = 3;
  e.l3_miss_local_per_s = 4;
  e.l3_miss_remote_per_s = 5;
  e.cycles_active_per_s = 6;
  e.instructions_per_s = 7;
  e.perf_ratio_full_half = 8;
  const auto f = e.to_features();
  ASSERT_EQ(f.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(f[i], i + 1.0);
  EXPECT_EQ(EventRates::names().size(), 8u);
}

TEST_F(EventTest, BandwidthSplitsByWriteFraction) {
  const auto w = *workloads::find_benchmark("STREAM-Triad");
  const auto out =
      perf_.evaluate(w, input(spec_, 60, 24, AffinityPolicy::kScatter));
  const EventRates e = events_.synthesize(w, 24, GHz(2.3), out);
  EXPECT_NEAR(e.read_bw_gbps + e.write_bw_gbps, out.achieved_bw_gbps,
              1e-9);
  EXPECT_NEAR(e.write_bw_gbps / (e.read_bw_gbps + e.write_bw_gbps),
              w.write_fraction, 1e-9);
}

TEST_F(EventTest, L3MissesAccountForAllTraffic) {
  const auto w = *workloads::find_benchmark("TeaLeaf");
  const auto out =
      perf_.evaluate(w, input(spec_, 100, 24, AffinityPolicy::kScatter));
  const EventRates e = events_.synthesize(w, 24, GHz(2.3), out);
  const double total_lines = out.achieved_bw_gbps * 1e9 / 64.0;
  EXPECT_NEAR(e.l3_miss_local_per_s + e.l3_miss_remote_per_s, total_lines,
              total_lines * 1e-9);
  EXPECT_GT(e.l3_miss_remote_per_s, 0.0);  // scatter placement shares data
}

TEST_F(EventTest, CyclesScaleWithThreadsAndFrequency) {
  const auto w = *workloads::find_benchmark("EP");
  const auto out =
      perf_.evaluate(w, input(spec_, 100, 12, AffinityPolicy::kScatter));
  const EventRates lo = events_.synthesize(w, 12, GHz(1.2), out);
  const EventRates hi = events_.synthesize(w, 12, GHz(2.3), out);
  EXPECT_NEAR(hi.cycles_active_per_s / lo.cycles_active_per_s, 2.3 / 1.2,
              1e-9);
  EXPECT_NEAR(hi.instructions_per_s, hi.cycles_active_per_s * w.ipc, 1e-3);
}

TEST_F(EventTest, IcachePressureDrivesMissRate) {
  const auto hot = *workloads::find_benchmark("miniAero");   // icache 0.20
  const auto cold = *workloads::find_benchmark("TeaLeaf");   // icache 0.06
  const auto out_hot =
      perf_.evaluate(hot, input(spec_, 100, 24, AffinityPolicy::kScatter));
  const auto out_cold =
      perf_.evaluate(cold, input(spec_, 100, 24, AffinityPolicy::kScatter));
  const double hot_rate =
      events_.synthesize(hot, 24, GHz(2.3), out_hot).icache_misses_per_s;
  const double cold_rate =
      events_.synthesize(cold, 24, GHz(2.3), out_cold).icache_misses_per_s;
  EXPECT_GT(hot_rate, cold_rate);
}

// ---------------------------------------------------------------- executor ----

class ExecutorTest : public ::testing::Test {
 protected:
  SimExecutor ex_{spec_default(), no_noise()};

  ClusterConfig cfg(int nodes, int threads,
                    Watts cpu_cap = Watts(1e9),
                    Watts mem_cap = Watts(1e9)) {
    ClusterConfig c;
    c.nodes = nodes;
    c.node.threads = threads;
    c.node.affinity = AffinityPolicy::kScatter;
    c.node.cpu_cap = cpu_cap;
    c.node.mem_cap = mem_cap;
    return c;
  }
};

TEST_F(ExecutorTest, MoreNodesRunFaster) {
  const auto w = *workloads::find_benchmark("CoMD");
  const double t1 = ex_.run_exact(w, cfg(1, 24)).time.value();
  const double t8 = ex_.run_exact(w, cfg(8, 24)).time.value();
  EXPECT_LT(t8, t1 / 4.0);  // at least 4x from 8 nodes despite comm
}

TEST_F(ExecutorTest, CommunicationCostIncludedForMultiNode) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const Measurement m = ex_.run_exact(w, cfg(8, 24));
  EXPECT_GT(m.comm_time.value(), 0.0);
  EXPECT_DOUBLE_EQ(ex_.run_exact(w, cfg(1, 24)).comm_time.value(), 0.0);
}

TEST_F(ExecutorTest, MakespanIsSlowestNodePlusComm) {
  const auto w = *workloads::find_benchmark("LU-MZ");
  const Measurement m = ex_.run_exact(w, cfg(4, 24));
  double slowest = 0.0;
  for (const auto& n : m.nodes)
    slowest = std::max(slowest, n.time.value());
  EXPECT_NEAR(m.time.value(), slowest + m.comm_time.value(), 1e-12);
}

TEST_F(ExecutorTest, EnergyEqualsPowerTimesTime) {
  const auto w = *workloads::find_benchmark("AMG");
  const Measurement m = ex_.run_exact(w, cfg(4, 24));
  EXPECT_NEAR(m.energy.value(), m.avg_power.value() * m.time.value(),
              1e-9);
}

TEST_F(ExecutorTest, PerNodeCapOverridesApplied) {
  const auto w = *workloads::find_benchmark("CoMD");
  ClusterConfig c = cfg(2, 24, Watts(100.0));
  c.cpu_cap_overrides = {Watts(120.0), Watts(60.0)};
  const Measurement m = ex_.run_exact(w, c);
  ASSERT_EQ(m.nodes.size(), 2u);
  EXPECT_LE(m.nodes[0].cpu_power.value(), 120.0 + 1e-9);
  EXPECT_LE(m.nodes[1].cpu_power.value(), 60.0 + 1e-9);
  EXPECT_GT(m.nodes[0].frequency.value(), m.nodes[1].frequency.value());
}

TEST_F(ExecutorTest, OverrideCountMustMatchNodes) {
  const auto w = *workloads::find_benchmark("CoMD");
  ClusterConfig c = cfg(3, 24);
  c.cpu_cap_overrides = {Watts(100.0)};
  EXPECT_THROW((void)ex_.run_exact(w, c), PreconditionError);
}

TEST_F(ExecutorTest, NodeCountOutsideClusterRejected) {
  const auto w = *workloads::find_benchmark("CoMD");
  EXPECT_THROW((void)ex_.run_exact(w, cfg(9, 24)), PreconditionError);
  EXPECT_THROW((void)ex_.run_exact(w, cfg(0, 24)), PreconditionError);
}

TEST_F(ExecutorTest, ExactRunsAreDeterministic) {
  const auto w = *workloads::find_benchmark("TeaLeaf");
  const double a = ex_.run_exact(w, cfg(4, 12)).time.value();
  const double b = ex_.run_exact(w, cfg(4, 12)).time.value();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(ExecutorTest, NoisyRunsDifferSlightlyFromExact) {
  SimExecutor noisy(spec_default());  // default meter noise
  const auto w = *workloads::find_benchmark("TeaLeaf");
  const double exact = noisy.run_exact(w, cfg(4, 12)).time.value();
  const double measured = noisy.run(w, cfg(4, 12)).time.value();
  EXPECT_NE(exact, measured);
  EXPECT_NEAR(measured / exact, 1.0, 0.02);
}

TEST_F(ExecutorTest, VariabilityCreatesNodeImbalanceUnderCaps) {
  MachineSpec spec = spec_default();
  spec.variability_sigma = 0.08;
  SimExecutor ex(spec, no_noise());
  const auto w = *workloads::find_benchmark("CoMD");
  const Measurement m = ex.run_exact(w, cfg(8, 24, Watts(90.0)));
  double min_t = 1e30, max_t = 0.0;
  for (const auto& n : m.nodes) {
    min_t = std::min(min_t, n.time.value());
    max_t = std::max(max_t, n.time.value());
  }
  EXPECT_GT(max_t, min_t);  // slow node gates the job
}

TEST_F(ExecutorTest, EventsReportedPerNode) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const Measurement m = ex_.run_exact(w, cfg(2, 24));
  for (const auto& n : m.nodes) {
    EXPECT_GT(n.events.cycles_active_per_s, 0.0);
    EXPECT_GT(n.events.instructions_per_s, 0.0);
    EXPECT_GT(n.events.read_bw_gbps, 0.0);
  }
}

}  // namespace
}  // namespace clip::sim
