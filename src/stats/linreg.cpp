#include "stats/linreg.hpp"

#include <cmath>

#include "stats/matrix.hpp"
#include "util/check.hpp"

namespace clip::stats {

Standardizer Standardizer::fit(const std::vector<std::vector<double>>& x) {
  CLIP_REQUIRE(!x.empty(), "standardizer needs samples");
  const std::size_t d = x.front().size();
  Standardizer s;
  s.mean.assign(d, 0.0);
  s.stddev.assign(d, 0.0);
  for (const auto& row : x) {
    CLIP_REQUIRE(row.size() == d, "ragged design matrix");
    for (std::size_t j = 0; j < d; ++j) s.mean[j] += row[j];
  }
  const double n = static_cast<double>(x.size());
  for (std::size_t j = 0; j < d; ++j) s.mean[j] /= n;
  for (const auto& row : x)
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - s.mean[j];
      s.stddev[j] += delta * delta;
    }
  for (std::size_t j = 0; j < d; ++j) {
    s.stddev[j] = std::sqrt(s.stddev[j] / n);
    // A constant column carries no information; map it to exactly zero so it
    // cannot perturb the fit.
    if (s.stddev[j] < 1e-12) s.stddev[j] = 0.0;
  }
  return s;
}

std::vector<double> Standardizer::apply(
    const std::vector<double>& features) const {
  CLIP_REQUIRE(features.size() == mean.size(),
               "feature width differs from the fitted standardizer");
  std::vector<double> out(features.size());
  for (std::size_t j = 0; j < features.size(); ++j)
    out[j] = stddev[j] > 0.0 ? (features[j] - mean[j]) / stddev[j] : 0.0;
  return out;
}

double LinearModel::predict(const std::vector<double>& features) const {
  const std::vector<double> x =
      standardized ? standardizer.apply(features) : features;
  CLIP_REQUIRE(x.size() == coefficients.size(),
               "feature width differs from the fitted model");
  double y = intercept;
  for (std::size_t j = 0; j < x.size(); ++j) y += coefficients[j] * x[j];
  return y;
}

LinearModel fit_linear(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& y,
                       const LinRegOptions& options) {
  CLIP_REQUIRE(!x.empty(), "regression needs samples");
  CLIP_REQUIRE(x.size() == y.size(), "X/y sample count mismatch");
  const std::size_t n = x.size();
  const std::size_t d = x.front().size();
  CLIP_REQUIRE(d > 0, "regression needs at least one feature");
  CLIP_REQUIRE(n >= d + 1 || options.ridge_lambda > 0.0,
               "underdetermined OLS; add samples or use ridge");

  LinearModel model;
  model.standardized = options.standardize;
  std::vector<std::vector<double>> xs;
  xs.reserve(n);
  if (options.standardize) {
    model.standardizer = Standardizer::fit(x);
    for (const auto& row : x) xs.push_back(model.standardizer.apply(row));
  } else {
    xs = x;
  }

  // Design matrix with a leading 1s column for the intercept.
  Matrix design(n, d + 1);
  for (std::size_t i = 0; i < n; ++i) {
    CLIP_REQUIRE(xs[i].size() == d, "ragged design matrix");
    design(i, 0) = 1.0;
    for (std::size_t j = 0; j < d; ++j) design(i, j + 1) = xs[i][j];
  }

  // Normal equations: (XᵀX + λI') β = Xᵀy, with the intercept unpenalized.
  const Matrix xt = design.transposed();
  Matrix gram = xt.multiply(design);
  for (std::size_t j = 1; j <= d; ++j) gram(j, j) += options.ridge_lambda;
  const std::vector<double> rhs = xt.multiply(y);
  const std::vector<double> beta = solve_linear_system(gram, rhs);

  model.intercept = beta[0];
  model.coefficients.assign(beta.begin() + 1, beta.end());
  return model;
}

}  // namespace clip::stats
