#include "sim/rapl.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace clip::sim {

double RaplSolver::bandwidth_ceiling(const parallel::Placement& placement,
                                     MemPowerLevel level,
                                     Watts mem_cap) const {
  const int active = placement.active_sockets();
  CLIP_REQUIRE(active > 0, "need at least one active socket");

  // Only sockets with threads serve traffic in this model; the others park.
  const double level_bw =
      active * spec_->socket_bw_gbps * bw_fraction(level);

  // The DRAM cap bounds base + activity power; convert the activity
  // headroom back into a bandwidth ceiling.
  const int parked = spec_->shape.sockets - active;
  const double base_w = active * spec_->mem_base_w_per_socket +
                        parked * spec_->mem_parked_w_per_socket;
  const double headroom_w = mem_cap.value() - base_w;
  const double cap_bw =
      headroom_w <= 0.0 ? 0.0 : headroom_w / spec_->mem_w_per_gbps();

  return std::min(level_bw, cap_bw);
}

OperatingPoint RaplSolver::solve(const workloads::WorkloadSignature& w,
                                 double work_s, const NodeConfig& cfg,
                                 double cpu_multiplier) const {
  CLIP_REQUIRE(cfg.threads >= 1 && cfg.threads <= spec_->shape.total_cores(),
               "thread count outside the node");
  CLIP_REQUIRE(cfg.cpu_cap.value() > 0.0 && cfg.mem_cap.value() > 0.0,
               "caps must be positive");
  CLIP_REQUIRE(cpu_multiplier > 0.0, "variability multiplier must be > 0");

  OperatingPoint op;
  op.placement =
      parallel::place_threads(spec_->shape, cfg.threads, cfg.affinity);
  const double bw_cap =
      bandwidth_ceiling(op.placement, cfg.mem_level, cfg.mem_cap);
  CLIP_REQUIRE(w.memory_boundedness == 0.0 || bw_cap > 0.0,
               "memory-bound workload with zero bandwidth budget — DRAM cap "
               "below base power");

  NodePerfInput in;
  in.work_s = work_s;
  in.threads = cfg.threads;
  in.placement = op.placement;
  in.bw_cap_gbps = bw_cap;

  // Walk the DVFS ladder downward; take the fastest state under the cap.
  const auto& states = spec_->ladder.states();
  bool fitted = false;
  for (auto it = states.rbegin(); it != states.rend(); ++it) {
    in.f_rel = spec_->ladder.relative(*it);
    const NodePerfOutput perf = perf_.evaluate(w, in);
    NodeActivity activity{.placement = op.placement,
                          .f_rel = in.f_rel,
                          .utilization = perf.utilization,
                          .compute_intensity = w.compute_intensity,
                          .achieved_bw_gbps = perf.achieved_bw_gbps,
                          .cpu_load_multiplier = cpu_multiplier};
    const Watts cpu_w = power_.cpu_power(activity);
    if (cpu_w <= cfg.cpu_cap || std::next(it) == states.rend()) {
      op.frequency = *it;
      op.f_rel = in.f_rel;
      op.perf = perf;
      op.cpu_power = cpu_w;
      op.mem_power = power_.mem_power(activity);
      fitted = cpu_w <= cfg.cpu_cap;
      break;
    }
  }
  CLIP_ENSURE(op.frequency.value() > 0.0, "ladder walk found no state");

  if (!fitted) {
    // Even the lowest state exceeds the PKG cap: clock modulation
    // (T-states) duty-cycles the pipeline. Gating stops the *dynamic*
    // power; the socket base draw stays — so the duty factor solves
    //   cap = base + load(f_min) * duty.
    // A cap at/below the base power is physically unenforceable by clock
    // gating; the node floors at the deepest modulation step.
    double base_w = 0.0;
    for (int t : op.placement.threads_per_socket)
      base_w += t > 0 ? spec_->socket_base_w : spec_->socket_parked_w;
    const double load_w = op.cpu_power.value() - base_w;
    CLIP_ENSURE(load_w > 0.0, "no dynamic power to modulate");
    constexpr double kDeepestDuty = 1.0 / 16.0;  // hardware modulation floor
    op.duty_factor = std::clamp(
        (cfg.cpu_cap.value() - base_w) / load_w, kDeepestDuty, 1.0);
    op.perf.time = Seconds(op.perf.time.value() / op.duty_factor);
    op.perf.achieved_bw_gbps *= op.duty_factor;
    op.cpu_power = Watts(base_w + load_w * op.duty_factor);
    NodeActivity throttled{.placement = op.placement,
                           .f_rel = op.f_rel,
                           .utilization = op.perf.utilization,
                           .compute_intensity = w.compute_intensity,
                           .achieved_bw_gbps = op.perf.achieved_bw_gbps,
                           .cpu_load_multiplier = cpu_multiplier};
    op.mem_power = power_.mem_power(throttled);
  }
  // The DRAM cap bounds *activity* power; base power is irreducible (DIMMs
  // stay powered), so a cap below base floors at the base draw.
  CLIP_ENSURE(op.mem_power <= cfg.mem_cap + Watts(1e-9) ||
                  op.perf.achieved_bw_gbps <= 1e-12,
              "memory enforcement exceeded the DRAM cap");
  return op;
}

}  // namespace clip::sim
