// Shared infrastructure for the figure/table reproduction harnesses.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (§V) on the simulated testbed and prints the same rows/series
// the paper plots. Pass --csv to emit machine-readable CSV instead of the
// aligned table.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "baselines/all_in.hpp"
#include "baselines/clip_adapter.hpp"
#include "baselines/coordinated.hpp"
#include "baselines/lower_limit.hpp"
#include "baselines/oracle.hpp"
#include "runtime/comparison.hpp"
#include "sim/executor.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

namespace clip::bench {

struct BenchContext {
  bool csv = false;

  explicit BenchContext(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == "--csv") csv = true;
  }

  void print(const Table& table) const {
    if (csv)
      table.print_csv(std::cout);
    else
      table.print(std::cout);
    std::cout << '\n';
  }
};

/// The standard experimental setup: the 8-node Haswell-like cluster with the
/// default measurement noise (as on the real testbed).
inline sim::SimExecutor make_testbed() {
  return sim::SimExecutor(sim::MachineSpec{});
}

/// Noise-free twin for oracle searches and ground-truth curves.
inline sim::SimExecutor make_exact_testbed() {
  sim::MeterOptions quiet;
  quiet.enabled = false;
  return sim::SimExecutor(sim::MachineSpec{}, quiet);
}

/// The four §V-C methods plus the oracle, registered on a harness.
inline void register_all_methods(runtime::ComparisonHarness& harness,
                                 sim::SimExecutor& executor) {
  harness.add_method(
      std::make_shared<baselines::AllInScheduler>(executor.spec()));
  harness.add_method(
      std::make_shared<baselines::LowerLimitScheduler>(executor.spec()));
  harness.add_method(
      std::make_shared<baselines::CoordinatedScheduler>(executor));
  harness.add_method(std::make_shared<baselines::ClipAdapter>(
      executor, workloads::training_benchmarks()));
  harness.add_method(
      std::make_shared<baselines::OracleScheduler>(executor));
}

/// Render one figure's worth of comparison cells as app-rows ×
/// method-columns of relative performance.
void print_method_comparison(const BenchContext& ctx,
                             const runtime::ComparisonResult& result,
                             const std::vector<workloads::WorkloadSignature>&
                                 apps,
                             double budget, const std::string& title);

}  // namespace clip::bench
