// J2 fixture (producer half): every jlog/append_or_verify kind must be
// registered; "rogue" deliberately is not.
struct Emitter {
  void fire() {
    jlog("alpha", "payload");
    jlog("beta", "payload");
    jlog("rogue", "payload");
  }
  void verify() { append_or_verify("alpha", "payload"); }
};
