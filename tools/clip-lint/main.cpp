// clip-analyze CLI (binary: clip-lint). Scans the given files/directories
// (recursively, .cpp/.hpp) through the per-file rule passes and the
// project-level J2/L2 passes, and exits 0 when no unsuppressed finding
// remains, 1 when the tree has violations, 2 on usage or I/O errors — the
// contract scripts/ci.sh and the `ctest -L lint` entry gate on.
//
// Usage:
//   clip-lint [--root DIR] [--json PATH] [--sarif PATH] [--cache PATH]
//             [--exclude PREFIX]... [--changed] [--quiet] [--list-rules]
//             PATH...
//
// --cache PATH    load/refresh the incremental result cache: files whose
//                 content hash matches are served from the cache (the
//                 project passes still rerun over everyone's cached facts).
// --changed       PATHs are the files that changed; everything else in the
//                 cache is trusted as-is with no tree walk. Requires
//                 --cache with an existing cache file (exit 2 otherwise).
// --exclude P     drop scanned files whose root-relative path starts with P
//                 (lint fixtures are deliberately-violating inputs).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Paths are reported relative to --root so reports are machine-portable.
std::string display_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty() || rel.native().starts_with(".."))
    return p.generic_string();
  return rel.generic_string();
}

bool excluded(const std::string& display,
              const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes)
    if (display.rfind(prefix, 0) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  std::string sarif_path;
  std::string cache_path;
  std::vector<std::string> excludes;
  bool changed_mode = false;
  bool quiet = false;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--exclude" && i + 1 < argc) {
      excludes.emplace_back(argv[++i]);
    } else if (arg == "--changed") {
      changed_mode = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : clip::lint::known_rules())
        std::cout << r << '\n';
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: clip-lint [--root DIR] [--json PATH] "
                   "[--sarif PATH] [--cache PATH] [--exclude PREFIX]... "
                   "[--changed] [--quiet] [--list-rules] PATH...\n"
                   "exit codes: 0 clean, 1 unsuppressed findings, 2 error\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "clip-lint: unknown option: " << arg << '\n';
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "clip-lint: no paths given (try: clip-lint src examples "
                 "bench)\n";
    return 2;
  }

  clip::lint::ResultCache cache;
  bool cache_loaded = false;
  if (!cache_path.empty()) cache_loaded = cache.load(cache_path);
  if (changed_mode && !cache_loaded) {
    std::cerr << "clip-lint: --changed needs a warm cache; run a full scan "
                 "with --cache first ("
              << (cache_path.empty() ? "no --cache given" : cache_path)
              << ")\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    const fs::path p = in.is_absolute() ? in : root / in;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec))
        if (entry.is_regular_file() && lintable(entry.path()))
          files.push_back(entry.path());
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "clip-lint: no such file or directory: " << p << '\n';
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<clip::lint::FileResult> results;
  std::set<std::string> seen;
  for (const fs::path& file : files) {
    const std::string display = display_path(file, root);
    if (excluded(display, excludes) || !seen.insert(display).second)
      continue;
    std::ifstream is(file, std::ios::binary);
    if (!is) {
      std::cerr << "clip-lint: cannot read " << file << '\n';
      return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string source = buf.str();
    const std::uint64_t hash = clip::lint::content_hash(source);
    if (const clip::lint::FileResult* hit = cache.find(display, hash)) {
      results.push_back(*hit);
    } else {
      results.push_back(clip::lint::analyze_source(source, display));
      if (!cache_path.empty()) cache.put(hash, results.back());
    }
  }

  // --changed: merge every cached file that was not re-scanned, so the
  // project passes (and the report) still see the whole tree.
  if (changed_mode) {
    for (const std::string& path : cache.paths()) {
      if (seen.count(path) != 0) continue;
      seen.insert(path);
      results.push_back(*cache.find_any(path));
    }
    std::sort(results.begin(), results.end(),
              [](const clip::lint::FileResult& a,
                 const clip::lint::FileResult& b) { return a.path < b.path; });
  }

  std::vector<clip::lint::Finding> findings;
  for (const clip::lint::FileResult& r : results)
    findings.insert(findings.end(), r.findings.begin(), r.findings.end());
  const std::vector<clip::lint::Finding> project =
      clip::lint::project_rules(results);
  findings.insert(findings.end(), project.begin(), project.end());
  std::sort(findings.begin(), findings.end(),
            [](const clip::lint::Finding& a, const clip::lint::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (!cache_path.empty() && !cache.save(cache_path)) {
    std::cerr << "clip-lint: cannot write cache " << cache_path << '\n';
    return 2;
  }

  const int files_scanned = static_cast<int>(results.size());
  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::binary);
    if (!os) {
      std::cerr << "clip-lint: cannot write " << json_path << '\n';
      return 2;
    }
    os << clip::lint::to_json(findings, files_scanned);
  }
  if (!sarif_path.empty()) {
    std::ofstream os(sarif_path, std::ios::binary);
    if (!os) {
      std::cerr << "clip-lint: cannot write " << sarif_path << '\n';
      return 2;
    }
    os << clip::lint::to_sarif(findings);
  }
  if (!quiet) std::cout << clip::lint::to_text(findings, files_scanned);

  return clip::lint::summarize(findings, files_scanned).unsuppressed == 0 ? 0
                                                                          : 1;
}
