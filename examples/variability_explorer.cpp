// Variability explorer — manufacturing variability and inter-node power
// coordination (paper §III-B2). Builds clusters of increasing
// heterogeneity, shows the frequency imbalance a uniform per-node cap
// causes, and the recovery from Inadomi-style power shifting.
#include <iostream>

#include "core/variability_coord.hpp"
#include "sim/executor.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/catalog.hpp"

using namespace clip;

int main() {
  const auto app = *workloads::find_benchmark("CoMD");

  Table t({"sigma", "power spread", "uniform caps: time (s) / freq span",
           "coordinated: time (s) / freq span", "gain"});
  t.set_title(
      "Manufacturing variability: uniform vs coordinated per-node caps "
      "(8 nodes, 95 W CPU caps, CoMD)");

  for (double sigma : {0.0, 0.02, 0.05, 0.08, 0.12}) {
    sim::MachineSpec spec;
    spec.variability_sigma = sigma;
    sim::MeterOptions quiet;
    quiet.enabled = false;
    sim::SimExecutor cluster(spec, quiet);

    sim::ClusterConfig cfg;
    cfg.nodes = 8;
    cfg.node.threads = 24;
    cfg.node.affinity = parallel::AffinityPolicy::kScatter;
    cfg.node.cpu_cap = Watts(95.0);
    cfg.node.mem_cap = Watts(40.0);

    auto freq_span = [](const sim::Measurement& m) {
      double lo = 1e9, hi = 0.0;
      for (const auto& n : m.nodes) {
        lo = std::min(lo, n.frequency.value());
        hi = std::max(hi, n.frequency.value());
      }
      return hi - lo;
    };

    const sim::Measurement uniform = cluster.run_exact(app, cfg);

    const core::VariabilityCoordinator coordinator;
    const Watts base(spec.shape.sockets * spec.socket_base_w);
    coordinator.apply(cfg, cluster.variability().multipliers(), base);
    const sim::Measurement coordinated = cluster.run_exact(app, cfg);

    t.add_row(
        {format_double(sigma, 2),
         format_percent(cluster.variability().spread()),
         format_double(uniform.time.value(), 3) + " / " +
             format_double(freq_span(uniform), 2) + " GHz",
         format_double(coordinated.time.value(), 3) + " / " +
             format_double(freq_span(coordinated), 2) + " GHz",
         format_percent(uniform.time.value() / coordinated.time.value() -
                        1.0)});
  }
  t.print(std::cout);
  std::cout
      << "\nUnder a uniform cap the least efficient node runs slowest and "
         "gates the bulk-synchronous job; shifting watts toward it (keeping "
         "the total constant) closes the frequency span. The coordinator "
         "only engages above its spread threshold — the paper's testbed "
         "was nearly homogeneous, sigma<=0.02 here.\n";
  return 0;
}
