#include "runtime/queue.hpp"

#include <algorithm>
#include <limits>

#include "obs/timeline.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace clip::runtime {

PowerAwareJobQueue::PowerAwareJobQueue(sim::SimExecutor& executor,
                                       core::ClipScheduler& scheduler,
                                       QueueOptions options)
    : executor_(&executor), scheduler_(&scheduler), options_(options) {
  CLIP_REQUIRE(options.cluster_budget.value() > 0.0,
               "cluster_budget must be positive (got " +
                   format_double(options.cluster_budget.value(), 3) + " W)");
  CLIP_REQUIRE(options.min_node_power_w > 0.0,
               "min_node_power_w must be positive (got " +
                   format_double(options.min_node_power_w, 3) + " W)");
  CLIP_REQUIRE(
      options.min_node_power_w <= options.cluster_budget.value(),
      "min_node_power_w (" + format_double(options.min_node_power_w, 3) +
          " W) exceeds cluster_budget (" +
          format_double(options.cluster_budget.value(), 3) + " W)");
  options.retry.validate();
  options.guard.validate();
  options.redist.validate();
}

namespace {

struct Running {
  std::size_t job_index;
  double start_s;
  double end_s;              ///< completion, or the abort instant if crashed
  std::vector<int> node_ids;
  double power_w;            ///< reserved slice
  double true_power_w;       ///< exact measured draw
  double energy_j;           ///< billed run energy (adjusted on abort/re-base)
  bool crashed = false;
  int crashed_node = -1;
  // --- redistribution bookkeeping (inert stores while redist is off) ------
  sim::ClusterConfig config;   ///< caps/threads the job currently runs under
  double prof_s = 0.0;         ///< profiling cost billed into the duration
  double full_energy_j = 0.0;  ///< full-run energy at the current config
  double frac_done = 0.0;      ///< work fraction done at the last re-base
  double change_s = 0.0;       ///< instant of the last re-base
  double ff_remaining = 0.0;   ///< fault-free work seconds left at change_s
};

/// Simulated-seconds wait times: 0.125 s … ~2000 s.
const obs::HistogramSpec& wait_s_spec() {
  static const obs::HistogramSpec spec =
      obs::HistogramSpec::exponential(0.125, 2.0, 14);
  return spec;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

QueueReport PowerAwareJobQueue::run(
    const std::vector<workloads::WorkloadSignature>& jobs) {
  std::vector<QueueJob> wrapped;
  wrapped.reserve(jobs.size());
  for (const auto& j : jobs) wrapped.push_back(QueueJob{j, 0});
  return run(wrapped);
}

QueueReport PowerAwareJobQueue::run(const std::vector<QueueJob>& jobs) {
  CLIP_REQUIRE(!jobs.empty(), "queue needs at least one job");
  const int total_nodes = executor_->spec().nodes;
  const double total_budget = options_.cluster_budget.value();
  for (const auto& job : jobs)
    CLIP_REQUIRE(job.requested_nodes >= 0 &&
                     job.requested_nodes <= total_nodes,
                 "job '" + job.app.name + "' requested_nodes (" +
                     std::to_string(job.requested_nodes) +
                     ") exceeds the cluster's " +
                     std::to_string(total_nodes) + " nodes");

  QueueReport report;
  report.jobs.resize(jobs.size());

  enum class State { kPending, kRunning, kDone, kFailed };
  std::vector<State> state(jobs.size(), State::kPending);
  std::vector<int> attempts(jobs.size(), 0);
  std::vector<double> eligible_s(jobs.size(), 0.0);
  std::vector<Running> running;
  std::vector<bool> node_alive(static_cast<std::size_t>(total_nodes), true);
  std::vector<bool> node_busy(static_cast<std::size_t>(total_nodes), false);
  double now = 0.0;

  // Budget watchdog; the plausibility ceiling defaults to what the machine
  // can physically draw (a healthy node never exceeds it, a spiking meter
  // usually will).
  fault::BudgetGuardOptions guard_opts = options_.guard;
  if (guard_opts.max_plausible_node_w >= 1e9)
    guard_opts.max_plausible_node_w = executor_->spec().max_node_w() * 1.5;
  fault::BudgetGuard guard(guard_opts, options_.cluster_budget);

  // Fault-event bookkeeping: each planned event is announced (counted and
  // applied to the node pool) exactly once, when its time arrives.
  const fault::FaultPlan* plan =
      injector_ != nullptr ? &injector_->plan() : nullptr;
  std::vector<bool> crash_seen(plan != nullptr ? plan->crashes.size() : 0);
  std::vector<bool> degrade_seen(plan != nullptr ? plan->degrades.size() : 0);
  std::vector<bool> meter_seen(plan != nullptr ? plan->meter_faults.size()
                                               : 0);
  std::vector<bool> capviol_seen(
      plan != nullptr ? plan->cap_violations.size() : 0);
  struct Enforcement {
    double at_s;
    int node;
  };
  std::vector<Enforcement> enforcements;   ///< scheduled cap claw-backs
  std::vector<double> retry_wakeups;       ///< backoff expiry instants
  std::vector<bool> enforcement_pending(static_cast<std::size_t>(total_nodes),
                                        false);

  auto free_nodes = [&] {
    int free = 0;
    for (int n = 0; n < total_nodes; ++n)
      if (node_alive[static_cast<std::size_t>(n)] &&
          !node_busy[static_cast<std::size_t>(n)])
        ++free;
    return free;
  };
  auto free_power = [&] {
    double used = 0.0;
    for (const auto& r : running) used += r.power_w;
    return total_budget - used;
  };
  auto active_node_ids = [&] {
    std::vector<int> ids;
    for (const auto& r : running)
      ids.insert(ids.end(), r.node_ids.begin(), r.node_ids.end());
    return ids;
  };
  auto true_cluster_power = [&](double t) {
    double watts = 0.0;
    for (const auto& r : running) watts += r.true_power_w;
    return watts + injector_->cap_excess_w(active_node_ids(), t);
  };
  // Fault windows active at `t` for the flight recorder's `fault.active`
  // series (crashes and degrades are permanent; meter faults and cap
  // violations are windowed — claw-backs truncate the latter in place).
  auto faults_active_at = [&](double t) {
    int active = 0;
    for (const auto& c : plan->crashes)
      if (c.at_s <= t) ++active;
    for (const auto& d : plan->degrades)
      if (d.at_s <= t) ++active;
    for (const auto& f : plan->meter_faults)
      if (f.at_s <= t && t < f.at_s + f.duration_s) ++active;
    for (const auto& v : plan->cap_violations)
      if (v.at_s <= t && t < v.at_s + v.duration_s) ++active;
    return active;
  };

  auto try_start = [&](std::size_t j) -> bool {
    obs::ScopedSpan span(obs_, "queue.try_start", "runtime");
    span.arg("app", jobs[j].app.name);
    const int nodes_avail = free_nodes();
    const double watts_avail = free_power();
    span.arg("free_nodes", nodes_avail);
    span.arg("free_watts", watts_avail);
    if (nodes_avail < 1 ||
        watts_avail < options_.min_node_power_w)
      return false;

    // Shape the job as if the free watts were all its own...
    const core::ScheduleDecision ideal =
        scheduler_->schedule(jobs[j].app, Watts(watts_avail));
    // ...then constrain to the free nodes (or the job's own MPI launch
    // line) with a proportional power slice.
    const int nodes_wanted =
        jobs[j].requested_nodes > 0 ? jobs[j].requested_nodes
                                    : ideal.cluster.nodes;
    if (nodes_wanted > nodes_avail && jobs[j].requested_nodes > 0)
      return false;  // a predefined decomposition cannot shrink
    const int nodes_used = std::min(nodes_wanted, nodes_avail);
    const double slice =
        watts_avail * nodes_used / std::max(ideal.cluster.nodes, nodes_used);
    if (slice < options_.min_node_power_w * nodes_used) return false;

    const core::ScheduleDecision constrained =
        nodes_used == ideal.cluster.nodes
            ? ideal
            : scheduler_->schedule_constrained(jobs[j].app, Watts(slice),
                                               nodes_used);
    const sim::Measurement m =
        executor_->run_exact(jobs[j].app, constrained.cluster);
    CLIP_ENSURE(m.avg_power.value() <= slice * 1.01 + 1.0,
                "job exceeded its power slice");

    Running r;
    r.job_index = j;
    r.start_s = now;
    const double duration =
        m.time.value() + constrained.profiling_cost.value();
    r.end_s = now + duration;
    r.node_ids.reserve(static_cast<std::size_t>(nodes_used));
    for (int n = 0; n < total_nodes &&
                    static_cast<int>(r.node_ids.size()) < nodes_used;
         ++n)
      if (node_alive[static_cast<std::size_t>(n)] &&
          !node_busy[static_cast<std::size_t>(n)])
        r.node_ids.push_back(n);
    // Reserve the job's full slice, not its measured draw: the RAPL caps
    // guarantee the slice is never exceeded, and only reserving the caps
    // keeps the cluster-wide bound airtight under transients.
    r.power_w = slice;
    r.true_power_w = m.avg_power.value();
    r.energy_j = m.energy.value();
    r.config = constrained.cluster;
    r.prof_s = constrained.profiling_cost.value();
    r.full_energy_j = m.energy.value();
    r.frac_done = 0.0;
    r.change_s = now;
    r.ff_remaining = duration;
    if (injector_ != nullptr) {
      // Degrades stretch the run; a held node's crash aborts it.
      const fault::RunResolution res =
          injector_->resolve(now, duration, r.node_ids);
      r.end_s = res.end_s;
      r.crashed = res.crashed;
      r.crashed_node = res.crashed_node;
    }
    for (int n : r.node_ids) node_busy[static_cast<std::size_t>(n)] = true;

    auto& out = report.jobs[j];
    out.app = jobs[j].app.name;
    out.parameters = jobs[j].app.parameters;
    out.submit_s = 0.0;
    out.start_s = now;
    out.end_s = r.end_s;
    out.nodes = nodes_used;
    out.budget_w = slice;
    out.power_w = m.avg_power.value();
    out.attempts = ++attempts[j];
    out.completed = !r.crashed;
    out.crashed_node = -1;
    if (timeline_ != nullptr) {
      timeline_->event("job", now, "start " + out.app + " nodes=" +
                                       std::to_string(nodes_used));
      const double per_node_cap = slice / nodes_used;
      const double per_node_power = m.avg_power.value() / nodes_used;
      for (int n : r.node_ids) {
        const std::string prefix = "node" + std::to_string(n);
        timeline_->record(prefix + ".cap_w", now, per_node_cap);
        timeline_->record(prefix + ".power_w", now, per_node_power);
      }
    }
    // Optimistic accounting at start, exactly as the fault-free queue always
    // did (same FP operations in the same order, so an empty plan reproduces
    // the report bit-for-bit); a crash abort adjusts the energy term. For a
    // crashed run r.end_s is already the abort instant, so the node-seconds
    // term needs no adjustment, and a degraded run's stretch is billed here.
    report.total_energy_j += m.energy.value();
    report.node_seconds_used += nodes_used * (r.end_s - now);
    running.push_back(std::move(r));
    state[j] = State::kRunning;
    obs::count(obs_, "queue.jobs_started");
    obs::observe(obs_, "queue.job_wait_s", wait_s_spec(), out.wait_s());
    return true;
  };

  auto start_eligible = [&] {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (state[j] != State::kPending) continue;
      if (eligible_s[j] > now) continue;  // still backing off after a crash
      const bool ok = try_start(j);
      if (!ok && !options_.backfill) break;  // strict FCFS: head blocks
    }
    std::size_t waiting = 0;
    for (std::size_t j = 0; j < jobs.size(); ++j)
      if (state[j] == State::kPending) ++waiting;
    obs::gauge_set(obs_, "queue.depth", static_cast<double>(waiting));
    obs::gauge_set(obs_, "queue.running",
                   static_cast<double>(running.size()));
    if (timeline_ != nullptr) {
      timeline_->record("queue.depth", now, static_cast<double>(waiting));
      timeline_->record("queue.running", now,
                        static_cast<double>(running.size()));
      timeline_->record("budget.free_w", now, free_power());
    }
  };

  // Announce fault events whose time has arrived: counters/spans once per
  // event, crashes also retire the node from the pool.
  auto apply_fault_events = [&] {
    bool fired = false;
    for (std::size_t i = 0; i < crash_seen.size(); ++i) {
      const auto& c = plan->crashes[i];
      if (crash_seen[i] || c.at_s > now) continue;
      crash_seen[i] = true;
      fired = true;
      obs::ScopedSpan span(obs_, "fault.inject", "fault");
      span.arg("kind", "crash");
      span.arg("node", c.node);
      obs::count(obs_, "fault.injected");
      obs::count(obs_, "fault.crashes");
      if (timeline_ != nullptr)
        timeline_->event("fault", now,
                         "crash node=" + std::to_string(c.node));
      if (node_alive[static_cast<std::size_t>(c.node)]) {
        node_alive[static_cast<std::size_t>(c.node)] = false;
        report.crashed_nodes.push_back(c.node);
      }
    }
    for (std::size_t i = 0; i < degrade_seen.size(); ++i) {
      const auto& d = plan->degrades[i];
      if (degrade_seen[i] || d.at_s > now) continue;
      degrade_seen[i] = true;
      fired = true;
      obs::ScopedSpan span(obs_, "fault.inject", "fault");
      span.arg("kind", "degrade");
      span.arg("node", d.node);
      obs::count(obs_, "fault.injected");
      obs::count(obs_, "fault.degrades");
      if (timeline_ != nullptr)
        timeline_->event("fault", now,
                         "degrade node=" + std::to_string(d.node));
    }
    for (std::size_t i = 0; i < meter_seen.size(); ++i) {
      const auto& f = plan->meter_faults[i];
      if (meter_seen[i] || f.at_s > now) continue;
      meter_seen[i] = true;
      fired = true;
      obs::ScopedSpan span(obs_, "fault.inject", "fault");
      span.arg("kind", std::string("meter-") + to_string(f.kind));
      span.arg("node", f.node);
      obs::count(obs_, "fault.injected");
      obs::count(obs_, "fault.meter_faults");
      if (timeline_ != nullptr)
        timeline_->event("fault", now,
                         std::string("meter-") + to_string(f.kind) +
                             " node=" + std::to_string(f.node));
    }
    for (std::size_t i = 0; i < capviol_seen.size(); ++i) {
      const auto& v = plan->cap_violations[i];
      if (capviol_seen[i] || v.at_s > now) continue;
      capviol_seen[i] = true;
      fired = true;
      obs::ScopedSpan span(obs_, "fault.inject", "fault");
      span.arg("kind", "cap-violation");
      span.arg("node", v.node);
      obs::count(obs_, "fault.injected");
      obs::count(obs_, "fault.cap_violations");
      if (timeline_ != nullptr)
        timeline_->event("fault", now,
                         "cap-violation node=" + std::to_string(v.node));
    }
    if (timeline_ != nullptr && fired)
      timeline_->record("fault.active", now,
                        static_cast<double>(faults_active_at(now)));
  };

  // Claw back a violated cap on `node` (re-coordination took effect).
  auto claw_back = [&](int node) {
    const int truncated = injector_->truncate_cap_violations(node, now);
    if (truncated == 0) return;  // window already over
    report.caps_reprogrammed += truncated;
    obs::ScopedSpan span(obs_, "budget.reprogram", "fault");
    span.arg("node", node);
    obs::count(obs_, "budget.caps_reprogrammed",
               static_cast<std::uint64_t>(truncated));
    if (timeline_ != nullptr) {
      timeline_->event("fault", now, "claw-back node=" + std::to_string(node));
      timeline_->record("fault.active", now,
                        static_cast<double>(faults_active_at(now)));
    }
  };

  // The guard's sampling pass: read every active node's meter (corrupted by
  // the injector, filtered for plausibility), detect cluster overshoot, and
  // schedule claw-backs with the actuation latency.
  auto guard_sample = [&] {
    if (!guard.options().enabled || running.empty()) return;
    double observed = 0.0;
    for (const auto& r : running) {
      const double per_node_truth =
          r.true_power_w / static_cast<double>(r.node_ids.size());
      const double per_node_expected =
          r.power_w / static_cast<double>(r.node_ids.size());
      for (int n : r.node_ids) {
        const double truth =
            per_node_truth + injector_->cap_excess_w({n}, now);
        if (timeline_ != nullptr)
          timeline_->record("node" + std::to_string(n) + ".power_w", now,
                            truth);
        observed += guard.filter_reading(
            injector_->observed_node_power(n, now, truth),
            per_node_expected);
      }
    }
    if (!guard.overshoot(observed)) return;
    obs::count(obs_, "budget.overshoot_events");
    for (int n : injector_->violating_nodes(active_node_ids(), now)) {
      if (enforcement_pending[static_cast<std::size_t>(n)]) continue;
      if (guard.options().reaction_s <= 0.0) {
        claw_back(n);
      } else {
        enforcement_pending[static_cast<std::size_t>(n)] = true;
        enforcements.push_back({now + guard.options().reaction_s, n});
      }
    }
  };

  // --- Runtime power redistribution (docs/power-redistribution.md) --------
  // A periodic tick feeds the slack detector one plausibility-filtered
  // sample per active node, schedules claw-backs with a reaction latency,
  // re-grants the free pool to the running job whose completion improves
  // the most, and trades PKG watts for DRAM bandwidth on memory-phase jobs.
  // Everything below is gated on options_.redist.enabled: disabled, no tick
  // ever fires and the run is byte-identical to the static queue.
  const bool redist_on = options_.redist.enabled;
  SlackDetector detector(options_.redist);
  Redistributor redistributor(options_.redist);
  struct PendingClaw {
    double at_s;      ///< actuation instant (decision + reaction latency)
    std::size_t job;
    int attempt;      ///< placement the claw targets; a retry invalidates it
    double watts;
  };
  std::vector<PendingClaw> pending_claws;
  double next_tick_s = options_.redist.period_s;

  // Work fraction job `r` has completed by `t` (fault-free-equivalent work
  // over total), chained through the re-base points.
  auto frac_at = [&](const Running& r, double t) {
    if (r.ff_remaining <= 0.0) return 1.0;
    const double done = injector_ != nullptr
                            ? injector_->work_done_s(r.change_s, t, r.node_ids)
                            : t - r.change_s;
    const double seg = std::clamp(done / r.ff_remaining, 0.0, 1.0);
    return r.frac_done + seg * (1.0 - r.frac_done);
  };
  // Where job `r` would finish if its remaining work ran at measurement
  // `m1`'s pace (resolved against faults from `now` onward).
  auto projected_end = [&](const Running& r, const sim::Measurement& m1) {
    const double frac = frac_at(r, now);
    const double ff_rem =
        std::max((1.0 - frac) * (m1.time.value() + r.prof_s), 0.0);
    if (injector_ == nullptr) return now + ff_rem;
    return injector_->resolve(now, ff_rem, r.node_ids).end_s;
  };
  // Re-base job `r` onto a new configuration/slice at `now`: convert its
  // elapsed time into work progress, re-resolve the remainder against the
  // fault plan (which may newly hit — or dodge — a crash), and adjust the
  // optimistic energy / node-seconds bills by the delta on the unfinished
  // fraction.
  auto rebase_running = [&](Running& r, const sim::ClusterConfig& cfg,
                            const sim::Measurement& m1, double new_slice) {
    const double frac = frac_at(r, now);
    const double ff_rem =
        std::max((1.0 - frac) * (m1.time.value() + r.prof_s), 0.0);
    double new_end = now + ff_rem;
    bool crashed = false;
    int crashed_node = -1;
    if (injector_ != nullptr) {
      const fault::RunResolution res =
          injector_->resolve(now, ff_rem, r.node_ids);
      new_end = res.end_s;
      crashed = res.crashed;
      crashed_node = res.crashed_node;
    }
    const double energy_delta =
        (1.0 - frac) * (m1.energy.value() - r.full_energy_j);
    report.total_energy_j += energy_delta;
    r.energy_j += energy_delta;
    r.full_energy_j = m1.energy.value();
    report.node_seconds_used +=
        static_cast<double>(r.node_ids.size()) * (new_end - r.end_s);
    r.config = cfg;
    r.power_w = new_slice;
    r.true_power_w = m1.avg_power.value();
    r.end_s = new_end;
    r.crashed = crashed;
    r.crashed_node = crashed_node;
    r.frac_done = frac;
    r.change_s = now;
    r.ff_remaining = ff_rem;
    auto& out = report.jobs[r.job_index];
    out.end_s = new_end;
    out.budget_w = new_slice;
    out.power_w = r.true_power_w;
    out.completed = !crashed;
    if (timeline_ != nullptr) {
      const double n_nodes = static_cast<double>(r.node_ids.size());
      for (int n : r.node_ids) {
        const std::string prefix = "node" + std::to_string(n);
        timeline_->record(prefix + ".cap_w", now, new_slice / n_nodes);
        timeline_->record(prefix + ".power_w", now, r.true_power_w / n_nodes);
      }
    }
  };
  // Actuate one claw-back whose reaction latency elapsed. If the placement
  // it targeted is gone (completed, or crash-aborted — the race the attempt
  // tag catches), its watts are already back in the free pool and the claw
  // dissolves without effect.
  auto apply_claw = [&](const PendingClaw& c) {
    Running* r = nullptr;
    for (auto& cand : running)
      if (cand.job_index == c.job) r = &cand;
    if (r == nullptr || attempts[c.job] != c.attempt) return;
    const int n_nodes = static_cast<int>(r->node_ids.size());
    const double floor_w =
        std::max(options_.min_node_power_w * n_nodes,
                 r->true_power_w + options_.redist.headroom_frac * r->power_w);
    const double claw = std::min(c.watts, r->power_w - floor_w);
    if (claw <= 0.0) return;  // a re-grant since the decision ate the slack
    r->power_w -= claw;
    report.jobs[r->job_index].budget_w = r->power_w;
    ++report.redist_claw_backs;
    report.redist_reclaimed_w += claw;
    obs::count(obs_, "redist.claw_backs");
    if (timeline_ != nullptr) {
      timeline_->event("redist", now,
                       "claw " + report.jobs[r->job_index].app +
                           " w=" + format_double(claw, 1));
      const double per_node_cap = r->power_w / n_nodes;
      for (int n : r->node_ids)
        timeline_->record("node" + std::to_string(n) + ".cap_w", now,
                          per_node_cap);
    }
  };
  // The redistribution tick: sample, size claw-backs, and hill-climb
  // memory-phase jobs one PKG→DRAM step.
  auto redist_tick = [&] {
    obs::count(obs_, "redist.ticks");
    for (const auto& r : running) {
      const double n_nodes = static_cast<double>(r.node_ids.size());
      const double per_node_truth = r.true_power_w / n_nodes;
      const double per_node_expected = r.power_w / n_nodes;
      for (int n : r.node_ids) {
        double truth = per_node_truth;
        double observed = truth;
        if (injector_ != nullptr) {
          truth += injector_->cap_excess_w({n}, now);
          observed = injector_->observed_node_power(n, now, truth);
        }
        detector.observe(n, now,
                         guard.filter_reading(observed, per_node_expected));
      }
    }
    double slack_total = 0.0;
    for (const auto& r : running) {
      if (r.crashed) continue;  // its watts come back at the abort instant
      bool claw_pending = false;
      for (const auto& c : pending_claws)
        claw_pending = claw_pending || c.job == r.job_index;
      if (claw_pending) continue;
      const int n_nodes = static_cast<int>(r.node_ids.size());
      const double cap_per_node = r.power_w / n_nodes;
      double slack = 0.0;
      for (int n : r.node_ids) slack += detector.node_slack_w(n, cap_per_node);
      slack_total += slack;
      const double floor_w =
          std::max(options_.min_node_power_w * n_nodes,
                   r.true_power_w + options_.redist.headroom_frac * r.power_w);
      const double claw = redistributor.claw_w(r.power_w, slack, floor_w);
      if (claw <= 0.0) continue;
      pending_claws.push_back({now + options_.redist.reaction_s, r.job_index,
                               attempts[r.job_index], claw});
      if (timeline_ != nullptr)
        timeline_->event("redist", now,
                         "claw-scheduled " + report.jobs[r.job_index].app +
                             " w=" + format_double(claw, 1));
    }
    if (timeline_ != nullptr)
      timeline_->record("redist.slack_w", now, slack_total);
    if (!options_.redist.subsystem_split) return;
    for (auto& r : running) {
      if (r.crashed) continue;
      const PhaseSignal sig = SlackDetector::phase_at(
          jobs[r.job_index].app, r.start_s, r.end_s, now);
      if (!sig.memory_bound) continue;
      const sim::ClusterConfig shifted = sim::shift_pkg_to_dram(
          r.config, Watts(options_.redist.shift_step_w), Watts(1.0));
      if (shifted.node.cpu_cap.value() == r.config.node.cpu_cap.value() &&
          shifted.node.mem_level == r.config.node.mem_level)
        continue;  // already fully shifted
      const sim::Measurement m1 =
          executor_->run_exact(jobs[r.job_index].app, shifted);
      if (m1.avg_power.value() > r.power_w * 1.01 + 1.0)
        continue;  // must keep fitting the reserved slice
      const double gain = r.end_s - projected_end(r, m1);
      if (gain < options_.redist.min_gain_s) continue;
      rebase_running(r, shifted, m1, r.power_w);
      ++report.redist_subsystem_shifts;
      obs::count(obs_, "redist.subsystem_shifts");
      if (timeline_ != nullptr)
        timeline_->event("redist", now,
                         "shift " + report.jobs[r.job_index].app +
                             " pkg->dram w=" +
                             format_double(options_.redist.shift_step_w, 1));
    }
  };
  // Re-grant the free pool to the running job whose completion improves the
  // most. Queued jobs own the free watts first: while anyone is pending
  // (even in crash backoff) the pool stays untouched.
  auto try_regrant = [&] {
    for (std::size_t j = 0; j < jobs.size(); ++j)
      if (state[j] == State::kPending) return;
    const double free_w = free_power();
    if (free_w < options_.redist.min_grant_w || running.empty()) return;
    struct Eval {
      sim::ClusterConfig cfg;
      sim::Measurement m;
      double slice;
    };
    std::vector<RegrantCandidate> candidates;
    std::vector<Eval> evals;
    for (std::size_t i = 0; i < running.size(); ++i) {
      const Running& r = running[i];
      if (r.crashed) continue;  // boosting a doomed placement buys nothing
      const double slice = r.power_w + free_w;
      const core::ScheduleDecision boosted = scheduler_->schedule_constrained(
          jobs[r.job_index].app, Watts(slice),
          static_cast<int>(r.node_ids.size()));
      const sim::Measurement m1 =
          executor_->run_exact(jobs[r.job_index].app, boosted.cluster);
      if (m1.avg_power.value() > slice * 1.01 + 1.0) continue;
      candidates.push_back({i, free_w, r.end_s - projected_end(r, m1)});
      evals.push_back({boosted.cluster, m1, slice});
    }
    const RegrantCandidate* best = redistributor.pick(candidates);
    if (best == nullptr) return;
    Running& r = running[best->job];
    // The guard admits the grant against the larger of the reservations and
    // the true draw: during an active cap violation the cluster is already
    // over budget, and re-granting then would widen the violation.
    double reserved = 0.0;
    for (const auto& other : running) reserved += other.power_w;
    if (injector_ != nullptr)
      reserved = std::max(reserved, true_cluster_power(now));
    if (!guard.admit_regrant(reserved, best->grant_w)) {
      obs::count(obs_, "redist.regrants_rejected");
      if (timeline_ != nullptr)
        timeline_->event("redist", now,
                         "regrant-rejected " + report.jobs[r.job_index].app +
                             " w=" + format_double(best->grant_w, 1));
      return;
    }
    const Eval& e = evals[static_cast<std::size_t>(best - candidates.data())];
    rebase_running(r, e.cfg, e.m, e.slice);
    ++report.redist_regrants;
    report.redist_granted_w += best->grant_w;
    obs::count(obs_, "redist.regrants");
    if (timeline_ != nullptr)
      timeline_->event("redist", now,
                       "regrant " + report.jobs[r.job_index].app +
                           " w=" + format_double(best->grant_w, 1));
  };

  // Process the single earliest finished run due at `now` (one per pass, so
  // a simultaneous completion sees the freed resources of the previous one —
  // exactly how the fault-free queue always behaved).
  auto finish_one_due = [&]() -> bool {
    auto next = running.end();
    for (auto it = running.begin(); it != running.end(); ++it)
      if (it->end_s <= now &&
          (next == running.end() || it->end_s < next->end_s))
        next = it;
    if (next == running.end()) return false;
    const Running r = *next;
    running.erase(next);
    for (int n : r.node_ids) node_busy[static_cast<std::size_t>(n)] = false;
    const std::size_t j = r.job_index;
    if (timeline_ != nullptr)
      for (int n : r.node_ids) {
        const std::string prefix = "node" + std::to_string(n);
        timeline_->record(prefix + ".power_w", now, 0.0);
        timeline_->record(prefix + ".cap_w", now, 0.0);
      }
    if (!r.crashed) {
      state[j] = State::kDone;
      if (timeline_ != nullptr)
        timeline_->event("job", now, "finish " + report.jobs[j].app);
      return true;
    }
    // Crash abort: replace the optimistic energy bill with the watts the
    // partial execution truly drew (nodes and watts were freed above), then
    // retry or fail.
    const double elapsed = r.end_s - r.start_s;
    report.total_energy_j += r.true_power_w * elapsed - r.energy_j;
    auto& out = report.jobs[j];
    out.crashed_node = r.crashed_node;
    out.completed = false;
    if (timeline_ != nullptr)
      timeline_->event("job", now,
                       "crash " + out.app +
                           " node=" + std::to_string(r.crashed_node));
    if (attempts[j] >= options_.retry.max_attempts) {
      state[j] = State::kFailed;
      ++report.jobs_failed;
      obs::count(obs_, "queue.jobs_failed");
      if (timeline_ != nullptr)
        timeline_->event("job", now, "fail " + out.app);
      return true;
    }
    state[j] = State::kPending;
    eligible_s[j] = now + options_.retry.backoff_s(attempts[j]);
    retry_wakeups.push_back(eligible_s[j]);
    ++report.retries;
    obs::ScopedSpan span(obs_, "queue.requeue", "runtime");
    span.arg("app", out.app);
    span.arg("crashed_node", r.crashed_node);
    obs::count(obs_, "queue.retries");
    if (timeline_ != nullptr)
      timeline_->event("job", now, "requeue " + out.app);
    return true;
  };

  const std::vector<double> wakeups =
      injector_ != nullptr ? injector_->wakeups() : std::vector<double>{};
  std::size_t wakeup_idx = 0;

  if (injector_ != nullptr) {
    while (wakeup_idx < wakeups.size() && wakeups[wakeup_idx] <= now)
      ++wakeup_idx;
    apply_fault_events();  // t = 0 events precede the first placement
  }
  start_eligible();
  if (injector_ != nullptr) guard_sample();

  for (;;) {
    // 1. Due injector events: cap claw-backs whose latency elapsed, then
    //    newly arrived plan events (crashes must retire nodes before any
    //    start at this instant), then expired retry backoffs.
    bool acted = false;
    if (injector_ != nullptr) {
      for (auto it = enforcements.begin(); it != enforcements.end();) {
        if (it->at_s <= now) {
          enforcement_pending[static_cast<std::size_t>(it->node)] = false;
          claw_back(it->node);
          it = enforcements.erase(it);
          acted = true;
        } else {
          ++it;
        }
      }
      while (wakeup_idx < wakeups.size() && wakeups[wakeup_idx] <= now) {
        ++wakeup_idx;
        acted = true;
      }
      for (auto it = retry_wakeups.begin(); it != retry_wakeups.end();) {
        if (*it <= now) {
          it = retry_wakeups.erase(it);
          acted = true;
        } else {
          ++it;
        }
      }
      if (acted) apply_fault_events();
    }
    // 1b. Due redistribution work: claw-backs whose reaction latency
    //     elapsed, then the periodic slack-sampling tick.
    if (redist_on) {
      for (auto it = pending_claws.begin(); it != pending_claws.end();) {
        if (it->at_s <= now) {
          apply_claw(*it);
          it = pending_claws.erase(it);
          acted = true;
        } else {
          ++it;
        }
      }
      if (!running.empty() && next_tick_s <= now) {
        redist_tick();
        acted = true;
      }
      while (next_tick_s <= now) next_tick_s += options_.redist.period_s;
    }

    // 2. Due completions, one per pass with a start pass after each.
    if (finish_one_due()) {
      start_eligible();
      if (injector_ != nullptr) guard_sample();
      if (redist_on) try_regrant();
      continue;
    }
    // 3. An event without a completion still frees or consumes capacity
    //    (crashed node gone, cap clawed back, retry eligible): start pass.
    if (acted) {
      start_eligible();
      if (injector_ != nullptr) guard_sample();
      if (redist_on) try_regrant();
      continue;
    }

    // 4. Nothing due at `now`: advance to the next instant anything happens.
    bool any_pending = false;
    double next = kInf;
    for (const auto& r : running) next = std::min(next, r.end_s);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (state[j] != State::kPending) continue;
      any_pending = true;
      if (eligible_s[j] > now) next = std::min(next, eligible_s[j]);
    }
    if (injector_ != nullptr && (!running.empty() || any_pending)) {
      if (wakeup_idx < wakeups.size())
        next = std::min(next, wakeups[wakeup_idx]);
      for (const auto& e : enforcements) next = std::min(next, e.at_s);
    }
    if (redist_on) {
      if (!running.empty()) next = std::min(next, next_tick_s);
      for (const auto& c : pending_claws) next = std::min(next, c.at_s);
    }
    if (next == kInf) break;
    if (injector_ != nullptr)
      guard.account(next - now, true_cluster_power(now));
    now = next;
  }

  // Jobs still pending when nothing can ever happen again (every node dead,
  // or the budget unreachable) are failures, not hangs. Without an injector
  // this is unreachable: a lone job always fits an idle cluster.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (state[j] != State::kPending) continue;
    CLIP_ENSURE(injector_ != nullptr,
                "job never started: " + jobs[j].app.name);
    auto& out = report.jobs[j];
    out.app = jobs[j].app.name;
    out.parameters = jobs[j].app.parameters;
    out.attempts = attempts[j];
    out.completed = false;
    state[j] = State::kFailed;
    ++report.jobs_failed;
    obs::count(obs_, "queue.jobs_failed");
  }

  report.makespan_s = 0.0;
  double turnaround = 0.0;
  for (const auto& r : report.jobs) {
    report.makespan_s = std::max(report.makespan_s, r.end_s);
    turnaround += r.turnaround_s();
  }
  report.mean_turnaround_s = turnaround / static_cast<double>(jobs.size());
  report.node_seconds_available = report.makespan_s * total_nodes;
  report.violation_s = guard.violation_s();
  report.violation_ws = guard.violation_ws();
  report.meter_reads_rejected = guard.rejected_reads();
  if (injector_ != nullptr) {
    obs::gauge_set(obs_, "budget.violation_s", report.violation_s);
    obs::gauge_set(obs_, "budget.violation_ws", report.violation_ws);
    if (report.meter_reads_rejected > 0)
      obs::count(obs_, "fault.meter_reads_rejected",
                 report.meter_reads_rejected);
  }
  report.redist_regrants_rejected = guard.regrants_rejected();
  if (redist_on) {
    obs::gauge_set(obs_, "redist.reclaimed_w", report.redist_reclaimed_w);
    obs::gauge_set(obs_, "redist.granted_w", report.redist_granted_w);
  }
  if (timeline_ != nullptr)
    timeline_->record("budget.violation_s", report.makespan_s,
                      report.violation_s);
  return report;
}

QueueReport run_serially(
    sim::SimExecutor& executor, core::ClipScheduler& scheduler,
    Watts cluster_budget,
    const std::vector<workloads::WorkloadSignature>& jobs) {
  CLIP_REQUIRE(!jobs.empty(), "need at least one job");
  QueueReport report;
  double now = 0.0;
  for (const auto& job : jobs) {
    const core::ScheduleDecision d =
        scheduler.schedule(job, cluster_budget);
    const sim::Measurement m = executor.run_exact(job, d.cluster);
    QueuedJobResult r;
    r.app = job.name;
    r.parameters = job.parameters;
    r.submit_s = 0.0;
    r.start_s = now;
    now += m.time.value() + d.profiling_cost.value();
    r.end_s = now;
    r.nodes = d.cluster.nodes;
    r.budget_w = cluster_budget.value();
    r.power_w = m.avg_power.value();
    report.total_energy_j += m.energy.value();
    report.node_seconds_used += r.nodes * (r.end_s - r.start_s);
    report.jobs.push_back(std::move(r));
  }
  report.makespan_s = now;
  double turnaround = 0.0;
  for (const auto& r : report.jobs) turnaround += r.turnaround_s();
  report.mean_turnaround_s =
      turnaround / static_cast<double>(jobs.size());
  report.node_seconds_available =
      report.makespan_s * executor.spec().nodes;
  return report;
}

}  // namespace clip::runtime
