// Throttle demo — CLIP's node-level enforcement mechanisms running for real
// on the host: the clip::parallel thread pool executes actual computational
// kernels (the miniature analogues of the paper's benchmarks) while we
// throttle concurrency and switch core affinity live, verifying that
// results are bit-stable across configurations.
//
// On a many-core host the timings show the concurrency effect; on a small
// CI machine they mainly demonstrate the mechanism.
#include <iostream>

#include "parallel/thread_pool.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/kernels.hpp"

using namespace clip;

int main() {
  const int host_cpus = parallel::host_cpu_count();
  const int max_threads = std::min(8, std::max(2, host_cpus));
  parallel::ThreadPool pool(max_threads);
  std::cout << "Host CPUs: " << host_cpus << ", pool size: " << max_threads
            << "\n\n";

  Table t({"kernel", "models", "threads", "time (s)", "checksum"});
  t.set_title("Concurrency throttling on real kernels");
  for (const auto& info : workloads::kernel_registry()) {
    double reference_checksum = 0.0;
    for (int threads = max_threads; threads >= 1; threads /= 2) {
      pool.set_concurrency(threads);
      const workloads::KernelResult r =
          workloads::run_kernel_by_name(pool, info.name);
      if (threads == max_threads) reference_checksum = r.checksum;
      t.add_row({info.name, info.models, std::to_string(threads),
                 format_double(r.seconds, 4),
                 format_double(r.checksum, 6)});
      // Monte-Carlo and the histogram partition the sample space per rank
      // (independent streams per worker), so their digests legitimately
      // vary with team size; everything else must be stable.
      if (info.name != "monte_carlo_pi" && info.name != "histogram" &&
          std::abs(r.checksum - reference_checksum) >
              1e-6 * std::max(1.0, std::abs(reference_checksum))) {
        std::cerr << "checksum drift in " << info.name << "!\n";
        return 1;
      }
    }
  }
  t.print(std::cout);

  std::cout << "\nSwitching affinity policies (compact <-> scatter):\n";
  const parallel::NodeShape shape{.sockets = 2,
                                  .cores_per_socket =
                                      std::max(1, host_cpus / 2)};
  pool.set_concurrency(max_threads);
  for (auto policy : {parallel::AffinityPolicy::kCompact,
                      parallel::AffinityPolicy::kScatter}) {
    const int pinned = pool.set_affinity(policy, shape);
    const auto r = workloads::jacobi_stencil(pool, 256, 40);
    std::cout << "  " << parallel::to_string(policy) << ": pinned "
              << pinned << "/" << max_threads << " workers, stencil took "
              << format_double(r.seconds, 4) << " s (checksum "
              << format_double(r.checksum, 3) << ")\n";
  }
  std::cout << "\nAll kernels produced stable results under throttling and "
               "re-pinning — the enforcement layer never changes answers, "
               "only power/performance.\n";
  return 0;
}
