// Fixture: C1 must fire on unguarded hook dereferences and stay quiet on
// every guard shape the codebase uses.
struct Timeline {
  void record(double t, double v);
};

struct Guarded {
  Timeline* timeline_ = nullptr;

  void ok_block(double t) {
    if (timeline_ != nullptr) {
      timeline_->record(t, 1.0);
    }
  }
  void ok_single(double t) {
    if (timeline_) timeline_->record(t, 2.0);
  }
  void ok_early_return(double t) {
    if (timeline_ == nullptr) return;
    timeline_->record(t, 3.0);
  }
  void ok_expression(double t) {
    timeline_ && (timeline_->record(t, 4.0), true);
  }

  void bad_unguarded(double t) {
    timeline_->record(t, 5.0);  // line 27: C1
  }
  void bad_after_block(double t) {
    if (timeline_ != nullptr) {
      timeline_->record(t, 6.0);
    }
    timeline_->record(t, 7.0);  // line 33: C1 — guard ended with the block
  }
};
