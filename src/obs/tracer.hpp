// Tracer: nested spans over an injected monotonic clock.
//
// A span is opened by constructing a ScopedSpan and closed by its destructor
// (RAII guarantees begin/end pairing even across exceptions — important in a
// codebase whose error paths throw). Completed spans flow to the attached
// TraceSink; with no sink attached the ScopedSpan constructor reduces to one
// pointer test and the object stays inert, which is what keeps always-on
// instrumentation cheap on production hot paths (bench/micro_runtime measures
// the detached span at single-digit nanoseconds).
//
// Thread identity is a small stable index assigned on first use per thread,
// so Chrome-trace tracks are numbered 0,1,2,... rather than opaque OS ids.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>

#include "obs/clock.hpp"
#include "obs/sink.hpp"

namespace clip::obs {

class Tracer {
 public:
  /// `clock` must outlive the tracer.
  explicit Tracer(const Clock& clock) : clock_(&clock) {}

  /// Attach a sink (nullptr detaches). Spans already open stay inert or
  /// active as constructed; the switch applies to spans opened afterwards.
  void set_sink(TraceSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }
  [[nodiscard]] bool active() const {
    return sink_.load(std::memory_order_acquire) != nullptr;
  }

  [[nodiscard]] const Clock& clock() const { return *clock_; }

  /// Deliver a completed span to the sink, if one is still attached.
  void emit(const SpanRecord& span);

  /// Forward a counter sample (used by the telemetry bridge).
  void emit_counter(const CounterSample& sample);

  /// Stable small index for the calling thread (0 for the first thread).
  [[nodiscard]] int thread_index();

 private:
  const Clock* clock_;
  std::atomic<TraceSink*> sink_{nullptr};
  std::mutex mu_;
  // Ordered map (clip-lint D2): a handful of threads, looked up under the
  // mutex anyway — hash-order freedom buys nothing here.
  std::map<std::thread::id, int> thread_indices_;
};

class ObsSession;

/// RAII span. Inert (single branch, no allocation) when the session is null
/// or no sink is attached; otherwise records [construction, destruction] on
/// the current thread with the tracer's clock.
class ScopedSpan {
 public:
  ScopedSpan(ObsSession* session, std::string_view name,
             std::string_view category = "clip");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach an argument (no-op when inert).
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, double value);
  void arg(std::string_view key, int value);

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

}  // namespace clip::obs
