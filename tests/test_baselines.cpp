// Unit tests for the comparison schedulers of paper §V-C: All-In,
// Lower Limit, Coordinated, Oracle, and the CLIP adapter.
#include <gtest/gtest.h>

#include "baselines/all_in.hpp"
#include "baselines/clip_adapter.hpp"
#include "baselines/coordinated.hpp"
#include "baselines/lower_limit.hpp"
#include "baselines/oracle.hpp"
#include "sim/executor.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip::baselines {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

class BaselineTest : public ::testing::Test {
 protected:
  sim::SimExecutor ex_{sim::MachineSpec{}, no_noise()};
};

// ------------------------------------------------------------------ All-In ----

TEST_F(BaselineTest, AllInAlwaysUsesEveryNodeAndCore) {
  AllInScheduler s(ex_.spec());
  const auto w = *workloads::find_benchmark("BT-MZ");
  for (double budget : {300.0, 800.0, 2000.0}) {
    const sim::ClusterConfig cfg = s.plan(w, Watts(budget));
    EXPECT_EQ(cfg.nodes, 8);
    EXPECT_EQ(cfg.node.threads, 24);
  }
}

TEST_F(BaselineTest, AllInFixedMemoryAllocation) {
  AllInScheduler s(ex_.spec());
  const auto w = *workloads::find_benchmark("CoMD");
  const sim::ClusterConfig cfg = s.plan(w, Watts(800.0));
  EXPECT_DOUBLE_EQ(cfg.node.mem_cap.value(), 30.0);
  EXPECT_NEAR(cfg.node.cpu_cap.value(), 800.0 / 8 - 30.0, 1e-9);
}

TEST_F(BaselineTest, AllInCpuCapFloorsAtOneWatt) {
  AllInScheduler s(ex_.spec());
  const auto w = *workloads::find_benchmark("CoMD");
  const sim::ClusterConfig cfg = s.plan(w, Watts(100.0));
  EXPECT_GE(cfg.node.cpu_cap.value(), 1.0);
}

TEST_F(BaselineTest, AllInPlanIsExecutableAtAnyBudget) {
  AllInScheduler s(ex_.spec());
  const auto w = *workloads::find_benchmark("TeaLeaf");
  for (double budget : {300.0, 500.0, 1600.0})
    EXPECT_NO_THROW((void)ex_.run_exact(w, s.plan(w, Watts(budget))));
}

// ------------------------------------------------------------- Lower Limit ----

TEST_F(BaselineTest, LowerLimitDropsNodesBelowFloor) {
  LowerLimitScheduler s(ex_.spec());
  const auto w = *workloads::find_benchmark("CoMD");
  EXPECT_EQ(s.plan(w, Watts(1600.0)).nodes, 8);
  EXPECT_EQ(s.plan(w, Watts(1000.0)).nodes, 5);  // floor(1000/180)
  EXPECT_EQ(s.plan(w, Watts(600.0)).nodes, 3);
  EXPECT_EQ(s.plan(w, Watts(100.0)).nodes, 1);  // never below one node
}

TEST_F(BaselineTest, LowerLimitNodeShareClearsFloorWhenPossible) {
  LowerLimitScheduler s(ex_.spec());
  const auto w = *workloads::find_benchmark("CoMD");
  const sim::ClusterConfig cfg = s.plan(w, Watts(700.0));
  EXPECT_GE(700.0 / cfg.nodes, 180.0);
}

TEST_F(BaselineTest, LowerLimitCustomFloor) {
  LowerLimitScheduler s(ex_.spec(), Watts(100.0));
  const auto w = *workloads::find_benchmark("CoMD");
  EXPECT_EQ(s.plan(w, Watts(600.0)).nodes, 6);
}

// ------------------------------------------------------------- Coordinated ----

TEST_F(BaselineTest, CoordinatedAlwaysMaxConcurrency) {
  CoordinatedScheduler s(ex_);
  for (const char* name : {"SP-MZ", "TeaLeaf", "CoMD"}) {
    const auto w = *workloads::find_benchmark(name);
    EXPECT_EQ(s.plan(w, Watts(800.0)).node.threads, 24) << name;
  }
}

TEST_F(BaselineTest, CoordinatedUsesAppSpecificFloor) {
  CoordinatedScheduler s(ex_);
  // A light compute app has a lower floor than a memory-heavy one, so the
  // same budget affords more nodes.
  const auto light = *workloads::find_benchmark("miniMD");
  const auto heavy = *workloads::find_benchmark("TeaLeaf");
  const int nodes_light = s.plan(light, Watts(500.0)).nodes;
  const int nodes_heavy = s.plan(heavy, Watts(500.0)).nodes;
  EXPECT_GE(nodes_light, nodes_heavy);
}

TEST_F(BaselineTest, CoordinatedSplitsPowerByDemand) {
  CoordinatedScheduler s(ex_);
  const auto mem = *workloads::find_benchmark("TeaLeaf");
  const auto cpu = *workloads::find_benchmark("miniMD");
  const sim::ClusterConfig mem_cfg = s.plan(mem, Watts(800.0));
  const sim::ClusterConfig cpu_cfg = s.plan(cpu, Watts(800.0));
  EXPECT_GT(mem_cfg.node.mem_cap.value(), cpu_cfg.node.mem_cap.value());
}

TEST_F(BaselineTest, CoordinatedHonorsPredefinedCounts) {
  CoordinatedScheduler s(ex_);
  const auto w = *workloads::find_benchmark("BT-MZ");  // predefined
  for (double budget : {400.0, 600.0, 900.0, 1500.0}) {
    const int nodes = s.plan(w, Watts(budget)).nodes;
    EXPECT_TRUE(nodes == 1 || nodes == 2 || nodes == 4 || nodes == 8)
        << budget;
  }
}

// ------------------------------------------------------------------ Oracle ----

TEST_F(BaselineTest, OracleRespectsBudget) {
  OracleScheduler s(ex_);
  const auto w = *workloads::find_benchmark("SP-MZ");
  const sim::ClusterConfig cfg = s.plan(w, Watts(800.0));
  const sim::Measurement m = ex_.run_exact(w, cfg);
  EXPECT_LE(m.avg_power.value(), 800.0 + 1e-6);
}

TEST_F(BaselineTest, OracleBeatsOrMatchesEveryBaseline) {
  OracleScheduler oracle(ex_);
  AllInScheduler all_in(ex_.spec());
  LowerLimitScheduler lower(ex_.spec());
  CoordinatedScheduler coord(ex_);
  const auto w = *workloads::find_benchmark("TeaLeaf");
  for (double budget : {600.0, 1000.0}) {
    const double t_oracle =
        ex_.run_exact(w, oracle.plan(w, Watts(budget))).time.value();
    for (PowerScheduler* s :
         std::initializer_list<PowerScheduler*>{&all_in, &lower, &coord}) {
      const double t =
          ex_.run_exact(w, s->plan(w, Watts(budget))).time.value();
      EXPECT_LE(t_oracle, t * 1.0001) << s->name() << " @" << budget;
    }
  }
}

TEST_F(BaselineTest, OracleSearchCostIsLarge) {
  // The whole point of CLIP: the oracle pays hundreds of executions.
  OracleScheduler s(ex_);
  const auto w = *workloads::find_benchmark("SP-MZ");
  (void)s.plan(w, Watts(800.0));
  EXPECT_GT(s.last_search_cost(), 100);
}

TEST_F(BaselineTest, OracleParabolicPicksThrottledConcurrency) {
  OracleScheduler s(ex_);
  const auto w = *workloads::find_benchmark("miniAero");
  const sim::ClusterConfig cfg = s.plan(w, Watts(1200.0));
  EXPECT_LT(cfg.node.threads, 24);
}

TEST_F(BaselineTest, OracleHonorsPredefinedCounts) {
  OracleScheduler s(ex_);
  const auto w = *workloads::find_benchmark("LU-MZ");
  const int nodes = s.plan(w, Watts(700.0)).nodes;
  EXPECT_TRUE(nodes == 1 || nodes == 2 || nodes == 4 || nodes == 8);
}

// ------------------------------------------------------------ CLIP adapter ----

TEST_F(BaselineTest, ClipAdapterPlansThroughScheduler) {
  ClipAdapter clip(ex_, workloads::training_benchmarks());
  EXPECT_EQ(clip.name(), "CLIP");
  const auto w = *workloads::find_benchmark("SP-MZ");
  const sim::ClusterConfig cfg = clip.plan(w, Watts(900.0));
  EXPECT_LT(cfg.node.threads, 24);  // parabolic throttled
  const sim::Measurement m = ex_.run_exact(w, cfg);
  EXPECT_LE(m.avg_power.value(), 900.0 * 1.01);
}

TEST_F(BaselineTest, SchedulerNamesAreDistinct) {
  AllInScheduler a(ex_.spec());
  LowerLimitScheduler l(ex_.spec());
  CoordinatedScheduler c(ex_);
  OracleScheduler o(ex_);
  EXPECT_EQ(a.name(), "All-In");
  EXPECT_EQ(l.name(), "Lower Limit");
  EXPECT_EQ(c.name(), "Coordinated");
  EXPECT_EQ(o.name(), "Oracle");
}

TEST_F(BaselineTest, AllMethodsRejectNonPositiveBudget) {
  AllInScheduler a(ex_.spec());
  LowerLimitScheduler l(ex_.spec());
  CoordinatedScheduler c(ex_);
  OracleScheduler o(ex_);
  const auto w = *workloads::find_benchmark("CoMD");
  EXPECT_THROW((void)a.plan(w, Watts(0.0)), PreconditionError);
  EXPECT_THROW((void)l.plan(w, Watts(0.0)), PreconditionError);
  EXPECT_THROW((void)c.plan(w, Watts(0.0)), PreconditionError);
  EXPECT_THROW((void)o.plan(w, Watts(0.0)), PreconditionError);
}

}  // namespace
}  // namespace clip::baselines
