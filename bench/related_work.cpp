// Related-work comparison (§VI): CLIP against the run-time-search school —
// Conductor (exhaustive node-level concurrency search, all nodes) and the
// full Oracle — on performance AND configuration-search cost. The paper's
// §VI argument: "Conductor exhaustively searches available configurations
// to find the optimal thread concurrency, without discerning the optimal
// number of nodes"; CLIP gets comparable node-level quality from three
// profiles and additionally rightsizes the node count.
#include <iostream>

#include "baselines/conductor.hpp"
#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();

  baselines::ConductorScheduler conductor(ex);
  baselines::OracleScheduler oracle(ex);
  baselines::ClipAdapter clip(ex, workloads::training_benchmarks());

  Table t({"benchmark", "budget (W)", "Conductor (s / cost)",
           "CLIP (s / cost)", "Oracle (s / cost)", "CLIP vs Conductor"});
  t.set_title(
      "Related work: run-time exhaustive search vs model-driven CLIP "
      "(cost = executions spent choosing the configuration)");

  for (const char* name : {"BT-MZ", "SP-MZ", "TeaLeaf", "CoMD"}) {
    const auto w = *workloads::find_benchmark(name);
    for (double budget : {450.0, 600.0, 1000.0, 1400.0}) {
      const auto c_cfg = conductor.plan(w, Watts(budget));
      const double c_time = ex.run_exact(w, c_cfg).time.value();
      const int c_cost = conductor.last_search_cost();

      const auto k_cfg = clip.plan(w, Watts(budget));
      const double k_time = ex.run_exact(w, k_cfg).time.value();

      const auto o_cfg = oracle.plan(w, Watts(budget));
      const double o_time = ex.run_exact(w, o_cfg).time.value();
      const int o_cost = oracle.last_search_cost();

      t.add_row({name, format_double(budget, 0),
                 format_double(c_time, 2) + " / " + std::to_string(c_cost),
                 format_double(k_time, 2) + " / 3",
                 format_double(o_time, 2) + " / " + std::to_string(o_cost),
                 format_percent(c_time / k_time - 1.0)});
    }
  }
  ctx.print(t);
  std::cout
      << "At viable budgets Conductor is competitive — it *executes* every "
         "candidate, so its node-level picks carry perfect information — "
         "but it pays ~48 full runs per (application, budget) pair, every "
         "time the budget changes, vs CLIP's 3 profiles per application "
         "ever. And at 450 W its all-nodes assumption collapses (per-node "
         "shares near the enforceable floor) while CLIP rightsizes the "
         "node count — the paper's §VI argument.\n";
  return 0;
}
