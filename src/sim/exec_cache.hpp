// ExactRunCache — memoization in front of SimExecutor::run_exact.
//
// The noise-free simulator is a pure function of (machine spec, workload
// signature, cluster configuration): two identical exact runs return
// bit-identical measurements. That makes memoization *exact*, not
// approximate — a cache hit returns precisely what the model would have
// computed. The evaluation engine leans on this everywhere the paper's §V
// harnesses brute-force the simulator: the oracle's exhaustive grid, the
// comparison harness's per-cell timings, and every bench binary that sweeps
// budgets over the same configurations.
//
// Keys are split to match how the engine sweeps: everything cap-independent
// (spec, workload, placement, overrides) is canonically byte-encoded once
// and *interned* to a 64-bit id; the per-point key is that id plus the two
// caps — a 24-byte POD. A frontier of N cap points therefore pays one
// ~450-byte encode + intern for the whole batch, instead of N string builds
// and N long-string hashes. The interner stores and compares the full
// encoded bytes, so distinct configurations can never alias; ids are
// per-cache and must not cross cache instances.
//
// The cache stores at two granularities, matching the two executor entry
// points. Scalar run_exact keys single Measurements on (prefix id, caps).
// run_batch keys the *whole frontier* — (prefix id, cap array) — and the
// stored value is a shared, immutable vector of Measurements: a batch miss
// inserts its freshly computed results by move, and a batch hit hands the
// stored vector back without copying a single Measurement. That matters
// because batched computes are so cheap (~0.4 µs/point) that per-point
// fills would cost more than the recomputes they avoid.
//
// Both stores are sharded/bounded; insertion beyond the bound evicts in
// FIFO order — eviction only costs a recompute, never correctness. See
// docs/performance.md for the design rationale.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "workloads/signature.hpp"

namespace clip::sim {

struct ExactCacheOptions {
  /// Total entry bound across all shards (rounded up to a multiple of the
  /// shard count). One entry holds one Measurement (~a few hundred bytes on
  /// the 8-node testbed).
  std::size_t max_entries = 1u << 20;
  /// Bound on stored frontiers (each holds one Measurement per cap point —
  /// ~20 KiB for a width-20 frontier on the 8-node testbed).
  std::size_t max_frontier_entries = 1u << 12;
  /// Shard count (clamped to >= 1). More shards = less lock contention.
  int shards = 16;
};

struct ExactCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;           ///< scalar entries
  std::size_t frontier_entries = 0;  ///< whole-frontier entries
};

/// Fixed-size lookup key: an interned cap-independent prefix id plus the
/// two caps — the only fields that vary within a batch frontier. Obtain the
/// id from intern_prefix(); a key is only meaningful against the cache that
/// interned it.
struct CacheKey {
  std::uint64_t prefix = 0;
  double cpu_cap_w = 0.0;
  double mem_cap_w = 0.0;
  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Whole-frontier key: interned prefix id plus the exact cap array (stored
/// and compared in full — hash collisions can never alias two frontiers).
struct FrontierKey {
  std::uint64_t prefix = 0;
  std::vector<CapPoint> caps;
  friend bool operator==(const FrontierKey&, const FrontierKey&) = default;
};

/// Shared immutable batch result: one Measurement per cap point, in the cap
/// array's order. Shared so cache hits and inserts never copy Measurements.
using FrontierResult = std::shared_ptr<const std::vector<Measurement>>;

class ExactRunCache {
 public:
  explicit ExactRunCache(ExactCacheOptions options = ExactCacheOptions{});

  /// Intern the canonical cap-independent key bytes (encode_batch_prefix +
  /// append_overrides output) and return the stable 64-bit id. The full
  /// byte string is stored and compared, so two distinct prefixes always
  /// get distinct ids. Thread-safe.
  [[nodiscard]] std::uint64_t intern_prefix(const std::string& prefix);

  /// Copy the cached measurement for `key` into `out`; true on hit. Bumps
  /// the hit/miss statistics.
  [[nodiscard]] bool lookup(const CacheKey& key, Measurement& out) const;

  /// Insert (first writer wins; a concurrent duplicate insert is dropped).
  /// Evicts the shard's oldest entry when the shard is full.
  void insert(const CacheKey& key, const Measurement& m);

  /// Whole-frontier lookup: non-null iff this exact (prefix, cap array) was
  /// inserted before. A hit bumps the hit statistic by the frontier width
  /// (every point is served from cache); a miss bumps the miss statistic by
  /// the width.
  [[nodiscard]] FrontierResult lookup_frontier(const FrontierKey& key) const;

  /// Insert a computed frontier (first writer wins; FIFO eviction beyond
  /// the frontier bound). The result is shared, not copied.
  void insert_frontier(FrontierKey key, FrontierResult result);

  [[nodiscard]] ExactCacheStats stats() const;

  /// Drop every entry (statistics and interned prefixes are kept — ids stay
  /// valid, the entries just recompute).
  void clear();

  // --- canonical key encoding ----------------------------------------------

  /// Append the raw bytes of a double/integer to `out` (canonical layout:
  /// little-endian memcpy of the in-memory representation; the cache never
  /// leaves the process, so host byte order is canonical enough).
  static void encode(std::string& out, double v);
  static void encode(std::string& out, std::uint64_t v);
  static void encode(std::string& out, int v);
  static void encode(std::string& out, const std::string& s);

  /// Everything `run_exact` reads from the machine: topology, DVFS ladder,
  /// power/bandwidth parameters and the variability draw. Executors with
  /// different specs can therefore share one cache without aliasing.
  ///
  /// Deliberately *not* encoded: `spec.nodes`. The model reads only the
  /// first `cfg.nodes` variability multipliers, and those are drawn
  /// sequentially from one seeded stream — so topologically identical
  /// shards of different cluster sizes (same shape, ladder, power params,
  /// sigma and seed) produce bit-identical measurements for any config that
  /// fits both, and should share cache entries. `cfg.nodes` stays in the
  /// key; run_exact validates `cfg.nodes <= spec.nodes` before probing.
  [[nodiscard]] static std::string encode_spec(const MachineSpec& spec);

  /// The full canonical key bytes for one configuration: batch prefix plus
  /// caps and overrides. Not on the hot path (the executor interns the
  /// prefix and keys on CacheKey instead) — kept as the reference spelling
  /// of what discriminates two configurations, and exercised by tests.
  [[nodiscard]] static std::string encode_key(
      const std::string& prefix, const workloads::WorkloadSignature& w,
      const ClusterConfig& cfg);

  /// The cap-independent part of encode_key: spec prefix, workload
  /// signature, and every config field except the caps and overrides.
  /// run_batch encodes this once per frontier; append_overrides completes
  /// the intern input.
  [[nodiscard]] static std::string encode_batch_prefix(
      const std::string& prefix, const workloads::WorkloadSignature& w,
      const ClusterConfig& cfg);

  /// Append the per-node cap overrides (cap-independent within a frontier —
  /// run_batch requires them empty; scalar configs intern them as part of
  /// the prefix).
  static void append_overrides(std::string& key,
                               const std::vector<Watts>& cpu_cap_overrides);

  /// The per-cap-point key suffix (caps + overrides), appended to a batch
  /// prefix by encode_key.
  static void append_caps(std::string& key, Watts cpu_cap, Watts mem_cap,
                          const std::vector<Watts>& cpu_cap_overrides);

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const;
  };
  struct FrontierKeyHash {
    std::size_t operator()(const FrontierKey& k) const;
  };
  struct Shard {
    mutable std::mutex mu;
    // clip-lint: allow(D2) hot-path lookup/insert only; eviction walks `fifo` (insertion order), never the map
    std::unordered_map<CacheKey, Measurement, KeyHash> map;
    std::deque<CacheKey> fifo;  ///< keys in insertion order
  };

  [[nodiscard]] Shard& shard_for(const CacheKey& key) const;

  std::size_t per_shard_cap_;
  std::size_t frontier_cap_;
  mutable std::vector<Shard> shards_;
  mutable std::mutex intern_mu_;
  // clip-lint: allow(D2) id assignment table — looked up by key, never iterated
  std::unordered_map<std::string, std::uint64_t> intern_;
  mutable std::mutex frontier_mu_;
  // clip-lint: allow(D2) hot-path lookup/insert only; eviction walks the fifo (insertion order), never the map
  std::unordered_map<FrontierKey, FrontierResult, FrontierKeyHash> frontiers_;
  std::deque<FrontierKey> frontier_fifo_;  ///< frontier keys in insertion order
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace clip::sim
