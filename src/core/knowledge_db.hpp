// Knowledge database (paper §IV-B3): the application execution module
// "checks whether the program has been recorded in our knowledge database";
// known applications skip smart profiling entirely.
//
// Records are keyed by (application name, parameter string) — the same
// program with a different input deck is a different entry (the paper keeps
// two CloverLeaf entries for exactly this reason). Persistence is a CSV
// file so records survive across runs of the framework.
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "core/profile.hpp"
#include "workloads/signature.hpp"

namespace clip::core {

/// What CLIP remembers about a characterized application.
struct KnowledgeRecord {
  std::string name;
  std::string parameters;
  workloads::ScalabilityClass cls = workloads::ScalabilityClass::kLinear;
  int inflection = 0;  ///< 0 for linear
  double perf_ratio = 0.0;
  parallel::AffinityPolicy preferred_affinity =
      parallel::AffinityPolicy::kScatter;
  double per_core_bw_gbps = 0.0;
  double node_bw_gbps = 0.0;  ///< achieved all-core bandwidth (the ceiling)
  double memory_intensity = 0.0;
  double time_all_s = 0.0;
  double time_half_s = 0.0;
  double time_validation_s = 0.0;  ///< 0 when no validation sample was taken
  int validation_threads = 0;
  double cpu_power_all_w = 0.0;
  double mem_power_all_w = 0.0;
  double cycles_active_all = 0.0;  ///< Event5 at the all-core profile
  std::string machine;  ///< fingerprint of the machine the profile is from

  /// Rebuild the ProfileData the decision pipeline consumes. Event rates
  /// other than the classification ratio are not persisted; the pipeline
  /// only needs them at first characterization (for the inflection MLR),
  /// after which the predicted N_P is stored here.
  [[nodiscard]] ProfileData to_profile(const struct KnowledgeDbShape& shape)
      const;

  /// Physical sanity: a record can be structurally well-formed CSV yet
  /// describe an impossible profile (zero runtime, negative watts, NaN
  /// ratios). Throws clip::PreconditionError naming the offending field;
  /// the scheduler validates on every DB hit so a corrupt record surfaces
  /// before it can poison a decision (the Launcher then falls back to a
  /// conservative allocation).
  void validate() const;
};

/// Machine facts the database needs: the node shape (to reconstruct
/// profiles) and the machine fingerprint (to reject foreign records — a
/// profile taken on different hardware is not evidence about this one).
struct KnowledgeDbShape {
  int total_cores = 24;
  std::string machine_fingerprint;  ///< empty = accept anything (legacy)
};

class KnowledgeDb {
 public:
  explicit KnowledgeDb(KnowledgeDbShape shape = KnowledgeDbShape{})
      : shape_(shape) {}

  [[nodiscard]] std::optional<KnowledgeRecord> lookup(
      const std::string& name, const std::string& parameters) const;

  void insert(KnowledgeRecord record);

  /// Import every record of `other` taken on this machine (same
  /// fingerprint; foreign records are skipped, existing keys are kept).
  /// Returns the number of records adopted. This is what lets budget sweeps
  /// that build several schedulers — ablations, scaling studies, repeated
  /// harness runs — pay for each application's characterization once.
  std::size_t merge_from(const KnowledgeDb& other);

  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// CSV persistence. `save` overwrites durably (write-temp + fsync + atomic
  /// rename, so a crash mid-save never tears the file); `load` replaces
  /// current contents,
  /// silently dropping records stamped with a different machine fingerprint
  /// (count available via `last_load_dropped`).
  void save(const std::filesystem::path& path) const;
  void load(const std::filesystem::path& path);
  [[nodiscard]] std::size_t last_load_dropped() const {
    return last_load_dropped_;
  }

  [[nodiscard]] const KnowledgeDbShape& shape() const { return shape_; }

 private:
  using Key = std::pair<std::string, std::string>;
  KnowledgeDbShape shape_;
  std::map<Key, KnowledgeRecord> records_;
  std::size_t last_load_dropped_ = 0;
};

/// Build a record from a completed characterization.
[[nodiscard]] KnowledgeRecord make_record(const ProfileData& profile,
                                          workloads::ScalabilityClass cls,
                                          int inflection);

}  // namespace clip::core
