// The "Lower Limit" baseline (paper §V-C).
//
// Never lets a participating node run below a preset floor (180 W): when the
// budget cannot give every node 180 W, it deactivates nodes until the
// survivors clear the floor. Like All-In it keeps all cores active and
// fixes the memory allocation at 30 W; the floor is application-agnostic.
#pragma once

#include "baselines/scheduler_iface.hpp"
#include "sim/machine.hpp"

namespace clip::baselines {

class LowerLimitScheduler final : public PowerScheduler {
 public:
  explicit LowerLimitScheduler(const sim::MachineSpec& spec,
                               Watts floor = Watts(180.0),
                               Watts mem_per_node = Watts(30.0))
      : spec_(&spec), floor_(floor), mem_per_node_(mem_per_node) {}

  [[nodiscard]] std::string name() const override { return "Lower Limit"; }

  [[nodiscard]] sim::ClusterConfig plan(
      const workloads::WorkloadSignature& app,
      Watts cluster_budget) override;

 private:
  const sim::MachineSpec* spec_;
  Watts floor_;
  Watts mem_per_node_;
};

}  // namespace clip::baselines
