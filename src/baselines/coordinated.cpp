#include "baselines/coordinated.hpp"

#include <algorithm>
#include <cmath>

#include "core/power_range.hpp"
#include "util/check.hpp"

namespace clip::baselines {

CoordinatedScheduler::CoordinatedScheduler(sim::SimExecutor& executor)
    : executor_(&executor), profiler_(executor) {}

sim::ClusterConfig CoordinatedScheduler::plan(
    const workloads::WorkloadSignature& app, Watts cluster_budget) {
  app.validate();
  CLIP_REQUIRE(cluster_budget.value() > 0.0, "budget must be positive");
  const auto& spec = executor_->spec();
  const int all_cores = spec.shape.total_cores();

  const core::ProfileData profile = profiler_.profile(app);
  const core::PowerEstimator power(spec, profile);

  // Highest possible concurrency, placement from measured memory intensity
  // (the ICPP'16 method coordinates components, not thread counts).
  const parallel::AffinityPolicy affinity = profile.preferred_affinity;

  // CPU/DRAM split from the power model: memory gets its demand-driven
  // allocation at the level that feeds all cores.
  const core::NodeConfigSelector selector(spec, selector_options_);
  const sim::MemPowerLevel level =
      selector.choose_mem_level(power, all_cores, affinity);
  const Watts mem_w = power.mem_power(all_cores, affinity, level);

  // Application-specific node floor: the lower bound of the acceptable
  // range at full concurrency.
  const core::PowerRange range =
      power.acceptable_range(all_cores, affinity, level);
  const int affordable = static_cast<int>(
      std::floor(cluster_budget.value() / range.low.value()));
  int nodes = std::clamp(affordable, 1, spec.nodes);
  if (app.has_predefined_process_counts) {
    // Being application-aware, this method also honors the application's
    // valid decomposition counts (as CLIP and the oracle do).
    int snapped = 1;
    for (int n = 1; n <= nodes; n *= 2) snapped = n;
    nodes = snapped;
  }

  sim::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node.threads = all_cores;
  cfg.node.affinity = affinity;
  cfg.node.mem_level = level;
  const double node_share = cluster_budget.value() / nodes;
  cfg.node.mem_cap = mem_w + Watts(0.5);
  cfg.node.cpu_cap = Watts(std::max(1.0, node_share - mem_w.value()));
  return cfg;
}

}  // namespace clip::baselines
