#include "fault/plan.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace clip::fault {

const char* to_string(MeterFaultKind k) {
  switch (k) {
    case MeterFaultKind::kStuckAt:
      return "stuck-at";
    case MeterFaultKind::kDropout:
      return "dropout";
    case MeterFaultKind::kSpike:
      return "spike";
  }
  return "?";
}

namespace {

void require_node(int node, int cluster_nodes, const char* what) {
  CLIP_REQUIRE(node >= 0 && node < cluster_nodes,
               std::string(what) + " names node " + std::to_string(node) +
                   " outside the cluster (nodes: " +
                   std::to_string(cluster_nodes) + ")");
}

}  // namespace

void FaultPlan::validate(int cluster_nodes) const {
  CLIP_REQUIRE(cluster_nodes >= 1, "fault plan needs a non-empty cluster");
  for (const auto& c : crashes) {
    require_node(c.node, cluster_nodes, "crash");
    CLIP_REQUIRE(c.at_s >= 0.0, "crash time must be non-negative");
  }
  for (const auto& d : degrades) {
    require_node(d.node, cluster_nodes, "degrade");
    CLIP_REQUIRE(d.at_s >= 0.0, "degrade time must be non-negative");
    CLIP_REQUIRE(d.speed_factor > 0.0 && d.speed_factor <= 1.0,
                 "degrade speed_factor must be in (0, 1]");
  }
  for (const auto& m : meter_faults) {
    require_node(m.node, cluster_nodes, "meter fault");
    CLIP_REQUIRE(m.at_s >= 0.0, "meter-fault time must be non-negative");
    CLIP_REQUIRE(m.duration_s > 0.0, "meter-fault duration must be positive");
    if (m.kind == MeterFaultKind::kStuckAt)
      CLIP_REQUIRE(m.value >= 0.0, "stuck-at reading must be non-negative");
    if (m.kind == MeterFaultKind::kSpike)
      CLIP_REQUIRE(m.value > 0.0, "spike multiplier must be positive");
  }
  for (const auto& v : cap_violations) {
    require_node(v.node, cluster_nodes, "cap violation");
    CLIP_REQUIRE(v.at_s >= 0.0, "cap-violation time must be non-negative");
    CLIP_REQUIRE(v.duration_s > 0.0,
                 "cap-violation duration must be positive");
    CLIP_REQUIRE(v.excess_w > 0.0, "cap-violation excess must be positive");
  }
  for (const auto& b : meter_blackouts) {
    CLIP_REQUIRE(b.at_s >= 0.0, "meter-blackout time must be non-negative");
    CLIP_REQUIRE(b.duration_s > 0.0,
                 "meter-blackout duration must be positive");
  }
  for (const auto& c : budget_cuts) {
    CLIP_REQUIRE(c.at_s >= 0.0, "budget-cut time must be non-negative");
    CLIP_REQUIRE(c.duration_s > 0.0, "budget-cut duration must be positive");
    CLIP_REQUIRE(c.factor > 0.0 && c.factor <= 1.0,
                 "budget-cut factor must be in (0, 1]");
  }
}

std::string FaultPlan::describe() const {
  struct Line {
    double at;
    std::string text;
  };
  std::vector<Line> lines;
  for (const auto& c : crashes) {
    lines.push_back({c.at_s, "t=" + format_double(c.at_s, 3) + "s crash node " +
                                 std::to_string(c.node)});
  }
  for (const auto& d : degrades) {
    lines.push_back({d.at_s, "t=" + format_double(d.at_s, 3) +
                                 "s degrade node " + std::to_string(d.node) +
                                 " to " + format_double(d.speed_factor, 3) +
                                 "x"});
  }
  for (const auto& m : meter_faults) {
    lines.push_back(
        {m.at_s, "t=" + format_double(m.at_s, 3) + "s meter " +
                     to_string(m.kind) + " node " + std::to_string(m.node) +
                     " for " + format_double(m.duration_s, 3) + "s value " +
                     format_double(m.value, 3)});
  }
  for (const auto& v : cap_violations) {
    lines.push_back({v.at_s, "t=" + format_double(v.at_s, 3) +
                                 "s cap violation node " +
                                 std::to_string(v.node) + " +" +
                                 format_double(v.excess_w, 3) + "W for " +
                                 format_double(v.duration_s, 3) + "s"});
  }
  for (const auto& b : meter_blackouts) {
    lines.push_back({b.at_s, "t=" + format_double(b.at_s, 3) +
                                 "s meter blackout cluster-wide for " +
                                 format_double(b.duration_s, 3) + "s"});
  }
  for (const auto& c : budget_cuts) {
    lines.push_back({c.at_s, "t=" + format_double(c.at_s, 3) +
                                 "s budget cut to " +
                                 format_double(c.factor, 3) + "x for " +
                                 format_double(c.duration_s, 3) + "s"});
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) { return a.at < b.at; });
  std::ostringstream os;
  for (const auto& l : lines) os << l.text << '\n';
  return os.str();
}

FaultPlan FaultPlan::random(std::uint64_t seed, int cluster_nodes,
                            double horizon_s, FaultPlanShape shape) {
  CLIP_REQUIRE(cluster_nodes >= 1, "fault plan needs a non-empty cluster");
  CLIP_REQUIRE(horizon_s > shape.min_at_s,
               "fault-plan horizon must exceed the earliest event time");
  Rng rng(seed);
  const auto node = [&] {
    return static_cast<int>(rng.uniform_int(0, cluster_nodes - 1));
  };
  const auto at = [&] { return rng.uniform(shape.min_at_s, horizon_s); };

  FaultPlan plan;
  for (int i = 0; i < shape.crashes; ++i)
    plan.crashes.push_back({node(), at()});
  for (int i = 0; i < shape.degrades; ++i)
    plan.degrades.push_back({node(), at(), rng.uniform(0.4, 0.95)});
  for (int i = 0; i < shape.meter_faults; ++i) {
    MeterFault m;
    m.node = node();
    m.at_s = at();
    m.duration_s = rng.uniform(5.0, horizon_s / 4.0 + 5.0);
    const double kind = rng.uniform();
    if (kind < 1.0 / 3.0) {
      m.kind = MeterFaultKind::kStuckAt;
      m.value = rng.uniform(20.0, 400.0);
    } else if (kind < 2.0 / 3.0) {
      m.kind = MeterFaultKind::kDropout;
      m.value = 0.0;
    } else {
      m.kind = MeterFaultKind::kSpike;
      m.value = rng.uniform(2.0, 20.0);
    }
    plan.meter_faults.push_back(m);
  }
  for (int i = 0; i < shape.cap_violations; ++i) {
    CapViolation v;
    v.node = node();
    v.at_s = at();
    v.duration_s = rng.uniform(10.0, horizon_s / 3.0 + 10.0);
    v.excess_w = rng.uniform(15.0, 80.0);
    plan.cap_violations.push_back(v);
  }
  // Degraded-mode events draw last: a shape with zero of them consumes the
  // same RNG stream as before they existed, so historical seeds reproduce.
  for (int i = 0; i < shape.meter_blackouts; ++i) {
    MeterBlackout b;
    b.at_s = at();
    b.duration_s = rng.uniform(5.0, horizon_s / 4.0 + 5.0);
    plan.meter_blackouts.push_back(b);
  }
  for (int i = 0; i < shape.budget_cuts; ++i) {
    BudgetCut c;
    c.at_s = at();
    c.duration_s = rng.uniform(10.0, horizon_s / 3.0 + 10.0);
    c.factor = rng.uniform(0.5, 0.9);
    plan.budget_cuts.push_back(c);
  }
  plan.validate(cluster_nodes);
  return plan;
}

}  // namespace clip::fault
