// Coverage for the remaining small surfaces: machine presets, the random
// workload generator, config descriptions, and comparison preconditions.
#include <gtest/gtest.h>

#include <set>

#include "runtime/comparison.hpp"
#include "sim/phased.hpp"
#include "sim/presets.hpp"
#include "util/check.hpp"
#include "workloads/random.hpp"

namespace clip {
namespace {

// ----------------------------------------------------------------- presets ----

TEST(Presets, AllValidateAndAreDistinct) {
  const auto presets = sim::all_presets();
  EXPECT_GE(presets.size(), 4u);
  std::set<std::string> names;
  std::set<int> core_counts;
  for (const auto& p : presets) {
    EXPECT_NO_THROW(p.spec.validate()) << p.name;
    names.insert(p.name);
    core_counts.insert(p.spec.shape.total_cores());
  }
  EXPECT_EQ(names.size(), presets.size());   // unique names
  EXPECT_GE(core_counts.size(), 3u);         // genuinely different machines
}

TEST(Presets, HaswellIsTheDefault) {
  const sim::MachineSpec a = sim::haswell_testbed();
  const sim::MachineSpec b;
  EXPECT_EQ(a.shape.total_cores(), b.shape.total_cores());
  EXPECT_DOUBLE_EQ(a.socket_bw_gbps, b.socket_bw_gbps);
  EXPECT_EQ(a.nodes, b.nodes);
}

TEST(Presets, LaddersMatchTheirNominals) {
  for (const auto& p : sim::all_presets()) {
    EXPECT_DOUBLE_EQ(p.spec.ladder.max().value(),
                     p.spec.ladder.nominal().value())
        << p.name;
    EXPECT_LT(p.spec.ladder.min().value(),
              p.spec.ladder.max().value())
        << p.name;
  }
}

// ------------------------------------------------------------ random gen ----

TEST(RandomWorkloads, DeterministicPerSeed) {
  const auto a = workloads::random_signatures(42, 10);
  const auto b = workloads::random_signatures(42, 10);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].node_base_time_s, b[i].node_base_time_s);
    EXPECT_DOUBLE_EQ(a[i].memory_boundedness, b[i].memory_boundedness);
    EXPECT_DOUBLE_EQ(a[i].sync_coeff_s, b[i].sync_coeff_s);
  }
}

TEST(RandomWorkloads, DifferentSeedsDiffer) {
  const auto a = workloads::random_signatures(1, 5);
  const auto b = workloads::random_signatures(2, 5);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].node_base_time_s != b[i].node_base_time_s) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(RandomWorkloads, AllThreeArchetypesAppear) {
  const auto batch = workloads::random_signatures(7, 60);
  int linear = 0, logarithmic = 0, parabolic = 0;
  for (const auto& w : batch) {
    EXPECT_NO_THROW(w.validate());
    switch (w.expected_class) {
      case workloads::ScalabilityClass::kLinear:
        ++linear;
        break;
      case workloads::ScalabilityClass::kLogarithmic:
        ++logarithmic;
        break;
      case workloads::ScalabilityClass::kParabolic:
        ++parabolic;
        break;
    }
  }
  EXPECT_GE(linear, 8);
  EXPECT_GE(logarithmic, 8);
  EXPECT_GE(parabolic, 8);
}

// ----------------------------------------------------------- descriptions ----

TEST(Descriptions, NodeConfigDescribeMentionsEveryKnob) {
  sim::NodeConfig cfg;
  cfg.threads = 14;
  cfg.affinity = parallel::AffinityPolicy::kCompact;
  cfg.mem_level = sim::MemPowerLevel::kL2;
  cfg.cpu_cap = Watts(88.0);
  cfg.mem_cap = Watts(24.0);
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("14 threads"), std::string::npos);
  EXPECT_NE(d.find("compact"), std::string::npos);
  EXPECT_NE(d.find("L2"), std::string::npos);
  EXPECT_NE(d.find("88"), std::string::npos);
}

TEST(Descriptions, PhasedConfigDescribeListsPhases) {
  sim::PhasedClusterConfig cfg;
  cfg.nodes = 4;
  cfg.phase_nodes = {sim::NodeConfig{.threads = 24},
                     sim::NodeConfig{.threads = 8}};
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("4 node(s)"), std::string::npos);
  EXPECT_NE(d.find("2 phases"), std::string::npos);
  EXPECT_NE(d.find("24 threads"), std::string::npos);
  EXPECT_NE(d.find("8 threads"), std::string::npos);
}

TEST(Descriptions, ClusterConfigMentionsOverrides) {
  sim::ClusterConfig cfg;
  cfg.nodes = 2;
  EXPECT_EQ(cfg.describe().find("overrides"), std::string::npos);
  cfg.cpu_cap_overrides = {Watts(90.0), Watts(110.0)};
  EXPECT_NE(cfg.describe().find("overrides"), std::string::npos);
}

// ----------------------------------------------------------- comparisons ----

TEST(ComparisonPreconditions, MeanRelativeRequiresCells) {
  runtime::ComparisonResult r;
  EXPECT_THROW((void)r.mean_relative("CLIP", 800.0), PreconditionError);
}

TEST(ComparisonPreconditions, MeanImprovementRequiresComparableCells) {
  runtime::ComparisonResult r;
  runtime::ComparisonCell c;
  c.app = "X";
  c.method = "CLIP";
  c.budget_w = 800.0;
  c.relative_performance = 1.0;
  r.cells.push_back(c);
  // No reference cells -> nothing comparable.
  EXPECT_THROW((void)r.mean_improvement("CLIP", "All-In"),
               PreconditionError);
}

TEST(ComparisonPreconditions, BudgetFilterRestrictsMean) {
  runtime::ComparisonResult r;
  auto add = [&](const std::string& method, double budget, double rel) {
    runtime::ComparisonCell c;
    c.app = "X";
    c.method = method;
    c.budget_w = budget;
    c.relative_performance = rel;
    r.cells.push_back(c);
  };
  add("CLIP", 600.0, 2.0);
  add("Ref", 600.0, 1.0);
  add("CLIP", 800.0, 1.0);
  add("Ref", 800.0, 1.0);
  EXPECT_NEAR(r.mean_improvement("CLIP", "Ref"), 0.5, 1e-12);
  EXPECT_NEAR(r.mean_improvement("CLIP", "Ref", {600.0}), 1.0, 1e-12);
  EXPECT_NEAR(r.mean_improvement("CLIP", "Ref", {800.0}), 0.0, 1e-12);
}

}  // namespace
}  // namespace clip
