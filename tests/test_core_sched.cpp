// Unit tests for CLIP's decision layer: node config selector, cluster
// allocator (Algorithm 1), variability coordinator, scheduler facade.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cluster_alloc.hpp"
#include "core/node_config.hpp"
#include "core/profiler.hpp"
#include "core/scheduler.hpp"
#include "core/variability_coord.hpp"
#include "sim/executor.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip::core {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

class SchedTest : public ::testing::Test {
 protected:
  sim::SimExecutor ex_{sim::MachineSpec{}, no_noise()};
  SmartProfiler profiler_{ex_};
  ScalabilityClassifier classifier_;
  NodeConfigSelector selector_{ex_.spec()};
  ClusterAllocator allocator_{ex_.spec(), selector_};
};

// ----------------------------------------------------------- node selector ----

TEST_F(SchedTest, LinearCandidatesAreAllCoresOnly) {
  const auto c =
      selector_.candidate_threads(workloads::ScalabilityClass::kLinear, 0);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.front(), 24);
}

TEST_F(SchedTest, LogarithmicCandidatesAreAllEvenCounts) {
  const auto c = selector_.candidate_threads(
      workloads::ScalabilityClass::kLogarithmic, 10);
  EXPECT_EQ(c.size(), 12u);
  EXPECT_EQ(c.front(), 2);
  EXPECT_EQ(c.back(), 24);
}

TEST_F(SchedTest, ParabolicCandidatesCappedAtInflection) {
  const auto c = selector_.candidate_threads(
      workloads::ScalabilityClass::kParabolic, 12);
  EXPECT_EQ(c.back(), 12);
  for (int t : c) EXPECT_LE(t, 12);
}

TEST_F(SchedTest, ParabolicWithoutInflectionThrows) {
  EXPECT_THROW((void)selector_.candidate_threads(
                   workloads::ScalabilityClass::kParabolic, 0),
               PreconditionError);
}

TEST_F(SchedTest, SelectorKeepsAllCoresForLinearUnderAnyBudget) {
  const auto w = *workloads::find_benchmark("CoMD");
  const ProfileData p = profiler_.profile(w);
  for (double budget : {60.0, 100.0, 160.0}) {
    const NodeDecision d = selector_.select(
        p, workloads::ScalabilityClass::kLinear, 0, Watts(budget));
    EXPECT_EQ(d.config.threads, 24) << budget;
  }
}

TEST_F(SchedTest, SelectorThrottlesLogarithmicAtLowBudget) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  ProfileData p = profiler_.profile(w);
  profiler_.validate_at(w, p, 10);
  const NodeDecision rich = selector_.select(
      p, workloads::ScalabilityClass::kLogarithmic, 10, Watts(170.0));
  const NodeDecision poor = selector_.select(
      p, workloads::ScalabilityClass::kLogarithmic, 10, Watts(70.0));
  EXPECT_EQ(rich.config.threads, 24);
  EXPECT_LE(poor.config.threads, rich.config.threads);
}

TEST_F(SchedTest, SelectorNeverExceedsInflectionForParabolic) {
  const auto w = *workloads::find_benchmark("SP-MZ");
  ProfileData p = profiler_.profile(w);
  profiler_.validate_at(w, p, 12);
  for (double budget : {70.0, 100.0, 140.0, 170.0}) {
    const NodeDecision d = selector_.select(
        p, workloads::ScalabilityClass::kParabolic, 12, Watts(budget));
    EXPECT_LE(d.config.threads, 12) << budget;
  }
}

TEST_F(SchedTest, SelectorSplitsBudgetBetweenDomains) {
  const auto w = *workloads::find_benchmark("TeaLeaf");
  ProfileData p = profiler_.profile(w);
  profiler_.validate_at(w, p, 12);
  const Watts budget(120.0);
  const NodeDecision d = selector_.select(
      p, workloads::ScalabilityClass::kParabolic, 12, budget);
  EXPECT_LE(d.config.cpu_cap.value() + d.config.mem_cap.value(),
            budget.value() + 1.0);
  EXPECT_GT(d.config.mem_cap.value(), 10.0);  // memory app needs DRAM watts
}

TEST_F(SchedTest, MemLevelMatchesDemand) {
  const auto stream = profiler_.profile(
      *workloads::find_benchmark("STREAM-Triad"));
  const PowerEstimator est_stream(ex_.spec(), stream);
  EXPECT_EQ(selector_.choose_mem_level(est_stream, 24,
                                       parallel::AffinityPolicy::kScatter),
            sim::MemPowerLevel::kL0);

  const auto ep = profiler_.profile(*workloads::find_benchmark("EP"));
  const PowerEstimator est_ep(ex_.spec(), ep);
  EXPECT_EQ(selector_.choose_mem_level(est_ep, 24,
                                       parallel::AffinityPolicy::kScatter),
            sim::MemPowerLevel::kL3);
}

TEST_F(SchedTest, ImpossibleBudgetThrows) {
  const auto w = *workloads::find_benchmark("CoMD");
  const ProfileData p = profiler_.profile(w);
  EXPECT_THROW((void)selector_.select(
                   p, workloads::ScalabilityClass::kLinear, 0, Watts(0.0)),
               PreconditionError);
}

// -------------------------------------------------------- cluster allocator ----

TEST_F(SchedTest, GenerousBudgetUsesAllNodes) {
  const auto w = *workloads::find_benchmark("CoMD");
  const ProfileData p = profiler_.profile(w);
  const ClusterDecision d = allocator_.allocate(
      p, workloads::ScalabilityClass::kLinear, 0, Watts(1500.0));
  EXPECT_EQ(d.nodes, 8);
}

TEST_F(SchedTest, NodeBudgetIsClusterShare) {
  const auto w = *workloads::find_benchmark("CoMD");
  const ProfileData p = profiler_.profile(w);
  const ClusterDecision d = allocator_.allocate(
      p, workloads::ScalabilityClass::kLinear, 0, Watts(1000.0));
  EXPECT_NEAR(d.node_budget.value(), 1000.0 / d.nodes, 1e-9);
}

TEST_F(SchedTest, PredefinedCountsAreRespected) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  ProfileData p = profiler_.profile(w);
  profiler_.validate_at(w, p, 10);
  for (double budget : {300.0, 500.0, 700.0, 1100.0}) {
    const ClusterDecision d = allocator_.allocate(
        p, workloads::ScalabilityClass::kLogarithmic, 10, Watts(budget),
        allocator_.power_of_two_counts());
    EXPECT_TRUE(d.nodes == 1 || d.nodes == 2 || d.nodes == 4 ||
                d.nodes == 8)
        << "budget=" << budget << " nodes=" << d.nodes;
  }
}

TEST_F(SchedTest, NodeCountGrowsWithBudget) {
  const auto w = *workloads::find_benchmark("CoMD");
  const ProfileData p = profiler_.profile(w);
  int prev_nodes = 0;
  for (double budget : {150.0, 400.0, 800.0, 1500.0}) {
    const ClusterDecision d = allocator_.allocate(
        p, workloads::ScalabilityClass::kLinear, 0, Watts(budget));
    EXPECT_GE(d.nodes, prev_nodes) << budget;
    prev_nodes = d.nodes;
  }
}

TEST_F(SchedTest, PowerOfTwoCountsHelper) {
  EXPECT_EQ(allocator_.power_of_two_counts(),
            (std::vector<int>{1, 2, 4, 8}));
}

TEST_F(SchedTest, StrictAlgorithm1UsesRangeBounds) {
  ClusterAllocator strict(ex_.spec(), selector_,
                          ClusterAllocOptions{.strict_algorithm1 = true});
  const auto w = *workloads::find_benchmark("BT-MZ");
  ProfileData p = profiler_.profile(w);
  profiler_.validate_at(w, p, 10);
  const ClusterDecision d = strict.allocate(
      p, workloads::ScalabilityClass::kLogarithmic, 10, Watts(600.0),
      allocator_.power_of_two_counts());
  // Algorithm 1: largest predefined count with share >= P_lo.
  EXPECT_EQ(d.nodes, 4);
}

TEST_F(SchedTest, ScoredAllocationNeverWorseThanStrict) {
  // The scored search includes every candidate the strict rule could pick,
  // so its *achieved* time must not be meaningfully worse.
  ClusterAllocator strict(ex_.spec(), selector_,
                          ClusterAllocOptions{.strict_algorithm1 = true});
  for (const char* name : {"BT-MZ", "SP-MZ", "CoMD"}) {
    const auto w = *workloads::find_benchmark(name);
    ProfileData p = profiler_.profile(w);
    const auto cls = classifier_.classify(p);
    int np = 0;
    if (cls != workloads::ScalabilityClass::kLinear) {
      np = 12;
      profiler_.validate_at(w, p, np);
    }
    for (double budget : {500.0, 900.0, 1300.0}) {
      const auto counts = w.has_predefined_process_counts
                              ? allocator_.power_of_two_counts()
                              : std::vector<int>{};
      const ClusterDecision scored =
          allocator_.allocate(p, cls, np, Watts(budget), counts);
      const ClusterDecision literal =
          strict.allocate(p, cls, np, Watts(budget), counts);
      auto run = [&](const ClusterDecision& d) {
        sim::ClusterConfig cfg;
        cfg.nodes = d.nodes;
        cfg.node = d.node.config;
        return ex_.run_exact(w, cfg).time.value();
      };
      EXPECT_LE(run(scored), run(literal) * 1.05)
          << name << " @" << budget;
    }
  }
}

// ------------------------------------------------------------- variability ----

TEST(VariabilityCoord, SpreadComputation) {
  EXPECT_NEAR(VariabilityCoordinator::spread({1.0, 1.1}), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(VariabilityCoordinator::spread({1.0, 1.0, 1.0}), 0.0);
}

TEST(VariabilityCoord, BelowThresholdKeepsUniformCaps) {
  const VariabilityCoordinator coord;
  const auto caps = coord.coordinate(Watts(100.0), {1.0, 1.01, 0.995});
  EXPECT_TRUE(caps.empty());
}

TEST(VariabilityCoord, AboveThresholdShiftsWattsToInefficientNodes) {
  const VariabilityCoordinator coord;
  const std::vector<double> mult = {0.9, 1.1};
  const auto caps = coord.coordinate(Watts(100.0), mult);
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_LT(caps[0].value(), caps[1].value());  // hungry node gets more
  EXPECT_NEAR(caps[0].value() + caps[1].value(), 200.0, 1e-9);
}

TEST(VariabilityCoord, TotalBudgetPreserved) {
  const VariabilityCoordinator coord;
  const std::vector<double> mult = {0.92, 1.0, 1.05, 1.12};
  const auto caps = coord.coordinate(Watts(80.0), mult);
  double total = 0.0;
  for (auto c : caps) total += c.value();
  EXPECT_NEAR(total, 4 * 80.0, 1e-9);
}

TEST(VariabilityCoord, CoordinationEqualizesFrequencies) {
  sim::MachineSpec spec;
  spec.variability_sigma = 0.08;
  sim::SimExecutor ex(spec, no_noise());
  const auto w = *workloads::find_benchmark("CoMD");

  sim::ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.node.threads = 24;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  cfg.node.cpu_cap = Watts(95.0);
  cfg.node.mem_cap = Watts(40.0);

  const sim::Measurement uniform = ex.run_exact(w, cfg);

  const VariabilityCoordinator coord;
  coord.apply(cfg, ex.variability().multipliers());
  ASSERT_FALSE(cfg.cpu_cap_overrides.empty());
  const sim::Measurement coordinated = ex.run_exact(w, cfg);

  auto freq_spread = [](const sim::Measurement& m) {
    double lo = 1e9, hi = 0.0;
    for (const auto& n : m.nodes) {
      lo = std::min(lo, n.frequency.value());
      hi = std::max(hi, n.frequency.value());
    }
    return hi - lo;
  };
  EXPECT_LE(freq_spread(coordinated), freq_spread(uniform));
  EXPECT_LE(coordinated.time.value(), uniform.time.value() * 1.001);
}

TEST(VariabilityCoord, ApplyValidatesNodeCount) {
  const VariabilityCoordinator coord;
  sim::ClusterConfig cfg;
  cfg.nodes = 3;
  EXPECT_THROW(coord.apply(cfg, {1.0, 1.0}), PreconditionError);
}

// ---------------------------------------------------------------- scheduler ----

class SchedulerTest : public ::testing::Test {
 protected:
  sim::SimExecutor ex_{sim::MachineSpec{}, no_noise()};
  ClipScheduler sched_{ex_, workloads::training_benchmarks()};
};

TEST_F(SchedulerTest, DecisionIsExecutable) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const ScheduleDecision d = sched_.schedule(w, Watts(800.0));
  EXPECT_NO_THROW((void)ex_.run_exact(w, d.cluster));
}

TEST_F(SchedulerTest, BudgetRespectedEndToEnd) {
  for (const auto& w : workloads::paper_benchmarks()) {
    for (double budget : {500.0, 900.0, 1300.0}) {
      const ScheduleDecision d = sched_.schedule(w, Watts(budget));
      const sim::Measurement m = ex_.run_exact(w, d.cluster);
      EXPECT_LE(m.avg_power.value(), budget * 1.01)
          << w.name << " @" << budget;
    }
  }
}

TEST_F(SchedulerTest, SecondScheduleHitsKnowledgeDb) {
  const auto w = *workloads::find_benchmark("SP-MZ");
  const ScheduleDecision first = sched_.schedule(w, Watts(800.0));
  EXPECT_FALSE(first.from_knowledge_db);
  EXPECT_GT(first.profiling_cost.value(), 0.0);
  const ScheduleDecision second = sched_.schedule(w, Watts(600.0));
  EXPECT_TRUE(second.from_knowledge_db);
  EXPECT_DOUBLE_EQ(second.profiling_cost.value(), 0.0);
}

TEST_F(SchedulerTest, CachedDecisionMatchesFreshDecision) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const ScheduleDecision fresh = sched_.schedule(w, Watts(700.0));
  const ScheduleDecision cached = sched_.schedule(w, Watts(700.0));
  EXPECT_EQ(fresh.cluster.nodes, cached.cluster.nodes);
  EXPECT_EQ(fresh.cluster.node.threads, cached.cluster.node.threads);
  EXPECT_EQ(fresh.cls, cached.cls);
}

TEST_F(SchedulerTest, ClassesMatchTableII) {
  for (const auto& w : workloads::paper_benchmarks()) {
    const ScheduleDecision d = sched_.schedule(w, Watts(1000.0));
    EXPECT_EQ(d.cls, w.expected_class) << w.name;
  }
}

TEST_F(SchedulerTest, ParabolicAppsNeverRunAllCores) {
  for (const char* name : {"SP-MZ", "miniAero", "TeaLeaf"}) {
    const auto w = *workloads::find_benchmark(name);
    const ScheduleDecision d = sched_.schedule(w, Watts(1200.0));
    EXPECT_LT(d.cluster.node.threads, 24) << name;
    EXPECT_GT(d.inflection, 0) << name;
  }
}

TEST_F(SchedulerTest, LinearAppsRunAllCores) {
  for (const char* name : {"CoMD", "AMG", "miniMD"}) {
    const auto w = *workloads::find_benchmark(name);
    const ScheduleDecision d = sched_.schedule(w, Watts(1200.0));
    EXPECT_EQ(d.cluster.node.threads, 24) << name;
  }
}

TEST_F(SchedulerTest, DescribeMentionsClassAndCaching) {
  const auto w = *workloads::find_benchmark("TeaLeaf");
  const ScheduleDecision d = sched_.schedule(w, Watts(900.0));
  const std::string desc = d.describe();
  EXPECT_NE(desc.find("parabolic"), std::string::npos);
  EXPECT_NE(desc.find("freshly profiled"), std::string::npos);
}

TEST_F(SchedulerTest, ScheduleAndRunReturnsMeasurement) {
  const auto w = *workloads::find_benchmark("AMG");
  const sim::Measurement m = sched_.schedule_and_run(w, Watts(900.0));
  EXPECT_GT(m.time.value(), 0.0);
  EXPECT_FALSE(m.nodes.empty());
}

TEST(SchedulerConstruction, EmptyTrainingSuiteThrows) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  EXPECT_THROW(ClipScheduler(ex, {}), PreconditionError);
}

TEST(SchedulerVariability, OverridesAppearOnHeterogeneousCluster) {
  sim::MachineSpec spec;
  spec.variability_sigma = 0.08;
  sim::SimExecutor ex(spec, no_noise());
  ClipScheduler sched(ex, workloads::training_benchmarks());
  const auto w = *workloads::find_benchmark("CoMD");
  const ScheduleDecision d = sched.schedule(w, Watts(800.0));
  EXPECT_FALSE(d.cluster.cpu_cap_overrides.empty());
}

}  // namespace
}  // namespace clip::core
