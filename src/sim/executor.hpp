// SimExecutor: the single entry point through which schedulers "run" a
// workload on the simulated cluster and observe time, power, energy, and
// hardware events. This is the stand-in for the paper's real 8-node Haswell
// testbed (see DESIGN.md §1 for the substitution argument).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/session.hpp"
#include "sim/comm_model.hpp"
#include "sim/config.hpp"
#include "sim/exec_cache.hpp"
#include "sim/machine.hpp"
#include "sim/phased.hpp"
#include "sim/power_meter.hpp"
#include "sim/rapl.hpp"
#include "sim/variability.hpp"
#include "workloads/phases.hpp"
#include "workloads/signature.hpp"

namespace clip::sim {

class SimExecutor {
 public:
  /// `meter` options control measurement noise (disable for exact tests).
  explicit SimExecutor(MachineSpec spec, MeterOptions meter = MeterOptions{});

  [[nodiscard]] const MachineSpec& spec() const { return spec_; }
  [[nodiscard]] const Variability& variability() const {
    return variability_;
  }

  /// The measurement-noise meter run() reads through — exposed so callers
  /// can program faults or attach a flight recorder (meter.set_timeline).
  [[nodiscard]] PowerMeter& meter() { return meter_; }

  /// Attach an observability session (nullptr detaches): every run bumps
  /// `sim.runs`/`sim.node_solves` and, with a sink attached, emits a
  /// "sim.run" span. Detached cost is one branch per run. Counter handles
  /// are resolved here once (registry references are stable), so the hot
  /// paths bump atomics directly instead of re-finding metrics by name.
  void set_observer(obs::ObsSession* obs);

  /// Attach a memoization cache for exact runs (nullptr detaches; not
  /// owned). The exact path is a pure function of (spec, workload, config),
  /// so hits return bit-identical measurements. Hits bump
  /// `sim.exact_cache_hits` and skip `sim.runs`; misses bump
  /// `sim.exact_cache_misses` and compute as before. One cache may be shared
  /// by several executors — keys embed the full machine spec.
  void set_exact_cache(ExactRunCache* cache);
  [[nodiscard]] ExactRunCache* exact_cache() const { return cache_; }

  /// Execute `w` under `cfg` and return the (noisy) measurement.
  ///
  /// The problem strong-scales across the active nodes; every node runs the
  /// same node config (optionally with per-node CPU-cap overrides from the
  /// variability coordinator); the job completes when the slowest node
  /// finishes plus communication time.
  [[nodiscard]] Measurement run(const workloads::WorkloadSignature& w,
                                const ClusterConfig& cfg);

  /// Ground-truth run with no measurement noise — used by oracle searches
  /// and tests. Identical model, exact values.
  [[nodiscard]] Measurement run_exact(const workloads::WorkloadSignature& w,
                                      const ClusterConfig& cfg) const;

  /// run_exact minus the cache: same bytes, but the attached ExactRunCache
  /// is neither probed nor filled (and the hit/miss counters stay flat —
  /// no cache was consulted). For callers that memoize results themselves,
  /// like the oracle's bound memo: paying ~0.5 KiB of key encoding to
  /// store an entry nobody will ever look up again is pure overhead.
  [[nodiscard]] Measurement run_exact_uncached(
      const workloads::WorkloadSignature& w, const ClusterConfig& cfg) const;

  /// Evaluate a whole cap frontier in one call: `(*result)[i]` equals
  /// `run_exact(w, base with caps[i] substituted)` bit for bit, but the
  /// cap-independent work (placement, perf/power/comm subexpressions,
  /// frequency-ladder terms, cache key prefix) is hoisted and done once for
  /// the frontier, per-cap state is laid out contiguously (optionally
  /// walked two points per SSE2 instruction — see set_batch_simd), exact
  /// duplicates within the frontier are computed once, and the cache is
  /// probed/filled at *frontier* granularity: one lookup serves the whole
  /// call, a miss inserts the computed vector by move, and a hit returns
  /// the stored vector without copying a Measurement (hence the shared_ptr
  /// return). Requires empty cpu_cap_overrides (per-node overrides are
  /// scalar-only). Frontiers smaller than `kMinBatchFrontier` skip the
  /// batch machinery entirely and loop run_exact — below that width the
  /// setup costs more than it saves.
  [[nodiscard]] FrontierResult run_batch(const workloads::WorkloadSignature& w,
                                         const ClusterConfig& base,
                                         const std::vector<CapPoint>& caps)
      const;

  /// Frontier width below which run_batch bypasses every gram of batch
  /// setup (prefix encoding, shard grouping, hoisting) and takes the plain
  /// scalar path. Pinned by tests/test_batch.cpp.
  static constexpr std::size_t kMinBatchFrontier = 4;

  /// Toggle the SSE2 frontier kernel (no-op unless compiled in — see
  /// RaplSolver::simd_compiled). On by default when available; the scalar
  /// fallback is bit-identical, so this only exists for A/B tests.
  void set_batch_simd(bool on) { batch_simd_ = on; }
  [[nodiscard]] bool batch_simd() const { return batch_simd_; }

  /// Execute a phased workload with per-phase node configurations over one
  /// node allocation (exact, noise-free). At each phase boundary the node
  /// runtime re-throttles, re-pins and re-programs the caps.
  [[nodiscard]] PhasedMeasurement run_phased_exact(
      const workloads::PhasedWorkload& w,
      const PhasedClusterConfig& cfg) const;

 private:
  /// The uncached model evaluation (the pre-memoization run_exact body).
  [[nodiscard]] Measurement compute_exact(const workloads::WorkloadSignature& w,
                                          const ClusterConfig& cfg) const;

  /// NodeMeasurement (events included) from one solved operating point.
  [[nodiscard]] NodeMeasurement node_measurement(
      const workloads::WorkloadSignature& w, int threads,
      const OperatingPoint& op) const;

  MachineSpec spec_;
  Variability variability_;
  RaplSolver rapl_;
  EventModel events_;
  PowerMeter meter_;
  obs::ObsSession* obs_ = nullptr;
  ExactRunCache* cache_ = nullptr;
  std::string cache_prefix_;  ///< encoded spec, computed once on attach
  bool batch_simd_ = RaplSolver::simd_compiled();
  /// Metric handles resolved by set_observer (null iff obs_ is null).
  struct Metrics {
    obs::Counter* runs = nullptr;
    obs::Counter* node_solves = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* batch_runs = nullptr;
    obs::Histogram* batch_width = nullptr;
  } metrics_;
};

}  // namespace clip::sim
