#include "stats/matrix.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace clip::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  CLIP_REQUIRE(cols_ == other.rows_, "matrix multiply dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out(r, c) += a * other(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  CLIP_REQUIRE(v.size() == cols_, "matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  CLIP_REQUIRE(a.rows() == a.cols(), "solve requires a square matrix");
  CLIP_REQUIRE(b.size() == a.rows(), "rhs size mismatch");
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    CLIP_REQUIRE(best > 1e-12, "singular matrix in solve_linear_system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
    x[i] = acc / a(i, i);
  }
  return x;
}

}  // namespace clip::stats
