#include "core/knowledge_db.hpp"

#include <charconv>
#include <cmath>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace clip::core {

namespace {

workloads::ScalabilityClass class_from_string(const std::string& s) {
  if (s == "linear") return workloads::ScalabilityClass::kLinear;
  if (s == "logarithmic") return workloads::ScalabilityClass::kLogarithmic;
  if (s == "parabolic") return workloads::ScalabilityClass::kParabolic;
  CLIP_REQUIRE(false, "unknown scalability class in knowledge DB: " + s);
  return workloads::ScalabilityClass::kLinear;
}

parallel::AffinityPolicy affinity_from_string(const std::string& s) {
  if (s == "compact") return parallel::AffinityPolicy::kCompact;
  if (s == "scatter") return parallel::AffinityPolicy::kScatter;
  CLIP_REQUIRE(false, "unknown affinity in knowledge DB: " + s);
  return parallel::AffinityPolicy::kScatter;
}

double to_double(const std::string& s) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw PreconditionError("bad numeric field in knowledge DB: " + s);
  }
}

}  // namespace

ProfileData KnowledgeRecord::to_profile(const KnowledgeDbShape& shape) const {
  ProfileData p;
  p.app_name = name;
  p.app_parameters = parameters;
  p.perf_ratio_half_over_all = perf_ratio;
  p.preferred_affinity = preferred_affinity;
  p.per_core_bw_gbps = per_core_bw_gbps;
  p.node_bw_gbps = node_bw_gbps;
  p.memory_intensity = memory_intensity;

  p.all_core.config.threads = shape.total_cores;
  p.all_core.config.affinity = parallel::AffinityPolicy::kScatter;
  p.all_core.time = Seconds(time_all_s);
  p.all_core.cpu_power = Watts(cpu_power_all_w);
  p.all_core.mem_power = Watts(mem_power_all_w);
  p.all_core.events.read_bw_gbps = p.node_bw_gbps;
  p.all_core.events.cycles_active_per_s = cycles_active_all;
  p.all_core.events.perf_ratio_full_half =
      perf_ratio > 0.0 ? 1.0 / perf_ratio : 0.0;

  p.half_core.config.threads = shape.total_cores / 2;
  p.half_core.config.affinity = preferred_affinity;
  p.half_core.time = Seconds(time_half_s);

  if (validation_threads > 0) {
    SampleProfile v;
    v.config.threads = validation_threads;
    v.config.affinity = preferred_affinity;
    v.time = Seconds(time_validation_s);
    p.validation = v;
  }
  return p;
}

void KnowledgeRecord::validate() const {
  const auto field = [this](const std::string& what) {
    return "knowledge record for '" + name + "': " + what;
  };
  const auto finite_nonneg = [&](double v, const char* f) {
    CLIP_REQUIRE(std::isfinite(v) && v >= 0.0,
                 field(std::string(f) + " must be finite and non-negative (got " +
                       format_double(v, 6) + ")"));
  };
  CLIP_REQUIRE(!name.empty(), "knowledge record has an empty name");
  CLIP_REQUIRE(std::isfinite(perf_ratio) && perf_ratio > 0.0,
               field("perf_ratio must be finite and positive (got " +
                     format_double(perf_ratio, 6) + ")"));
  CLIP_REQUIRE(std::isfinite(time_all_s) && time_all_s > 0.0,
               field("time_all must be finite and positive (got " +
                     format_double(time_all_s, 6) + ")"));
  CLIP_REQUIRE(std::isfinite(time_half_s) && time_half_s > 0.0,
               field("time_half must be finite and positive (got " +
                     format_double(time_half_s, 6) + ")"));
  CLIP_REQUIRE(std::isfinite(cpu_power_all_w) && cpu_power_all_w > 0.0,
               field("cpu_power_all must be finite and positive (got " +
                     format_double(cpu_power_all_w, 6) + ")"));
  finite_nonneg(mem_power_all_w, "mem_power_all");
  finite_nonneg(per_core_bw_gbps, "per_core_bw");
  finite_nonneg(node_bw_gbps, "node_bw");
  finite_nonneg(memory_intensity, "mem_intensity");
  finite_nonneg(time_validation_s, "time_validation");
  finite_nonneg(cycles_active_all, "cycles_active_all");
  CLIP_REQUIRE(inflection >= 0,
               field("inflection must be non-negative (got " +
                     std::to_string(inflection) + ")"));
  CLIP_REQUIRE(validation_threads >= 0,
               field("validation_threads must be non-negative (got " +
                     std::to_string(validation_threads) + ")"));
}

std::optional<KnowledgeRecord> KnowledgeDb::lookup(
    const std::string& name, const std::string& parameters) const {
  const auto it = records_.find({name, parameters});
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void KnowledgeDb::insert(KnowledgeRecord record) {
  if (record.machine.empty())
    record.machine = shape_.machine_fingerprint;
  Key key{record.name, record.parameters};
  records_[std::move(key)] = std::move(record);
}

std::size_t KnowledgeDb::merge_from(const KnowledgeDb& other) {
  std::size_t adopted = 0;
  for (const auto& [key, r] : other.records_) {
    if (!shape_.machine_fingerprint.empty() && !r.machine.empty() &&
        r.machine != shape_.machine_fingerprint)
      continue;  // profile from different hardware: not evidence here
    if (records_.count(key) != 0) continue;
    records_[key] = r;
    ++adopted;
  }
  return adopted;
}

namespace {
const std::vector<std::string> kColumns = {
    "name",          "parameters",      "class",
    "inflection",    "perf_ratio",      "affinity",
    "per_core_bw",   "node_bw",         "mem_intensity",
    "time_all",
    "time_half",     "time_validation", "validation_threads",
    "cpu_power_all", "mem_power_all",   "cycles_active_all",
    "machine"};
}  // namespace

void KnowledgeDb::save(const std::filesystem::path& path) const {
  CsvDocument doc;
  doc.header = kColumns;
  for (const auto& [key, r] : records_) {
    doc.rows.push_back({r.name,
                        r.parameters,
                        workloads::to_string(r.cls),
                        std::to_string(r.inflection),
                        format_double(r.perf_ratio, 6),
                        parallel::to_string(r.preferred_affinity),
                        format_double(r.per_core_bw_gbps, 6),
                        format_double(r.node_bw_gbps, 6),
                        format_double(r.memory_intensity, 6),
                        format_double(r.time_all_s, 6),
                        format_double(r.time_half_s, 6),
                        format_double(r.time_validation_s, 6),
                        std::to_string(r.validation_threads),
                        format_double(r.cpu_power_all_w, 6),
                        format_double(r.mem_power_all_w, 6),
                        format_double(r.cycles_active_all, 1),
                        r.machine});
  }
  // Stage-and-swap so a coordinator killed mid-save never leaves a torn DB:
  // readers observe either the previous complete file or the new one.
  atomic_write_file(path, render_csv(doc));
}

void KnowledgeDb::load(const std::filesystem::path& path) {
  // Parse into a staging map and swap only after the whole file validated:
  // a truncated or corrupt DB file (wrong column count, partial last line,
  // empty file, garbage numerics) must reject cleanly and leave the
  // in-memory database exactly as it was. read_csv already rejects
  // unreadable files, empty files, and ragged rows (a partial last line is
  // a ragged row) with a descriptive PreconditionError.
  const CsvDocument doc = read_csv(path);
  CLIP_REQUIRE(doc.header == kColumns,
               "knowledge DB schema mismatch in " + path.string() +
                   ": expected " + std::to_string(kColumns.size()) +
                   " columns starting with '" + kColumns.front() +
                   "', got " + std::to_string(doc.header.size()) +
                   " starting with '" +
                   (doc.header.empty() ? std::string() : doc.header.front()) +
                   "'");
  std::map<Key, KnowledgeRecord> staged;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    const auto& row = doc.rows[i];
    KnowledgeRecord r;
    try {
      r.name = row[0];
      r.parameters = row[1];
      r.cls = class_from_string(row[2]);
      r.inflection = static_cast<int>(to_double(row[3]));
      r.perf_ratio = to_double(row[4]);
      r.preferred_affinity = affinity_from_string(row[5]);
      r.per_core_bw_gbps = to_double(row[6]);
      r.node_bw_gbps = to_double(row[7]);
      r.memory_intensity = to_double(row[8]);
      r.time_all_s = to_double(row[9]);
      r.time_half_s = to_double(row[10]);
      r.time_validation_s = to_double(row[11]);
      r.validation_threads = static_cast<int>(to_double(row[12]));
      r.cpu_power_all_w = to_double(row[13]);
      r.mem_power_all_w = to_double(row[14]);
      r.cycles_active_all = to_double(row[15]);
      r.machine = row[16];
    } catch (const PreconditionError& e) {
      throw PreconditionError("knowledge DB " + path.string() + " row " +
                              std::to_string(i + 2) + ": " + e.what());
    }
    if (!shape_.machine_fingerprint.empty() && !r.machine.empty() &&
        r.machine != shape_.machine_fingerprint) {
      ++dropped;
      continue;  // profile from different hardware: not evidence here
    }
    if (r.machine.empty()) r.machine = shape_.machine_fingerprint;
    Key key{r.name, r.parameters};
    staged[std::move(key)] = std::move(r);
  }
  records_ = std::move(staged);
  last_load_dropped_ = dropped;
}

KnowledgeRecord make_record(const ProfileData& profile,
                            workloads::ScalabilityClass cls,
                            int inflection) {
  KnowledgeRecord r;
  r.name = profile.app_name;
  r.parameters = profile.app_parameters;
  r.cls = cls;
  r.inflection = inflection;
  r.perf_ratio = profile.perf_ratio_half_over_all;
  r.preferred_affinity = profile.preferred_affinity;
  r.per_core_bw_gbps = profile.per_core_bw_gbps;
  r.node_bw_gbps = profile.node_bw_gbps;
  r.memory_intensity = profile.memory_intensity;
  r.time_all_s = profile.all_core.time.value();
  r.time_half_s = profile.half_core.time.value();
  if (profile.validation) {
    r.time_validation_s = profile.validation->time.value();
    r.validation_threads = profile.validation->config.threads;
  }
  r.cpu_power_all_w = profile.all_core.cpu_power.value();
  r.mem_power_all_w = profile.all_core.mem_power.value();
  r.cycles_active_all = profile.all_core.events.cycles_active_per_s;
  return r;
}

}  // namespace clip::core
