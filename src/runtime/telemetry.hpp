// Telemetry — the paper's "power meter reader ... automates the collection
// and recording of performance and power data for jobs" (§IV-B4).
//
// Produces a sampled time series of per-node power, frequency and phase for
// an executed job (flat or phased), with the meter's sampling noise, and
// exports it as CSV for external plotting. The integral of the power series
// reproduces the job's measured energy (a test invariant).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "sim/phased.hpp"
#include "util/csv.hpp"

namespace clip::runtime {

struct TelemetrySample {
  double time_s = 0.0;
  std::string phase;        ///< "-" for flat runs
  int node = 0;
  double cpu_power_w = 0.0;
  double mem_power_w = 0.0;
  double freq_ghz = 0.0;
  int threads = 0;
};

struct TelemetryOptions {
  double sample_period_s = 0.1;
  double noise_sigma = 0.01;  ///< per-sample multiplicative meter noise
  std::uint64_t seed = 11;
};

class Telemetry {
 public:
  using Options = TelemetryOptions;

  explicit Telemetry(TelemetryOptions options = TelemetryOptions{});

  /// Record a flat job: one steady operating point per node.
  [[nodiscard]] std::vector<TelemetrySample> record(
      const sim::Measurement& m, int threads) const;

  /// Record a phased job: the series steps at phase boundaries.
  [[nodiscard]] std::vector<TelemetrySample> record_phased(
      const sim::PhasedMeasurement& m, int nodes) const;

  /// Mean power integral of a series (trapezoid-free: samples are uniform).
  [[nodiscard]] static double energy_j(
      const std::vector<TelemetrySample>& series, double sample_period_s);

  /// Export as CSV (time,phase,node,cpu_w,mem_w,freq,threads).
  static void write(const std::filesystem::path& path,
                    const std::vector<TelemetrySample>& series);

 private:
  TelemetryOptions options_;
};

}  // namespace clip::runtime
