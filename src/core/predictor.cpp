#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace clip::core {

PerfPredictor::PerfPredictor(const sim::MachineSpec& spec,
                             const ProfileData& profile,
                             workloads::ScalabilityClass cls, int np)
    : spec_(&spec), cls_(cls), np_(np) {
  const int all = spec.shape.total_cores();
  const int half = all / 2;
  const double t_half = profile.half_core.time.value();
  const double t_all = profile.all_core.time.value();
  CLIP_REQUIRE(t_half > 0.0 && t_all > 0.0, "profile times must be positive");

  time_all_ = t_all;
  threads_all_ = all;
  per_core_bw_ = profile.per_core_bw_gbps;

  // Recover the memory-boundedness m̂ from the all-core profile:
  //   utilization u = Event5 / (threads * f_nominal)  = (1-m) + m*sat
  //   saturation  sat = achieved_bw / demand
  // =>  m̂ = (1-u) / (1-sat)   (meaningful only when saturated).
  bw_ceiling_ = profile.node_bw_gbps;  // the ceiling the app actually hit
  const double demand_all = per_core_bw_ * all;
  const double sat_all =
      demand_all > 0.0 ? std::min(1.0, profile.node_bw_gbps / demand_all)
                       : 1.0;
  const double cycles = profile.all_core.events.cycles_active_per_s;
  const double u =
      cycles > 0.0
          ? std::clamp(cycles / (all * spec.ladder.nominal().value() * 1e9),
                       0.0, 1.0)
          : 1.0;
  memory_boundedness_ =
      sat_all < 0.98 ? std::clamp((1.0 - u) / (1.0 - sat_all), 0.0, 0.95)
                     : 0.0;

  if (cls == workloads::ScalabilityClass::kLinear) {
    // Fit T(t) = a/t + c exactly through (half, T_half) and (all, T_all).
    const double inv_half = 1.0 / half;
    const double inv_all = 1.0 / all;
    coef_a_ = (t_half - t_all) / (inv_half - inv_all);
    coef_c_ = t_all - coef_a_ * inv_all;
    if (coef_a_ <= 0.0) {
      // Measurement noise can invert two nearly equal samples; fall back to
      // ideal scaling through the all-core point.
      coef_a_ = t_all * all;
      coef_c_ = 0.0;
    }
    np_ = all;
    return;
  }

  CLIP_REQUIRE(np >= 2, "non-linear classes need an inflection point");
  // The scaling segment passes through the half-core sample and, when
  // available and within the segment, the validation sample; otherwise it
  // assumes ideal scaling below N_P (c = 0), which the paper's first
  // profiling stage also starts from.
  const SampleProfile* second = nullptr;
  if (profile.validation && profile.validation->config.threads != half &&
      profile.validation->config.threads <= np)
    second = &*profile.validation;

  if (half <= np && second) {
    const double inv1 = 1.0 / half;
    const double inv2 = 1.0 / second->config.threads;
    const double time2 = second->time.value();
    coef_a_ = (t_half - time2) / (inv1 - inv2);
    coef_c_ = t_half - coef_a_ * inv1;
    if (coef_a_ <= 0.0) {
      // The two anchors straddle the real peak (the predicted N_P
      // overshot): a hyperbolic fit through them would claim performance
      // *falls* with threads everywhere. Anchor ideal scaling at the
      // half-core sample instead — the scaling segment is linear by
      // definition (paper Fig. 2).
      coef_a_ = t_half * half;
      coef_c_ = 0.0;
    }
  } else if (half <= np) {
    coef_a_ = t_half * half;
    coef_c_ = 0.0;
  } else if (second) {
    coef_a_ = second->time.value() * second->config.threads;
    coef_c_ = 0.0;
  } else {
    // Half-core already beyond N_P: back-extrapolate assuming the half-core
    // point sits on the saturated segment but the ideal segment anchors the
    // same total work.
    coef_a_ = t_half * half;
    coef_c_ = 0.0;
  }
  CLIP_ENSURE(segment1_time(std::min(half, np_)) > 0.0,
              "degenerate scaling-segment fit");
}

double PerfPredictor::segment1_time(double t) const {
  return coef_a_ / t + coef_c_;
}

Seconds PerfPredictor::predict_time(int threads) const {
  CLIP_REQUIRE(threads >= 1 && threads <= spec_->shape.total_cores(),
               "threads outside the node");
  const double t = threads;
  if (cls_ == workloads::ScalabilityClass::kLinear)
    return Seconds(std::max(1e-9, segment1_time(t)));

  if (threads <= np_) return Seconds(std::max(1e-9, segment1_time(t)));

  // Second segment: linear in t from (np, T(np)) to the measured all-core
  // anchor (paper Eq. 2's reduced-slope segment).
  const double t_np = segment1_time(np_);
  if (threads_all_ == np_) return Seconds(std::max(1e-9, t_np));
  const double slope =
      (time_all_ - t_np) / static_cast<double>(threads_all_ - np_);
  return Seconds(std::max(1e-9, t_np + slope * (t - np_)));
}

double PerfPredictor::memory_time_share(int threads) const {
  if (memory_boundedness_ <= 0.0 || per_core_bw_ <= 0.0 ||
      bw_ceiling_ <= 0.0)
    return 0.0;
  const double demand = threads * per_core_bw_;
  const double sat = std::min(1.0, bw_ceiling_ / demand);
  if (sat >= 1.0) return 0.0;  // under the ceiling: frequency fully helps
  // Share of parallel time spent in the saturated memory term:
  //   T_par ∝ (1-m) + m/sat  →  memory share = (m/sat) / ((1-m) + m/sat).
  const double m = memory_boundedness_;
  const double mem_term = m / sat;
  return std::clamp(mem_term / ((1.0 - m) + mem_term), 0.0, 0.95);
}

Seconds PerfPredictor::predict_time(int threads, double f_rel) const {
  return predict_time(threads, f_rel, bw_ceiling_);
}

Seconds PerfPredictor::predict_time(int threads, double f_rel,
                                    double bw_cap_gbps) const {
  CLIP_REQUIRE(f_rel > 0.0 && f_rel <= 1.5, "f_rel out of range");
  CLIP_REQUIRE(bw_cap_gbps >= 0.0, "bandwidth cap must be >= 0");
  const double base = predict_time(threads).value();
  const double m = memory_boundedness_;
  if (m <= 0.0 || per_core_bw_ <= 0.0) {
    // Purely compute-bound: classic S(freq) ∝ freq.
    return Seconds(base / f_rel);
  }
  CLIP_REQUIRE(bw_cap_gbps > 0.0,
               "memory-bound prediction with zero bandwidth");
  const double demand0 = threads * per_core_bw_;
  const double sat0 =
      bw_ceiling_ > 0.0 ? std::min(1.0, bw_ceiling_ / demand0) : 1.0;
  const double sat_f =
      std::min(1.0, bw_cap_gbps / (demand0 * f_rel));
  const double numerator = (1.0 - m) / f_rel + m / (f_rel * sat_f);
  const double denominator = (1.0 - m) + m / sat0;
  return Seconds(base * numerator / denominator);
}

}  // namespace clip::core
