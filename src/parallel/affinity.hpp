// Core-thread affinity: the placement policies of paper step 3 ("choose core
// and memory affinity based on application memory access intensity").
//
// Two views live here:
//  * a *logical* placement computation (how many threads land on each socket
//    of an abstract node shape) that the simulator and the CLIP decision
//    engine share, and
//  * a *physical* pinning layer (sched_setaffinity) used by the host
//    thread-pool runtime when actually executing kernels.
#pragma once

#include <string>
#include <vector>

namespace clip::parallel {

/// Placement policies from the paper's node-level configuration space.
enum class AffinityPolicy {
  kCompact,  ///< fill socket 0 first; favors low power (parks socket 1)
  kScatter,  ///< round-robin across sockets; favors aggregate memory bandwidth
};

[[nodiscard]] const char* to_string(AffinityPolicy p);

/// Abstract node shape used for logical placement.
struct NodeShape {
  int sockets = 2;
  int cores_per_socket = 12;

  [[nodiscard]] int total_cores() const { return sockets * cores_per_socket; }
};

/// Threads assigned to each socket under a policy.
struct Placement {
  std::vector<int> threads_per_socket;

  [[nodiscard]] int total_threads() const;
  [[nodiscard]] int active_sockets() const;

  /// Normalized cross-socket interaction factor in [0, 1]:
  /// 0 when all threads share one socket, 1 for an even two-socket split.
  /// Used by the simulator to derive remote-NUMA traffic.
  [[nodiscard]] double cross_socket_factor() const;
};

/// Compute the logical placement of `threads` on `shape` under `policy`.
/// Throws clip::PreconditionError if threads exceed the node's core count.
[[nodiscard]] Placement place_threads(const NodeShape& shape, int threads,
                                      AffinityPolicy policy);

/// Map a worker index to a host CPU id under a policy, given the host CPU
/// count (modulo wrap when workers exceed CPUs).
[[nodiscard]] int worker_cpu(int worker_index, int host_cpus,
                             AffinityPolicy policy, const NodeShape& shape);

/// Pin the calling thread to a host CPU. Returns false (without throwing)
/// when the platform rejects the request, e.g. restricted containers.
bool pin_current_thread(int cpu);

/// Number of CPUs available to this process.
[[nodiscard]] int host_cpu_count();

}  // namespace clip::parallel
