// Fixture: D4 must fire on unseeded / platform-dependent RNG primitives.
#include <cstdlib>
#include <random>

int bad_seed() {
  std::random_device rd;  // line 6: D4
  return static_cast<int>(rd());
}

double bad_draw() {
  std::mt19937 gen(42);                               // line 11: D4
  std::uniform_real_distribution<double> dist(0, 1);  // line 12: D4
  return dist(gen);
}

int bad_legacy() { return rand() % 6; }  // line 16: D4
