#!/usr/bin/env bash
# CI entry point: configure, build and test every preset (release, asan,
# tsan), then run the bench regression gate against the committed
# BENCH_eval_engine.json. The fault/resilience suite is labeled `fault` and
# the crash-consistency suite (journal round-trips, kill-point recovery, the
# randomized kill+recover fuzzer) is labeled `recovery`, and the live
# observability plane (telemetry server sockets + thread, trace
# propagation, the SLO/alert engine) is labeled `obs_live`; all run under
# every preset, so the sanitizers see them on each CI pass. A quick
# sanitizer-only sweep of one suite is:
#
#   PRESETS="asan tsan" CTEST_ARGS="-L fault" scripts/ci.sh
#   PRESETS="asan tsan" CTEST_ARGS="-L recovery" scripts/ci.sh
#   PRESETS="asan tsan" CTEST_ARGS="-L obs_live" scripts/ci.sh
#
# On a ctest failure the fault integration suite's flight-recorder dump (a
# run record written into $CLIP_FLIGHT_DIR — see docs/observability.md) is
# archived under ci-artifacts/<preset>/ before exiting, so the failing run's
# telemetry timeline survives the red build.
#
# Environment:
#   PRESETS        space-separated subset of presets (default: all three)
#   CTEST_ARGS     extra arguments for ctest (e.g. "-L fault", "-R Queue")
#   JOBS           parallelism for build and test (default: nproc)
#   MAX_SLOWDOWN   regression-gate wall-clock threshold in percent (15)
#   SKIP_GATE      set to 1 to skip the regression-gate step
#   SKIP_LINT      set to 1 to skip the clip-lint stage
set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS="${PRESETS:-release asan tsan}"
JOBS="${JOBS:-$(nproc)}"
MAX_SLOWDOWN="${MAX_SLOWDOWN:-15}"
ARTIFACTS="ci-artifacts"

# Stage 0: static analysis. Runs before the build matrix — a determinism,
# crash-consistency, lock-discipline or error-handling invariant broken at
# the token level fails fast, before any compile minute is spent. Fails on
# any unsuppressed finding; the JSON report (suppression-count trend
# included) and the SARIF 2.1.0 report are archived with the artifacts. The
# scan runs twice against a fresh incremental cache and prints both
# timings: the cold pass is the real gate, the warm pass proves the cache
# keeps a full-tree rescan cheap (and cannot change the verdict — the
# driver diffs the two JSON reports).
if [ "${SKIP_LINT:-0}" != "1" ]; then
  echo "==> [lint] clip-analyze full-tree scan (src examples bench tests tools)"
  mkdir -p "$ARTIFACTS"
  lint_cache="ci-lint-cache.txt"
  rm -f "$lint_cache"
  t0=$(date +%s%N)
  LINT_CACHE="$lint_cache" scripts/lint.sh \
    --json "$ARTIFACTS/lint_report.json" \
    --sarif "$ARTIFACTS/lint_report.sarif" --quiet
  t1=$(date +%s%N)
  LINT_CACHE="$lint_cache" scripts/lint.sh \
    --json "$ARTIFACTS/lint_report_warm.json" \
    --sarif "$ARTIFACTS/lint_report.sarif" --quiet
  t2=$(date +%s%N)
  cmp -s "$ARTIFACTS/lint_report.json" "$ARTIFACTS/lint_report_warm.json" \
    || { echo "==> [lint] warm cache changed the report" >&2; exit 1; }
  rm -f "$ARTIFACTS/lint_report_warm.json" "$lint_cache"
  echo "==> [lint] clean; cold $(( (t1 - t0) / 1000000 )) ms," \
    "warm $(( (t2 - t1) / 1000000 )) ms (incremental cache)"
fi

for preset in $PRESETS; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==> [$preset] test"
  flight_dir="$ARTIFACTS/$preset/flight"
  rm -rf "$flight_dir" && mkdir -p "$flight_dir"
  # shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
  if ! CLIP_FLIGHT_DIR="$PWD/$flight_dir" \
      ctest --preset "$preset" -j "$JOBS" --output-on-failure ${CTEST_ARGS:-}; then
    echo "==> [$preset] ctest FAILED — flight-recorder artifacts:" >&2
    find "$flight_dir" -type f | sed 's/^/      /' >&2
    exit 1
  fi
  rm -rf "$ARTIFACTS/$preset"  # green run: nothing worth archiving
done

if [ "${SKIP_GATE:-0}" != "1" ] && [ -d build/bench ]; then
  echo "==> [gate] regression gate selftest"
  scripts/regression_gate.sh --selftest
  echo "==> [gate] bench sweep (release build)"
  mkdir -p "$ARTIFACTS"
  sh bench/run_benches.sh build "$JOBS" "$ARTIFACTS/BENCH_fresh.json" \
    "$ARTIFACTS/BENCH_redist_fresh.json" "$ARTIFACTS/BENCH_recovery_fresh.json" \
    "$ARTIFACTS/BENCH_obs_fresh.json"
  echo "==> [gate] compare against committed BENCH_eval_engine.json"
  scripts/regression_gate.sh --max-slowdown "$MAX_SLOWDOWN" \
    BENCH_eval_engine.json "$ARTIFACTS/BENCH_fresh.json"
  echo "==> [gate] batch-core throughput floor"
  scripts/regression_gate.sh --batch --max-slowdown "$MAX_SLOWDOWN" \
    BENCH_eval_engine.json "$ARTIFACTS/BENCH_fresh.json"
  echo "==> [gate] redistribution improvement floor"
  scripts/regression_gate.sh --redist "$ARTIFACTS/BENCH_redist_fresh.json"
  echo "==> [gate] crash-consistency: byte-identical recovery + journal overhead"
  scripts/regression_gate.sh --recovery "$ARTIFACTS/BENCH_recovery_fresh.json"
  echo "==> [gate] observability plane: purity + endpoints + duty-cycle overhead"
  scripts/regression_gate.sh --obs "$ARTIFACTS/BENCH_obs_fresh.json"
fi

echo "==> all presets passed: $PRESETS"
