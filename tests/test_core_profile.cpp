// Unit tests for the profiling side of CLIP: smart profiler, scalability
// classifier, knowledge database.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/classifier.hpp"
#include "core/knowledge_db.hpp"
#include "util/csv.hpp"
#include "core/profiler.hpp"
#include "sim/executor.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip::core {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

class ProfilerTest : public ::testing::Test {
 protected:
  sim::SimExecutor ex_{sim::MachineSpec{}, no_noise()};
  SmartProfiler profiler_{ex_};
};

// ---------------------------------------------------------------- profiler ----

TEST_F(ProfilerTest, ProfileHasTwoSamplesAndNoValidation) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const ProfileData p = profiler_.profile(w);
  EXPECT_EQ(p.all_core.config.threads, 24);
  EXPECT_EQ(p.half_core.config.threads, 12);
  EXPECT_FALSE(p.validation.has_value());
}

TEST_F(ProfilerTest, PerfRatioMatchesDirectMeasurement) {
  const auto w = *workloads::find_benchmark("CoMD");
  const ProfileData p = profiler_.profile(w);
  EXPECT_NEAR(p.perf_ratio_half_over_all,
              p.all_core.time.value() / p.half_core.time.value(), 1e-12);
}

TEST_F(ProfilerTest, ProfiledTimesScaleBackToFullProblem) {
  // The profiler runs a truncated problem but reports full-problem time;
  // it must be close to an actual full run.
  const auto w = *workloads::find_benchmark("AMG");
  const ProfileData p = profiler_.profile(w);
  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.threads = 24;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  const double actual = ex_.run_exact(w, cfg).time.value();
  EXPECT_NEAR(p.all_core.time.value(), actual, actual * 0.05);
}

TEST_F(ProfilerTest, MemoryIntensiveWorkloadPrefersScatter) {
  const auto w = *workloads::find_benchmark("TeaLeaf");
  const ProfileData p = profiler_.profile(w);
  EXPECT_EQ(p.preferred_affinity, parallel::AffinityPolicy::kScatter);
  EXPECT_GT(p.memory_intensity, 0.5);
}

TEST_F(ProfilerTest, ComputeBoundWorkloadPrefersCompact) {
  const auto w = *workloads::find_benchmark("EP");
  const ProfileData p = profiler_.profile(w);
  EXPECT_EQ(p.preferred_affinity, parallel::AffinityPolicy::kCompact);
  EXPECT_LT(p.memory_intensity, 0.1);
}

TEST_F(ProfilerTest, PerCoreBandwidthUsesLessSaturatedSample) {
  // For saturated workloads the half-core sample yields the larger (more
  // truthful) per-core figure.
  const auto w = *workloads::find_benchmark("STREAM-Triad");
  const ProfileData p = profiler_.profile(w);
  EXPECT_GT(p.per_core_bw_gbps, p.node_bw_gbps / 24.0);
}

TEST_F(ProfilerTest, ValidationSampleAttached) {
  const auto w = *workloads::find_benchmark("SP-MZ");
  ProfileData p = profiler_.profile(w);
  profiler_.validate_at(w, p, 14);
  ASSERT_TRUE(p.validation.has_value());
  EXPECT_EQ(p.validation->config.threads, 14);
  EXPECT_GT(p.validation->time.value(), 0.0);
}

TEST_F(ProfilerTest, ProfilingCostIsSmallFractionOfRun) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const ProfileData p = profiler_.profile(w);
  // Two samples at 5% each of already-parallel runs: far below one full run.
  EXPECT_LT(p.profiling_cost.value(), p.all_core.time.value() * 0.2);
}

TEST_F(ProfilerTest, ValidationThreadBoundsChecked) {
  const auto w = *workloads::find_benchmark("SP-MZ");
  ProfileData p = profiler_.profile(w);
  EXPECT_THROW(profiler_.validate_at(w, p, 25), PreconditionError);
  EXPECT_THROW(profiler_.validate_at(w, p, 0), PreconditionError);
}

TEST_F(ProfilerTest, FeatureVectorIsTableIWidth) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const ProfileData p = profiler_.profile(w);
  EXPECT_EQ(p.features().size(), 8u);
  // Event7 = full/half performance ratio, filled by the profiler.
  EXPECT_NEAR(p.features()[7], 1.0 / p.perf_ratio_half_over_all, 1e-12);
}

TEST(ProfilerOptionsTest, InvalidFractionRejected) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  ProfilerOptions opt;
  opt.profile_fraction = 0.0;
  EXPECT_THROW(SmartProfiler(ex, opt), PreconditionError);
}

// --------------------------------------------------------------- classifier ----

TEST(Classifier, PaperThresholds) {
  const ScalabilityClassifier c;
  EXPECT_EQ(c.classify(0.55), workloads::ScalabilityClass::kLinear);
  EXPECT_EQ(c.classify(0.699), workloads::ScalabilityClass::kLinear);
  EXPECT_EQ(c.classify(0.7), workloads::ScalabilityClass::kLogarithmic);
  EXPECT_EQ(c.classify(0.999), workloads::ScalabilityClass::kLogarithmic);
  EXPECT_EQ(c.classify(1.0), workloads::ScalabilityClass::kParabolic);
  EXPECT_EQ(c.classify(1.6), workloads::ScalabilityClass::kParabolic);
}

TEST(Classifier, CustomThresholds) {
  const ScalabilityClassifier c(ClassifierThresholds{0.6, 1.1});
  EXPECT_EQ(c.classify(0.65), workloads::ScalabilityClass::kLogarithmic);
  EXPECT_EQ(c.classify(1.05), workloads::ScalabilityClass::kLogarithmic);
}

TEST(Classifier, RejectsNonPositiveRatio) {
  const ScalabilityClassifier c;
  EXPECT_THROW((void)c.classify(0.0), PreconditionError);
}

TEST_F(ProfilerTest, AllPaperBenchmarksClassifyAsTableII) {
  const ScalabilityClassifier classifier;
  for (const auto& w : workloads::paper_benchmarks()) {
    const ProfileData p = profiler_.profile(w);
    EXPECT_EQ(classifier.classify(p), w.expected_class)
        << w.name << "/" << w.parameters
        << " ratio=" << p.perf_ratio_half_over_all;
  }
}

TEST_F(ProfilerTest, ClassificationRobustToMeasurementNoise) {
  // With the default (noisy) meter, classification of the paper set must
  // still match: the ratios are far enough from the thresholds.
  sim::SimExecutor noisy{sim::MachineSpec{}};
  SmartProfiler profiler(noisy);
  const ScalabilityClassifier classifier;
  for (const auto& w : workloads::paper_benchmarks()) {
    const ProfileData p = profiler.profile(w);
    EXPECT_EQ(classifier.classify(p), w.expected_class)
        << w.name << " ratio=" << p.perf_ratio_half_over_all;
  }
}

// ------------------------------------------------------------- knowledge DB ----

class KnowledgeDbTest : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() / "clip_kdb_test.csv";
  void TearDown() override { std::filesystem::remove(path_); }

  KnowledgeRecord sample_record() {
    KnowledgeRecord r;
    r.name = "BT-MZ";
    r.parameters = "C";
    r.cls = workloads::ScalabilityClass::kLogarithmic;
    r.inflection = 10;
    r.perf_ratio = 0.79;
    r.preferred_affinity = parallel::AffinityPolicy::kScatter;
    r.per_core_bw_gbps = 5.1;
    r.memory_intensity = 0.9;
    r.time_all_s = 27.0;
    r.time_half_s = 34.0;
    r.time_validation_s = 30.0;
    r.validation_threads = 10;
    r.cpu_power_all_w = 104.0;
    r.mem_power_all_w = 36.0;
    return r;
  }
};

TEST_F(KnowledgeDbTest, InsertAndLookup) {
  KnowledgeDb db;
  db.insert(sample_record());
  EXPECT_EQ(db.size(), 1u);
  const auto hit = db.lookup("BT-MZ", "C");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->inflection, 10);
  EXPECT_FALSE(db.lookup("BT-MZ", "D").has_value());
  EXPECT_FALSE(db.lookup("XX", "C").has_value());
}

TEST_F(KnowledgeDbTest, SameNameDifferentParametersAreDistinct) {
  KnowledgeDb db;
  KnowledgeRecord a = sample_record();
  a.name = "CloverLeaf";
  a.parameters = "clover128_short.in";
  KnowledgeRecord b = a;
  b.parameters = "clover16.in";
  b.inflection = 8;
  db.insert(a);
  db.insert(b);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.lookup("CloverLeaf", "clover16.in")->inflection, 8);
}

TEST_F(KnowledgeDbTest, InsertOverwritesExistingKey) {
  KnowledgeDb db;
  db.insert(sample_record());
  KnowledgeRecord updated = sample_record();
  updated.inflection = 12;
  db.insert(updated);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.lookup("BT-MZ", "C")->inflection, 12);
}

TEST_F(KnowledgeDbTest, SaveLoadRoundTrip) {
  KnowledgeDb db;
  db.insert(sample_record());
  db.save(path_);
  KnowledgeDb loaded;
  loaded.load(path_);
  const auto hit = loaded.lookup("BT-MZ", "C");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cls, workloads::ScalabilityClass::kLogarithmic);
  EXPECT_EQ(hit->inflection, 10);
  EXPECT_NEAR(hit->perf_ratio, 0.79, 1e-6);
  EXPECT_NEAR(hit->time_validation_s, 30.0, 1e-6);
  EXPECT_EQ(hit->validation_threads, 10);
}

TEST_F(KnowledgeDbTest, RecordToProfileReconstruction) {
  const KnowledgeRecord r = sample_record();
  const ProfileData p = r.to_profile(KnowledgeDbShape{24, ""});
  EXPECT_EQ(p.app_name, "BT-MZ");
  EXPECT_DOUBLE_EQ(p.all_core.time.value(), 27.0);
  EXPECT_DOUBLE_EQ(p.half_core.time.value(), 34.0);
  ASSERT_TRUE(p.validation.has_value());
  EXPECT_EQ(p.validation->config.threads, 10);
  EXPECT_DOUBLE_EQ(p.perf_ratio_half_over_all, 0.79);
  EXPECT_DOUBLE_EQ(p.per_core_bw_gbps, 5.1);
}

TEST_F(KnowledgeDbTest, RecordWithoutValidationReconstructsWithout) {
  KnowledgeRecord r = sample_record();
  r.validation_threads = 0;
  const ProfileData p = r.to_profile(KnowledgeDbShape{24, ""});
  EXPECT_FALSE(p.validation.has_value());
}

TEST_F(KnowledgeDbTest, MakeRecordCapturesProfile) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  SmartProfiler profiler(ex);
  const auto w = *workloads::find_benchmark("SP-MZ");
  ProfileData p = profiler.profile(w);
  profiler.validate_at(w, p, 12);
  const KnowledgeRecord r =
      make_record(p, workloads::ScalabilityClass::kParabolic, 12);
  EXPECT_EQ(r.name, "SP-MZ");
  EXPECT_EQ(r.inflection, 12);
  EXPECT_EQ(r.validation_threads, 12);
  EXPECT_DOUBLE_EQ(r.time_all_s, p.all_core.time.value());
}

TEST_F(KnowledgeDbTest, LoadRejectsSchemaMismatch) {
  clip::CsvDocument doc;
  doc.header = {"wrong", "schema"};
  doc.rows = {{"a", "b"}};
  clip::write_csv(path_, doc);
  KnowledgeDb db;
  EXPECT_THROW(db.load(path_), PreconditionError);
}

}  // namespace
}  // namespace clip::core
