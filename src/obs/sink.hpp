// Trace records and the pluggable sink interface.
//
// The tracer hands each *completed* span (and each counter sample) to one
// sink. Three implementations cover the deployment spectrum: NullSink
// (attached but discarding — the upper bound on instrumentation overhead),
// MemorySink (tests and the clipctl trace subcommand, exported to
// Chrome-trace JSON afterwards), and JsonlFileSink (streaming one JSON object
// per line for long-running services, tail-able and crash-tolerant).
// With no sink attached at all, instrumented code takes a single predictable
// branch per call site and records nothing.
#pragma once

#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace clip::obs {

/// One argument attached to a span. `numeric` controls JSON rendering:
/// numeric values are emitted unquoted so trace viewers can plot them.
struct SpanArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// A completed span: a named interval on one thread with nesting depth.
struct SpanRecord {
  std::string name;
  std::string category;  ///< Chrome-trace "cat" — e.g. "pipeline", "sim"
  std::vector<SpanArg> args;
  double start_us = 0.0;
  double duration_us = 0.0;
  int tid = 0;    ///< small stable per-thread index assigned by the tracer
  int depth = 0;  ///< nesting depth at begin (0 = top-level)
};

/// One sample of a counter track (Chrome-trace "C" event): a timestamp plus
/// one or more named series values, rendered as a stacked area in Perfetto.
struct CounterSample {
  std::string name;
  double time_us = 0.0;
  std::vector<std::pair<std::string, double>> series;
};

/// Receives completed trace records. Implementations must be thread-safe:
/// spans finish concurrently on every instrumented thread.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_span(const SpanRecord& span) = 0;
  virtual void on_counter(const CounterSample& sample) { (void)sample; }
};

/// Discards everything. Benchmarks the full recording path minus storage.
class NullSink final : public TraceSink {
 public:
  void on_span(const SpanRecord&) override {}
  void on_counter(const CounterSample&) override {}
};

/// Accumulates records in memory for later export or inspection.
class MemorySink final : public TraceSink {
 public:
  void on_span(const SpanRecord& span) override;
  void on_counter(const CounterSample& sample) override;

  /// Snapshot copies (the sink may keep recording concurrently).
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::vector<CounterSample> counters() const;
  [[nodiscard]] std::size_t span_count() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<CounterSample> counters_;
};

/// Streams each record as one JSON object per line (JSONL). The objects use
/// the same schema as the Chrome-trace `traceEvents` entries, so a JSONL
/// file wraps into a loadable trace with `jq -s '{traceEvents:.}'`.
class JsonlFileSink final : public TraceSink {
 public:
  explicit JsonlFileSink(const std::filesystem::path& path);

  void on_span(const SpanRecord& span) override;
  void on_counter(const CounterSample& sample) override;

 private:
  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace clip::obs
