// Energy analysis — power-bounded computing is about *performance* under a
// budget, but sites also pay for joules: this harness reports energy and
// energy-delay product (EDP) per method per budget. CLIP's throttling of
// unprofitable concurrency typically saves energy *and* time on parabolic
// apps — a free lunch the All-In configuration leaves on the table.
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_exact_testbed();

  baselines::AllInScheduler all_in(ex.spec());
  baselines::CoordinatedScheduler coordinated(ex);
  baselines::ClipAdapter clip(ex, workloads::training_benchmarks());

  for (double budget : {700.0, 1100.0}) {
    Table t({"benchmark", "method", "time (s)", "energy (kJ)",
             "EDP (kJ*s)", "vs All-In energy", "vs All-In EDP"});
    t.set_title("Energy and energy-delay product @" +
                format_double(budget, 0) + " W");
    for (const auto& w : workloads::paper_benchmarks()) {
      double ref_energy = 0.0, ref_edp = 0.0;
      auto row = [&](const std::string& name,
                     const sim::ClusterConfig& cfg) {
        const auto m = ex.run_exact(w, cfg);
        const double energy_kj = m.energy.value() / 1000.0;
        const double edp = energy_kj * m.time.value();
        if (name == "All-In") {
          ref_energy = energy_kj;
          ref_edp = edp;
        }
        t.add_row({w.name, name, format_double(m.time.value(), 2),
                   format_double(energy_kj, 2), format_double(edp, 2),
                   name == "All-In"
                       ? "--"
                       : format_percent(energy_kj / ref_energy - 1.0),
                   name == "All-In"
                       ? "--"
                       : format_percent(edp / ref_edp - 1.0)});
      };
      row("All-In", all_in.plan(w, Watts(budget)));
      row("Coordinated", coordinated.plan(w, Watts(budget)));
      row("CLIP", clip.plan(w, Watts(budget)));
    }
    ctx.print(t);
  }
  std::cout << "Negative EDP deltas mean CLIP is simultaneously faster and "
               "cheaper in joules — typical for the parabolic class, where "
               "surplus threads burn power to destroy performance.\n";
  return 0;
}
