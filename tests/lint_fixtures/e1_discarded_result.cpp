// E1 fixture: results of fallible calls must be consumed (or cast to void
// with a reason, or covered by a try block that handles the throw path).
// clip-lint: fallible(load, persist)

struct Store {
  void ignores_everything() {
    db.load("state.csv");
    persist("state.csv");
  }

  bool consumes_properly() {
    if (db.load("state.csv")) return persist("a");
    const bool ok = persist("b");
    (void)persist("c");
    return ok;
  }

  void guarded_by_try() {
    try {
      db.load("state.csv");
    } catch (...) {
    }
  }

  bool persist(const char* path);
  Db db;
};
