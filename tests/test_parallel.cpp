// Unit tests for clip::parallel — placement, barrier, thread pool,
// parallel_for. These run on the host (possibly single-CPU), so they assert
// correctness and throttling semantics, not speedup.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "parallel/affinity.hpp"
#include "parallel/barrier.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace clip::parallel {
namespace {

const NodeShape kHaswell{.sockets = 2, .cores_per_socket = 12};

// ------------------------------------------------------------- placement ----

TEST(Placement, CompactFillsFirstSocketFirst) {
  const Placement p = place_threads(kHaswell, 8, AffinityPolicy::kCompact);
  EXPECT_EQ(p.threads_per_socket[0], 8);
  EXPECT_EQ(p.threads_per_socket[1], 0);
  EXPECT_EQ(p.active_sockets(), 1);
}

TEST(Placement, CompactOverflowsToSecondSocket) {
  const Placement p = place_threads(kHaswell, 18, AffinityPolicy::kCompact);
  EXPECT_EQ(p.threads_per_socket[0], 12);
  EXPECT_EQ(p.threads_per_socket[1], 6);
  EXPECT_EQ(p.active_sockets(), 2);
}

TEST(Placement, ScatterBalancesSockets) {
  const Placement p = place_threads(kHaswell, 8, AffinityPolicy::kScatter);
  EXPECT_EQ(p.threads_per_socket[0], 4);
  EXPECT_EQ(p.threads_per_socket[1], 4);
}

TEST(Placement, ScatterOddCountSplitsUnevenlyByOne) {
  const Placement p = place_threads(kHaswell, 7, AffinityPolicy::kScatter);
  EXPECT_EQ(p.threads_per_socket[0] + p.threads_per_socket[1], 7);
  EXPECT_LE(std::abs(p.threads_per_socket[0] - p.threads_per_socket[1]), 1);
}

TEST(Placement, TotalThreadsPreserved) {
  for (int t = 1; t <= kHaswell.total_cores(); ++t) {
    EXPECT_EQ(place_threads(kHaswell, t, AffinityPolicy::kCompact)
                  .total_threads(),
              t);
    EXPECT_EQ(place_threads(kHaswell, t, AffinityPolicy::kScatter)
                  .total_threads(),
              t);
  }
}

TEST(Placement, CrossSocketFactorSingleSocketIsZero) {
  const Placement p = place_threads(kHaswell, 12, AffinityPolicy::kCompact);
  EXPECT_DOUBLE_EQ(p.cross_socket_factor(), 0.0);
}

TEST(Placement, CrossSocketFactorEvenSplitIsOne) {
  const Placement p = place_threads(kHaswell, 24, AffinityPolicy::kScatter);
  EXPECT_DOUBLE_EQ(p.cross_socket_factor(), 1.0);
}

TEST(Placement, CrossSocketFactorMonotoneInImbalance) {
  Placement even{.threads_per_socket = {6, 6}};
  Placement skewed{.threads_per_socket = {9, 3}};
  Placement single{.threads_per_socket = {12, 0}};
  EXPECT_GT(even.cross_socket_factor(), skewed.cross_socket_factor());
  EXPECT_GT(skewed.cross_socket_factor(), single.cross_socket_factor());
}

TEST(Placement, TooManyThreadsThrows) {
  EXPECT_THROW(place_threads(kHaswell, 25, AffinityPolicy::kCompact),
               PreconditionError);
}

TEST(Placement, ZeroThreadsThrows) {
  EXPECT_THROW(place_threads(kHaswell, 0, AffinityPolicy::kScatter),
               PreconditionError);
}

TEST(Affinity, WorkerCpuCompactIsIdentityModuloHost) {
  EXPECT_EQ(worker_cpu(0, 24, AffinityPolicy::kCompact, kHaswell), 0);
  EXPECT_EQ(worker_cpu(5, 24, AffinityPolicy::kCompact, kHaswell), 5);
  EXPECT_EQ(worker_cpu(25, 24, AffinityPolicy::kCompact, kHaswell), 1);
}

TEST(Affinity, WorkerCpuScatterAlternatesSockets) {
  // worker 0 -> socket0 core0 (cpu 0); worker 1 -> socket1 core0 (cpu 12).
  EXPECT_EQ(worker_cpu(0, 24, AffinityPolicy::kScatter, kHaswell), 0);
  EXPECT_EQ(worker_cpu(1, 24, AffinityPolicy::kScatter, kHaswell), 12);
  EXPECT_EQ(worker_cpu(2, 24, AffinityPolicy::kScatter, kHaswell), 1);
}

TEST(Affinity, HostCpuCountPositive) { EXPECT_GE(host_cpu_count(), 1); }

TEST(Affinity, PinCurrentThreadToCpu0Succeeds) {
  EXPECT_TRUE(pin_current_thread(0));
}

TEST(Affinity, PinNegativeCpuFails) {
  EXPECT_FALSE(pin_current_thread(-1));
}

TEST(Affinity, ToStringNames) {
  EXPECT_STREQ(to_string(AffinityPolicy::kCompact), "compact");
  EXPECT_STREQ(to_string(AffinityPolicy::kScatter), "scatter");
}

// --------------------------------------------------------------- barrier ----

TEST(Barrier, SingleThreadPassesThrough) {
  SenseBarrier b(1);
  for (int i = 0; i < 5; ++i) b.arrive_and_wait();
  SUCCEED();
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  SenseBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread of this round has incremented.
        if (counter.load() < (round + 1) * kThreads) ok = false;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(Barrier, ZeroPartiesThrows) {
  EXPECT_THROW(SenseBarrier b(0), PreconditionError);
}

// ------------------------------------------------------------ thread pool ----

TEST(ThreadPool, RunsRegionOnFullTeam) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::set<int> ranks;
  std::mutex m;
  pool.run_region([&](int rank, int team) {
    EXPECT_EQ(team, 4);
    ran.fetch_add(1);
    std::lock_guard lock(m);
    ranks.insert(rank);
  });
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(ranks, (std::set<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, ThrottlingShrinksTeam) {
  ThreadPool pool(6);
  pool.set_concurrency(2);
  std::atomic<int> ran{0};
  pool.run_region([&](int, int team) {
    EXPECT_EQ(team, 2);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, ThrottleThenGrowAgain) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.set_concurrency(1);
  pool.run_region([&](int, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
  pool.set_concurrency(4);
  ran = 0;
  pool.run_region([&](int, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, ConcurrencyClampedToBounds) {
  ThreadPool pool(4);
  pool.set_concurrency(100);
  EXPECT_EQ(pool.concurrency(), 4);
  pool.set_concurrency(0);
  EXPECT_EQ(pool.concurrency(), 1);
}

TEST(ThreadPool, ManySequentialRegions) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 200; ++i)
    pool.run_region([&](int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 600);
}

TEST(ThreadPool, WorkerExceptionPropagatesToSubmitter) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_region([&](int rank, int) {
    if (rank == 2) throw std::runtime_error("worker boom");
  }),
               std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> ran{0};
  pool.run_region([&](int, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, Rank0ExceptionAlsoPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_region([&](int rank, int) {
    if (rank == 0) throw std::logic_error("rank0 boom");
  }),
               std::logic_error);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  int ran = 0;
  pool.run_region([&](int rank, int team) {
    EXPECT_EQ(rank, 0);
    EXPECT_EQ(team, 1);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, InvalidSizeThrows) {
  EXPECT_THROW(ThreadPool pool(0), PreconditionError);
}

TEST(ThreadPool, SetAffinityPinsWorkers) {
  ThreadPool pool(4);
  const int pinned =
      pool.set_affinity(AffinityPolicy::kCompact, kHaswell);
  // On Linux with at least 1 CPU all pins should succeed.
  EXPECT_EQ(pinned, 4);
}

// ------------------------------------------------------------ parallel_for ----

TEST(ParallelFor, StaticCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000,
               [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, DynamicCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(
      pool, 0, 1000, [&](std::int64_t i) { hits[i].fetch_add(1); },
      Schedule::kDynamic, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int hits = 0;
  parallel_for(pool, 5, 5, [&](std::int64_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(ParallelFor, NonZeroBase) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, 10, 20, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145);  // 10+11+...+19
}

TEST(ParallelFor, RangeSmallerThanTeam) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(pool, 0, 3, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, InvalidRangeThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10, 5, [](std::int64_t) {}),
               PreconditionError);
}

TEST(ParallelFor, ThrottledExecutionSameResult) {
  ThreadPool pool(4);
  auto run_sum = [&](int threads) {
    pool.set_concurrency(threads);
    std::atomic<std::int64_t> sum{0};
    parallel_for(pool, 0, 500,
                 [&](std::int64_t i) { sum.fetch_add(i * i); });
    return sum.load();
  };
  const auto s4 = run_sum(4);
  const auto s1 = run_sum(1);
  const auto s3 = run_sum(3);
  EXPECT_EQ(s4, s1);
  EXPECT_EQ(s3, s1);
}

TEST(ParallelReduce, SumsRange) {
  ThreadPool pool(4);
  const double total = parallel_reduce(
      pool, 1, 101, 0.0, [](std::int64_t i, double& acc) { acc += i; });
  EXPECT_DOUBLE_EQ(total, 5050.0);
}

TEST(ParallelReduce, InitValueIncluded) {
  ThreadPool pool(2);
  const double total = parallel_reduce(
      pool, 0, 10, 100.0, [](std::int64_t, double& acc) { acc += 1.0; });
  EXPECT_DOUBLE_EQ(total, 110.0);
}

TEST(ParallelReduce, DeterministicAcrossTeamSizes) {
  ThreadPool pool(4);
  auto run = [&](int threads) {
    pool.set_concurrency(threads);
    return parallel_reduce(pool, 0, 1000, 0.0,
                           [](std::int64_t i, double& acc) {
                             acc += static_cast<double>(i) * 0.5;
                           });
  };
  EXPECT_DOUBLE_EQ(run(1), run(4));
}

}  // namespace
}  // namespace clip::parallel
