// Unit tests for clip::workloads — signatures, the benchmark catalog, and
// the real computational kernels (correctness under throttling/affinity).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"
#include "workloads/kernels.hpp"
#include "workloads/signature.hpp"

namespace clip::workloads {
namespace {

// -------------------------------------------------------------- signature ----

TEST(Signature, DefaultIsValid) {
  WorkloadSignature w;
  w.name = "test";
  EXPECT_NO_THROW(w.validate());
}

TEST(Signature, RejectsEmptyName) {
  WorkloadSignature w;
  EXPECT_THROW(w.validate(), PreconditionError);
}

TEST(Signature, RejectsNonPositiveBaseTime) {
  WorkloadSignature w;
  w.name = "t";
  w.node_base_time_s = 0.0;
  EXPECT_THROW(w.validate(), PreconditionError);
}

TEST(Signature, RejectsSerialFractionOutOfRange) {
  WorkloadSignature w;
  w.name = "t";
  w.serial_fraction = 1.0;
  EXPECT_THROW(w.validate(), PreconditionError);
  w.serial_fraction = -0.1;
  EXPECT_THROW(w.validate(), PreconditionError);
}

TEST(Signature, RejectsMemoryBoundWithoutBandwidthDemand) {
  WorkloadSignature w;
  w.name = "t";
  w.memory_boundedness = 0.5;
  w.bw_per_core_gbps = 0.0;
  EXPECT_THROW(w.validate(), PreconditionError);
}

TEST(Signature, RejectsSyncExponentBelowOne) {
  WorkloadSignature w;
  w.name = "t";
  w.sync_exponent = 0.5;
  EXPECT_THROW(w.validate(), PreconditionError);
}

TEST(Signature, ClassNames) {
  EXPECT_STREQ(to_string(ScalabilityClass::kLinear), "linear");
  EXPECT_STREQ(to_string(ScalabilityClass::kLogarithmic), "logarithmic");
  EXPECT_STREQ(to_string(ScalabilityClass::kParabolic), "parabolic");
}

TEST(Signature, PatternNames) {
  EXPECT_STREQ(to_string(WorkloadPattern::kCompute), "compute");
  EXPECT_STREQ(to_string(WorkloadPattern::kComputeMemory),
               "compute/memory");
  EXPECT_STREQ(to_string(WorkloadPattern::kMemory), "memory");
}

// ---------------------------------------------------------------- catalog ----

TEST(Catalog, PaperBenchmarksAreTheTableIITen) {
  const auto& v = paper_benchmarks();
  EXPECT_EQ(v.size(), 10u);
  std::multiset<std::string> names;
  for (const auto& w : v) names.insert(w.name);
  EXPECT_EQ(names.count("CloverLeaf"), 2u);  // two input decks
  for (const char* expected :
       {"BT-MZ", "LU-MZ", "SP-MZ", "CoMD", "AMG", "miniAero", "miniMD",
        "TeaLeaf"})
    EXPECT_EQ(names.count(expected), 1u) << expected;
}

TEST(Catalog, AllEntriesValidate) {
  for (const auto& w : all_benchmarks()) EXPECT_NO_THROW(w.validate());
}

TEST(Catalog, TrainingSuiteCoversAllThreeClasses) {
  int linear = 0, logarithmic = 0, parabolic = 0;
  for (const auto& w : training_benchmarks()) {
    switch (w.expected_class) {
      case ScalabilityClass::kLinear:
        ++linear;
        break;
      case ScalabilityClass::kLogarithmic:
        ++logarithmic;
        break;
      case ScalabilityClass::kParabolic:
        ++parabolic;
        break;
    }
  }
  EXPECT_GE(linear, 3);
  EXPECT_GE(logarithmic, 3);
  EXPECT_GE(parabolic, 3);
}

TEST(Catalog, PaperClassesMatchTableII) {
  auto expect_class = [](const std::string& name, ScalabilityClass cls) {
    const auto w = find_benchmark(name);
    ASSERT_TRUE(w.has_value()) << name;
    EXPECT_EQ(w->expected_class, cls) << name;
  };
  expect_class("BT-MZ", ScalabilityClass::kLogarithmic);
  expect_class("LU-MZ", ScalabilityClass::kLogarithmic);
  expect_class("SP-MZ", ScalabilityClass::kParabolic);
  expect_class("CoMD", ScalabilityClass::kLinear);
  expect_class("AMG", ScalabilityClass::kLinear);
  expect_class("miniAero", ScalabilityClass::kParabolic);
  expect_class("miniMD", ScalabilityClass::kLinear);
  expect_class("TeaLeaf", ScalabilityClass::kParabolic);
}

TEST(Catalog, FindByNameAndParameters) {
  const auto big = find_benchmark("CloverLeaf", "clover128_short.in");
  const auto small = find_benchmark("CloverLeaf", "clover16.in");
  ASSERT_TRUE(big.has_value());
  ASSERT_TRUE(small.has_value());
  EXPECT_NE(big->node_base_time_s, small->node_base_time_s);
}

TEST(Catalog, FindUnknownReturnsNullopt) {
  EXPECT_FALSE(find_benchmark("DoesNotExist").has_value());
  EXPECT_FALSE(find_benchmark("CloverLeaf", "wrong.in").has_value());
}

TEST(Catalog, TrainingSetIncludesPaperSuites) {
  // §V-B2: NPB, HPCC, STREAM, PolyBench.
  EXPECT_TRUE(find_benchmark("EP").has_value());
  EXPECT_TRUE(find_benchmark("STREAM-Triad").has_value());
  EXPECT_TRUE(find_benchmark("HPCC-FFT").has_value());
  EXPECT_TRUE(find_benchmark("PolyBench-gemm").has_value());
}

TEST(Catalog, AllBenchmarksIsUnionOfBoth) {
  EXPECT_EQ(all_benchmarks().size(),
            paper_benchmarks().size() + training_benchmarks().size());
}

// ---------------------------------------------------------------- kernels ----

class KernelTest : public ::testing::Test {
 protected:
  parallel::ThreadPool pool_{4};
};

TEST_F(KernelTest, StreamTriadChecksumIsExact) {
  // After one sweep b[i] = 1.5 + 3*2.5 = 9.0; subsequent sweeps alternate
  // deterministically — just check the mean is finite and positive.
  const KernelResult r = stream_triad(pool_, 1024, 1);
  EXPECT_DOUBLE_EQ(r.checksum, 9.0);
  EXPECT_GT(r.bytes_moved, 0.0);
}

TEST_F(KernelTest, StreamTriadThrottlingPreservesResult) {
  pool_.set_concurrency(4);
  const double full = stream_triad(pool_, 4096, 3).checksum;
  pool_.set_concurrency(1);
  const double single = stream_triad(pool_, 4096, 3).checksum;
  EXPECT_DOUBLE_EQ(full, single);
}

TEST_F(KernelTest, DgemmMatchesSerialReference) {
  pool_.set_concurrency(4);
  const double parallel_sum = blocked_dgemm(pool_, 96).checksum;
  pool_.set_concurrency(1);
  const double serial_sum = blocked_dgemm(pool_, 96).checksum;
  EXPECT_NEAR(parallel_sum, serial_sum, 1e-9 * std::fabs(serial_sum));
}

TEST_F(KernelTest, DgemmFlopsAccounting) {
  const KernelResult r = blocked_dgemm(pool_, 64);
  EXPECT_DOUBLE_EQ(r.flops, 2.0 * 64.0 * 64.0 * 64.0);
}

TEST_F(KernelTest, JacobiConvergesTowardBoundary) {
  // With a hot left edge, total heat grows monotonically from zero.
  const KernelResult few = jacobi_stencil(pool_, 64, 5);
  const KernelResult many = jacobi_stencil(pool_, 64, 50);
  EXPECT_GT(few.checksum, 0.0);
  EXPECT_GT(many.checksum, few.checksum);
}

TEST_F(KernelTest, JacobiDeterministicUnderThrottling) {
  pool_.set_concurrency(3);
  const double a = jacobi_stencil(pool_, 48, 10).checksum;
  pool_.set_concurrency(1);
  const double b = jacobi_stencil(pool_, 48, 10).checksum;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(KernelTest, LennardJonesNearEquilibriumEnergyIsNegative) {
  // Atoms sit near the potential minimum: binding energy < 0.
  const KernelResult r = lennard_jones(pool_, 4, 1);
  EXPECT_LT(r.checksum, 0.0);
}

TEST_F(KernelTest, LennardJonesDeterministicUnderThrottling) {
  pool_.set_concurrency(4);
  const double a = lennard_jones(pool_, 4, 2).checksum;
  pool_.set_concurrency(2);
  const double b = lennard_jones(pool_, 4, 2).checksum;
  EXPECT_NEAR(a, b, 1e-9 * std::fabs(a));
}

TEST_F(KernelTest, MonteCarloPiApproximatesPi) {
  const KernelResult r = monte_carlo_pi(pool_, 2000000);
  EXPECT_NEAR(r.checksum, 3.14159, 0.01);
}

TEST_F(KernelTest, MonteCarloDeterministicPerTeamSize) {
  pool_.set_concurrency(2);
  const double a = monte_carlo_pi(pool_, 100000).checksum;
  const double b = monte_carlo_pi(pool_, 100000).checksum;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(KernelTest, SpmvNormalizedVectorHasUnitNorm) {
  const KernelResult r = spmv(pool_, 4096, 5);
  EXPECT_TRUE(std::isfinite(r.checksum));
  EXPECT_GT(std::fabs(r.checksum), 0.0);
}

TEST_F(KernelTest, SpmvDeterministicUnderThrottling) {
  pool_.set_concurrency(4);
  const double a = spmv(pool_, 2048, 8).checksum;
  pool_.set_concurrency(1);
  const double b = spmv(pool_, 2048, 8).checksum;
  EXPECT_NEAR(a, b, 1e-9);
}

TEST_F(KernelTest, RegistryListsAllKernels) {
  const auto& reg = kernel_registry();
  EXPECT_EQ(reg.size(), 8u);
  for (const auto& k : reg)
    EXPECT_NO_THROW((void)run_kernel_by_name(pool_, k.name)) << k.name;
}

TEST_F(KernelTest, RunUnknownKernelThrows) {
  EXPECT_THROW((void)run_kernel_by_name(pool_, "bogus"),
               PreconditionError);
}

TEST_F(KernelTest, FftParsevalEnergyPreserved) {
  // Parseval: sum |X_k|^2 = n * sum |x_i|^2. Compute the time-domain
  // energy of the same deterministic input and compare.
  const std::size_t n = 256;
  double time_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = std::sin(0.37 * static_cast<double>(i)) +
                     0.5 * std::cos(1.31 * static_cast<double>(i));
    time_energy += v * v;
  }
  const KernelResult r = batched_fft(pool_, n, 4);
  EXPECT_NEAR(r.checksum, time_energy * static_cast<double>(n),
              time_energy * n * 1e-9);
}

TEST_F(KernelTest, FftDeterministicUnderThrottling) {
  pool_.set_concurrency(4);
  const double a = batched_fft(pool_, 512, 8).checksum;
  pool_.set_concurrency(1);
  const double b = batched_fft(pool_, 512, 8).checksum;
  EXPECT_NEAR(a, b, std::fabs(a) * 1e-12);
}

TEST_F(KernelTest, FftRejectsNonPowerOfTwo) {
  EXPECT_THROW((void)batched_fft(pool_, 96, 2), PreconditionError);
  EXPECT_THROW((void)batched_fft(pool_, 2, 2), PreconditionError);
}

TEST_F(KernelTest, HistogramMassConserved) {
  pool_.set_concurrency(4);
  const KernelResult r = histogram(pool_, 100000, 64);
  // total mass is encoded in the fractional digest
  const double total = (r.checksum - std::floor(r.checksum)) * 1e12;
  // team of 4: 4 * floor(100000/4) samples
  EXPECT_NEAR(total, 100000.0, 4.0);
}

TEST_F(KernelTest, HistogramPeakNearDistributionMode) {
  // Mean of two uniforms peaks at 0.5: the fullest bin sits mid-range.
  const KernelResult r = histogram(pool_, 400000, 100);
  const double peak_bin = std::floor(r.checksum);
  EXPECT_GT(peak_bin, 35.0);
  EXPECT_LT(peak_bin, 65.0);
}

TEST_F(KernelTest, HistogramDeterministicPerTeamSize) {
  pool_.set_concurrency(2);
  const double a = histogram(pool_, 50000, 32).checksum;
  const double b = histogram(pool_, 50000, 32).checksum;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(KernelTest, InvalidSizesThrow) {
  EXPECT_THROW((void)stream_triad(pool_, 0, 1), PreconditionError);
  EXPECT_THROW((void)jacobi_stencil(pool_, 2, 1), PreconditionError);
  EXPECT_THROW((void)lennard_jones(pool_, 1, 1), PreconditionError);
  EXPECT_THROW((void)monte_carlo_pi(pool_, 0), PreconditionError);
  EXPECT_THROW((void)spmv(pool_, 2, 1), PreconditionError);
}

TEST_F(KernelTest, AffinityChangeDoesNotAlterResults) {
  const parallel::NodeShape shape{.sockets = 2, .cores_per_socket = 2};
  pool_.set_affinity(parallel::AffinityPolicy::kCompact, shape);
  const double compact = jacobi_stencil(pool_, 48, 10).checksum;
  pool_.set_affinity(parallel::AffinityPolicy::kScatter, shape);
  const double scatter = jacobi_stencil(pool_, 48, 10).checksum;
  EXPECT_DOUBLE_EQ(compact, scatter);
}

}  // namespace
}  // namespace clip::workloads
