// Machine presets — alternative cluster configurations.
//
// The paper evaluates on one Haswell testbed; a framework claiming
// generality must not be calibrated to a single machine. These presets vary
// every axis the decision pipeline depends on (core counts, bandwidth per
// socket, power envelopes, ladder ranges, cluster size) so the test suite
// can assert that CLIP's *behaviour* (budget respect, beating the
// baselines, class-appropriate throttling) survives hardware changes, not
// just its calibration.
#pragma once

#include "sim/machine.hpp"

namespace clip::sim {

/// The paper's testbed: 8 nodes x 2x12 Haswell @2.3 GHz, 34 GB/s/socket.
[[nodiscard]] MachineSpec haswell_testbed();

/// A fatter dual-socket node generation: 2x14 cores @2.6 GHz nominal,
/// 38.4 GB/s per socket, higher base draw. 8 nodes.
[[nodiscard]] MachineSpec broadwell_fat();

/// An older, narrower machine: 2x8 cores @2.0 GHz, 25.6 GB/s per socket,
/// 16 nodes (more, weaker nodes shifts the cluster-level trade-offs).
[[nodiscard]] MachineSpec ivybridge_wide_cluster();

/// A bandwidth-rich node: 2x16 cores @2.1 GHz with 60 GB/s per socket —
/// memory saturation arrives much later, pushing inflection points out.
[[nodiscard]] MachineSpec bandwidth_rich();

/// All presets with display names, for parameterized tests/benches.
struct NamedSpec {
  const char* name;
  MachineSpec spec;
};
[[nodiscard]] std::vector<NamedSpec> all_presets();

}  // namespace clip::sim
