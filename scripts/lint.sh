#!/usr/bin/env sh
# clip-analyze driver (binary: clip-lint): build the analyzer and scan the
# whole tree — src/, examples/, bench/, tests/ and the analyzer's own
# sources (tests/lint_fixtures/ are deliberately-violating lint inputs and
# are excluded). Exit 0 = zero unsuppressed findings (suppressions with
# reasons are fine), 1 = violations, 2 = build/usage error. The JSON report
# (default build/lint_report.json) records per-rule counts and the
# suppression total so reviews can watch it trend; the SARIF 2.1.0 report
# (default build/lint_report.sarif) is what code-review UIs ingest — see
# docs/static-analysis.md.
#
# Usage: scripts/lint.sh [--json PATH] [--sarif PATH] [extra clip-lint args...]
#
# Environment:
#   BUILD_DIR   cmake build tree holding (or receiving) the clip-lint target
#               (default: build)
#   LINT_CACHE  incremental result cache path (default:
#               $BUILD_DIR/lint_cache.txt); set empty to scan cold
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JSON_OUT="$BUILD_DIR/lint_report.json"
SARIF_OUT="$BUILD_DIR/lint_report.sarif"
while [ $# -ge 2 ]; do
  case "$1" in
    --json) JSON_OUT=$2; shift 2 ;;
    --sarif) SARIF_OUT=$2; shift 2 ;;
    *) break ;;
  esac
done

LINT_BIN="$BUILD_DIR/tools/clip-lint/clip-lint"
if [ ! -x "$LINT_BIN" ]; then
  echo "lint: building clip-lint into $BUILD_DIR" >&2
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target clip-lint -j "$(nproc)" >/dev/null
fi

CACHE="${LINT_CACHE-$BUILD_DIR/lint_cache.txt}"
set -- --root . --json "$JSON_OUT" --sarif "$SARIF_OUT" \
  --exclude tests/lint_fixtures "$@"
if [ -n "$CACHE" ]; then
  set -- --cache "$CACHE" "$@"
fi

"$LINT_BIN" "$@" src examples bench tests tools/clip-lint
echo "lint: reports written to $JSON_OUT and $SARIF_OUT" >&2

# Observability doc drift: every series/metric/span/event name emitted in
# src/ must be documented in docs/observability.md.
scripts/check_obs_docs.sh
