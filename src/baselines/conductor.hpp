// The "Conductor" baseline — Marathe et al., "A Run-time System for
// Power-constrained HPC Applications" (ISC 2015), as characterized in the
// paper's related work (§VI): it "exhaustively searches available
// configurations to find the optimal thread concurrency, without discerning
// the optimal number of nodes."
//
// Concretely: every supplied node participates; the thread count and the
// CPU/DRAM split are found by *executing* candidate configurations (an
// exhaustive search over even concurrency levels and a small split grid),
// not by models. It finds strong node-level configurations but pays a
// search cost CLIP avoids, and never reduces the node count — which is
// precisely where CLIP wins at low budgets.
#pragma once

#include "baselines/scheduler_iface.hpp"
#include "sim/executor.hpp"

namespace clip::baselines {

class ConductorScheduler final : public PowerScheduler {
 public:
  explicit ConductorScheduler(sim::SimExecutor& executor)
      : executor_(&executor) {}

  [[nodiscard]] std::string name() const override { return "Conductor"; }

  [[nodiscard]] sim::ClusterConfig plan(
      const workloads::WorkloadSignature& app,
      Watts cluster_budget) override;

  /// Executions the last plan() spent searching (CLIP: <= 3 profiles).
  [[nodiscard]] int last_search_cost() const { return last_search_cost_; }

 private:
  sim::SimExecutor* executor_;
  int last_search_cost_ = 0;
};

}  // namespace clip::baselines
