// Strong unit types for the quantities CLIP reasons about.
//
// Power-bounded scheduling mixes watts, joules, gigahertz and seconds in the
// same expressions; a silent watts-for-gigahertz swap is exactly the kind of
// bug an analytic simulator cannot surface on its own. Each quantity is a
// distinct type with only the physically meaningful operations defined
// (power × time = energy, energy / time = power, ...).
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>
#include <ostream>

namespace clip {

namespace detail {

/// CRTP base providing the arithmetic shared by all scalar quantities.
template <class Derived>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived(a.value_ + b.value_);
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived(a.value_ - b.value_);
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived(a.value_ * s);
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived(a.value_ * s);
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived(a.value_ / s);
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value_ / b.value_;
  }
  friend constexpr Derived operator-(Derived a) { return Derived(-a.value_); }

  Derived& operator+=(Derived o) {
    value_ += o.value_;
    return self();
  }
  Derived& operator-=(Derived o) {
    value_ -= o.value_;
    return self();
  }
  Derived& operator*=(double s) {
    value_ *= s;
    return self();
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
  double value_ = 0.0;
};

}  // namespace detail

/// Electrical power in watts.
class Watts : public detail::Quantity<Watts> {
 public:
  using Quantity::Quantity;
};

/// Energy in joules.
class Joules : public detail::Quantity<Joules> {
 public:
  using Quantity::Quantity;
};

/// Wall-clock (or modeled) time in seconds.
class Seconds : public detail::Quantity<Seconds> {
 public:
  using Quantity::Quantity;
};

/// Clock frequency in gigahertz.
class GHz : public detail::Quantity<GHz> {
 public:
  using Quantity::Quantity;
};

/// Memory bandwidth in gigabytes per second.
class GBps : public detail::Quantity<GBps> {
 public:
  using Quantity::Quantity;
};

// The physically meaningful cross-type operations.
constexpr Joules operator*(Watts p, Seconds t) {
  return Joules(p.value() * t.value());
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts(e.value() / t.value());
}
constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds(e.value() / p.value());
}

// User-defined literals: 120.0_W, 2.3_GHz, 30.0_s, 12.8_GBps.
namespace literals {
constexpr Watts operator""_W(long double v) {
  return Watts(static_cast<double>(v));
}
constexpr Watts operator""_W(unsigned long long v) {
  return Watts(static_cast<double>(v));
}
constexpr Joules operator""_J(long double v) {
  return Joules(static_cast<double>(v));
}
constexpr Seconds operator""_s(long double v) {
  return Seconds(static_cast<double>(v));
}
constexpr GHz operator""_GHz(long double v) {
  return GHz(static_cast<double>(v));
}
constexpr GBps operator""_GBps(long double v) {
  return GBps(static_cast<double>(v));
}
}  // namespace literals

inline std::ostream& operator<<(std::ostream& os, Watts w) {
  return os << w.value() << " W";
}
inline std::ostream& operator<<(std::ostream& os, Joules j) {
  return os << j.value() << " J";
}
inline std::ostream& operator<<(std::ostream& os, Seconds s) {
  return os << s.value() << " s";
}
inline std::ostream& operator<<(std::ostream& os, GHz f) {
  return os << f.value() << " GHz";
}
inline std::ostream& operator<<(std::ostream& os, GBps b) {
  return os << b.value() << " GB/s";
}

}  // namespace clip
