// Cluster-level power allocation — paper §III-B and Algorithm 1.
//
// §III-B1: "we can obtain several options for the node count, each
// corresponding to a node power budget falling in the range
// [P_cpu,L2 + P_mem,L2, P_cpu,L1 + P_mem,L1]. For each application, the
// scheduler could choose the best number n of nodes."
//
// The default mode implements exactly that: enumerate the candidate node
// counts (the application's predefined process counts, or every count up to
// the cluster size), ask the node-level selector for the best configuration
// under each per-node share, and keep the count whose *predicted* cluster
// performance (node time / node count) is best. No execution is involved —
// the scoring runs entirely on the prediction models.
//
// `strict_algorithm1 = true` switches to the literal pseudocode of
// Algorithm 1 (largest predefined count clearing the range's lower bound;
// otherwise P_ub / P_hi nodes). The ablation bench quantifies the gap.
#pragma once

#include <vector>

#include "core/node_config.hpp"
#include "obs/session.hpp"
#include "core/power_range.hpp"
#include "core/profile.hpp"
#include "sim/machine.hpp"
#include "workloads/signature.hpp"

namespace clip::core {

struct ClusterDecision {
  int nodes = 1;
  Watts node_budget{0.0};   ///< P_ub / nodes
  PowerRange node_range;    ///< acceptable range at the recommended config
  NodeDecision node;        ///< final node-level decision under node_budget
  double predicted_score = 0.0;  ///< predicted node time / nodes (lower = better)
};

struct ClusterAllocOptions {
  bool strict_algorithm1 = false;
};

class ClusterAllocator {
 public:
  ClusterAllocator(const sim::MachineSpec& spec,
                   const NodeConfigSelector& selector,
                   ClusterAllocOptions options = ClusterAllocOptions{})
      : spec_(&spec), selector_(&selector), options_(options) {}

  /// Choose node count + per-node budget + node config for a profiled
  /// application under the cluster budget. `predefined_counts` empty = the
  /// application decomposes at any node count.
  [[nodiscard]] ClusterDecision allocate(
      const ProfileData& profile, workloads::ScalabilityClass cls, int np,
      Watts cluster_budget,
      const std::vector<int>& predefined_counts = {}) const;

  /// Default predefined process counts for grid codes: powers of two up to
  /// the cluster size.
  [[nodiscard]] std::vector<int> power_of_two_counts() const;

  /// Attach an observability session (nullptr detaches): one
  /// "pipeline.node_select" span per candidate node count scored.
  void set_observer(obs::ObsSession* obs) { obs_ = obs; }

 private:
  [[nodiscard]] ClusterDecision allocate_scored(
      const ProfileData& profile, workloads::ScalabilityClass cls, int np,
      Watts cluster_budget, const std::vector<int>& candidates,
      const PowerRange& range) const;

  [[nodiscard]] ClusterDecision allocate_strict(
      const ProfileData& profile, workloads::ScalabilityClass cls, int np,
      Watts cluster_budget, const std::vector<int>& predefined_counts,
      const PowerRange& range) const;

  const sim::MachineSpec* spec_;
  const NodeConfigSelector* selector_;
  ClusterAllocOptions options_;
  obs::ObsSession* obs_ = nullptr;
};

}  // namespace clip::core
