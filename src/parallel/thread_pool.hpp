// A worker-team thread pool with live concurrency throttling and affinity —
// the node-level enforcement mechanism of the paper ("thread concurrency
// throttling, and core-thread affinity", §I).
//
// The pool spawns `max_threads` workers once; `set_concurrency(k)` changes
// how many of them participate in subsequent parallel regions without
// tearing threads down, mirroring how an OpenMP runtime reacts to
// omp_set_num_threads between regions. `set_affinity` re-pins workers
// according to a placement policy.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/affinity.hpp"

namespace clip::parallel {

class ThreadPool {
 public:
  /// Function run by each participating worker in a region:
  /// (worker_rank, team_size).
  using RegionFn = std::function<void(int, int)>;

  /// Spawns `max_threads` workers (>=1). Workers are initially unpinned.
  explicit ThreadPool(int max_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int max_threads() const { return max_threads_; }
  [[nodiscard]] int concurrency() const;

  /// Throttle: the next regions run with `threads` participants (clamped to
  /// [1, max_threads]). Callable between regions from the submitting thread.
  void set_concurrency(int threads);

  /// Re-pin workers per the policy on the given (abstract) node shape.
  /// Returns the number of workers successfully pinned (0 on platforms that
  /// refuse affinity changes — the pool still works unpinned).
  int set_affinity(AffinityPolicy policy, const NodeShape& shape);

  /// Run `fn(rank, team_size)` on the current team and wait for completion.
  /// Rank 0 runs on the calling thread; exceptions from any worker are
  /// rethrown here (first one wins).
  void run_region(const RegionFn& fn);

 private:
  void worker_main(int worker_index);

  const int max_threads_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable region_start_;
  std::condition_variable region_done_;
  int concurrency_ = 1;
  std::uint64_t generation_ = 0;  // bumped per region
  int remaining_in_region_ = 0;
  const RegionFn* active_fn_ = nullptr;
  int active_team_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace clip::parallel
