#!/usr/bin/env sh
# Bench regression gate: compare a freshly produced BENCH_eval_engine.json
# against the committed one and fail on regressions.
#
# Usage: scripts/regression_gate.sh [options] <committed.json> <fresh.json>
#        scripts/regression_gate.sh --batch <committed.json> <fresh.json>
#        scripts/regression_gate.sh --redist <BENCH_redist.json>
#        scripts/regression_gate.sh --recovery <BENCH_recovery.json>
#        scripts/regression_gate.sh --obs <BENCH_obs.json>
#        scripts/regression_gate.sh --selftest
#
# Options:
#   --max-slowdown PCT  fail when a bench's engine wall-clock regresses by
#                       more than PCT percent (default: 15)
#   --min-ms MS         skip the wall-clock check when the committed run was
#                       faster than MS milliseconds — sub-noise benches would
#                       trip the percentage gate on scheduler jitter alone
#                       (default: 50; sim.runs is still checked)
#   --batch             gate the batch core's throughput instead: each bench's
#                       fresh runs_per_sec must stay within --max-slowdown
#                       percent of the committed value. Benches whose
#                       committed engine_ms is below --min-ms are skipped
#                       (their throughput quotient is all jitter), as are
#                       committed files predating the runs_per_sec field.
#   --redist FILE       gate a BENCH_redist.json instead: redistribution must
#                       improve the makespan in at least --min-improved of
#                       the resilience scenarios and must never regress the
#                       ground-truth violation seconds
#   --min-improved N    threshold for --redist (default: 4)
#   --recovery FILE     gate a BENCH_recovery.json instead: every kill point
#                       must recover byte-identically (recovery_failures = 0)
#                       and journaling must cost at most --max-overhead
#                       percent of the journal-off sweep
#   --max-overhead PCT  threshold for --recovery (default: 5)
#   --obs FILE          gate a BENCH_obs.json instead: the fully instrumented
#                       queue run must be byte-identical to the bare one
#                       (identical_reports = 1), all four telemetry endpoints
#                       must respond (endpoints_ok = 4), and telemetry +
#                       tracing must cost at most --max-obs-overhead percent
#                       of the plane-off duty cycle
#   --max-obs-overhead PCT  threshold for --obs (default: 3)
#   --selftest          exercise the gate against synthetic fixtures and exit
#
# Two checks per bench, matched by name:
#   * engine_sim_runs must not increase — the evaluation engine's pruning
#     contract, machine-independent, the strong signal;
#   * engine_ms must not regress past --max-slowdown — only meaningful when
#     both files were produced on the same machine (as in CI, where the
#     committed file's numbers are regenerated per run).
# A bench present in the committed file but missing from the fresh one fails.
set -eu

max_slowdown=15
min_ms=50
min_improved=4
max_overhead=5
max_obs_overhead=3
redist_file=""
recovery_file=""
obs_file=""
selftest=0
batch=0

while [ $# -gt 0 ]; do
  case "$1" in
    --max-slowdown) max_slowdown=$2; shift 2 ;;
    --min-ms) min_ms=$2; shift 2 ;;
    --batch) batch=1; shift ;;
    --redist) redist_file=$2; shift 2 ;;
    --min-improved) min_improved=$2; shift 2 ;;
    --recovery) recovery_file=$2; shift 2 ;;
    --max-overhead) max_overhead=$2; shift 2 ;;
    --obs) obs_file=$2; shift 2 ;;
    --max-obs-overhead) max_obs_overhead=$2; shift 2 ;;
    --selftest) selftest=1; shift ;;
    -h|--help) sed -n '2,42p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    -*) echo "unknown option: $1" >&2; exit 2 ;;
    *) break ;;
  esac
done

# field <file> <bench-name> <key> -> value, empty when absent.
field() {
  sed -n "s/.*\"name\": \"$2\".*\"$3\": \([0-9][0-9]*\).*/\1/p" "$1" \
    | head -n 1
}

names() {
  sed -n 's/.*"name": "\([^"]*\)".*/\1/p' "$1"
}

stamp() {
  sha=$(sed -n 's/.*"git_sha": "\([^"]*\)".*/\1/p' "$1" | head -n 1)
  when=$(sed -n 's/.*"date_utc": "\([^"]*\)".*/\1/p' "$1" | head -n 1)
  echo "${sha:-unstamped}${when:+ @ $when}"
}

gate() { # gate <committed.json> <fresh.json> -> 0 pass, 1 fail
  committed=$1
  fresh=$2
  [ -f "$committed" ] || { echo "gate: no such file: $committed" >&2; return 1; }
  [ -f "$fresh" ] || { echo "gate: no such file: $fresh" >&2; return 1; }
  echo "gate: committed $(stamp "$committed") vs fresh $(stamp "$fresh")" >&2

  failures=0
  for b in $(names "$committed"); do
    old_ms=$(field "$committed" "$b" engine_ms)
    new_ms=$(field "$fresh" "$b" engine_ms)
    old_runs=$(field "$committed" "$b" engine_sim_runs)
    new_runs=$(field "$fresh" "$b" engine_sim_runs)
    if [ -z "$new_ms" ] || [ -z "$new_runs" ]; then
      echo "FAIL $b: missing from fresh results" >&2
      failures=$((failures + 1))
      continue
    fi
    if [ -n "$old_runs" ] && [ "$new_runs" -gt "$old_runs" ]; then
      echo "FAIL $b: engine_sim_runs regressed $old_runs -> $new_runs" >&2
      failures=$((failures + 1))
    fi
    if [ -n "$old_ms" ] && [ "$old_ms" -ge "$min_ms" ]; then
      over=$(awk -v o="$old_ms" -v n="$new_ms" -v p="$max_slowdown" \
        'BEGIN { print (n > o * (1 + p / 100)) ? 1 : 0 }')
      if [ "$over" -eq 1 ]; then
        echo "FAIL $b: engine_ms regressed $old_ms -> $new_ms (> $max_slowdown%)" >&2
        failures=$((failures + 1))
      else
        echo "  ok $b: ${old_ms}ms -> ${new_ms}ms, sim.runs $old_runs -> $new_runs" >&2
      fi
    else
      echo "  ok $b: sim.runs $old_runs -> $new_runs (wall-clock below --min-ms, skipped)" >&2
    fi
  done
  [ $failures -eq 0 ] || { echo "gate: $failures regression(s)" >&2; return 1; }
  echo "gate: pass" >&2
}

gate_batch() { # gate_batch <committed.json> <fresh.json> -> 0 pass, 1 fail
  committed=$1
  fresh=$2
  [ -f "$committed" ] || { echo "batch gate: no such file: $committed" >&2; return 1; }
  [ -f "$fresh" ] || { echo "batch gate: no such file: $fresh" >&2; return 1; }
  echo "batch gate: committed $(stamp "$committed") vs fresh $(stamp "$fresh")" >&2

  failures=0
  for b in $(names "$committed"); do
    old_ms=$(field "$committed" "$b" engine_ms)
    old_rps=$(field "$committed" "$b" runs_per_sec)
    new_rps=$(field "$fresh" "$b" runs_per_sec)
    if [ -z "$old_rps" ]; then
      echo "  ok $b: committed file predates runs_per_sec, skipped" >&2
      continue
    fi
    if [ -z "$old_ms" ] || [ "$old_ms" -lt "$min_ms" ]; then
      echo "  ok $b: committed engine_ms below --min-ms, throughput skipped" >&2
      continue
    fi
    if [ -z "$new_rps" ]; then
      echo "FAIL $b: runs_per_sec missing from fresh results" >&2
      failures=$((failures + 1))
      continue
    fi
    under=$(awk -v o="$old_rps" -v n="$new_rps" -v p="$max_slowdown" \
      'BEGIN { print (n < o * (100 - p) / 100) ? 1 : 0 }')
    if [ "$under" -eq 1 ]; then
      echo "FAIL $b: runs_per_sec regressed $old_rps -> $new_rps (> $max_slowdown%)" >&2
      failures=$((failures + 1))
    else
      echo "  ok $b: $old_rps -> $new_rps runs/s" >&2
    fi
  done
  [ $failures -eq 0 ] || { echo "batch gate: $failures regression(s)" >&2; return 1; }
  echo "batch gate: pass" >&2
}

# top_field <file> <key> -> top-level integer value, empty when absent.
top_field() {
  sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1" | head -n 1
}

gate_redist() { # gate_redist <BENCH_redist.json> -> 0 pass, 1 fail
  f=$1
  [ -f "$f" ] || { echo "redist gate: no such file: $f" >&2; return 1; }
  improved=$(top_field "$f" scenarios_improved)
  regressions=$(top_field "$f" violation_regressions)
  scenarios=$(grep -c '"scenario":' "$f" || true)
  if [ -z "$improved" ] || [ -z "$regressions" ]; then
    echo "redist gate: $f is missing scenarios_improved/violation_regressions" >&2
    return 1
  fi
  failures=0
  if [ "$improved" -lt "$min_improved" ]; then
    echo "FAIL redist: makespan improved in only $improved of $scenarios scenarios (need >= $min_improved)" >&2
    failures=$((failures + 1))
  fi
  if [ "$regressions" -ne 0 ]; then
    echo "FAIL redist: $regressions scenario(s) regressed ground-truth violation seconds" >&2
    failures=$((failures + 1))
  fi
  [ $failures -eq 0 ] || { echo "redist gate: $failures failure(s)" >&2; return 1; }
  echo "redist gate: pass ($improved of $scenarios scenarios improved, 0 violation regressions)" >&2
}

gate_recovery() { # gate_recovery <BENCH_recovery.json> -> 0 pass, 1 fail
  f=$1
  [ -f "$f" ] || { echo "recovery gate: no such file: $f" >&2; return 1; }
  fail_count=$(top_field "$f" recovery_failures)
  overhead=$(top_field "$f" overhead_pct)
  kills=$(top_field "$f" kill_points)
  if [ -z "$fail_count" ] || [ -z "$overhead" ]; then
    echo "recovery gate: $f is missing recovery_failures/overhead_pct" >&2
    return 1
  fi
  failures=0
  if [ "$fail_count" -ne 0 ]; then
    echo "FAIL recovery: $fail_count of ${kills:-?} kill points did not recover byte-identically" >&2
    failures=$((failures + 1))
  fi
  if [ "$overhead" -gt "$max_overhead" ]; then
    echo "FAIL recovery: journal overhead ${overhead}% exceeds --max-overhead ${max_overhead}%" >&2
    failures=$((failures + 1))
  fi
  [ $failures -eq 0 ] || { echo "recovery gate: $failures failure(s)" >&2; return 1; }
  echo "recovery gate: pass (${kills:-?} kill points recovered byte-identically, journal overhead ${overhead}% <= ${max_overhead}%)" >&2
}

gate_obs() { # gate_obs <BENCH_obs.json> -> 0 pass, 1 fail
  f=$1
  [ -f "$f" ] || { echo "obs gate: no such file: $f" >&2; return 1; }
  identical=$(top_field "$f" identical_reports)
  endpoints=$(top_field "$f" endpoints_ok)
  overhead=$(top_field "$f" overhead_pct)
  if [ -z "$identical" ] || [ -z "$endpoints" ] || [ -z "$overhead" ]; then
    echo "obs gate: $f is missing identical_reports/endpoints_ok/overhead_pct" >&2
    return 1
  fi
  failures=0
  if [ "$identical" -ne 1 ]; then
    echo "FAIL obs: instrumented run is not byte-identical to the bare run" >&2
    failures=$((failures + 1))
  fi
  if [ "$endpoints" -ne 4 ]; then
    echo "FAIL obs: only $endpoints of 4 telemetry endpoints responded" >&2
    failures=$((failures + 1))
  fi
  if [ "$overhead" -gt "$max_obs_overhead" ]; then
    echo "FAIL obs: telemetry+tracing overhead ${overhead}% exceeds --max-obs-overhead ${max_obs_overhead}%" >&2
    failures=$((failures + 1))
  fi
  [ $failures -eq 0 ] || { echo "obs gate: $failures failure(s)" >&2; return 1; }
  echo "obs gate: pass (byte-identical reports, 4/4 endpoints, overhead ${overhead}% <= ${max_obs_overhead}%)" >&2
}

if [ "$selftest" -eq 1 ]; then
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  mk() { # mk <file> <engine_ms> <engine_sim_runs> [runs_per_sec]
    printf '{\n  "git_sha": "fixture",\n  "jobs": 4,\n  "benches": [\n' > "$1"
    if [ -n "${4:-}" ]; then
      printf '    {"name": "fig3", "baseline_ms": 900, "engine_ms": %s, "baseline_sim_runs": 5000, "engine_sim_runs": %s, "cache_hits": 10, "cache_misses": 2, "runs_per_sec": %s, "batch_runs": 40, "batch_width_p50": 20, "output_identical": true}\n' \
        "$2" "$3" "$4" >> "$1"
    else
      printf '    {"name": "fig3", "baseline_ms": 900, "engine_ms": %s, "baseline_sim_runs": 5000, "engine_sim_runs": %s, "cache_hits": 10, "cache_misses": 2, "output_identical": true}\n' \
        "$2" "$3" >> "$1"
    fi
    printf '  ]\n}\n' >> "$1"
  }
  mk "$tmp/committed.json" 200 1000

  mk "$tmp/same.json" 206 1000
  gate "$tmp/committed.json" "$tmp/same.json" \
    || { echo "selftest: identical-ish run must pass" >&2; exit 1; }

  mk "$tmp/slow.json" 260 1000  # +30% wall clock
  if gate "$tmp/committed.json" "$tmp/slow.json" 2>/dev/null; then
    echo "selftest: >15% slowdown must fail" >&2; exit 1
  fi

  mk "$tmp/runs.json" 200 1400  # pruning regression
  if gate "$tmp/committed.json" "$tmp/runs.json" 2>/dev/null; then
    echo "selftest: sim.runs increase must fail" >&2; exit 1
  fi

  mk "$tmp/empty.json" 200 1000
  sed -i.bak 's/"name": "fig3"/"name": "other"/' "$tmp/empty.json"
  if gate "$tmp/committed.json" "$tmp/empty.json" 2>/dev/null; then
    echo "selftest: missing bench must fail" >&2; exit 1
  fi

  # Batch-throughput gate: runs_per_sec floor, sub-noise skip, and graceful
  # handling of committed files predating the field.
  mk "$tmp/batch_committed.json" 200 1000 600000
  mk "$tmp/batch_ok.json" 210 1000 540000  # -10%, inside the 15% floor
  gate_batch "$tmp/batch_committed.json" "$tmp/batch_ok.json" \
    || { echo "selftest: -10% throughput must pass the batch gate" >&2; exit 1; }
  mk "$tmp/batch_slow.json" 300 1000 400000  # -33% throughput
  if gate_batch "$tmp/batch_committed.json" "$tmp/batch_slow.json" 2>/dev/null; then
    echo "selftest: >15% throughput drop must fail the batch gate" >&2; exit 1
  fi
  mk "$tmp/batch_missing.json" 210 1000
  if gate_batch "$tmp/batch_committed.json" "$tmp/batch_missing.json" 2>/dev/null; then
    echo "selftest: fresh file without runs_per_sec must fail the batch gate" >&2; exit 1
  fi
  mk "$tmp/batch_noise.json" 20 1000 600000  # committed run below --min-ms
  gate_batch "$tmp/batch_noise.json" "$tmp/batch_slow.json" \
    || { echo "selftest: sub-noise benches must be skipped by the batch gate" >&2; exit 1; }
  mk "$tmp/batch_old.json" 200 1000  # committed file predates the field
  gate_batch "$tmp/batch_old.json" "$tmp/batch_slow.json" \
    || { echo "selftest: pre-batch committed files must pass the batch gate" >&2; exit 1; }
  echo "selftest: batch gate ok" >&2

  # Redistribution gate: improvement floor and the zero-violation-regression
  # contract, on synthetic BENCH_redist.json fixtures.
  mk_redist() { # mk_redist <file> <improved> <regressions>
    printf '{\n  "budget_w": 700,\n  "jobs": 10,\n  "scenarios_improved": %s,\n  "violation_regressions": %s,\n  "scenarios": [\n' \
      "$2" "$3" > "$1"
    i=0
    while [ $i -lt 7 ]; do
      printf '    {"scenario": "s%s", "claw_backs": 0}%s\n' \
        "$i" "$([ $i -lt 6 ] && echo ',')" >> "$1"
      i=$((i + 1))
    done
    printf '  ]\n}\n' >> "$1"
  }
  mk_redist "$tmp/redist_good.json" 4 0
  gate_redist "$tmp/redist_good.json" \
    || { echo "selftest: 4-of-7 improved with 0 regressions must pass" >&2; exit 1; }
  mk_redist "$tmp/redist_few.json" 3 0
  if gate_redist "$tmp/redist_few.json" 2>/dev/null; then
    echo "selftest: below --min-improved must fail" >&2; exit 1
  fi
  mk_redist "$tmp/redist_viol.json" 7 1
  if gate_redist "$tmp/redist_viol.json" 2>/dev/null; then
    echo "selftest: violation-seconds regression must fail" >&2; exit 1
  fi
  echo "selftest: redist gate ok" >&2

  # Recovery gate: byte-identical recovery at every kill point and the
  # journal-overhead ceiling, on synthetic BENCH_recovery.json fixtures.
  mk_recovery() { # mk_recovery <file> <failures> <overhead_pct>
    printf '{\n  "budget_w": 700,\n  "jobs": 10,\n  "kill_points": 50,\n  "recovery_failures": %s,\n  "journal_off_ms": 5,\n  "journal_on_ms": 5,\n  "overhead_pct": %s,\n  "scenarios": [\n    {"scenario": "baseline", "failures": %s}\n  ]\n}\n' \
      "$2" "$3" "$2" > "$1"
  }
  mk_recovery "$tmp/recovery_good.json" 0 2
  gate_recovery "$tmp/recovery_good.json" \
    || { echo "selftest: 0 failures at 2%% overhead must pass" >&2; exit 1; }
  mk_recovery "$tmp/recovery_slow.json" 0 9
  if gate_recovery "$tmp/recovery_slow.json" 2>/dev/null; then
    echo "selftest: overhead above --max-overhead must fail" >&2; exit 1
  fi
  mk_recovery "$tmp/recovery_broken.json" 1 2
  if gate_recovery "$tmp/recovery_broken.json" 2>/dev/null; then
    echo "selftest: a non-identical recovery must fail" >&2; exit 1
  fi
  echo "selftest: recovery gate ok" >&2

  # Observability gate: purity (byte-identical reports), liveness (4/4
  # endpoints) and the telemetry+tracing overhead ceiling, on synthetic
  # BENCH_obs.json fixtures.
  mk_obs() { # mk_obs <file> <identical> <endpoints_ok> <overhead_pct>
    printf '{\n  "budget_w": 700,\n  "jobs": 100,\n  "identical_reports": %s,\n  "endpoints_ok": %s,\n  "alert_rules": 8,\n  "alerts_fired": 0,\n  "plane_off_ms": 3.0,\n  "plane_on_ms": 3.1,\n  "overhead_pct": %s\n}\n' \
      "$2" "$3" "$4" > "$1"
  }
  mk_obs "$tmp/obs_good.json" 1 4 2
  gate_obs "$tmp/obs_good.json" \
    || { echo "selftest: identical reports at 2%% overhead must pass" >&2; exit 1; }
  mk_obs "$tmp/obs_slow.json" 1 4 7
  if gate_obs "$tmp/obs_slow.json" 2>/dev/null; then
    echo "selftest: overhead above --max-obs-overhead must fail" >&2; exit 1
  fi
  mk_obs "$tmp/obs_dark.json" 1 3 2
  if gate_obs "$tmp/obs_dark.json" 2>/dev/null; then
    echo "selftest: a dead endpoint must fail" >&2; exit 1
  fi
  mk_obs "$tmp/obs_impure.json" 0 4 2
  if gate_obs "$tmp/obs_impure.json" 2>/dev/null; then
    echo "selftest: a non-identical instrumented run must fail" >&2; exit 1
  fi
  echo "selftest: obs gate ok" >&2

  # clip-lint exit-code contract (0 clean / 1 violations, including a
  # reasonless suppression leaving its finding open). Uses the built binary
  # when present; CI builds it before this selftest runs.
  lint_bin="${CLIP_LINT_BIN:-build/tools/clip-lint/clip-lint}"
  if [ -x "$lint_bin" ]; then
    printf '#pragma once\nint pure(int x);\n' > "$tmp/clean.hpp"
    if ! "$lint_bin" --quiet "$tmp/clean.hpp"; then
      echo "selftest: clip-lint must exit 0 on a clean file" >&2; exit 1
    fi
    printf '#include <cstdlib>\nint r() { return rand() %% 2; }\n' \
      > "$tmp/dirty.cpp"
    if "$lint_bin" --quiet "$tmp/dirty.cpp" 2>/dev/null; then
      echo "selftest: clip-lint must exit 1 on a violation" >&2; exit 1
    fi
    printf '#include <cstdlib>\nint r() { return rand() %% 2; }  // clip-lint: allow(D4)\n' \
      > "$tmp/noreason.cpp"
    if "$lint_bin" --quiet "$tmp/noreason.cpp" 2>/dev/null; then
      echo "selftest: reasonless suppression must keep exit 1" >&2; exit 1
    fi
    printf '#include <cstdlib>\nint r() { return rand() %% 2; }  // clip-lint: allow(D4) selftest fixture\n' \
      > "$tmp/reasoned.cpp"
    if ! "$lint_bin" --quiet --json "$tmp/lint.json" "$tmp/reasoned.cpp"; then
      echo "selftest: reasoned suppression must exit 0" >&2; exit 1
    fi
    grep -q '"suppressed": 1' "$tmp/lint.json" \
      || { echo "selftest: lint JSON must count suppressions" >&2; exit 1; }

    # Flow-sensitive families: J1 (unjournaled mutation), L1 (unlocked
    # write), E1 (discarded fallible result) on minimal directive-carrying
    # fixtures, and the project-level J2 pair (producer + registry).
    printf '// clip-lint: journaled(state_)\nstruct Q {\n  void hit() { state_ = 1; }\n  int state_;\n};\n' \
      > "$tmp/j1.cpp"
    if "$lint_bin" --quiet --json "$tmp/lint.json" "$tmp/j1.cpp" 2>/dev/null; then
      echo "selftest: an unjournaled mutation must exit 1" >&2; exit 1
    fi
    grep -q '"rule": "J1"' "$tmp/lint.json" \
      || { echo "selftest: J1 finding missing from JSON" >&2; exit 1; }
    printf '// clip-lint: guards(mu_: v_)\nstruct S {\n  void w() { v_ = 1; }\n  int v_;\n};\n' \
      > "$tmp/l1.cpp"
    if "$lint_bin" --quiet --json "$tmp/lint.json" "$tmp/l1.cpp" 2>/dev/null; then
      echo "selftest: an unlocked guarded write must exit 1" >&2; exit 1
    fi
    grep -q '"rule": "L1"' "$tmp/lint.json" \
      || { echo "selftest: L1 finding missing from JSON" >&2; exit 1; }
    printf '// clip-lint: fallible(load)\nvoid f() { load(1); }\n' \
      > "$tmp/e1.cpp"
    if "$lint_bin" --quiet --json "$tmp/lint.json" "$tmp/e1.cpp" 2>/dev/null; then
      echo "selftest: a discarded fallible result must exit 1" >&2; exit 1
    fi
    grep -q '"rule": "E1"' "$tmp/lint.json" \
      || { echo "selftest: E1 finding missing from JSON" >&2; exit 1; }
    printf 'void f() { jlog("alpha", "p"); jlog("rogue", "p"); }\n' \
      > "$tmp/j2_prod.cpp"
    printf '#include <string>\n#include <vector>\nconst std::vector<std::string>& known_record_kinds() {\n  static const std::vector<std::string> k = {"alpha"};\n  return k;\n}\n' \
      > "$tmp/j2_reg.cpp"
    if "$lint_bin" --quiet --json "$tmp/lint.json" "$tmp/j2_prod.cpp" "$tmp/j2_reg.cpp" 2>/dev/null; then
      echo "selftest: an unregistered journal kind must exit 1" >&2; exit 1
    fi
    grep -q '"rule": "J2"' "$tmp/lint.json" \
      || { echo "selftest: J2 finding missing from JSON" >&2; exit 1; }
    grep -q 'rogue' "$tmp/lint.json" \
      || { echo "selftest: J2 must name the rogue kind" >&2; exit 1; }
    if ! "$lint_bin" --quiet "$tmp/j2_prod.cpp"; then
      echo "selftest: J2 must stay silent without a registry in the scan" >&2; exit 1
    fi

    # SARIF output: schema header, driver name, and an inSource suppression.
    if ! "$lint_bin" --quiet --sarif "$tmp/lint.sarif" "$tmp/reasoned.cpp"; then
      echo "selftest: SARIF run on the reasoned fixture must exit 0" >&2; exit 1
    fi
    grep -q '"version": "2.1.0"' "$tmp/lint.sarif" \
      || { echo "selftest: SARIF must declare version 2.1.0" >&2; exit 1; }
    grep -q '"name": "clip-analyze"' "$tmp/lint.sarif" \
      || { echo "selftest: SARIF must name the clip-analyze driver" >&2; exit 1; }
    grep -q '"kind": "inSource"' "$tmp/lint.sarif" \
      || { echo "selftest: SARIF must carry in-source suppressions" >&2; exit 1; }

    # The incremental cache must be a pure accelerator: warm findings
    # byte-identical to cold, and --changed must refuse to run cold.
    rm -f "$tmp/lint.cache"
    "$lint_bin" --quiet --cache "$tmp/lint.cache" --json "$tmp/cold.json" \
      "$tmp/reasoned.cpp" "$tmp/clean.hpp" \
      || { echo "selftest: cold cached scan must exit 0" >&2; exit 1; }
    "$lint_bin" --quiet --cache "$tmp/lint.cache" --json "$tmp/warm.json" \
      "$tmp/reasoned.cpp" "$tmp/clean.hpp" \
      || { echo "selftest: warm cached scan must exit 0" >&2; exit 1; }
    cmp -s "$tmp/cold.json" "$tmp/warm.json" \
      || { echo "selftest: warm cache changed the report" >&2; exit 1; }
    if "$lint_bin" --quiet --changed "$tmp/reasoned.cpp" 2>/dev/null; then
      echo "selftest: --changed without a cache must exit 2" >&2; exit 1
    fi
    echo "selftest: clip-lint exit codes ok" >&2
  else
    echo "selftest: clip-lint not built ($lint_bin), lint checks skipped" >&2
  fi

  echo "selftest: ok" >&2
  exit 0
fi

if [ -n "$redist_file" ]; then
  [ $# -eq 0 ] || { echo "usage: $0 --redist <BENCH_redist.json>" >&2; exit 2; }
  gate_redist "$redist_file"
  exit $?
fi

if [ -n "$recovery_file" ]; then
  [ $# -eq 0 ] || { echo "usage: $0 --recovery <BENCH_recovery.json>" >&2; exit 2; }
  gate_recovery "$recovery_file"
  exit $?
fi

if [ -n "$obs_file" ]; then
  [ $# -eq 0 ] || { echo "usage: $0 --obs <BENCH_obs.json>" >&2; exit 2; }
  gate_obs "$obs_file"
  exit $?
fi

[ $# -eq 2 ] || { echo "usage: $0 [--batch] [--max-slowdown PCT] <committed.json> <fresh.json>" >&2; exit 2; }
if [ "$batch" -eq 1 ]; then
  gate_batch "$1" "$2"
else
  gate "$1" "$2"
fi
