// Dense row-major matrix with just the operations the regression code needs.
//
// The regression problems in CLIP are tiny (tens of samples, ≤10 features),
// so a straightforward dense implementation with partial-pivoting Gaussian
// elimination is both adequate and easy to audit.
#pragma once

#include <cstddef>
#include <vector>

namespace clip::stats {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transposed() const;

  /// this * other; dimensions must agree.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// this * v (v.size() == cols()).
  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& v) const;

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b for square A via Gaussian elimination with partial pivoting.
/// Throws clip::PreconditionError when A is (numerically) singular.
[[nodiscard]] std::vector<double> solve_linear_system(Matrix a,
                                                      std::vector<double> b);

}  // namespace clip::stats
