// Monotonic time source for the observability layer.
//
// Every timestamp the tracer or the scoped timers record flows through this
// interface — never through wall-clock reads at the call sites — so tests can
// substitute a FakeClock and get byte-identical trace output across runs
// (the same discipline the simulator applies to randomness via seeded RNGs).
// Chrome-trace timestamps are microseconds; we keep that unit everywhere and
// allow fractional values for sub-microsecond spans.
#pragma once

#include <chrono>

namespace clip::obs {

/// Abstract monotonic clock. Implementations must be non-decreasing; the
/// origin is arbitrary (trace viewers only consume relative times).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary fixed origin.
  [[nodiscard]] virtual double now_us() const = 0;
};

/// Production clock: std::chrono::steady_clock relative to construction.
class SteadyClock final : public Clock {
 public:
  SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double now_us() const override {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Test clock: time advances only when told to. Mutation is intended from a
/// single thread (the test body); readers may be concurrent.
class FakeClock final : public Clock {
 public:
  [[nodiscard]] double now_us() const override { return now_us_; }

  void set_us(double us) { now_us_ = us; }
  void advance_us(double us) { now_us_ += us; }

 private:
  double now_us_ = 0.0;
};

}  // namespace clip::obs
