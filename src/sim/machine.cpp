#include "sim/machine.hpp"

#include <sstream>

#include "util/check.hpp"

namespace clip::sim {

std::string MachineSpec::fingerprint() const {
  std::ostringstream os;
  os << "s" << shape.sockets << "x" << shape.cores_per_socket << "-f"
     << ladder.min().value() << ":" << ladder.max().value() << "@"
     << ladder.nominal().value() << "-p" << socket_base_w << "/"
     << core_max_w << "^" << power_exponent << "-bw" << socket_bw_gbps
     << "-m" << mem_base_w_per_socket << "/" << mem_activity_w_per_socket
     << "-numa" << remote_numa_penalty;
  return os.str();
}

void MachineSpec::validate() const {
  CLIP_REQUIRE(nodes > 0, "cluster needs at least one node");
  CLIP_REQUIRE(shape.sockets > 0 && shape.cores_per_socket > 0,
               "node shape must be non-empty");
  CLIP_REQUIRE(socket_base_w > 0.0 && core_max_w > 0.0,
               "CPU power parameters must be positive");
  CLIP_REQUIRE(socket_parked_w >= 0.0 && socket_parked_w <= socket_base_w,
               "parked socket power must be within [0, base]");
  CLIP_REQUIRE(core_power_floor >= 0.0 && core_power_floor <= 1.0,
               "core power floor in [0,1]");
  CLIP_REQUIRE(power_exponent >= 1.0 && power_exponent <= 3.0,
               "power exponent in [1,3]");
  CLIP_REQUIRE(socket_bw_gbps > 0.0, "socket bandwidth must be positive");
  CLIP_REQUIRE(mem_base_w_per_socket >= 0.0 &&
                   mem_activity_w_per_socket > 0.0,
               "memory power parameters must be positive");
  CLIP_REQUIRE(
      mem_parked_w_per_socket >= 0.0 &&
          mem_parked_w_per_socket <= mem_base_w_per_socket,
      "parked memory power must be within [0, base]");
  CLIP_REQUIRE(remote_numa_penalty >= 0.0 && remote_numa_penalty < 1.0,
               "remote NUMA penalty in [0,1)");
  CLIP_REQUIRE(variability_sigma >= 0.0 && variability_sigma < 0.5,
               "variability sigma in [0,0.5)");
}

}  // namespace clip::sim
