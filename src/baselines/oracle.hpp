// Oracle: exhaustive configuration search on the exact simulator.
//
// The paper validates CLIP as "close to the optimal solution" by exhaustive
// search (and uses exhaustive search for the ground-truth inflection points
// of Fig. 7). The oracle enumerates node count × even thread counts ×
// placement × memory power level, splits each node budget between the
// domains according to the level's worst-case draw, and returns the
// configuration with the smallest *exact* (noise-free) execution time.
//
// It is deliberately outside the CLIP framework: it peeks at ground truth
// and costs hundreds of executions per (application, budget) pair — the
// paper's argument for CLIP is getting within a few percent of this with at
// most three profiles.
#pragma once

#include "baselines/scheduler_iface.hpp"
#include "sim/executor.hpp"

namespace clip::baselines {

class OracleScheduler final : public PowerScheduler {
 public:
  explicit OracleScheduler(sim::SimExecutor& executor)
      : executor_(&executor) {}

  [[nodiscard]] std::string name() const override { return "Oracle"; }

  [[nodiscard]] sim::ClusterConfig plan(
      const workloads::WorkloadSignature& app,
      Watts cluster_budget) override;

  /// Number of simulator executions the last plan() consumed — the search
  /// cost CLIP's ≤3-sample profiling avoids.
  [[nodiscard]] int last_search_cost() const { return last_search_cost_; }

 private:
  sim::SimExecutor* executor_;
  int last_search_cost_ = 0;
};

}  // namespace clip::baselines
