// J2 fixture (registry half): the closed record-kind set; "ghost" has no
// producer in the paired fixture.
#include <string>
#include <vector>

const std::vector<std::string>& known_record_kinds() {
  static const std::vector<std::string> kKinds = {
      "alpha",
      "beta",
      "ghost",
  };
  return kKinds;
}
