#include "bench_common.hpp"

#include "util/strings.hpp"

namespace clip::bench {

void print_method_comparison(
    const BenchContext& ctx, const runtime::ComparisonResult& result,
    const std::vector<workloads::WorkloadSignature>& apps, double budget,
    const std::string& title) {
  static const char* kMethods[] = {"All-In", "Lower Limit", "Coordinated",
                                   "CLIP", "Oracle"};
  Table t({"benchmark", "class", "All-In", "Lower Limit", "Coordinated",
           "CLIP", "Oracle", "CLIP vs best baseline"});
  t.set_title(title);
  for (const auto& w : apps) {
    std::vector<std::string> row;
    row.push_back(w.name + " (" + w.parameters + ")");
    row.push_back(workloads::to_string(w.expected_class));
    double clip = 0.0, best_baseline = 0.0;
    for (const char* method : kMethods) {
      const auto* cell =
          result.find(w.name, w.parameters, budget, method);
      const double rel = cell ? cell->relative_performance : 0.0;
      row.push_back(format_double(rel, 3));
      if (std::string(method) == "CLIP")
        clip = rel;
      else if (std::string(method) != "Oracle")
        best_baseline = std::max(best_baseline, rel);
    }
    row.push_back(best_baseline > 0.0
                      ? format_percent(clip / best_baseline - 1.0)
                      : "n/a");
    t.add_row(std::move(row));
  }
  ctx.print(t);
}

}  // namespace clip::bench
