#include "util/fsio.hpp"

#include <cstdio>
#include <fstream>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define CLIP_FSIO_POSIX 1
#endif

namespace clip {

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view contents) {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::filesystem::path tmp = path;
  tmp += ".tmp";
#ifdef CLIP_FSIO_POSIX
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  CLIP_REQUIRE(fd >= 0, "cannot open for writing: " + tmp.string());
  std::size_t off = 0;
  while (off < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      ::close(fd);
      CLIP_REQUIRE(false, "write failed: " + tmp.string());
    }
    off += static_cast<std::size_t>(n);
  }
  // The data must be durable before the rename publishes the name; a rename
  // that survives a crash while the bytes did not is exactly a torn file.
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  CLIP_REQUIRE(synced, "fsync failed: " + tmp.string());
#else
  {
    std::ofstream os(tmp, std::ios::trunc | std::ios::binary);
    CLIP_REQUIRE(os.good(), "cannot open for writing: " + tmp.string());
    os.write(contents.data(),
             static_cast<std::streamsize>(contents.size()));
    os.flush();
    CLIP_REQUIRE(os.good(), "write failed: " + tmp.string());
  }
#endif
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  CLIP_REQUIRE(!ec, "rename failed: " + tmp.string() + " -> " +
                        path.string() + " (" + ec.message() + ")");
}

}  // namespace clip
