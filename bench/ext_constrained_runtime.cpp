// Extension — the constrained runtime of paper §VII ("One limitation of
// this work is that CLIP doesn't directly support jobs launched with
// predefined node and core counts. We plan to develop a runtime system to
// address this issue."): jobs arrive with a fixed mpirun shape and CLIP
// coordinates the remaining dimensions (frequency via caps, memory power
// level, affinity, CPU/DRAM split — and concurrency when only the node
// count is pinned).
#include <iostream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  core::ClipScheduler clip(ex, workloads::training_benchmarks());
  baselines::AllInScheduler naive(ex.spec());

  Table t({"benchmark", "fixed shape", "budget (W)",
           "naive split (s)", "CLIP-constrained (s)", "gain",
           "free CLIP (s)"});
  t.set_title(
      "Constrained runtime: user-pinned mpirun shapes, CLIP coordinates "
      "the rest");

  const struct {
    const char* app;
    int nodes;
    int threads;
  } shapes[] = {{"SP-MZ", 8, 24}, {"SP-MZ", 4, 16}, {"TeaLeaf", 8, 24},
                {"BT-MZ", 4, 24}, {"CoMD", 8, 12},  {"miniAero", 8, 24}};

  for (const auto& shape : shapes) {
    const auto w = *workloads::find_benchmark(shape.app);
    for (double budget : {700.0, 1100.0}) {
      // Naive: the user's shape with the All-In power split (30 W DRAM,
      // the rest to the CPU).
      sim::ClusterConfig naive_cfg;
      naive_cfg.nodes = shape.nodes;
      naive_cfg.node.threads = shape.threads;
      naive_cfg.node.affinity = parallel::AffinityPolicy::kScatter;
      naive_cfg.node.mem_cap = Watts(30.0);
      naive_cfg.node.cpu_cap =
          Watts(std::max(1.0, budget / shape.nodes - 30.0));
      const double naive_time = ex.run_exact(w, naive_cfg).time.value();

      const auto constrained = clip.schedule_constrained(
          w, Watts(budget), shape.nodes, shape.threads);
      const double clip_time =
          ex.run_exact(w, constrained.cluster).time.value();

      const double free_time =
          ex.run_exact(w, clip.schedule(w, Watts(budget)).cluster)
              .time.value();

      t.add_row({shape.app,
                 std::to_string(shape.nodes) + " nodes x " +
                     std::to_string(shape.threads) + " threads",
                 format_double(budget, 0), format_double(naive_time, 2),
                 format_double(clip_time, 2),
                 format_percent(naive_time / clip_time - 1.0),
                 format_double(free_time, 2)});
    }
  }
  ctx.print(t);
  std::cout << "Even with the shape pinned, coordinating the power split "
               "and memory level recovers performance; the 'free CLIP' "
               "column shows what lifting the §VII limitation is worth.\n";
  return 0;
}
