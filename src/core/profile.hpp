// Profile data structures shared by the CLIP decision pipeline.
//
// A "sample configuration" is one short profiling execution on a single node
// (paper §IV-B1: smart profiling runs a few iterations of the task with
// sufficient power). CLIP needs at most three of them per application.
#pragma once

#include <optional>
#include <string>

#include "sim/config.hpp"
#include "sim/events.hpp"
#include "util/units.hpp"
#include "workloads/signature.hpp"

namespace clip::core {

/// Measurements from one sample-configuration run.
struct SampleProfile {
  sim::NodeConfig config;
  Seconds time{0.0};
  Watts cpu_power{0.0};
  Watts mem_power{0.0};
  sim::EventRates events;

  [[nodiscard]] Watts node_power() const { return cpu_power + mem_power; }
};

/// Everything the smart profiler learned about one application.
struct ProfileData {
  std::string app_name;
  std::string app_parameters;

  SampleProfile all_core;   ///< step 1: all cores, full power
  SampleProfile half_core;  ///< step 2: half cores, affinity from step 1
  std::optional<SampleProfile> validation;  ///< step 3 (non-linear classes)

  /// Perf_half / Perf_all = T_all / T_half — the classification statistic.
  double perf_ratio_half_over_all = 0.0;

  /// Placement preference derived from step 1 (memory access intensity).
  parallel::AffinityPolicy preferred_affinity =
      parallel::AffinityPolicy::kScatter;

  /// DRAM traffic observed at all-core (GB/s) and per-core demand estimate.
  double node_bw_gbps = 0.0;
  double per_core_bw_gbps = 0.0;

  /// node_bw / node peak bandwidth, in [0,1] — "memory access intensity".
  double memory_intensity = 0.0;

  /// Modeled cost of profiling (seconds of simulated machine time).
  Seconds profiling_cost{0.0};

  /// Feature vector for the inflection MLR, Table I order (Event0..Event7).
  [[nodiscard]] std::vector<double> features() const;
};

}  // namespace clip::core
