// clip-analyze (binary: clip-lint) — project-specific static analysis for
// the CLIP reproduction.
//
// The invariants that keep the paper's Figs. 6–9 byte-reproducible are not
// expressible in the type system: no wall-clock reads inside the simulator,
// no iteration over hash-ordered containers in output paths, no
// fixed-precision double formatting outside format_exact, seeded RNG only,
// null-guarded observer hooks, and header hygiene. Since PR 8/9 the same
// holds for crash-consistency and concurrency: every journaled state
// mutation must reach the journal, guarded fields must be written under
// their mutex, and fallible I/O results must be consumed. This tool encodes
// all of it as named, suppressible rules over a token stream (a small lexer
// that strips comments and strings — no libclang dependency) plus a
// lightweight semantic layer: per-file function spans, a tracked-field
// symbol index, and a reusable intra-procedural flow engine (ScopeSim).
//
// Rules (docs/static-analysis.md has the full catalog and rationale):
//   D1  wall-clock reads outside src/obs/clock.hpp
//   D2  std::unordered_map/set declarations and iteration (hash order leaks)
//   D3  raw double formatting (%f/%e/%g format strings, std::to_string of a
//       floating literal) outside obs::format_exact's home
//   D4  unseeded RNG primitives (rand, std::random_device, std::mt19937...)
//       outside the clip::Rng wrapper
//   C1  observer/timeline hook pointers dereferenced without a null guard
//   H1  header hygiene: #pragma once / include guard, no `using namespace`
//   J1  a function mutating `journaled(...)` state must journal (directly
//       or via an intra-file callee) — crash-consistency coverage
//   J2  every journal record kind produced must be registered in
//       known_record_kinds() and vice versa (project-level)
//   L1  writes to `guards(...)` fields outside a lock_guard/scoped_lock
//   L2  lock-order cycles across tracked mutexes (project-level)
//   E1  discarded result of a `fallible(...)` call
//   LINT suppression/directive hygiene: missing reason, unknown rule,
//       unused entry, malformed declaration
//
// Directive syntax (a comment whose body STARTS with `clip-lint:`; the
// suppression reason is mandatory and machine-checked):
//   code();  - clip-lint: allow(D1) reason text           = this line
//   - clip-lint: allow(D2,D3) reason text                 = next code line
//   - clip-lint: allow-file(D2) reason text               = whole file
//   - clip-lint: journaled(state_, attempts_)             = J1 tracked fields
//   - clip-lint: guards(mu_: snapshot_)                   = L1/L2 tracked lock
//   - clip-lint: guards(mu_@obs_registry: counters_)      = cross-TU label
//   - clip-lint: fallible(load, save)                     = E1 tracked calls
// (written here with `-` in place of the comment slashes so the analyzer's
// own self-scan does not read the examples as live directives)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace clip::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct, kPreproc };
  Kind kind;
  std::string text;
  int line = 0;
};

/// One `clip-lint: allow(...)` comment, resolved to the line it covers.
struct Suppression {
  int comment_line = 0;   ///< where the comment sits
  int target_line = 0;    ///< line whose findings it suppresses
  bool file_scope = false;
  std::vector<std::string> rules;
  std::string reason;     ///< empty = invalid (LINT finding)
  bool used = false;
};

/// One `clip-lint: guards(mu[@label]: f1, f2)` declaration: writes to the
/// listed fields are only legal inside a lock_guard/scoped_lock over `mutex`.
/// The optional label names the lock across translation units (two files
/// annotating the same label share one node in the lock-order graph).
struct GuardDecl {
  int line = 0;
  std::string mutex;
  std::string label;  ///< empty = file-local node `path:mutex`
  std::vector<std::string> fields;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string reason;  ///< suppression reason when suppressed
};

/// A lexed translation unit: token stream plus the directive tables. Findings
/// discovered during lexing (malformed directives) land in `lex_findings`.
struct LexedFile {
  std::string path;
  bool is_header = false;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<Finding> lex_findings;
  std::vector<std::string> journaled_fields;  ///< J1 tracked state
  std::vector<std::string> fallible_names;    ///< E1 tracked calls
  std::vector<GuardDecl> guards;              ///< L1/L2 tracked locks
};

/// A journal record kind observed in source: produced at a jlog/
/// append_or_verify call site, or registered inside known_record_kinds().
struct KindSite {
  std::string kind;
  int line = 0;
};

/// One lock-order edge: `held` was active when `acquired` was taken. Node
/// ids are already resolved (`@label` or `path:mutex`).
struct LockEdge {
  std::string held;
  std::string acquired;
  int line = 0;
};

/// Per-file facts the project-level passes (J2, L2) consume. Serialized
/// into the result cache so unchanged files never re-lex.
struct FileFacts {
  std::vector<KindSite> produced_kinds;
  std::vector<KindSite> registered_kinds;
  std::vector<LockEdge> lock_edges;
};

/// analyze_source() output: per-file findings (suppressions applied, unused
/// check done for per-file rules), facts for the project passes, and the
/// suppressions that name project rules (applied by project_rules()).
struct FileResult {
  std::string path;
  std::vector<Finding> findings;
  FileFacts facts;
  std::vector<Suppression> project_suppressions;
};

/// Every valid rule id, in report order.
[[nodiscard]] const std::vector<std::string>& known_rules();

/// True for rules that need the whole scanned set (J2, L2), not one file.
[[nodiscard]] bool is_project_rule(std::string_view rule);

/// One-line description per rule id (SARIF rule metadata).
[[nodiscard]] std::string rule_description(const std::string& rule);

/// Lex `source`, strip comments/strings, collect directives.
[[nodiscard]] LexedFile lex(std::string_view source, std::string path);

/// Run every per-file rule pass over a lexed file. Marks matching
/// suppressions used, then appends LINT findings for unused or malformed
/// ones (suppressions naming a project rule are exempt from the unused
/// check here — project_rules() owns them). The returned list includes
/// suppressed findings (flagged as such) so reports can count them; CI
/// gates only on the unsuppressed ones.
[[nodiscard]] std::vector<Finding> run_rules(LexedFile& file);

/// lex() + run_rules() in one call.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view source,
                                               std::string path);

/// lex() + per-file rules + fact extraction, deferring project-rule
/// suppressions to project_rules().
[[nodiscard]] FileResult analyze_source(std::string_view source,
                                        std::string path);

/// Project-level passes over per-file facts: J2 bidirectional registry
/// coverage and L2 lock-order cycle detection. Applies (and unused-checks)
/// the deferred project suppressions. Returns only the project findings —
/// they are never written into the per-file cache entries.
[[nodiscard]] std::vector<Finding> project_rules(
    std::vector<FileResult>& files);

struct Summary {
  int files_scanned = 0;
  int unsuppressed = 0;
  int suppressed = 0;
};

[[nodiscard]] Summary summarize(const std::vector<Finding>& findings,
                                int files_scanned);

/// Machine-readable report (stable field order, no timestamps — the linter
/// obeys its own D1). `suppressed_total` is recorded so reviews can watch
/// the suppression count trend across PRs.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings,
                                  int files_scanned);

/// Human-readable `file:line: RULE: message` lines, unsuppressed first.
[[nodiscard]] std::string to_text(const std::vector<Finding>& findings,
                                  int files_scanned);

/// SARIF 2.1.0 (deterministic, no timestamps): unsuppressed findings at
/// level "error", suppressed ones carried with an inSource suppression and
/// the reason as justification. Driver name: clip-analyze.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

/// FNV-1a 64 over the file bytes — the incremental-cache key.
[[nodiscard]] std::uint64_t content_hash(std::string_view source);

/// Incremental result cache: per-file findings + facts keyed by content
/// hash, persisted as a versioned text file salted with the rule list (a
/// rule change invalidates everything). Project findings are recomputed
/// from the cached facts on every run, so J2/L2 stay correct when an
/// unrelated file changes.
class ResultCache {
 public:
  /// Load from `path`. Returns false (and stays empty) when the file is
  /// missing, from another cache version, or corrupt — never an error.
  bool load(const std::string& path);
  [[nodiscard]] bool save(const std::string& path) const;

  /// Entry for `path` whose stored hash matches, else nullptr.
  [[nodiscard]] const FileResult* find(const std::string& path,
                                       std::uint64_t hash) const;
  /// Entry for `path` regardless of hash (the --changed merge trusts the
  /// cache for every file NOT on the changed list).
  [[nodiscard]] const FileResult* find_any(const std::string& path) const;

  void put(std::uint64_t hash, FileResult result);

  [[nodiscard]] std::vector<std::string> paths() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    FileResult result;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace clip::lint
