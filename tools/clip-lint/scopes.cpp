// Function-span detection for clip-analyze. A token-level approximation of
// the C++ grammar that is exact for the shapes this codebase writes —
// free/member functions, constructors with init lists, operators, trailing
// return types — and deliberately conservative elsewhere: a brace it cannot
// prove is a function body is treated as a transparent container, so rules
// that key on "inside function F" silently skip code they cannot place
// rather than misattribute it.

#include <optional>
#include <set>

#include "analysis.hpp"

namespace clip::lint {

namespace {

const std::set<std::string, std::less<>>& tail_qualifiers() {
  static const std::set<std::string, std::less<>> kQuals = {
      "const", "noexcept", "override", "final", "mutable", "try"};
  return kQuals;
}

/// Balance backward from the closing token at `j` (")" or "}") to its
/// opener. Returns the opener index, or npos-equivalent (t.size()) when
/// unbalanced.
std::size_t balance_back(const Tokens& t, std::size_t j) {
  const std::string close = t[j].text;
  const std::string open = (close == ")") ? "(" : "{";
  int depth = 0;
  for (std::size_t k = j + 1; k-- > 0;) {
    if (t[k].text == close) ++depth;
    if (t[k].text == open && --depth == 0) return k;
    if (k == 0) break;
  }
  return t.size();
}

/// Does the `{` at `brace` open a function body? Walks backward over
/// trailing qualifiers, a trailing return type, and a constructor init
/// list until it can test for `name ( params )`.
std::optional<std::pair<std::string, int>> function_head(const Tokens& t,
                                                         std::size_t brace) {
  if (brace == 0) return std::nullopt;
  std::size_t j = brace - 1;

  auto skip_qualifiers = [&]() {
    while (j > 0 && tok_ident(t, j) && tail_qualifiers().count(t[j].text) != 0)
      --j;
    // noexcept(expr): qualifier keyword carrying a balanced paren group.
    if (j > 0 && t[j].text == ")") {
      const std::size_t open = balance_back(t, j);
      if (open != t.size() && open >= 2 && tok_is(t, open - 1, "noexcept"))
        j = open - 2;
    }
  };
  skip_qualifiers();

  // Trailing return type `-> T` / `-> std::vector<int>`: scan back over the
  // type tokens; if the run is introduced by `->`, drop it and re-skip.
  {
    std::size_t probe = j;
    while (probe > 0 &&
           (tok_ident(t, probe) || t[probe].kind == Token::Kind::kNumber ||
            t[probe].text == "::" || t[probe].text == "<" ||
            t[probe].text == ">" || t[probe].text == "*" ||
            t[probe].text == "&" || t[probe].text == ","))
      --probe;
    if (probe > 0 && t[probe].text == "->") {
      j = probe - 1;
      skip_qualifiers();
    }
  }

  // Now expect the parameter list close — possibly with a constructor init
  // list (`) : a_(x), b_{y}`) between it and the brace. Walk the groups
  // right-to-left: each init-list group is `ident ( ... )` or `ident { ... }`
  // preceded by `,` or `:`; the `:` is preceded by the parameter list.
  std::string name;
  while (true) {
    if (t[j].text != ")" && t[j].text != "}") return std::nullopt;
    const std::size_t open = balance_back(t, j);
    if (open == t.size() || open == 0) return std::nullopt;
    std::size_t before = open - 1;

    // `operator()` / `operator==` / `operator<` style declarators: the
    // parameter list may follow punctuation that follows `operator`.
    if (tok_ident(t, before)) {
      name = t[before].text;
    } else {
      std::size_t p = before;
      while (p > 0 && t[p].kind == Token::Kind::kPunct && t[p].text != ")" &&
             t[p].text != "}" && t[p].text != ";")
        --p;
      if (!tok_is(t, p, "operator")) return std::nullopt;
      name = "operator";
      before = p;
    }

    // Control flow and plain init lists are not function heads.
    static const std::set<std::string, std::less<>> kNotAHead = {
        "if", "for", "while", "switch", "catch", "return", "sizeof",
        "alignof", "decltype", "assert"};
    if (kNotAHead.count(name) != 0) return std::nullopt;

    if (before == 0) return std::make_pair(name, t[brace].line);
    const std::string& prev = t[before - 1].text;
    if (prev == ",") {
      // Another init-list group to our left.
      j = before >= 2 ? before - 2 : 0;
      continue;
    }
    if (prev == ":" && !(before >= 2 && t[before - 2].text == ":")) {
      // `) : name(x)` — the group left of the colon is the parameter list.
      j = before >= 2 ? before - 2 : 0;
      if (t[j].text != ")") return std::nullopt;
      const std::size_t popen = balance_back(t, j);
      if (popen == t.size() || popen == 0) return std::nullopt;
      if (!tok_ident(t, popen - 1)) return std::nullopt;
      name = t[popen - 1].text;
      if (kNotAHead.count(name) != 0) return std::nullopt;
      return std::make_pair(name, t[brace].line);
    }
    // Direct `name(params) {`: prev must not be something that makes this
    // an initializer (`=`) or a call in an expression.
    if (prev == "=" || prev == "(" || prev == "," || prev == "return")
      return std::nullopt;
    return std::make_pair(name, t[brace].line);
  }
}

}  // namespace

std::size_t find_close_paren(const Tokens& t, std::size_t open) {
  int d = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].text == "(") ++d;
    if (t[j].text == ")" && --d == 0) return j;
  }
  return t.size();
}

std::vector<FunctionSpan> find_functions(const Tokens& t) {
  std::vector<FunctionSpan> out;
  // Brace stack: index into `out` for a function root, -1 for any other
  // brace (namespace/class/body/initializer).
  std::vector<int> stack;
  bool in_function = false;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "{") {
      int mark = -1;
      if (!in_function) {
        if (auto head = function_head(t, i)) {
          FunctionSpan span;
          span.name = head->first;
          span.line = head->second;
          span.body_begin = i;
          span.body_end = t.size() - 1;  // patched at the close
          out.push_back(span);
          mark = static_cast<int>(out.size()) - 1;
          in_function = true;
        }
      }
      stack.push_back(mark);
    } else if (t[i].text == "}") {
      if (!stack.empty()) {
        const int mark = stack.back();
        stack.pop_back();
        if (mark >= 0) {
          out[static_cast<std::size_t>(mark)].body_end = i;
          in_function = false;
        }
      }
    }
  }
  return out;
}

}  // namespace clip::lint
