// Manufacturing variability across nodes (paper §III-B2).
//
// Process variation makes nominally identical processors draw different
// power at the same voltage/frequency point (Inadomi et al., SC'15). Under a
// uniform per-node power cap this turns into *frequency* imbalance, and the
// job runs at the pace of the slowest node. We model it as a per-node
// multiplier on CPU load power, drawn from a seeded log-normal so clusters
// are reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace clip::sim {

class Variability {
 public:
  /// Draw per-node multipliers for `spec.nodes` nodes with the spec's sigma
  /// and seed. Sigma 0 yields exactly 1.0 everywhere.
  explicit Variability(const MachineSpec& spec);

  /// CPU load-power multiplier η_i of node `index` (≈ 1.0 ± sigma).
  [[nodiscard]] double cpu_multiplier(int index) const;

  [[nodiscard]] const std::vector<double>& multipliers() const {
    return multipliers_;
  }

  /// True when every node drew exactly the same multiplier (always the case
  /// for sigma = 0, the default testbed). The executor's batch path solves
  /// one node and replicates the bit-identical result when this holds.
  [[nodiscard]] bool uniform() const { return uniform_; }

  /// Relative spread: (max - min) / min. The coordinator only acts when this
  /// exceeds its threshold ("our experimental nodes are quite homogeneous,
  /// thus we only coordinate power ... when the variability exceeds a
  /// threshold").
  [[nodiscard]] double spread() const;

 private:
  std::vector<double> multipliers_;
  bool uniform_ = true;
};

}  // namespace clip::sim
