// clip-lint — project-specific static analysis for the CLIP reproduction.
//
// The invariants that keep the paper's Figs. 6–9 byte-reproducible are not
// expressible in the type system: no wall-clock reads inside the simulator,
// no iteration over hash-ordered containers in output paths, no
// fixed-precision double formatting outside format_exact, seeded RNG only,
// null-guarded observer hooks, and header hygiene. This tool encodes them as
// named, suppressible rules over a token stream (a small lexer that strips
// comments and strings — no libclang dependency), so CI can reject a
// refactor that would silently break determinism instead of a human
// noticing a figure drifted.
//
// Rules (docs/static-analysis.md has the full catalog and rationale):
//   D1  wall-clock reads outside src/obs/clock.hpp
//   D2  std::unordered_map/set declarations and iteration (hash order leaks)
//   D3  raw double formatting (%f/%e/%g format strings, std::to_string of a
//       floating literal) outside obs::format_exact's home
//   D4  unseeded RNG primitives (rand, std::random_device, std::mt19937...)
//       outside the clip::Rng wrapper
//   C1  observer/timeline hook pointers dereferenced without a null guard
//   H1  header hygiene: #pragma once / include guard, no `using namespace`
//   LINT suppression hygiene: missing reason, unknown rule, unused entry
//
// Suppression syntax (the reason is mandatory and machine-checked):
//   code();  // clip-lint: allow(D1) reason text          — this line
//   // clip-lint: allow(D2,D3) reason text                — next code line
//   // clip-lint: allow-file(D2) reason text              — whole file
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace clip::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct, kPreproc };
  Kind kind;
  std::string text;
  int line = 0;
};

/// One `clip-lint: allow(...)` comment, resolved to the line it covers.
struct Suppression {
  int comment_line = 0;   ///< where the comment sits
  int target_line = 0;    ///< line whose findings it suppresses
  bool file_scope = false;
  std::vector<std::string> rules;
  std::string reason;     ///< empty = invalid (LINT finding)
  bool used = false;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string reason;  ///< suppression reason when suppressed
};

/// A lexed translation unit: token stream plus suppression table. Findings
/// discovered during lexing (malformed suppressions) land in `lex_findings`.
struct LexedFile {
  std::string path;
  bool is_header = false;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<Finding> lex_findings;
};

/// Every valid rule id, in report order.
[[nodiscard]] const std::vector<std::string>& known_rules();

/// Lex `source`, strip comments/strings, collect suppressions.
[[nodiscard]] LexedFile lex(std::string_view source, std::string path);

/// Run every rule pass over a lexed file. Marks matching suppressions used,
/// then appends LINT findings for unused or malformed ones. The returned
/// list includes suppressed findings (flagged as such) so reports can count
/// them; CI gates only on the unsuppressed ones.
[[nodiscard]] std::vector<Finding> run_rules(LexedFile& file);

/// lex() + run_rules() in one call.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view source,
                                               std::string path);

struct Summary {
  int files_scanned = 0;
  int unsuppressed = 0;
  int suppressed = 0;
};

[[nodiscard]] Summary summarize(const std::vector<Finding>& findings,
                                int files_scanned);

/// Machine-readable report (stable field order, no timestamps — the linter
/// obeys its own D1). `suppressed_total` is recorded so reviews can watch
/// the suppression count trend across PRs.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings,
                                  int files_scanned);

/// Human-readable `file:line: RULE: message` lines, unsuppressed first.
[[nodiscard]] std::string to_text(const std::vector<Finding>& findings,
                                  int files_scanned);

}  // namespace clip::lint
