// Figure 7 — "Predicted and actual inflection points comparison": the MLR
// model is trained on the NPB/HPCC/STREAM/PolyBench suite and evaluated on
// the non-linear paper benchmarks; the actual values come from exhaustive
// search, exactly as the paper obtains its ground truth.
#include <iostream>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/inflection.hpp"
#include "core/profiler.hpp"
#include "stats/metrics.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  ctx.attach(ex);
  core::SmartProfiler profiler(ex);
  const core::ScalabilityClassifier classifier;

  // Train on the paper's training suites.
  const auto samples = core::build_training_set(
      profiler, classifier, workloads::training_benchmarks());
  core::InflectionPredictor predictor;
  predictor.train(samples);

  Table t({"benchmark", "class", "predicted N_P", "actual N_P", "error"});
  t.set_title(
      "Fig. 7 — predicted vs actual (exhaustive search) inflection points");

  std::vector<double> truth, pred;
  for (const auto& w : workloads::paper_benchmarks()) {
    const auto p = profiler.profile(w);
    const auto cls = classifier.classify(p);
    if (cls == workloads::ScalabilityClass::kLinear) continue;
    const int predicted = predictor.predict(p, cls, 24);
    const double actual =
        core::measure_inflection(ex, w, cls, p.preferred_affinity);
    truth.push_back(actual);
    pred.push_back(predicted);
    t.add_row({w.name + " (" + w.parameters + ")",
               workloads::to_string(cls), std::to_string(predicted),
               format_double(actual, 0),
               format_double(predicted - actual, 0)});
  }
  ctx.print(t);

  std::cout << "MAE = " << format_double(stats::mean_absolute_error(truth, pred), 2)
            << " cores,  RMSE = " << format_double(stats::rmse(truth, pred), 2)
            << " cores (paper: strong for most applications, with "
               "occasional underestimates).\n";
  return 0;
}
