#include "sim/variability.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace clip::sim {

Variability::Variability(const MachineSpec& spec) {
  spec.validate();
  multipliers_.reserve(static_cast<std::size_t>(spec.nodes));
  if (spec.variability_sigma == 0.0) {
    multipliers_.assign(static_cast<std::size_t>(spec.nodes), 1.0);
    return;
  }
  Rng rng(spec.variability_seed);
  for (int i = 0; i < spec.nodes; ++i) {
    // Mean-one log-normal: mu = -sigma^2/2.
    const double sigma = spec.variability_sigma;
    multipliers_.push_back(rng.lognormal(-0.5 * sigma * sigma, sigma));
  }
  for (const double m : multipliers_)
    uniform_ = uniform_ && m == multipliers_.front();
}

double Variability::cpu_multiplier(int index) const {
  CLIP_REQUIRE(index >= 0 &&
                   index < static_cast<int>(multipliers_.size()),
               "node index out of range");
  return multipliers_[static_cast<std::size_t>(index)];
}

double Variability::spread() const {
  const auto [lo, hi] =
      std::minmax_element(multipliers_.begin(), multipliers_.end());
  return (*hi - *lo) / *lo;
}

}  // namespace clip::sim
