// Minimal CSV read/write used by the knowledge database persistence layer
// and by benchmark harnesses that dump series for external plotting.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace clip {

/// A parsed CSV document: a header row plus data rows of equal width.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1.
  [[nodiscard]] int column_index(const std::string& name) const;
};

/// Write a document to disk; creates parent directories. Throws on I/O error.
void write_csv(const std::filesystem::path& path, const CsvDocument& doc);

/// Read and parse a document (handles quoted fields). Throws on I/O error or
/// ragged rows.
[[nodiscard]] CsvDocument read_csv(const std::filesystem::path& path);

/// The exact bytes write_csv would put on disk, as a string — for callers
/// that stage contents before an atomic rename (util/fsio.hpp) or embed a
/// document inside another record (the scheduler journal's snapshots).
[[nodiscard]] std::string render_csv(const CsvDocument& doc);

/// Parse render_csv/write_csv output. `context` names the source in error
/// messages (a path, "snapshot", ...). Throws on malformed input.
[[nodiscard]] CsvDocument parse_csv(const std::string& text,
                                    const std::string& context);

/// Parse a single CSV line honoring RFC-4180 quoting.
[[nodiscard]] std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace clip
