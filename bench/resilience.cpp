// Resilience under a power bound: the Table II suite as a job stream while
// the substrate misbehaves. Each scenario replays a deterministic FaultPlan
// against the resilient queue (docs/robustness.md) and reports what the
// cluster salvaged: jobs completed, crash retries, guard claw-backs,
// violation-seconds above the budget, and makespan inflation relative to the
// fault-free run. `--json` additionally writes BENCH_resilience.json.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "resilience_scenarios.hpp"
#include "runtime/queue.hpp"
#include "util/strings.hpp"

using namespace clip;

namespace {

using bench::Scenario;

std::string json_row(const Scenario& s, const runtime::QueueReport& r,
                     double baseline_makespan) {
  std::ostringstream os;
  os << "    {\"scenario\": \"" << s.name << "\", \"faults\": " << s.plan.size()
     << ", \"jobs\": " << r.jobs.size()
     << ", \"completed\": " << r.jobs_completed()
     << ", \"failed\": " << r.jobs_failed << ", \"retries\": " << r.retries
     << ", \"crashed_nodes\": " << r.crashed_nodes.size()
     << ", \"caps_reprogrammed\": " << r.caps_reprogrammed
     << ", \"violation_s\": " << format_double(r.violation_s, 3)
     << ", \"violation_ws\": " << format_double(r.violation_ws, 1)
     << ", \"meter_reads_rejected\": " << r.meter_reads_rejected
     << ", \"makespan_s\": " << format_double(r.makespan_s, 3)
     << ", \"makespan_inflation\": "
     << format_double(r.makespan_s / baseline_makespan, 4) << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") json = true;

  sim::SimExecutor ex = bench::make_exact_testbed();
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  const auto jobs = workloads::paper_benchmarks();
  const double budget = 700.0;

  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(budget);

  // Warm the knowledge DB so every scenario schedules from cached profiles
  // and the fault-free makespan is a fair inflation reference.
  const double horizon =
      runtime::PowerAwareJobQueue(ex, sched, opt).run(jobs).makespan_s;

  Table t({"scenario", "faults", "jobs", "completed", "failed", "retries",
           "caps re-capped", "violation (s)", "violation (Ws)",
           "makespan (s)", "inflation"});
  t.set_title("Resilience under a " + format_double(budget, 0) +
              " W bound: Table II suite vs injected faults");

  std::vector<std::string> json_rows;
  double baseline_makespan = horizon;
  for (const auto& s : bench::make_resilience_scenarios(horizon)) {
    runtime::PowerAwareJobQueue queue(ex, sched, opt);
    fault::FaultInjector injector(s.plan, ex.spec().nodes);
    if (!s.plan.empty()) queue.set_fault_injector(&injector);
    const auto r = queue.run(jobs);
    if (s.name == "fault-free") baseline_makespan = r.makespan_s;
    t.add_row({s.name, std::to_string(s.plan.size()),
               std::to_string(r.jobs.size()),
               std::to_string(r.jobs_completed()),
               std::to_string(r.jobs_failed), std::to_string(r.retries),
               std::to_string(r.caps_reprogrammed),
               format_double(r.violation_s, 2),
               format_double(r.violation_ws, 0),
               format_double(r.makespan_s, 1),
               format_double(r.makespan_s / baseline_makespan, 3) + "x"});
    json_rows.push_back(json_row(s, r, baseline_makespan));
  }
  ctx.print(t);
  std::cout
      << "Crashes cost retries, not jobs: the queue reclaims the dead "
         "node's watts and requeues with backoff, so the suite still "
         "finishes. The budget guard filters implausible meter readings "
         "(no false claw-backs under the meter storm) and bounds a cap "
         "violation to roughly its reaction latency instead of the full "
         "fault window.\n";

  if (json) {
    std::ofstream os("BENCH_resilience.json");
    os << "{\n  \"budget_w\": " << format_double(budget, 0)
       << ",\n  \"jobs\": " << jobs.size() << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i)
      os << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    os << "  ]\n}\n";
    std::cerr << "wrote BENCH_resilience.json\n";
  }
  return 0;
}
