// Figure 8 — performance comparison of the power-allocation methods under
// HIGH cluster power budgets. Relative performance is normalized to All-In
// with no power bound, as in the paper. Panels (a)/(b) split the benchmark
// set in half like the paper's two subfigures.
#include <iostream>

#include "bench_common.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  ctx.attach(ex);

  runtime::ComparisonHarness harness(ex);
  bench::register_all_methods(harness, ex, &ctx);

  const std::vector<double> budgets =
      ctx.budgets_or({1000.0, 1200.0, 1400.0});
  const auto& apps = workloads::paper_benchmarks();
  const auto result = harness.run(apps, budgets, ctx.pool());

  const std::vector<workloads::WorkloadSignature> panel_a(apps.begin(),
                                                          apps.begin() + 5);
  const std::vector<workloads::WorkloadSignature> panel_b(apps.begin() + 5,
                                                          apps.end());
  for (double budget : budgets) {
    bench::print_method_comparison(
        ctx, result, panel_a, budget,
        "Fig. 8a — relative performance, high budget " +
            std::to_string(static_cast<int>(budget)) + " W");
    bench::print_method_comparison(
        ctx, result, panel_b, budget,
        "Fig. 8b — relative performance, high budget " +
            std::to_string(static_cast<int>(budget)) + " W");
  }

  for (double budget : budgets)
    std::cout << "mean relative performance @" << budget
              << " W:  All-In " << result.mean_relative("All-In", budget)
              << "  Lower-Limit " << result.mean_relative("Lower Limit", budget)
              << "  Coordinated " << result.mean_relative("Coordinated", budget)
              << "  CLIP " << result.mean_relative("CLIP", budget)
              << "  Oracle " << result.mean_relative("Oracle", budget)
              << "\n";
  return 0;
}
