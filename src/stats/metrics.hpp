// Model-quality metrics used when validating the CLIP predictors against
// oracle (exhaustive-search) ground truth, as in paper Fig. 7.
#pragma once

#include <vector>

namespace clip::stats {

/// Mean absolute error.
[[nodiscard]] double mean_absolute_error(const std::vector<double>& truth,
                                         const std::vector<double>& pred);

/// Mean absolute percentage error (skips zero-truth samples).
[[nodiscard]] double mean_absolute_percentage_error(
    const std::vector<double>& truth, const std::vector<double>& pred);

/// Coefficient of determination R².
[[nodiscard]] double r_squared(const std::vector<double>& truth,
                               const std::vector<double>& pred);

/// Root mean squared error.
[[nodiscard]] double rmse(const std::vector<double>& truth,
                          const std::vector<double>& pred);

}  // namespace clip::stats
