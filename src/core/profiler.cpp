#include "core/profiler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace clip::core {

SmartProfiler::SmartProfiler(sim::SimExecutor& executor,
                             ProfilerOptions options)
    : executor_(&executor), options_(options) {
  CLIP_REQUIRE(options.profile_fraction > 0.0 &&
                   options.profile_fraction <= 1.0,
               "profile fraction in (0,1]");
  CLIP_REQUIRE(options.scatter_bw_threshold >= 0.0 &&
                   options.scatter_bw_threshold <= 1.0,
               "scatter threshold in [0,1]");
}

SampleProfile SmartProfiler::run_sample(const workloads::WorkloadSignature& w,
                                        int threads,
                                        parallel::AffinityPolicy affinity) {
  obs::ScopedSpan span(obs_, "profiler.sample", "profiler");
  span.arg("app", w.name);
  span.arg("threads", threads);
  span.arg("affinity", parallel::to_string(affinity));
  obs::count(obs_, "profiler.samples");
  // Profile a truncated problem: same signature, scaled work. Thread-team
  // forks happen once per iteration, so running a fraction of the
  // iterations also runs a fraction of the forks.
  workloads::WorkloadSignature probe = w;
  probe.node_base_time_s = w.node_base_time_s * options_.profile_fraction;
  probe.fork_overhead_s = w.fork_overhead_s * options_.profile_fraction;

  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.threads = threads;
  cfg.node.affinity = affinity;
  cfg.node.mem_level = sim::MemPowerLevel::kL0;
  // "Sufficient power": caps far above any feasible draw.
  cfg.node.cpu_cap = Watts(1e9);
  cfg.node.mem_cap = Watts(1e9);

  const sim::Measurement m = executor_->run(probe, cfg);
  CLIP_ENSURE(m.nodes.size() == 1, "profiling runs on one node");

  SampleProfile s;
  s.config = cfg.node;
  // Scale the truncated run back to full-problem time.
  s.time = Seconds(m.time.value() / options_.profile_fraction);
  s.cpu_power = m.nodes.front().cpu_power;
  s.mem_power = m.nodes.front().mem_power;
  s.events = m.nodes.front().events;
  return s;
}

ProfileData SmartProfiler::profile(const workloads::WorkloadSignature& w) {
  const auto& spec = executor_->spec();
  const int all = spec.shape.total_cores();
  const int half = all / 2;

  ProfileData p;
  p.app_name = w.name;
  p.app_parameters = w.parameters;

  // Step 1: all cores, scatter (uses every memory controller, so the
  // measured bandwidth reflects true demand, not a placement artifact).
  p.all_core = run_sample(w, all, parallel::AffinityPolicy::kScatter);

  p.node_bw_gbps = p.all_core.events.read_bw_gbps +
                   p.all_core.events.write_bw_gbps;
  const double peak_bw = spec.shape.sockets * spec.socket_bw_gbps;
  p.memory_intensity = peak_bw > 0.0 ? p.node_bw_gbps / peak_bw : 0.0;

  // Mapping preference: memory-hungry workloads need both controllers
  // (scatter); compute-bound ones pack onto as few sockets as possible so
  // unused sockets can park and their power feeds the frequency budget.
  p.preferred_affinity =
      p.memory_intensity >= options_.scatter_bw_threshold
          ? parallel::AffinityPolicy::kScatter
          : parallel::AffinityPolicy::kCompact;

  // Step 2: half cores with the preferred placement.
  p.half_core = run_sample(w, half, p.preferred_affinity);

  // Per-core DRAM demand: the all-core sample may be saturated (achieved
  // bandwidth capped by the memory system, not by demand), which would
  // underestimate what each core asks for. The half-core sample saturates
  // less, so take the larger per-thread figure.
  const double half_bw = p.half_core.events.read_bw_gbps +
                         p.half_core.events.write_bw_gbps;
  p.per_core_bw_gbps = std::max(p.node_bw_gbps / all, half_bw / half);

  p.perf_ratio_half_over_all =
      p.all_core.time.value() / p.half_core.time.value();
  p.all_core.events.perf_ratio_full_half = 1.0 / p.perf_ratio_half_over_all;
  p.half_core.events.perf_ratio_full_half = 1.0 / p.perf_ratio_half_over_all;

  p.profiling_cost =
      Seconds((p.all_core.time.value() + p.half_core.time.value()) *
              options_.profile_fraction);
  return p;
}

void SmartProfiler::validate_at(const workloads::WorkloadSignature& w,
                                ProfileData& profile, int threads) {
  CLIP_REQUIRE(threads >= 1 &&
                   threads <= executor_->spec().shape.total_cores(),
               "validation thread count outside the node");
  obs::count(obs_, "profiler.validation_samples");
  profile.validation = run_sample(w, threads, profile.preferred_affinity);
  profile.profiling_cost +=
      Seconds(profile.validation->time.value() * options_.profile_fraction);
}

}  // namespace clip::core
