// Fixture: H1 must fire on a guardless header (line 1) and on
// `using namespace` leaking into every includer.
#include <string>

using namespace std;  // line 5: H1

inline string shout(const string& s) { return s + "!"; }
