#include "runtime/job.hpp"

#include <sstream>

namespace clip::runtime {

std::string render_launch_script(const JobSpec& spec,
                                 const sim::ClusterConfig& plan) {
  std::ostringstream os;
  os << "#!/bin/sh\n"
     << "# CLIP-generated launch script\n"
     << "# app: " << spec.app.name << " " << spec.app.parameters << "\n"
     << "# cluster budget: " << spec.cluster_budget.value() << " W\n";
  for (int i = 0; i < plan.nodes; ++i) {
    const double cpu_cap =
        plan.cpu_cap_overrides.empty()
            ? plan.node.cpu_cap.value()
            : plan.cpu_cap_overrides[static_cast<std::size_t>(i)].value();
    os << "clip-powerctl --node n" << i << " --pkg-cap " << cpu_cap
       << "W --dram-cap " << plan.node.mem_cap.value() << "W --mem-level "
       << sim::to_string(plan.node.mem_level) << "\n";
  }
  os << "mpirun -np " << plan.nodes << " --map-by node \\\n"
     << "  -x OMP_NUM_THREADS=" << plan.node.threads
     << " -x OMP_PROC_BIND=" << parallel::to_string(plan.node.affinity)
     << " \\\n  " << spec.app.name << " " << spec.app.parameters << "\n";
  return os.str();
}

}  // namespace clip::runtime
