// FaultInjector — replays a FaultPlan against simulated runs.
//
// The analytic simulator returns a complete Measurement for a run up front,
// so faults are resolved against a job's *time window*: given a placement
// (start time, fault-free duration, node set) the injector answers what
// actually happens — when the job ends after thermal degradation stretches
// it, whether a node it holds crashes first, and what a power-meter read of
// one of its nodes returns at a given instant. The injector is const and
// pure; the resilient queue (runtime/queue.hpp) owns all reaction —
// requeueing, watt reclamation, cap claw-back — and all observability
// emission.
#pragma once

#include <vector>

#include "fault/plan.hpp"

namespace clip::fault {

/// Bounded-retry policy for crash-killed jobs (exponential backoff; failed
/// nodes are excluded structurally — a crashed node leaves the healthy pool
/// for good, so no retry can land on it).
struct RetryPolicy {
  int max_attempts = 3;         ///< total placements per job (1 = no retry)
  double backoff_base_s = 5.0;  ///< delay before the first retry
  double backoff_factor = 2.0;  ///< multiplier per subsequent retry

  /// Delay after the `attempt`-th failed placement (1-based).
  [[nodiscard]] double backoff_s(int attempt) const;

  void validate() const;
};

/// What the injector resolved for one placement.
struct RunResolution {
  bool crashed = false;    ///< a held node died before the job finished
  int crashed_node = -1;   ///< which one (first to die)
  double end_s = 0.0;      ///< completion time, or the abort time if crashed
  double slowdown = 1.0;   ///< (end - start) / fault-free duration, >= 1
};

class FaultInjector {
 public:
  /// `cluster_nodes` sizes the validity check; the plan is copied.
  FaultInjector(FaultPlan plan, int cluster_nodes);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] int cluster_nodes() const { return cluster_nodes_; }

  /// Every instant the runtime should wake at even if no job completes:
  /// crash and degrade times, meter-fault and cap-violation window edges.
  /// Sorted ascending, deduplicated.
  [[nodiscard]] std::vector<double> wakeups() const;

  /// Has `node` crashed at or before `t`?
  [[nodiscard]] bool node_crashed(int node, double t) const;

  /// Resolve a placement of fault-free length `duration_s` starting at
  /// `start_s` on `nodes`. Degrades stretch the remaining work (the job
  /// paces at its slowest node); a crash of any held node aborts the job at
  /// the crash instant.
  [[nodiscard]] RunResolution resolve(double start_s, double duration_s,
                                      const std::vector<int>& nodes) const;

  /// Fault-free-equivalent seconds of work a placement on `nodes` completes
  /// between `start_s` and `t_s` (the inverse of resolve's stretching: the
  /// job paces at its slowest node, degrades shrink the rate). The
  /// redistribution loop uses this to convert a running job's elapsed wall
  /// time into work progress before re-evaluating its remainder at a new
  /// power slice (docs/power-redistribution.md).
  [[nodiscard]] double work_done_s(double start_s, double t_s,
                                   const std::vector<int>& nodes) const;

  /// What a meter read of `node` returns at time `t` when the node truly
  /// draws `truth_w`. Outside any fault window this is the truth; inside,
  /// the corruption of the first matching plan entry applies.
  [[nodiscard]] double observed_node_power(int node, double t,
                                           double truth_w) const;

  /// Total unenforced-cap excess draw of `nodes` at time `t`, counting only
  /// violation windows not yet clawed back (the queue truncates windows it
  /// has re-coordinated away via `truncate_cap_violation`).
  [[nodiscard]] double cap_excess_w(const std::vector<int>& nodes,
                                    double t) const;

  /// End every cap-violation window on `node` that is active at `t` at `t`
  /// (the budget guard re-programmed the node's cap). Returns how many
  /// windows were truncated.
  int truncate_cap_violations(int node, double t);

  /// Nodes with a cap-violation window active at `t` (for the guard to know
  /// where to claw back), restricted to `nodes`.
  [[nodiscard]] std::vector<int> violating_nodes(const std::vector<int>& nodes,
                                                 double t) const;

  /// Is a cluster-wide meter blackout in effect at `t`? While true, no
  /// meter reading anywhere is trustworthy and the queue runs in
  /// METER_BLACKOUT mode (docs/robustness.md).
  [[nodiscard]] bool meters_blacked_out(double t) const;

  /// The facility-budget factor in effect at `t`: the minimum factor across
  /// the budget-cut windows active then, 1.0 when none is. The queue runs in
  /// BUDGET_BROWNOUT mode whenever this is below 1.
  [[nodiscard]] double budget_cut_factor(double t) const;

  /// The mutable cap-violation window ends (plan order) — the only injector
  /// state the queue mutates (via truncate_cap_violations). The scheduler
  /// journal snapshots this so recovery can restore a mid-run injector.
  [[nodiscard]] const std::vector<double>& violation_ends() const {
    return violation_ends_;
  }

  /// Restore window ends captured by violation_ends() (recovery path).
  /// Throws unless `ends` is plausibly a snapshot of this plan's windows.
  void restore_violation_ends(const std::vector<double>& ends);

 private:
  FaultPlan plan_;
  int cluster_nodes_;
  std::vector<double> violation_ends_;  ///< mutable window ends, plan order
};

}  // namespace clip::fault
