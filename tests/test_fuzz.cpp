// Fuzz-style property suites over randomly generated workloads and swept
// operating conditions: the simulator's physical invariants and CLIP's
// guarantees must hold across the whole valid signature space, not just the
// calibrated catalog.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "core/profiler.hpp"
#include "core/scheduler.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "lint.hpp"
#include "runtime/journal.hpp"
#include "runtime/queue.hpp"
#include "sim/executor.hpp"
#include "sim/rapl_controller.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"
#include "workloads/phases.hpp"
#include "workloads/random.hpp"

namespace clip {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

sim::SimExecutor& fuzz_executor() {
  static sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  return ex;
}

core::ClipScheduler& fuzz_scheduler() {
  static core::ClipScheduler sched{fuzz_executor(),
                                   workloads::training_benchmarks()};
  return sched;
}

// ------------------------------------------------- random-workload sweep ----

class RandomWorkload : public ::testing::TestWithParam<int> {
 protected:
  static workloads::WorkloadSignature workload(int index) {
    // One deterministic batch shared across the suite.
    static const auto batch = workloads::random_signatures(0xF00D, 48);
    return batch[static_cast<std::size_t>(index)];
  }
};

INSTANTIATE_TEST_SUITE_P(Batch, RandomWorkload, ::testing::Range(0, 48));

TEST_P(RandomWorkload, SimulatorInvariantsHold) {
  const auto w = workload(GetParam());
  auto& ex = fuzz_executor();
  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  cfg.node.threads = 1;
  const double t1 = ex.run_exact(w, cfg).time.value();
  double prev_power = 0.0;
  for (int n : {4, 12, 24}) {
    cfg.node.threads = n;
    const auto m = ex.run_exact(w, cfg);
    EXPECT_TRUE(std::isfinite(m.time.value()));
    EXPECT_GT(m.time.value(), 0.0);
    EXPECT_LE(t1 / m.time.value(), n * 1.0001);  // speedup <= ideal
    // More threads at the same frequency never draw less power.
    EXPECT_GE(m.avg_power.value(), prev_power - 1e-9);
    prev_power = m.avg_power.value();
  }
}

TEST_P(RandomWorkload, ProfilerAndClassifierNeverChoke) {
  const auto w = workload(GetParam());
  core::SmartProfiler profiler(fuzz_executor());
  const core::ScalabilityClassifier classifier;
  const auto p = profiler.profile(w);
  EXPECT_GT(p.perf_ratio_half_over_all, 0.0);
  EXPECT_LT(p.perf_ratio_half_over_all, 5.0);
  EXPECT_NO_THROW((void)classifier.classify(p));
  EXPECT_GE(p.per_core_bw_gbps, 0.0);
  EXPECT_LE(p.memory_intensity, 1.0);
}

TEST_P(RandomWorkload, ClipSchedulesAndRespectsBudget) {
  const auto w = workload(GetParam());
  auto& sched = fuzz_scheduler();
  auto& ex = fuzz_executor();
  for (double budget : {500.0, 900.0, 1300.0}) {
    const auto d = sched.schedule(w, Watts(budget));
    const auto m = ex.run_exact(w, d.cluster);
    EXPECT_LE(m.avg_power.value(), budget * 1.01) << budget;
    EXPECT_GE(d.cluster.nodes, 1);
    EXPECT_GE(d.cluster.node.threads, 1);
  }
}

TEST_P(RandomWorkload, CapEnforcementUnderRandomCaps) {
  const auto w = workload(GetParam());
  auto& ex = fuzz_executor();
  Rng rng(0xCAFE + static_cast<std::uint64_t>(GetParam()));
  const auto& spec = ex.spec();
  const double base_w = spec.shape.sockets * spec.socket_base_w;
  for (int trial = 0; trial < 4; ++trial) {
    sim::ClusterConfig cfg;
    cfg.nodes = static_cast<int>(rng.uniform_int(1, 8));
    cfg.node.threads = static_cast<int>(rng.uniform_int(1, 24));
    cfg.node.affinity = rng.uniform() < 0.5
                            ? parallel::AffinityPolicy::kCompact
                            : parallel::AffinityPolicy::kScatter;
    cfg.node.cpu_cap = Watts(rng.uniform(35.0, 140.0));
    cfg.node.mem_cap = Watts(rng.uniform(12.0, 40.0));
    sim::Measurement m;
    try {
      m = ex.run_exact(w, cfg);
    } catch (const PreconditionError&) {
      continue;  // e.g. memory-bound workload with a sub-base DRAM cap
    }
    for (const auto& node : m.nodes) {
      const double enforceable =
          std::max(cfg.node.cpu_cap.value(),
                   base_w + spec.shape.total_cores() * spec.core_max_w / 16.0);
      EXPECT_LE(node.cpu_power.value(), enforceable + 1e-9);
      EXPECT_GT(node.time.value(), 0.0);
    }
  }
}

// ------------------------------------------------------ phased sweeps ----

class PhasedSweep
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

std::vector<std::string> phased_names() {
  std::vector<std::string> names;
  for (const auto& p : workloads::phased_benchmarks())
    names.push_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    All, PhasedSweep,
    ::testing::Combine(::testing::ValuesIn(phased_names()),
                       ::testing::Values(550.0, 750.0, 1050.0, 1350.0)));

TEST_P(PhasedSweep, PhaseAwareNeverLosesToFlatAndStaysInBudget) {
  const auto [name, budget] = GetParam();
  const auto p = *workloads::find_phased(name);
  auto& sched = fuzz_scheduler();
  auto& ex = fuzz_executor();

  const auto flat = sched.schedule(p.blended(), Watts(budget));
  sim::PhasedClusterConfig flat_cfg;
  flat_cfg.nodes = flat.cluster.nodes;
  flat_cfg.phase_nodes.assign(p.phases.size(), flat.cluster.node);
  const auto flat_m = ex.run_phased_exact(p, flat_cfg);

  const auto phased = sched.schedule_phased(p, Watts(budget));
  const auto phased_m = ex.run_phased_exact(p, phased.cluster);

  EXPECT_LT(phased_m.time.value(), flat_m.time.value() * 1.001);
  for (const auto& pm : phased_m.phases)
    EXPECT_LE(pm.avg_power.value(), budget * 1.01) << pm.phase;
}

TEST_P(PhasedSweep, BlendEnergyAccountingConsistent) {
  const auto [name, budget] = GetParam();
  const auto p = *workloads::find_phased(name);
  auto& sched = fuzz_scheduler();
  auto& ex = fuzz_executor();
  const auto d = sched.schedule_phased(p, Watts(budget));
  const auto m = ex.run_phased_exact(p, d.cluster);
  double phase_energy = 0.0;
  for (const auto& pm : m.phases) phase_energy += pm.energy.value();
  EXPECT_NEAR(m.energy.value(), phase_energy, 1e-6);
  EXPECT_NEAR(m.avg_power.value(),
              m.energy.value() / m.time.value(), 1e-9);
}

// ------------------------------------------------- fault-plan fuzzing ----
//
// Random fault plans against the resilient queue: whatever combination of
// crashes, degrades, meter faults and cap violations a seed draws, the queue
// must terminate, account every job as completed-or-failed, never reserve
// more power than the budget, and never record more violation energy than
// the plan actually injected.

class FaultPlanFuzz : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FaultPlanFuzz, ::testing::Range(0, 12));

TEST_P(FaultPlanFuzz, QueueSurvivesArbitrarySeededFaults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto& ex = fuzz_executor();
  auto& sched = fuzz_scheduler();

  fault::FaultPlanShape shape;
  shape.crashes = static_cast<int>(seed % 4);        // 0..3 of 8 nodes
  shape.degrades = static_cast<int>((seed / 4) % 3);
  shape.meter_faults = 2;
  shape.cap_violations = 2;
  const double horizon = 4000.0;
  const auto plan =
      fault::FaultPlan::random(0xFA01 + seed, ex.spec().nodes, horizon, shape);

  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  runtime::PowerAwareJobQueue queue(ex, sched, opt);
  fault::FaultInjector injector(plan, ex.spec().nodes);
  queue.set_fault_injector(&injector);

  const auto& jobs = workloads::paper_benchmarks();
  const auto report = queue.run(jobs);  // termination is the first property

  // Every submitted job is accounted for: completed or failed, no limbo.
  EXPECT_EQ(report.jobs.size(), jobs.size());
  EXPECT_EQ(report.jobs_completed() +
                static_cast<std::size_t>(report.jobs_failed),
            jobs.size());
  EXPECT_TRUE(std::isfinite(report.makespan_s));
  EXPECT_GE(report.makespan_s, 0.0);
  EXPECT_LE(report.crashed_nodes.size(),
            static_cast<std::size_t>(shape.crashes));

  // Reserved power never exceeds the budget at any start instant, and no
  // job lands on a node set larger than the cluster.
  for (const auto& a : report.jobs) {
    if (a.nodes == 0) continue;  // never placed (all nodes dead)
    EXPECT_LE(a.nodes, ex.spec().nodes);
    EXPECT_LE(a.attempts, opt.retry.max_attempts);
    double reserved = 0.0;
    for (const auto& b : report.jobs)
      if (b.nodes > 0 && b.start_s <= a.start_s && a.start_s < b.end_s)
        reserved += b.budget_w;
    EXPECT_LE(reserved, opt.cluster_budget.value() * 1.001)
        << "seed " << seed << " t=" << a.start_s;
  }

  // Violation energy is bounded by what the plan injected: the cluster can
  // only exceed the budget through unenforced cap excess.
  double injected_ws = 0.0;
  for (const auto& v : plan.cap_violations)
    injected_ws += v.excess_w * v.duration_s;
  // Slack: measured draw may exceed a job's reserved slice by the queue's
  // 1 % + 1 W shaping tolerance, integrated over the run.
  const double slack =
      (0.01 * opt.cluster_budget.value() + 1.0) * report.makespan_s;
  EXPECT_LE(report.violation_ws, injected_ws + slack) << "seed " << seed;
  if (plan.cap_violations.empty()) {
    EXPECT_LE(report.violation_ws, slack);
  }
}

// -------------------------------------------- randomized kill-point fuzz ----
//
// The crash-consistency analogue of the fault-plan fuzzer: random fault
// plans (degraded-mode windows included), a journaled reference run, then
// random kill points — every recovery must reproduce the reference run
// byte-for-byte. The exhaustive every-boundary sweep lives in
// tests/test_recovery.cpp; this suite varies the *plans* instead.

std::string report_fingerprint(const runtime::QueueReport& r) {
  std::ostringstream os;
  os << std::hexfloat << r.makespan_s << '|' << r.total_energy_j << '|'
     << r.node_seconds_used << '|' << r.retries << '|' << r.jobs_failed << '|'
     << r.caps_reprogrammed << '|' << r.violation_s << '|' << r.violation_ws;
  for (const auto& j : r.jobs)
    os << '\n'
       << j.app << ',' << j.start_s << ',' << j.end_s << ',' << j.nodes << ','
       << j.budget_w << ',' << j.attempts << ',' << j.completed << ','
       << j.crashed_node;
  return os.str();
}

class RecoveryFuzz : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzz, ::testing::Range(0, 6));

TEST_P(RecoveryFuzz, RandomKillPointsRecoverByteIdentically) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto& ex = fuzz_executor();
  auto& sched = fuzz_scheduler();

  fault::FaultPlanShape shape;
  shape.crashes = static_cast<int>(seed % 3);
  shape.degrades = static_cast<int>((seed / 3) % 2);
  shape.meter_faults = 1;
  shape.cap_violations = 1;
  shape.meter_blackouts = static_cast<int>(seed % 2);
  shape.budget_cuts = static_cast<int>((seed + 1) % 2);
  const auto plan =
      fault::FaultPlan::random(0x1EC0 + seed, ex.spec().nodes, 60.0, shape);

  runtime::QueueOptions opt;
  opt.cluster_budget = Watts(700.0);
  std::vector<runtime::QueueJob> jobs;
  for (const auto& a : workloads::paper_benchmarks()) jobs.push_back({a, 0});

  // Warm the knowledge DB so the reference run and every recovery schedule
  // from identical cached profiles.
  {
    runtime::PowerAwareJobQueue warm(ex, sched, opt);
    (void)warm.run(jobs);
  }

  const auto run_with = [&](runtime::Journal* journal,
                            runtime::Journal* resume) {
    runtime::QueueEventLoop loop(ex, sched, opt, jobs);
    std::optional<fault::FaultInjector> injector;
    if (!plan.empty()) {
      injector.emplace(plan, ex.spec().nodes);
      loop.set_fault_injector(&*injector);
    }
    if (journal != nullptr) loop.set_journal(journal);
    return resume != nullptr ? loop.recover(*resume) : loop.run();
  };

  runtime::Journal reference;
  const std::string ref = report_fingerprint(run_with(&reference, nullptr));

  Rng rng(0x171F + seed);
  for (int trial = 0; trial < 5; ++trial) {
    const auto kill = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(reference.size())));
    runtime::Journal j = reference;
    j.truncate(kill);
    EXPECT_EQ(report_fingerprint(run_with(nullptr, &j)), ref)
        << "seed " << seed << " kill@" << kill << " of " << reference.size();
  }
}

// --------------------------------------------------- controller sweeps ----

class ControllerSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Caps, ControllerSweep,
                         ::testing::Values(40, 55, 70, 85, 100, 115, 130));

TEST_P(ControllerSweep, ThroughputBoundedAndMonotone) {
  const double cap = GetParam();
  const sim::MachineSpec spec;
  const sim::RaplControllerSim controller(spec);
  const auto w = *workloads::find_benchmark("BT-MZ");
  const auto trace = controller.simulate(
      w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(cap));
  EXPECT_GT(trace.throughput, 0.0);
  EXPECT_LE(trace.throughput, 1.0 + 1e-9);
  const auto looser = controller.simulate(
      w, 24, parallel::AffinityPolicy::kScatter, 68.0, Watts(cap + 15.0));
  EXPECT_GE(looser.throughput, trace.throughput - 0.02);
}

// ----------------------------------------------- static-analyzer fuzz ----
//
// clip-analyze runs over every source file in CI, so its lexer, directive
// parser, function-span detector and flow engine must survive arbitrary
// byte soup: unterminated strings/comments, unbalanced braces, truncated
// directives, init-list lookalikes. The property is "never crash, never
// hang, always deterministic" — the exact findings on garbage are
// unspecified but must be well-formed and stable across runs.

class LintFuzz : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Soup, LintFuzz, ::testing::Range(0, 64));

TEST_P(LintFuzz, AnalyzerNeverChokesOnTokenSoup) {
  static const char* const kPieces[] = {
      "{", "}", "(", ")", "[", "]", ";", ":", "::", "->", ".", ",", "<",
      ">", "=", "+", "-", "*", "&", "|", "==", "&&", "#", "\"lit\"", "'c'",
      "\"unterminated", "/* unterminated", "//", "\\", "0x1f", "12.5",
      "try", "catch", "if", "for", "while", "operator", "noexcept",
      "return", "struct", "const", "static", "else", "do",
      "lock_guard", "scoped_lock", "unique_lock", "lock", "mu_",
      "jlog", "append_or_verify", "known_record_kinds", "journal_",
      "append", "load", "state_", "x_",
      "// clip-lint: journaled(state_, x_)",
      "// clip-lint: guards(mu_: state_)",
      "// clip-lint: guards(mu_@label: x_)",
      "// clip-lint: fallible(load)",
      "// clip-lint: allow(J1) reason",
      "// clip-lint: allow(",
      "// clip-lint: guards(",
      "// clip-lint:",
      "#include <mutex>",
  };
  constexpr std::size_t kVocab = sizeof(kPieces) / sizeof(kPieces[0]);

  Rng rng(0x11A7F022u + static_cast<std::uint64_t>(GetParam()));
  std::string src;
  const int pieces = static_cast<int>(rng.uniform_int(1, 400));
  for (int i = 0; i < pieces; ++i) {
    src += kPieces[rng.uniform_int(0, static_cast<std::int64_t>(kVocab) - 1)];
    const double sep = rng.uniform();
    src += sep < 0.70 ? " " : (sep < 0.95 ? "\n" : "");
  }
  // Half the cases additionally truncate mid-byte, modeling a torn read.
  if (rng.uniform() < 0.5 && !src.empty())
    src.resize(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(src.size()) - 1)));

  const lint::FileResult a = lint::analyze_source(src, "soup.cpp");
  const lint::FileResult b = lint::analyze_source(src, "soup.cpp");
  ASSERT_EQ(a.findings.size(), b.findings.size()) << "non-deterministic";
  const auto& rules = lint::known_rules();
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
    EXPECT_EQ(a.findings[i].line, b.findings[i].line);
    EXPECT_EQ(a.findings[i].message, b.findings[i].message);
    EXPECT_GE(a.findings[i].line, 0);
    EXPECT_NE(std::find(rules.begin(), rules.end(), a.findings[i].rule),
              rules.end())
        << a.findings[i].rule;
  }
  // The project passes must also digest fuzzed facts without incident.
  std::vector<lint::FileResult> files = {a};
  (void)lint::project_rules(files);
}

}  // namespace
}  // namespace clip
