#include "runtime/run_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "runtime/journal.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

// Journal::load salvages torn tails and reports the gap; a report that
// ignores that result would silently present a truncated record stream as
// complete, so E1 tracks it here.
// clip-lint: fallible(load)

namespace clip::runtime {

namespace {

using obs::format_exact;

double to_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  CLIP_REQUIRE(end != s.c_str() && *end == '\0',
               std::string("run record: bad ") + what + " '" + s + "'");
  return v;
}

int to_int(const std::string& s, const char* what) {
  return static_cast<int>(to_double(s, what));
}

const std::vector<std::string>& jobs_header() {
  static const std::vector<std::string> header = {
      "app",      "parameters", "submit_s",  "start_s",
      "end_s",    "nodes",      "budget_w",  "power_w",
      "attempts", "completed",  "crashed_node"};
  return header;
}

/// jobs.csv header for a record written with tracing on. The extra column
/// appears only then: untraced records keep the legacy header bytes.
const std::vector<std::string>& jobs_header_traced() {
  static const std::vector<std::string> header = [] {
    std::vector<std::string> h = jobs_header();
    h.push_back("trace_id");
    return h;
  }();
  return header;
}

const std::vector<std::string>& spans_header() {
  static const std::vector<std::string> header = {
      "name", "category", "start_us", "duration_us", "tid", "depth"};
  return header;
}

/// Everything a render needs, loaded from a record directory. Holds the
/// (non-movable) Timeline by value, so it is constructed in place.
struct LoadedRecord {
  std::map<std::string, std::string> summary;
  std::vector<QueuedJobResult> jobs;
  obs::Timeline timeline;
  std::vector<obs::SpanRecord> spans;

  [[nodiscard]] double scalar(const std::string& key) const {
    const auto it = summary.find(key);
    CLIP_REQUIRE(it != summary.end(),
                 "run record summary missing key '" + key + "'");
    return to_double(it->second, key.c_str());
  }
  /// Like scalar(), for keys newer than the record (e.g. the redist.*
  /// accounting on records written before redistribution existed).
  [[nodiscard]] double scalar_or(const std::string& key,
                                 double fallback) const {
    const auto it = summary.find(key);
    return it != summary.end() ? to_double(it->second, key.c_str())
                               : fallback;
  }
  [[nodiscard]] std::vector<int> crashed_nodes() const {
    std::vector<int> nodes;
    const auto it = summary.find("crashed_nodes");
    if (it == summary.end() || it->second.empty()) return nodes;
    for (const auto& field : split(it->second, ';'))
      nodes.push_back(to_int(field, "crashed_nodes"));
    return nodes;
  }
};

void load_record(const std::filesystem::path& dir, LoadedRecord& rec) {
  CLIP_REQUIRE(std::filesystem::is_directory(dir),
               "not a run-record directory: " + dir.string());
  const CsvDocument summary = read_csv(dir / RunRecordFiles::kSummary);
  CLIP_REQUIRE(summary.header == std::vector<std::string>({"key", "value"}),
               "malformed summary.csv in " + dir.string());
  for (const auto& row : summary.rows) rec.summary[row[0]] = row[1];

  const CsvDocument jobs = read_csv(dir / RunRecordFiles::kJobs);
  const bool traced = jobs.header == jobs_header_traced();
  CLIP_REQUIRE(traced || jobs.header == jobs_header(),
               "malformed jobs.csv in " + dir.string());
  for (const auto& row : jobs.rows) {
    QueuedJobResult j;
    j.app = row[0];
    j.parameters = row[1];
    j.submit_s = to_double(row[2], "submit_s");
    j.start_s = to_double(row[3], "start_s");
    j.end_s = to_double(row[4], "end_s");
    j.nodes = to_int(row[5], "nodes");
    j.budget_w = to_double(row[6], "budget_w");
    j.power_w = to_double(row[7], "power_w");
    j.attempts = to_int(row[8], "attempts");
    j.completed = row[9] == "1";
    j.crashed_node = to_int(row[10], "crashed_node");
    if (traced) j.trace_id = row[11];
    rec.jobs.push_back(std::move(j));
  }

  rec.timeline.load_csv(dir / RunRecordFiles::kTimeline);

  const auto spans_path = dir / RunRecordFiles::kSpans;
  if (std::filesystem::exists(spans_path)) {
    const CsvDocument spans = read_csv(spans_path);
    CLIP_REQUIRE(spans.header == spans_header(),
                 "malformed spans.csv in " + dir.string());
    for (const auto& row : spans.rows) {
      obs::SpanRecord s;
      s.name = row[0];
      s.category = row[1];
      s.start_us = to_double(row[2], "start_us");
      s.duration_us = to_double(row[3], "duration_us");
      s.tid = to_int(row[4], "tid");
      s.depth = to_int(row[5], "depth");
      rec.spans.push_back(std::move(s));
    }
  }
}

/// Node indices with a `node<N>.power_w` series, numerically sorted.
std::vector<int> power_nodes(const obs::Timeline& timeline) {
  std::vector<int> nodes;
  for (const auto& name : timeline.series_names()) {
    if (!starts_with(name, "node")) continue;
    const auto dot = name.find('.');
    if (dot == std::string::npos || name.substr(dot) != ".power_w") continue;
    const std::string digits = name.substr(4, dot - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    nodes.push_back(std::stoi(digits));
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

/// Spans sorted slowest-first with a total (duration, name, start) order,
/// so the table is deterministic under ties.
std::vector<obs::SpanRecord> slowest_spans(std::vector<obs::SpanRecord> spans,
                                           int top) {
  std::sort(spans.begin(), spans.end(),
            [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
              if (a.duration_us != b.duration_us)
                return a.duration_us > b.duration_us;
              if (a.name != b.name) return a.name < b.name;
              return a.start_us < b.start_us;
            });
  if (static_cast<int>(spans.size()) > top)
    spans.resize(static_cast<std::size_t>(top));
  return spans;
}

}  // namespace

void write_run_record(const std::filesystem::path& dir, Watts cluster_budget,
                      const QueueReport& report,
                      const obs::Timeline& timeline,
                      const std::vector<obs::SpanRecord>& spans,
                      const obs::MetricsRegistry* metrics) {
  std::filesystem::create_directories(dir);
  timeline.write_csv(dir / RunRecordFiles::kTimeline);

  bool traced = false;
  for (const auto& j : report.jobs) traced = traced || !j.trace_id.empty();
  CsvDocument jobs;
  jobs.header = traced ? jobs_header_traced() : jobs_header();
  for (const auto& j : report.jobs) {
    jobs.rows.push_back({j.app, j.parameters, format_exact(j.submit_s),
                         format_exact(j.start_s), format_exact(j.end_s),
                         std::to_string(j.nodes), format_exact(j.budget_w),
                         format_exact(j.power_w), std::to_string(j.attempts),
                         j.completed ? "1" : "0",
                         std::to_string(j.crashed_node)});
    if (traced) jobs.rows.back().push_back(j.trace_id);
  }
  write_csv(dir / RunRecordFiles::kJobs, jobs);

  std::string crashed;
  for (std::size_t i = 0; i < report.crashed_nodes.size(); ++i) {
    if (i > 0) crashed += ';';
    crashed += std::to_string(report.crashed_nodes[i]);
  }
  CsvDocument summary;
  summary.header = {"key", "value"};
  summary.rows = {
      {"cluster_budget_w", format_exact(cluster_budget.value())},
      {"makespan_s", format_exact(report.makespan_s)},
      {"mean_turnaround_s", format_exact(report.mean_turnaround_s)},
      {"total_energy_j", format_exact(report.total_energy_j)},
      {"node_seconds_used", format_exact(report.node_seconds_used)},
      {"node_seconds_available", format_exact(report.node_seconds_available)},
      {"retries", std::to_string(report.retries)},
      {"jobs_failed", std::to_string(report.jobs_failed)},
      {"caps_reprogrammed", std::to_string(report.caps_reprogrammed)},
      {"violation_s", format_exact(report.violation_s)},
      {"violation_ws", format_exact(report.violation_ws)},
      {"meter_reads_rejected", std::to_string(report.meter_reads_rejected)},
      {"crashed_nodes", crashed},
      {"redist_claw_backs", std::to_string(report.redist_claw_backs)},
      {"redist_regrants", std::to_string(report.redist_regrants)},
      {"redist_subsystem_shifts",
       std::to_string(report.redist_subsystem_shifts)},
      {"redist_regrants_rejected",
       std::to_string(report.redist_regrants_rejected)},
      {"redist_reclaimed_w", format_exact(report.redist_reclaimed_w)},
      {"redist_granted_w", format_exact(report.redist_granted_w)},
  };
  write_csv(dir / RunRecordFiles::kSummary, summary);

  CsvDocument span_doc;
  span_doc.header = spans_header();
  for (const auto& s : spans)
    span_doc.rows.push_back({s.name, s.category, format_exact(s.start_us),
                             format_exact(s.duration_us),
                             std::to_string(s.tid), std::to_string(s.depth)});
  write_csv(dir / RunRecordFiles::kSpans, span_doc);

  if (metrics != nullptr) {
    std::ofstream out(dir / RunRecordFiles::kMetrics, std::ios::trunc);
    CLIP_REQUIRE(out.good(), "cannot write metrics.prom in " + dir.string());
    out << metrics->render_prometheus();
  }
}

std::string render_markdown_report(const std::filesystem::path& dir,
                                   RunReportOptions options) {
  CLIP_REQUIRE(options.power_points >= 2, "need at least two power points");
  LoadedRecord rec;
  load_record(dir, rec);

  const double budget_w = rec.scalar("cluster_budget_w");
  const double makespan_s = rec.scalar("makespan_s");
  const double total_energy_j = rec.scalar("total_energy_j");
  const double used = rec.scalar("node_seconds_used");
  const double avail = rec.scalar("node_seconds_available");
  const double node_util = avail > 0.0 ? used / avail : 0.0;
  const double budget_util = budget_w > 0.0 && makespan_s > 0.0
                                 ? total_energy_j / (budget_w * makespan_s)
                                 : 0.0;
  std::size_t completed = 0;
  for (const auto& j : rec.jobs)
    if (j.completed) ++completed;

  std::ostringstream out;
  out << "# CLIP run report\n\n## Summary\n\n| key | value |\n|---|---|\n";
  out << "| cluster budget (W) | " << format_double(budget_w, 1) << " |\n";
  out << "| makespan (s) | " << format_double(makespan_s, 3) << " |\n";
  out << "| jobs completed | " << completed << "/" << rec.jobs.size()
      << " |\n";
  out << "| retries | " << static_cast<int>(rec.scalar("retries")) << " |\n";
  out << "| jobs failed | " << static_cast<int>(rec.scalar("jobs_failed"))
      << " |\n";
  out << "| total energy (kJ) | " << format_double(total_energy_j / 1000.0, 2)
      << " |\n";
  out << "| node utilization | " << format_double(node_util, 3) << " |\n";
  out << "| budget utilization | " << format_double(budget_util, 3) << " |\n";
  // Violation figures print shortest-exact: they are the BudgetGuard's
  // ground-truth accounting and tests compare them bit-for-bit.
  out << "| cap violation (s) | " << rec.summary.at("violation_s") << " |\n";
  out << "| cap violation (W·s) | " << rec.summary.at("violation_ws")
      << " |\n";
  out << "| caps clawed back | "
      << static_cast<int>(rec.scalar("caps_reprogrammed")) << " |\n";
  out << "| meter reads rejected | "
      << static_cast<int>(rec.scalar("meter_reads_rejected")) << " |\n";
  out << "| redistribution (claws/regrants/shifts) | "
      << static_cast<int>(rec.scalar_or("redist_claw_backs", 0.0)) << "/"
      << static_cast<int>(rec.scalar_or("redist_regrants", 0.0)) << "/"
      << static_cast<int>(rec.scalar_or("redist_subsystem_shifts", 0.0))
      << " |\n";
  out << "| watts reclaimed / re-granted | "
      << format_double(rec.scalar_or("redist_reclaimed_w", 0.0), 1) << " / "
      << format_double(rec.scalar_or("redist_granted_w", 0.0), 1) << " |\n";
  const auto crashed = rec.crashed_nodes();
  out << "| crashed nodes | ";
  if (crashed.empty()) {
    out << "none";
  } else {
    for (std::size_t i = 0; i < crashed.size(); ++i)
      out << (i > 0 ? " " : "") << crashed[i];
  }
  out << " |\n";

  const auto nodes = power_nodes(rec.timeline);
  if (!nodes.empty()) {
    out << "\n## Per-node power (W)\n\n| t (s) |";
    for (int n : nodes) out << " node" << n << " |";
    out << "\n|---|";
    for (std::size_t i = 0; i < nodes.size(); ++i) out << "---|";
    out << "\n";
    for (int p = 0; p < options.power_points; ++p) {
      const double t = makespan_s * p /
                       static_cast<double>(options.power_points - 1);
      out << "| " << format_double(t, 1) << " |";
      for (int n : nodes) {
        const double v = rec.timeline.value_at(
            "node" + std::to_string(n) + ".power_w", t);
        out << ' ' << (std::isnan(v) ? "-" : format_double(v, 1)) << " |";
      }
      out << "\n";
    }
    out << "\n| node | energy (kJ) |\n|---|---|\n";
    for (int n : nodes) {
      const double e = rec.timeline.integral(
          "node" + std::to_string(n) + ".power_w", 0.0, makespan_s);
      out << "| node" << n << " | " << format_double(e / 1000.0, 2) << " |\n";
    }
  }

  out << "\n## Jobs\n\n| app | start (s) | end (s) | nodes | cap (W) | "
         "power (W) | energy (kJ) | attempts | completed | crashed node "
         "|\n|---|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& j : rec.jobs) {
    const double energy_j = j.power_w * (j.end_s - j.start_s);
    out << "| " << j.app << " | " << format_double(j.start_s, 2) << " | "
        << format_double(j.end_s, 2) << " | " << j.nodes << " | "
        << format_double(j.budget_w, 1) << " | "
        << format_double(j.power_w, 1) << " | "
        << format_double(energy_j / 1000.0, 2) << " | " << j.attempts
        << " | " << (j.completed ? "yes" : "no") << " | "
        << (j.crashed_node >= 0 ? std::to_string(j.crashed_node) : "-")
        << " |\n";
  }

  out << "\n## Fault events\n\n";
  const auto faults = rec.timeline.events("fault");
  if (faults.empty()) {
    out << "none\n";
  } else {
    for (const auto& e : faults)
      out << "- " << format_double(e.t_s, 3) << " s — " << e.label << "\n";
  }

  if (!rec.spans.empty()) {
    out << "\n## Slowest pipeline spans\n\n| span | category | duration "
           "(ms) |\n|---|---|---|\n";
    for (const auto& s : slowest_spans(rec.spans, options.top_spans))
      out << "| " << s.name << " | " << s.category << " | "
          << format_double(s.duration_us / 1000.0, 3) << " |\n";
  }
  return out.str();
}

std::string render_json_report(const std::filesystem::path& dir,
                               RunReportOptions options) {
  LoadedRecord rec;
  load_record(dir, rec);

  const double budget_w = rec.scalar("cluster_budget_w");
  const double makespan_s = rec.scalar("makespan_s");
  const double total_energy_j = rec.scalar("total_energy_j");
  const double used = rec.scalar("node_seconds_used");
  const double avail = rec.scalar("node_seconds_available");
  std::size_t completed = 0;
  for (const auto& j : rec.jobs)
    if (j.completed) ++completed;

  std::ostringstream out;
  out << "{\n";
  out << "  \"budget_w\": " << format_exact(budget_w) << ",\n";
  out << "  \"makespan_s\": " << format_exact(makespan_s) << ",\n";
  out << "  \"jobs_total\": " << rec.jobs.size() << ",\n";
  out << "  \"jobs_completed\": " << completed << ",\n";
  out << "  \"retries\": " << static_cast<int>(rec.scalar("retries"))
      << ",\n";
  out << "  \"jobs_failed\": " << static_cast<int>(rec.scalar("jobs_failed"))
      << ",\n";
  out << "  \"total_energy_j\": " << format_exact(total_energy_j) << ",\n";
  out << "  \"node_utilization\": "
      << format_exact(avail > 0.0 ? used / avail : 0.0) << ",\n";
  out << "  \"budget_utilization\": "
      << format_exact(budget_w > 0.0 && makespan_s > 0.0
                          ? total_energy_j / (budget_w * makespan_s)
                          : 0.0)
      << ",\n";
  out << "  \"violation_s\": " << rec.summary.at("violation_s") << ",\n";
  out << "  \"violation_ws\": " << rec.summary.at("violation_ws") << ",\n";
  out << "  \"caps_reprogrammed\": "
      << static_cast<int>(rec.scalar("caps_reprogrammed")) << ",\n";
  out << "  \"meter_reads_rejected\": "
      << static_cast<int>(rec.scalar("meter_reads_rejected")) << ",\n";
  out << "  \"redist_claw_backs\": "
      << static_cast<int>(rec.scalar_or("redist_claw_backs", 0.0)) << ",\n";
  out << "  \"redist_regrants\": "
      << static_cast<int>(rec.scalar_or("redist_regrants", 0.0)) << ",\n";
  out << "  \"redist_subsystem_shifts\": "
      << static_cast<int>(rec.scalar_or("redist_subsystem_shifts", 0.0))
      << ",\n";
  out << "  \"redist_regrants_rejected\": "
      << static_cast<int>(rec.scalar_or("redist_regrants_rejected", 0.0))
      << ",\n";
  out << "  \"redist_reclaimed_w\": "
      << format_exact(rec.scalar_or("redist_reclaimed_w", 0.0)) << ",\n";
  out << "  \"redist_granted_w\": "
      << format_exact(rec.scalar_or("redist_granted_w", 0.0)) << ",\n";
  out << "  \"crashed_nodes\": [";
  const auto crashed = rec.crashed_nodes();
  for (std::size_t i = 0; i < crashed.size(); ++i)
    out << (i > 0 ? "," : "") << crashed[i];
  out << "],\n";

  out << "  \"node_energy_j\": {";
  const auto nodes = power_nodes(rec.timeline);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double e = rec.timeline.integral(
        "node" + std::to_string(nodes[i]) + ".power_w", 0.0, makespan_s);
    out << (i > 0 ? "," : "") << "\"node" << nodes[i]
        << "\":" << format_exact(e);
  }
  out << "},\n";

  out << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < rec.jobs.size(); ++i) {
    const auto& j = rec.jobs[i];
    out << "    {\"app\":\"" << obs::json_escape(j.app) << "\",\"start_s\":"
        << format_exact(j.start_s) << ",\"end_s\":" << format_exact(j.end_s)
        << ",\"nodes\":" << j.nodes
        << ",\"budget_w\":" << format_exact(j.budget_w)
        << ",\"power_w\":" << format_exact(j.power_w)
        << ",\"attempts\":" << j.attempts
        << ",\"completed\":" << (j.completed ? "true" : "false")
        << ",\"crashed_node\":" << j.crashed_node << "}"
        << (i + 1 < rec.jobs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"fault_events\": [";
  const auto faults = rec.timeline.events("fault");
  for (std::size_t i = 0; i < faults.size(); ++i)
    out << (i > 0 ? "," : "") << "{\"t_s\":" << format_exact(faults[i].t_s)
        << ",\"label\":\"" << obs::json_escape(faults[i].label) << "\"}";
  out << "],\n";

  out << "  \"slowest_spans\": [";
  const auto top = slowest_spans(rec.spans, options.top_spans);
  for (std::size_t i = 0; i < top.size(); ++i)
    out << (i > 0 ? "," : "") << "{\"name\":\"" << obs::json_escape(top[i].name)
        << "\",\"category\":\"" << obs::json_escape(top[i].category)
        << "\",\"duration_us\":" << format_exact(top[i].duration_us) << "}";
  out << "]\n}\n";
  return out.str();
}

namespace {

/// True when `text`, split on single spaces, contains `token` exactly —
/// the attribution primitive of the job story (labels and journal payloads
/// are space-separated token lists).
bool has_token(const std::string& text, const std::string& token) {
  for (const auto& t : split(text, ' '))
    if (t == token) return true;
  return false;
}

}  // namespace

std::string render_job_story(const std::filesystem::path& dir,
                             std::size_t job_index) {
  LoadedRecord rec;
  load_record(dir, rec);
  CLIP_REQUIRE(job_index < rec.jobs.size(),
               "job index " + std::to_string(job_index) +
                   " out of range (record has " +
                   std::to_string(rec.jobs.size()) + " jobs)");
  const QueuedJobResult& job = rec.jobs[job_index];
  const bool traced = !job.trace_id.empty();
  const std::string trace_token = "trace=" + job.trace_id;

  std::ostringstream out;
  out << "# Job story: " << job.app << " (job " << job_index << ")\n\n";
  out << "| key | value |\n|---|---|\n";
  out << "| trace | " << (traced ? job.trace_id : std::string("untraced"))
      << " |\n";
  out << "| parameters | " << (job.parameters.empty() ? "-" : job.parameters)
      << " |\n";
  out << "| submitted (s) | " << format_double(job.submit_s, 3) << " |\n";
  out << "| started (s) | " << format_double(job.start_s, 3) << " |\n";
  out << "| finished (s) | " << format_double(job.end_s, 3) << " |\n";
  out << "| nodes | " << job.nodes << " |\n";
  out << "| power slice (W) | " << format_double(job.budget_w, 1) << " |\n";
  out << "| measured draw (W) | " << format_double(job.power_w, 1) << " |\n";
  out << "| attempts | " << job.attempts << " |\n";
  out << "| completed | " << (job.completed ? "yes" : "no") << " |\n";
  out << "| crashed node | "
      << (job.crashed_node >= 0 ? std::to_string(job.crashed_node) : "-")
      << " |\n";

  // One merged, time-ordered stream of the job's flight-recorder events.
  // The `job` stream attributes by trace token when the record is traced
  // (exact even when several jobs run the same app); `redist`/`mode`
  // labels carry only the app name, so those attribute by app.
  struct StoryEvent {
    double t_s;
    int stream_rank;
    std::string stream;
    std::string label;
  };
  std::vector<StoryEvent> story;
  const char* streams[] = {"job", "redist", "mode"};
  for (int rank = 0; rank < 3; ++rank) {
    for (const auto& e : rec.timeline.events(streams[rank])) {
      const bool mine =
          rank == 0 ? (traced ? has_token(e.label, trace_token)
                              : has_token(e.label, job.app))
                    : has_token(e.label, job.app);
      if (mine)
        story.push_back({e.t_s, rank, streams[rank], e.label});
    }
  }
  std::stable_sort(story.begin(), story.end(),
                   [](const StoryEvent& a, const StoryEvent& b) {
                     if (a.t_s != b.t_s) return a.t_s < b.t_s;
                     return a.stream_rank < b.stream_rank;
                   });
  out << "\n## Flight-recorder events\n\n";
  if (story.empty()) {
    out << "none\n";
  } else {
    for (const auto& e : story)
      out << "- " << format_double(e.t_s, 3) << " s [" << e.stream << "] "
          << e.label << "\n";
  }

  // Recovery evidence is global (a replay gap is not attributable to one
  // job) but belongs in any story that crosses a coordinator death.
  const auto recovery = rec.timeline.events("journal");
  if (!recovery.empty()) {
    out << "\n## Recovery events\n\n";
    for (const auto& e : recovery)
      out << "- " << format_double(e.t_s, 3) << " s — " << e.label << "\n";
  }

  const auto journal_path = dir / RunRecordFiles::kJournal;
  if (std::filesystem::exists(journal_path)) {
    Journal journal;
    const JournalLoadResult loaded = journal.load(journal_path);
    out << "\n## Journal records\n\n";
    if (loaded.salvaged)
      out << "- **salvaged**: dropped " << loaded.dropped_lines
          << " corrupt tail line(s) — " << loaded.gap << "\n";
    const std::string job_token = "job=" + std::to_string(job_index);
    std::size_t rows = 0;
    for (const auto& r : journal.records()) {
      if (r.kind == "snapshot") continue;
      if (!has_token(r.payload, job_token) &&
          !(traced && has_token(r.payload, trace_token)))
        continue;
      ++rows;
      out << "- seq " << r.seq << " **" << r.kind << "** " << r.payload
          << "\n";
    }
    if (rows == 0) out << "none\n";
  }
  return out.str();
}

}  // namespace clip::runtime
