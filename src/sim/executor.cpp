#include "sim/executor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace clip::sim {

SimExecutor::SimExecutor(MachineSpec spec, MeterOptions meter)
    : spec_(std::move(spec)),
      variability_(spec_),
      rapl_(spec_),
      events_(spec_),
      meter_(meter) {
  spec_.validate();
}

void SimExecutor::set_exact_cache(ExactRunCache* cache) {
  cache_ = cache;
  cache_prefix_ = cache != nullptr ? ExactRunCache::encode_spec(spec_)
                                   : std::string();
}

Measurement SimExecutor::run_exact(const workloads::WorkloadSignature& w,
                                   const ClusterConfig& cfg) const {
  if (cache_ == nullptr) return compute_exact(w, cfg);

  const std::string key = ExactRunCache::encode_key(cache_prefix_, w, cfg);
  Measurement m;
  if (cache_->lookup(key, m)) {
    obs::count(obs_, "sim.exact_cache_hits");
    return m;
  }
  obs::count(obs_, "sim.exact_cache_misses");
  m = compute_exact(w, cfg);
  cache_->insert(key, m);
  return m;
}

Measurement SimExecutor::compute_exact(const workloads::WorkloadSignature& w,
                                       const ClusterConfig& cfg) const {
  obs::ScopedSpan span(obs_, "sim.run", "sim");
  span.arg("app", w.name);
  span.arg("nodes", cfg.nodes);
  obs::count(obs_, "sim.runs");
  obs::count(obs_, "sim.node_solves",
             static_cast<std::uint64_t>(std::max(cfg.nodes, 0)));
  w.validate();
  CLIP_REQUIRE(cfg.nodes >= 1 && cfg.nodes <= spec_.nodes,
               "node count outside the cluster");
  CLIP_REQUIRE(cfg.cpu_cap_overrides.empty() ||
                   static_cast<int>(cfg.cpu_cap_overrides.size()) ==
                       cfg.nodes,
               "per-node cap overrides must match the node count");

  const double node_work_s = w.node_base_time_s / cfg.nodes;

  Measurement m;
  m.nodes.reserve(static_cast<std::size_t>(cfg.nodes));
  Seconds slowest{0.0};
  for (int i = 0; i < cfg.nodes; ++i) {
    NodeConfig node_cfg = cfg.node;
    if (!cfg.cpu_cap_overrides.empty())
      node_cfg.cpu_cap = cfg.cpu_cap_overrides[static_cast<std::size_t>(i)];
    const OperatingPoint op = rapl_.solve(w, node_work_s, node_cfg,
                                          variability_.cpu_multiplier(i));
    NodeMeasurement nm;
    nm.time = op.perf.time;
    nm.frequency = op.frequency;
    nm.duty_factor = op.duty_factor;
    nm.cpu_power = op.cpu_power;
    nm.mem_power = op.mem_power;
    nm.achieved_bw_gbps = op.perf.achieved_bw_gbps;
    nm.saturation = op.perf.saturation;
    nm.events = events_.synthesize(w, node_cfg.threads, op.frequency,
                                   op.perf);
    slowest = std::max(slowest, nm.time);
    m.nodes.push_back(std::move(nm));
  }

  m.comm_time = CommModel::evaluate(w, cfg.nodes, node_work_s);
  m.time = slowest + m.comm_time;

  double watts = 0.0;
  for (const auto& nm : m.nodes)
    watts += nm.cpu_power.value() + nm.mem_power.value();
  m.avg_power = Watts(watts);
  m.energy = m.avg_power * m.time;
  return m;
}

Measurement SimExecutor::run(const workloads::WorkloadSignature& w,
                             const ClusterConfig& cfg) {
  Measurement m = run_exact(w, cfg);
  meter_.observe(m);
  return m;
}

PhasedMeasurement SimExecutor::run_phased_exact(
    const workloads::PhasedWorkload& w,
    const PhasedClusterConfig& cfg) const {
  w.validate();
  CLIP_REQUIRE(cfg.phase_nodes.size() == w.phases.size(),
               "one node config per phase required");
  CLIP_REQUIRE(cfg.nodes >= 1 && cfg.nodes <= spec_.nodes,
               "node count outside the cluster");

  PhasedMeasurement total;
  double energy = 0.0;
  for (std::size_t i = 0; i < w.phases.size(); ++i) {
    ClusterConfig phase_cfg;
    phase_cfg.nodes = cfg.nodes;
    phase_cfg.node = cfg.phase_nodes[i];
    const Measurement m = run_exact(w.phase_signature(i), phase_cfg);

    PhaseMeasurement pm;
    pm.phase = w.phases[i].name;
    pm.time = m.time;
    pm.avg_power = m.avg_power;
    pm.energy = m.energy;
    pm.frequency = m.nodes.front().frequency;
    pm.threads = phase_cfg.node.threads;
    total.time += m.time;
    energy += m.energy.value();
    total.phases.push_back(std::move(pm));
  }
  total.energy = Joules(energy);
  total.avg_power = total.energy / total.time;
  return total;
}

}  // namespace clip::sim
