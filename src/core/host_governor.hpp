// HostGovernor — the CLIP node-level loop running against *real* kernels on
// the host thread pool.
//
// On the paper's testbed the loop is: profile at all/half cores (wall clock
// + RAPL counters), classify, pick a concurrency, program the caps, pin the
// threads. In this containerized environment there are no RAPL counters, so
// power comes from the machine model while everything else is real: real
// kernel executions provide the timings and the measured traffic
// (bytes_moved / time), the classifier and selector make the decision, and
// the governor enforces it on the pool via set_concurrency/set_affinity.
//
// This is the smallest honest end-to-end demonstration of CLIP's mechanism
// stack on hardware the build machine actually has.
#pragma once

#include <functional>

#include "core/classifier.hpp"
#include "core/node_config.hpp"
#include "core/profile.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/machine.hpp"
#include "workloads/kernels.hpp"

namespace clip::core {

/// A kernel under government: any callable running the timed section on the
/// current pool team and reporting traffic/work.
using GovernedKernel =
    std::function<workloads::KernelResult(parallel::ThreadPool&)>;

struct GovernorDecision {
  NodeDecision node;              ///< threads/affinity/levels/caps chosen
  ProfileData profile;            ///< real-measurement profile it came from
  workloads::ScalabilityClass cls = workloads::ScalabilityClass::kLinear;
  double full_time_s = 0.0;       ///< measured all-thread sample
  double half_time_s = 0.0;       ///< measured half-thread sample
};

class HostGovernor {
 public:
  /// `model` describes the host's power behaviour (socket bases, per-core
  /// draw, DVFS ladder); shape.total_cores() should not exceed the pool.
  HostGovernor(sim::MachineSpec model,
               NodeSelectorOptions options = NodeSelectorOptions{});

  /// Profile the kernel at full/half concurrency on the pool (real runs),
  /// build a CLIP profile from the measurements, decide a configuration
  /// under `node_budget`, and apply it to the pool.
  [[nodiscard]] GovernorDecision govern(parallel::ThreadPool& pool,
                                        const GovernedKernel& kernel,
                                        Watts node_budget);

 private:
  sim::MachineSpec model_;
  ScalabilityClassifier classifier_;
  NodeConfigSelector selector_;
};

}  // namespace clip::core
