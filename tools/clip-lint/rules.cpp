// Rule passes for clip-lint. Every pass walks the token stream of one file;
// none needs type information — the invariants were chosen so their
// violations are visible at the token level (see docs/static-analysis.md
// for what each rule can and cannot see).

#include <algorithm>
#include <set>
#include <string>

#include "lint.hpp"

namespace clip::lint {

namespace {

using Tokens = std::vector<Token>;

bool path_ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool is(const Tokens& t, std::size_t i, std::string_view text) {
  return i < t.size() && t[i].text == text;
}

bool is_ident(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent;
}

// ---------------------------------------------------------------------------
// D1 — wall-clock reads outside the injected-clock seam (src/obs/clock.hpp).
// The simulator's time axis is simulated seconds; a single wall-clock read
// in a decision or export path makes figure output run-dependent.
// ---------------------------------------------------------------------------
void rule_d1(const LexedFile& f, std::vector<Finding>& out) {
  if (path_ends_with(f.path, "src/obs/clock.hpp")) return;
  static const std::set<std::string, std::less<>> kClockIdents = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "clock_gettime", "gettimeofday", "localtime",
      "gmtime",        "strftime",     "mktime",
      "timespec_get"};
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (kClockIdents.count(t[i].text) != 0) {
      out.push_back({f.path, t[i].line, "D1",
                     "wall-clock source '" + t[i].text +
                         "' outside src/obs/clock.hpp; inject a "
                         "clip::obs::Clock (or simulated time) instead",
                     false,
                     {}});
      continue;
    }
    // Qualified std::time( / std::clock( / ::time( calls.
    if ((t[i].text == "time" || t[i].text == "clock") && is(t, i + 1, "(") &&
        i >= 1 && is(t, i - 1, "::") &&
        (i == 1 || is(t, i - 2, "std") || t[i - 2].kind != Token::Kind::kIdent)) {
      out.push_back({f.path, t[i].line, "D1",
                     "wall-clock call '" + t[i].text +
                         "()' outside src/obs/clock.hpp; inject a "
                         "clip::obs::Clock (or simulated time) instead",
                     false,
                     {}});
    }
  }
}

// ---------------------------------------------------------------------------
// D2 — hash-ordered containers. Iteration order of std::unordered_map/set
// is implementation- and size-dependent, so any iteration can leak
// nondeterministic order into exports, fingerprints or float accumulation.
// Declarations are flagged too: keeping one requires a suppression whose
// reason asserts the container is lookup-only.
// ---------------------------------------------------------------------------
void rule_d2(const LexedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  std::set<std::string> unordered_names;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent ||
        (t[i].text != "unordered_map" && t[i].text != "unordered_set"))
      continue;
    out.push_back({f.path, t[i].line, "D2",
                   "std::" + t[i].text +
                       " has hash-dependent iteration order; use std::map/"
                       "std::set or suppress with a lookup-only reason",
                   false,
                   {}});
    // Collect the declared name: skip <...> then modifiers, expect ident.
    std::size_t j = i + 1;
    if (is(t, j, "<")) {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (is(t, j, "&") || is(t, j, "*") || is(t, j, "const")) ++j;
    if (is_ident(t, j)) unordered_names.insert(t[j].text);
  }
  if (unordered_names.empty()) return;

  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for over an unordered container: for ( ... : name ...)
    if (is(t, i, "for") && is(t, i + 1, "(")) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = i + 1;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (is_ident(t, j) && unordered_names.count(t[j].text) != 0) {
            out.push_back({f.path, t[j].line, "D2",
                           "iteration over hash-ordered container '" +
                               t[j].text + "'",
                           false,
                           {}});
          }
        }
      }
    }
    // Explicit iterator walk: name.begin( / name.cbegin( / rbegin.
    if (is_ident(t, i) && unordered_names.count(t[i].text) != 0 &&
        (is(t, i + 1, ".") || is(t, i + 1, "->")) && i + 2 < t.size()) {
      const std::string& m = t[i + 2].text;
      if (m == "begin" || m == "cbegin" || m == "rbegin" || m == "crbegin") {
        out.push_back({f.path, t[i].line, "D2",
                       "iteration over hash-ordered container '" + t[i].text +
                           "' via ." + m + "()",
                       false,
                       {}});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D3 — raw double formatting. Fixed-precision conversions (%f/%e/%g,
// std::to_string's fixed six decimals) round doubles before they reach a
// file, so a value that round-trips through CSV stops matching the number
// the simulator computed. Exact exports go through obs::format_exact
// (shortest %.17g); its home file is the one allowed raw conversion site.
// ---------------------------------------------------------------------------
bool has_float_conversion(const std::string& literal) {
  for (std::size_t i = 0; i + 1 < literal.size(); ++i) {
    if (literal[i] != '%') continue;
    std::size_t j = i + 1;
    if (j < literal.size() && literal[j] == '%') {
      i = j;  // %% escape
      continue;
    }
    while (j < literal.size() &&
           (std::string("-+ #0123456789.*'").find(literal[j]) !=
            std::string::npos))
      ++j;
    while (j < literal.size() &&
           (literal[j] == 'l' || literal[j] == 'L' || literal[j] == 'h'))
      ++j;
    if (j < literal.size() &&
        std::string("fFeEgGaA").find(literal[j]) != std::string::npos)
      return true;
  }
  return false;
}

void rule_d3(const LexedFile& f, std::vector<Finding>& out) {
  if (path_ends_with(f.path, "src/obs/timeline.cpp")) return;  // format_exact
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Token::Kind::kString && has_float_conversion(t[i].text)) {
      out.push_back({f.path, t[i].line, "D3",
                     "fixed-precision float conversion in format string " +
                         t[i].text +
                         "; exact output goes through obs::format_exact",
                     false,
                     {}});
    }
    // std::to_string(<float literal ...>): fixed six decimals, lossy.
    if (is(t, i, "to_string") && i >= 2 && is(t, i - 1, "::") &&
        is(t, i - 2, "std") && is(t, i + 1, "(")) {
      int depth = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) break;
        if (t[j].kind == Token::Kind::kNumber &&
            t[j].text.find("0x") != 0 &&
            (t[j].text.find('.') != std::string::npos ||
             t[j].text.find('e') != std::string::npos ||
             t[j].text.find('E') != std::string::npos)) {
          out.push_back({f.path, t[j].line, "D3",
                         "std::to_string of a floating value formats at a "
                         "fixed six decimals; use obs::format_exact",
                         false,
                         {}});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D4 — RNG primitives outside the seeded wrapper. clip::Rng (xoshiro256**,
// hand-rolled distributions) is the only randomness source whose streams
// are seeded, splittable and platform-identical; std primitives are either
// unseeded (random_device) or unspecified across standard libraries
// (distributions), and rand() is both.
// ---------------------------------------------------------------------------
void rule_d4(const LexedFile& f, std::vector<Finding>& out) {
  if (path_ends_with(f.path, "src/util/rng.hpp") ||
      path_ends_with(f.path, "src/util/rng.cpp"))
    return;
  static const std::set<std::string, std::less<>> kRngIdents = {
      "random_device",      "mt19937",       "mt19937_64",
      "minstd_rand",        "minstd_rand0",  "default_random_engine",
      "ranlux24",           "ranlux48",      "knuth_b",
      "random_shuffle",     "uniform_real_distribution",
      "uniform_int_distribution", "normal_distribution",
      "bernoulli_distribution"};
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (kRngIdents.count(t[i].text) != 0) {
      out.push_back({f.path, t[i].line, "D4",
                     "std RNG primitive '" + t[i].text +
                         "' outside clip::Rng; draw from a seeded Rng stream",
                     false,
                     {}});
      continue;
    }
    if ((t[i].text == "rand" || t[i].text == "srand") && is(t, i + 1, "(") &&
        (i == 0 || (!is(t, i - 1, ".") && !is(t, i - 1, "->")))) {
      out.push_back({f.path, t[i].line, "D4",
                     "'" + t[i].text +
                         "()' is unseeded global state; draw from a seeded "
                         "clip::Rng stream",
                     false,
                     {}});
    }
  }
}

// ---------------------------------------------------------------------------
// C1 — observer/timeline hooks must be null-guarded. The byte-identity
// contract (detached run == no obs side effects) holds because every hook
// dereference sits behind a single branch; an unguarded dereference is a
// crash on the detached path. Recognized justifications, in source order:
//   if (hook_ ...) <stmt-or-block>        guard over the statement/block
//   if (hook_ == nullptr) return;         early exit guards the rest of scope
//   hook_ = <non-null>;                   assignment guards the rest of scope
//   hook_ && hook_->...  /  hook_ ? ...   same-expression truthiness
// ---------------------------------------------------------------------------
bool is_hook_name(const std::string& s) {
  static const std::set<std::string, std::less<>> kHooks = {
      "obs_", "observer_", "timeline_", "session_", "sink_", "tracer_"};
  return kHooks.count(s) != 0;
}

void rule_c1(const LexedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  struct Fact {
    std::string name;
    enum class Kind { kScope, kBlock, kStmt } kind;
    int depth = 0;            // brace depth the fact was created at
    bool entered_block = false;
  };
  std::vector<Fact> facts;
  int brace = 0;
  int paren = 0;

  auto find_close_paren = [&](std::size_t open) {
    int d = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].text == "(") ++d;
      if (t[j].text == ")" && --d == 0) return j;
    }
    return t.size();
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& tx = t[i].text;
    if (tx == "(") ++paren;
    if (tx == ")") --paren;
    if (tx == "{") {
      ++brace;
      for (Fact& fa : facts)
        if (fa.kind == Fact::Kind::kStmt && brace == fa.depth + 1)
          fa.entered_block = true;
    }
    if (tx == "}") {
      --brace;
      std::erase_if(facts, [&](const Fact& fa) {
        if (fa.kind == Fact::Kind::kBlock || fa.kind == Fact::Kind::kScope)
          return brace < fa.depth;
        return fa.entered_block && brace <= fa.depth;
      });
    }
    if (tx == ";" && paren == 0) {
      std::erase_if(facts, [&](const Fact& fa) {
        return fa.kind == Fact::Kind::kStmt && brace == fa.depth;
      });
    }

    // Guard analysis at each `if (...)`.
    if (tx == "if" && is(t, i + 1, "(")) {
      const std::size_t close = find_close_paren(i + 1);
      std::vector<std::string> positive;
      std::vector<std::string> negative;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (!is_ident(t, j) || !is_hook_name(t[j].text)) continue;
        const bool negated =
            (j > 0 && is(t, j - 1, "!")) ||
            (is(t, j + 1, "==") && is(t, j + 2, "nullptr"));
        (negated ? negative : positive).push_back(t[j].text);
      }
      if (!positive.empty()) {
        const bool block = is(t, close + 1, "{");
        for (const std::string& name : positive)
          facts.push_back({name,
                           block ? Fact::Kind::kBlock : Fact::Kind::kStmt,
                           block ? brace + 1 : brace, false});
      }
      if (!negative.empty()) {
        // Does the guarded statement leave the scope?
        bool exits = false;
        if (is(t, close + 1, "{")) {
          int d = 0;
          for (std::size_t j = close + 1; j < t.size(); ++j) {
            if (t[j].text == "{") ++d;
            if (t[j].text == "}" && --d == 0) break;
            if (t[j].text == "return" || t[j].text == "throw" ||
                t[j].text == "continue" || t[j].text == "break" ||
                t[j].text == "abort")
              exits = true;
          }
        } else {
          for (std::size_t j = close + 1;
               j < t.size() && t[j].text != ";"; ++j) {
            if (t[j].text == "return" || t[j].text == "throw" ||
                t[j].text == "continue" || t[j].text == "break" ||
                t[j].text == "abort")
              exits = true;
          }
        }
        if (exits)
          for (const std::string& name : negative)
            facts.push_back({name, Fact::Kind::kScope, brace, false});
      }
    }

    // Assignment establishes non-null for the rest of the scope.
    if (is_ident(t, i) && is_hook_name(tx) && is(t, i + 1, "=") &&
        !is(t, i + 2, "nullptr") &&
        (i == 0 || (!is(t, i - 1, ".") && !is(t, i - 1, "->") &&
                    !is(t, i - 1, "=") && !is(t, i - 1, "!") &&
                    !is(t, i - 1, "<") && !is(t, i - 1, ">")))) {
      facts.push_back({tx, Fact::Kind::kScope, brace, false});
    }

    // The check itself: hook_-> without an active fact or same-expression
    // truth test.
    if (is_ident(t, i) && is_hook_name(tx) && is(t, i + 1, "->")) {
      bool justified =
          std::any_of(facts.begin(), facts.end(),
                      [&](const Fact& fa) { return fa.name == tx; });
      if (!justified) {
        for (std::size_t j = i; j-- > 0;) {
          const std::string& back = t[j].text;
          if (back == ";" || back == "{" || back == "}") break;
          if (back == tx &&
              (is(t, j + 1, "&&") || is(t, j + 1, "?") ||
               (is(t, j + 1, "!=") && is(t, j + 2, "nullptr")))) {
            justified = true;
            break;
          }
        }
      }
      if (!justified) {
        out.push_back({f.path, t[i].line, "C1",
                       "hook pointer '" + tx +
                           "' dereferenced without a null guard; detached "
                           "runs must stay byte-identical (if (" +
                           tx + ") " + tx + "->...)",
                       false,
                       {}});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// H1 — header hygiene: every header carries #pragma once (or a classic
// include guard), and headers never inject `using namespace` into every
// includer.
// ---------------------------------------------------------------------------
void rule_h1(const LexedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  if (f.is_header) {
    bool guarded = false;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (is(t, i, "#pragma") && is(t, i + 1, "once")) guarded = true;
      if (is(t, i, "#ifndef") && i + 2 < t.size() && is(t, i + 2, "#define"))
        guarded = true;
    }
    if (!guarded)
      out.push_back({f.path, 1, "H1",
                     "header lacks #pragma once (or an include guard)", false,
                     {}});
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (f.is_header && is(t, i, "using") && is(t, i + 1, "namespace")) {
      out.push_back({f.path, t[i].line, "H1",
                     "'using namespace' in a header leaks into every "
                     "includer",
                     false,
                     {}});
    }
  }
}

}  // namespace

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {"D1", "D2", "D3", "D4",
                                                  "C1", "H1", "LINT"};
  return kRules;
}

std::vector<Finding> run_rules(LexedFile& f) {
  std::vector<Finding> findings = f.lex_findings;
  rule_d1(f, findings);
  rule_d2(f, findings);
  rule_d3(f, findings);
  rule_d4(f, findings);
  rule_c1(f, findings);
  rule_h1(f, findings);

  // Validate suppressions before applying them: a suppression must name
  // known rules and carry a reason, or it is itself a finding.
  const auto& rules = known_rules();
  for (const Suppression& sup : f.suppressions) {
    if (sup.rules.empty()) {
      findings.push_back({f.path, sup.comment_line, "LINT",
                          "suppression lists no rules", false,
                          {}});
    }
    for (const std::string& r : sup.rules) {
      if (std::find(rules.begin(), rules.end(), r) == rules.end()) {
        findings.push_back({f.path, sup.comment_line, "LINT",
                            "suppression names unknown rule '" + r + "'",
                            false,
                            {}});
      }
    }
    if (sup.reason.empty()) {
      findings.push_back(
          {f.path, sup.comment_line, "LINT",
           "suppression without a reason; write `// clip-lint: allow(RULE) "
           "why this is safe`",
           false,
           {}});
    }
  }

  // Apply valid suppressions.
  for (Finding& fi : findings) {
    if (fi.rule == "LINT") continue;  // hygiene findings are not suppressible
    for (Suppression& sup : f.suppressions) {
      if (sup.reason.empty()) continue;
      if (std::find(sup.rules.begin(), sup.rules.end(), fi.rule) ==
          sup.rules.end())
        continue;
      if (!sup.file_scope && sup.target_line != fi.line) continue;
      fi.suppressed = true;
      fi.reason = sup.reason;
      sup.used = true;
      break;
    }
  }

  // Unused suppressions rot: the code they excused has moved or was fixed.
  for (const Suppression& sup : f.suppressions) {
    if (sup.used || sup.reason.empty() || sup.rules.empty()) continue;
    bool all_known = true;
    for (const std::string& r : sup.rules)
      if (std::find(rules.begin(), rules.end(), r) == rules.end())
        all_known = false;
    if (!all_known) continue;
    findings.push_back({f.path, sup.comment_line, "LINT",
                        "suppression never matched a finding; delete it",
                        false,
                        {}});
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_source(std::string_view source, std::string path) {
  LexedFile f = lex(source, std::move(path));
  return run_rules(f);
}

}  // namespace clip::lint
