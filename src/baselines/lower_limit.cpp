#include "baselines/lower_limit.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace clip::baselines {

sim::ClusterConfig LowerLimitScheduler::plan(
    const workloads::WorkloadSignature& app, Watts cluster_budget) {
  app.validate();
  CLIP_REQUIRE(cluster_budget.value() > 0.0, "budget must be positive");

  const int affordable = static_cast<int>(
      std::floor(cluster_budget.value() / floor_.value()));
  const int nodes = std::clamp(affordable, 1, spec_->nodes);

  sim::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node.threads = spec_->shape.total_cores();
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  cfg.node.mem_level = sim::MemPowerLevel::kL0;
  const double node_share = cluster_budget.value() / nodes;
  cfg.node.mem_cap = mem_per_node_;
  cfg.node.cpu_cap =
      Watts(std::max(1.0, node_share - mem_per_node_.value()));
  return cfg;
}

}  // namespace clip::baselines
