#include "sim/rapl.hpp"

#include <algorithm>
#include <cmath>

#if defined(CLIP_SIM_SIMD)
#include <emmintrin.h>
#endif

#include "util/check.hpp"

namespace clip::sim {

double RaplSolver::bandwidth_ceiling(const parallel::Placement& placement,
                                     MemPowerLevel level,
                                     Watts mem_cap) const {
  const int active = placement.active_sockets();
  CLIP_REQUIRE(active > 0, "need at least one active socket");

  // Only sockets with threads serve traffic in this model; the others park.
  const double level_bw =
      active * spec_->socket_bw_gbps * bw_fraction(level);

  // The DRAM cap bounds base + activity power; convert the activity
  // headroom back into a bandwidth ceiling.
  const int parked = spec_->shape.sockets - active;
  const double base_w = active * spec_->mem_base_w_per_socket +
                        parked * spec_->mem_parked_w_per_socket;
  const double headroom_w = mem_cap.value() - base_w;
  const double cap_bw =
      headroom_w <= 0.0 ? 0.0 : headroom_w / spec_->mem_w_per_gbps();

  return std::min(level_bw, cap_bw);
}

RaplSolver::Prepared RaplSolver::prepare(const workloads::WorkloadSignature& w,
                                         double work_s,
                                         const NodeConfig& cfg) const {
  CLIP_REQUIRE(cfg.threads >= 1 && cfg.threads <= spec_->shape.total_cores(),
               "thread count outside the node");
  CLIP_REQUIRE(work_s > 0.0, "work must be positive");

  Prepared p;
  p.placement =
      parallel::place_threads(spec_->shape, cfg.threads, cfg.affinity);
  CLIP_REQUIRE(cfg.threads == p.placement.total_threads(),
               "placement/thread count mismatch");
  p.work_s = work_s;
  p.threads = cfg.threads;

  const int active = p.placement.active_sockets();
  CLIP_REQUIRE(active > 0, "need at least one active socket");
  p.level_bw_gbps =
      active * spec_->socket_bw_gbps * bw_fraction(cfg.mem_level);
  const int parked = spec_->shape.sockets - active;
  p.mem_base_w = active * spec_->mem_base_w_per_socket +
                 parked * spec_->mem_parked_w_per_socket;
  p.w_per_gbps = spec_->mem_w_per_gbps();

  p.remote_fraction =
      w.shared_data_fraction * p.placement.cross_socket_factor();
  p.numa_factor = 1.0 - spec_->remote_numa_penalty * p.remote_fraction;

  const double n = cfg.threads;
  const double s = w.serial_fraction;
  const double m = w.memory_boundedness;
  p.one_minus_m = 1.0 - m;
  p.mem_numerator = (1.0 - s) * m;
  p.fork_s = w.fork_overhead_s * (n - 1.0);
  // pow() is by far the hottest cap-independent term: one sync pow and one
  // power-law pow per state, amortized over the whole frontier.
  const double kp_sync = w.sync_coeff_s * std::pow(n - 1.0, w.sync_exponent);
  const double nb_demand = n * w.bw_per_core_gbps;
  const double compute_num = (1.0 - s) * (1.0 - m);

  const auto& states = spec_->ladder.states();
  p.states.reserve(states.size());
  for (auto it = states.rbegin(); it != states.rend(); ++it) {
    Prepared::State st;
    st.freq = *it;
    st.f_rel = spec_->ladder.relative(*it);
    CLIP_REQUIRE(st.f_rel > 0.0 && st.f_rel <= 1.5, "f_rel out of range");
    st.pow_f = std::pow(st.f_rel, spec_->power_exponent);
    st.demand_gbps = nb_demand * st.f_rel;
    st.serial_t = s / st.f_rel;
    st.nf = n * st.f_rel;
    st.compute_t = compute_num / st.nf;
    st.sync_t = kp_sync / st.f_rel;
    p.states.push_back(st);
  }
  return p;
}

Watts RaplSolver::mem_power_prepared(const Prepared& p,
                                     double achieved_bw_gbps) const {
  double total = 0.0;
  const int active = p.placement.active_sockets();
  CLIP_ENSURE(active > 0, "memory power needs at least one active socket");
  const double activity_w = achieved_bw_gbps * p.w_per_gbps;
  for (int threads : p.placement.threads_per_socket) {
    if (threads > 0) {
      total += spec_->mem_base_w_per_socket + activity_w / active;
    } else {
      total += spec_->mem_parked_w_per_socket;
    }
  }
  return Watts(total);
}

void RaplSolver::apply_duty_cycle(const workloads::WorkloadSignature& w,
                                  Watts cpu_cap, double cpu_multiplier,
                                  OperatingPoint& op) const {
  // Even the lowest state exceeds the PKG cap: clock modulation (T-states)
  // duty-cycles the pipeline. Gating stops the *dynamic* power; the socket
  // base draw stays — so the duty factor solves
  //   cap = base + load(f_min) * duty.
  // A cap at/below the base power is physically unenforceable by clock
  // gating; the node floors at the deepest modulation step.
  double base_w = 0.0;
  for (int t : op.placement.threads_per_socket)
    base_w += t > 0 ? spec_->socket_base_w : spec_->socket_parked_w;
  const double load_w = op.cpu_power.value() - base_w;
  CLIP_ENSURE(load_w > 0.0, "no dynamic power to modulate");
  constexpr double kDeepestDuty = 1.0 / 16.0;  // hardware modulation floor
  op.duty_factor = std::clamp(
      (cpu_cap.value() - base_w) / load_w, kDeepestDuty, 1.0);
  op.perf.time = Seconds(op.perf.time.value() / op.duty_factor);
  op.perf.achieved_bw_gbps *= op.duty_factor;
  op.cpu_power = Watts(base_w + load_w * op.duty_factor);
  NodeActivity throttled{.placement = op.placement,
                         .f_rel = op.f_rel,
                         .utilization = op.perf.utilization,
                         .compute_intensity = w.compute_intensity,
                         .achieved_bw_gbps = op.perf.achieved_bw_gbps,
                         .cpu_load_multiplier = cpu_multiplier};
  op.mem_power = power_.mem_power(throttled);
}

OperatingPoint RaplSolver::solve_prepared(const workloads::WorkloadSignature& w,
                                          const Prepared& p, Watts cpu_cap,
                                          Watts mem_cap,
                                          double cpu_multiplier) const {
  CLIP_REQUIRE(cpu_cap.value() > 0.0 && mem_cap.value() > 0.0,
               "caps must be positive");
  CLIP_REQUIRE(cpu_multiplier > 0.0, "variability multiplier must be > 0");

  // bandwidth_ceiling, from the hoisted level/base terms.
  const double headroom_w = mem_cap.value() - p.mem_base_w;
  const double cap_bw =
      headroom_w <= 0.0 ? 0.0 : headroom_w / p.w_per_gbps;
  const double bw_cap = std::min(p.level_bw_gbps, cap_bw);
  CLIP_REQUIRE(w.memory_boundedness == 0.0 || bw_cap > 0.0,
               "memory-bound workload with zero bandwidth budget — DRAM cap "
               "below base power");
  const double bw_eff = bw_cap * p.numa_factor;

  const double m = w.memory_boundedness;
  const double ci = w.compute_intensity;

  OperatingPoint op;
  op.placement = p.placement;
  bool fitted = false;
  // Walk the DVFS ladder downward; take the fastest state under the cap.
  for (std::size_t k = 0; k < p.states.size(); ++k) {
    const Prepared::State& st = p.states[k];
    const double sat =
        st.demand_gbps > 0.0 ? std::min(1.0, bw_eff / st.demand_gbps) : 1.0;
    CLIP_ENSURE(m == 0.0 || sat > 0.0,
                "memory-bound work with zero usable bandwidth");
    const double util = p.one_minus_m + m * sat;
    const double memory_t = m > 0.0 ? p.mem_numerator / (st.nf * sat) : 0.0;
    const double time =
        p.work_s * (st.serial_t + st.compute_t + memory_t + st.sync_t) +
        p.fork_s;
    CLIP_ENSURE(time > 0.0 && std::isfinite(time), "non-physical node time");

    CLIP_REQUIRE(util >= 0.0 && util <= 1.0, "utilization in [0,1]");
    const double activity =
        spec_->core_power_floor +
        (1.0 - spec_->core_power_floor) * util * ci;
    const double per_core = spec_->core_max_w * activity * st.pow_f;
    double total = 0.0;
    for (int threads : p.placement.threads_per_socket) {
      if (threads > 0) {
        total += spec_->socket_base_w + threads * per_core * cpu_multiplier;
      } else {
        total += spec_->socket_parked_w;
      }
    }
    const Watts cpu_w{total};
    if (cpu_w <= cpu_cap || k + 1 == p.states.size()) {
      op.frequency = st.freq;
      op.f_rel = st.f_rel;
      op.perf.time = Seconds(time);
      op.perf.saturation = sat;
      op.perf.utilization = util;
      op.perf.achieved_bw_gbps = std::min(st.demand_gbps, bw_eff);
      op.perf.bw_eff_gbps = bw_eff;
      op.perf.remote_fraction = p.remote_fraction;
      op.cpu_power = cpu_w;
      op.mem_power = mem_power_prepared(p, op.perf.achieved_bw_gbps);
      fitted = cpu_w <= cpu_cap;
      break;
    }
  }
  CLIP_ENSURE(op.frequency.value() > 0.0, "ladder walk found no state");

  if (!fitted) apply_duty_cycle(w, cpu_cap, cpu_multiplier, op);
  // The DRAM cap bounds *activity* power; base power is irreducible (DIMMs
  // stay powered), so a cap below base floors at the base draw.
  CLIP_ENSURE(op.mem_power <= mem_cap + Watts(1e-9) ||
                  op.perf.achieved_bw_gbps <= 1e-12,
              "memory enforcement exceeded the DRAM cap");
  return op;
}

OperatingPoint RaplSolver::solve(const workloads::WorkloadSignature& w,
                                 double work_s, const NodeConfig& cfg,
                                 double cpu_multiplier) const {
  return solve_prepared(w, prepare(w, work_s, cfg), cfg.cpu_cap, cfg.mem_cap,
                        cpu_multiplier);
}

bool RaplSolver::simd_compiled() {
#if defined(CLIP_SIM_SIMD)
  return true;
#else
  return false;
#endif
}

void RaplSolver::solve_frontier(const workloads::WorkloadSignature& w,
                                const Prepared& p, const Watts* cpu_caps,
                                const Watts* mem_caps, std::size_t count,
                                double cpu_multiplier, OperatingPoint* out,
                                bool use_simd) const {
#if defined(CLIP_SIM_SIMD)
  if (use_simd && count >= 2) {
    solve_frontier_sse2(w, p, cpu_caps, mem_caps, count, cpu_multiplier, out);
    return;
  }
#else
  (void)use_simd;
#endif
  for (std::size_t i = 0; i < count; ++i)
    out[i] = solve_prepared(w, p, cpu_caps[i], mem_caps[i], cpu_multiplier);
}

#if defined(CLIP_SIM_SIMD)

// Two cap points per SSE2 lane pair, states walked in lockstep. Every vector
// op mirrors the scalar expression tree of solve_prepared one-for-one
// (mul/add/div/min in the same order), and SSE2 double arithmetic is
// IEEE-754-exact with no FMA contraction — so extracted lanes equal the
// scalar path bit for bit. Acceptance, ENSURE checks and operating-point
// recording happen on extracted scalars, exactly as the scalar walk would,
// and lanes that accepted early have their later (discarded) state values
// neither checked nor recorded — matching the scalar walk's visited-state
// set. tests/test_batch.cpp pins the SIMD/scalar bit-identity.
void RaplSolver::solve_frontier_sse2(const workloads::WorkloadSignature& w,
                                     const Prepared& p, const Watts* cpu_caps,
                                     const Watts* mem_caps, std::size_t count,
                                     double cpu_multiplier,
                                     OperatingPoint* out) const {
  const double m = w.memory_boundedness;
  const double ci = w.compute_intensity;
  const double floor_w = spec_->core_power_floor;
  const __m128d ones = _mm_set1_pd(1.0);

  std::size_t i = 0;
  for (; i + 1 < count; i += 2) {
    double bw_eff_lane[2];
    double cpu_cap_lane[2];
    for (int lane = 0; lane < 2; ++lane) {
      const std::size_t e = i + static_cast<std::size_t>(lane);
      CLIP_REQUIRE(cpu_caps[e].value() > 0.0 && mem_caps[e].value() > 0.0,
                   "caps must be positive");
      CLIP_REQUIRE(cpu_multiplier > 0.0,
                   "variability multiplier must be > 0");
      const double headroom_w = mem_caps[e].value() - p.mem_base_w;
      const double cap_bw =
          headroom_w <= 0.0 ? 0.0 : headroom_w / p.w_per_gbps;
      const double bw_cap = std::min(p.level_bw_gbps, cap_bw);
      CLIP_REQUIRE(w.memory_boundedness == 0.0 || bw_cap > 0.0,
                   "memory-bound workload with zero bandwidth budget — DRAM "
                   "cap below base power");
      bw_eff_lane[lane] = bw_cap * p.numa_factor;
      cpu_cap_lane[lane] = cpu_caps[e].value();
    }
    const __m128d bw_eff_v = _mm_set_pd(bw_eff_lane[1], bw_eff_lane[0]);

    bool done[2] = {false, false};
    bool fitted[2] = {false, false};
    for (std::size_t k = 0; k < p.states.size() && !(done[0] && done[1]);
         ++k) {
      const Prepared::State& st = p.states[k];
      // sat = demand > 0 ? min(1, bw_eff / demand) : 1  (branch is uniform
      // across lanes: demand is a per-state scalar).
      const __m128d sat_v =
          st.demand_gbps > 0.0
              ? _mm_min_pd(_mm_div_pd(bw_eff_v, _mm_set1_pd(st.demand_gbps)),
                           ones)
              : ones;
      // util = (1 - m) + m * sat
      const __m128d util_v = _mm_add_pd(
          _mm_set1_pd(p.one_minus_m), _mm_mul_pd(_mm_set1_pd(m), sat_v));
      // memory_t = m > 0 ? mem_numerator / (nf * sat) : 0
      const __m128d mem_t_v =
          m > 0.0 ? _mm_div_pd(_mm_set1_pd(p.mem_numerator),
                               _mm_mul_pd(_mm_set1_pd(st.nf), sat_v))
                  : _mm_setzero_pd();
      // time = work * (((serial + compute) + memory) + sync) + fork
      const __m128d sum_v = _mm_add_pd(
          _mm_add_pd(_mm_add_pd(_mm_set1_pd(st.serial_t),
                                _mm_set1_pd(st.compute_t)),
                     mem_t_v),
          _mm_set1_pd(st.sync_t));
      const __m128d time_v = _mm_add_pd(
          _mm_mul_pd(_mm_set1_pd(p.work_s), sum_v), _mm_set1_pd(p.fork_s));
      // activity = floor + ((1 - floor) * util) * ci
      const __m128d act_v = _mm_add_pd(
          _mm_set1_pd(floor_w),
          _mm_mul_pd(_mm_mul_pd(_mm_set1_pd(1.0 - floor_w), util_v),
                     _mm_set1_pd(ci)));
      // per_core = (core_max * activity) * pow_f
      const __m128d per_core_v =
          _mm_mul_pd(_mm_mul_pd(_mm_set1_pd(spec_->core_max_w), act_v),
                     _mm_set1_pd(st.pow_f));
      // cpu_w = Σ_sockets base + (threads * per_core) * multiplier
      __m128d cpu_v = _mm_setzero_pd();
      for (int threads : p.placement.threads_per_socket) {
        if (threads > 0) {
          cpu_v = _mm_add_pd(
              cpu_v,
              _mm_add_pd(
                  _mm_set1_pd(spec_->socket_base_w),
                  _mm_mul_pd(
                      _mm_mul_pd(_mm_set1_pd(static_cast<double>(threads)),
                                 per_core_v),
                      _mm_set1_pd(cpu_multiplier))));
        } else {
          cpu_v = _mm_add_pd(cpu_v, _mm_set1_pd(spec_->socket_parked_w));
        }
      }

      double sat_lane[2], util_lane[2], time_lane[2], cpu_lane[2];
      _mm_storeu_pd(sat_lane, sat_v);
      _mm_storeu_pd(util_lane, util_v);
      _mm_storeu_pd(time_lane, time_v);
      _mm_storeu_pd(cpu_lane, cpu_v);

      for (int lane = 0; lane < 2; ++lane) {
        if (done[lane]) continue;
        const std::size_t e = i + static_cast<std::size_t>(lane);
        CLIP_ENSURE(m == 0.0 || sat_lane[lane] > 0.0,
                    "memory-bound work with zero usable bandwidth");
        CLIP_ENSURE(time_lane[lane] > 0.0 && std::isfinite(time_lane[lane]),
                    "non-physical node time");
        CLIP_REQUIRE(util_lane[lane] >= 0.0 && util_lane[lane] <= 1.0,
                     "utilization in [0,1]");
        if (cpu_lane[lane] <= cpu_cap_lane[lane] ||
            k + 1 == p.states.size()) {
          OperatingPoint& op = out[e];
          op.placement = p.placement;
          op.duty_factor = 1.0;
          op.frequency = st.freq;
          op.f_rel = st.f_rel;
          op.perf.time = Seconds(time_lane[lane]);
          op.perf.saturation = sat_lane[lane];
          op.perf.utilization = util_lane[lane];
          op.perf.achieved_bw_gbps =
              std::min(st.demand_gbps, bw_eff_lane[lane]);
          op.perf.bw_eff_gbps = bw_eff_lane[lane];
          op.perf.remote_fraction = p.remote_fraction;
          op.cpu_power = Watts(cpu_lane[lane]);
          op.mem_power = mem_power_prepared(p, op.perf.achieved_bw_gbps);
          fitted[lane] = cpu_lane[lane] <= cpu_cap_lane[lane];
          done[lane] = true;
        }
      }
    }
    for (int lane = 0; lane < 2; ++lane) {
      const std::size_t e = i + static_cast<std::size_t>(lane);
      CLIP_ENSURE(out[e].frequency.value() > 0.0,
                  "ladder walk found no state");
      if (!fitted[lane])
        apply_duty_cycle(w, cpu_caps[e], cpu_multiplier, out[e]);
      CLIP_ENSURE(out[e].mem_power <= mem_caps[e] + Watts(1e-9) ||
                      out[e].perf.achieved_bw_gbps <= 1e-12,
                  "memory enforcement exceeded the DRAM cap");
    }
  }
  if (i < count)  // odd tail
    out[i] = solve_prepared(w, p, cpu_caps[i], mem_caps[i], cpu_multiplier);
}

#endif  // CLIP_SIM_SIMD

}  // namespace clip::sim
