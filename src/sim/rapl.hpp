// RAPL-style power-cap enforcement for one node.
//
// The contract mirrors Intel RAPL as the paper uses it (§IV-B4, §V-A): the
// scheduler writes a PKG-domain and a DRAM-domain wattage limit; the
// "hardware" then picks the highest DVFS state whose modeled power fits the
// PKG limit, and throttles DRAM bandwidth so memory power fits the DRAM
// limit. When even the lowest DVFS state exceeds the PKG cap, RAPL
// duty-cycles the clock: we model that as a proportional slowdown with
// power clamped at the cap.
#pragma once

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "workloads/signature.hpp"

namespace clip::sim {

/// The solved operating point of one node under its caps.
struct OperatingPoint {
  GHz frequency{0.0};
  double f_rel = 1.0;
  double duty_factor = 1.0;  ///< <1 = clock duty-cycling below min frequency
  NodePerfOutput perf;
  Watts cpu_power{0.0};
  Watts mem_power{0.0};
  parallel::Placement placement;
};

class RaplSolver {
 public:
  explicit RaplSolver(const MachineSpec& spec)
      : spec_(&spec), power_(spec), perf_(spec) {}

  /// Solve the operating point of a node executing `work_s` 1-core-seconds
  /// of `w` under `cfg`, with manufacturing multiplier `cpu_multiplier`.
  [[nodiscard]] OperatingPoint solve(const workloads::WorkloadSignature& w,
                                     double work_s, const NodeConfig& cfg,
                                     double cpu_multiplier = 1.0) const;

  /// DRAM bandwidth ceiling implied by the memory power level and DRAM cap
  /// for a given placement (before NUMA penalties).
  [[nodiscard]] double bandwidth_ceiling(const parallel::Placement& placement,
                                         MemPowerLevel level,
                                         Watts mem_cap) const;

 private:
  const MachineSpec* spec_;
  PowerModel power_;
  PerfModel perf_;
};

}  // namespace clip::sim
