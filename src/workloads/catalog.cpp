#include "workloads/catalog.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace clip::workloads {

namespace {

using SC = ScalabilityClass;
using WP = WorkloadPattern;

// Calibration notes (defaults of the simulated Haswell node: 2 sockets x 12
// cores at 2.3 GHz nominal, 34 GB/s DRAM bandwidth per socket):
//  * linear class:      no bandwidth saturation below 24 cores, no sync term
//                       -> half/all perf ratio ~0.52-0.55 (< 0.7).
//  * logarithmic class: bandwidth saturation kicks in at N_P = bw_eff /
//                       bw_per_core, placed in 8..16 cores -> ratio 0.7-0.9.
//  * parabolic class:   saturation plus a quadratic synchronization/
//                       contention term -> performance peaks near N_P and
//                       *drops* at 24 cores -> ratio >= 1.
std::vector<WorkloadSignature> build_paper_benchmarks() {
  std::vector<WorkloadSignature> v;

  // --- logarithmic -------------------------------------------------------
  v.push_back({.name = "BT-MZ",
               .parameters = "C",
               .pattern = WP::kCompute,
               .node_base_time_s = 340.0,
               .serial_fraction = 0.010,
               .memory_boundedness = 0.50,
               .bw_per_core_gbps = 6.0,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 0.0,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.20,
               .compute_intensity = 0.85,
               .ipc = 1.9,
               .icache_pressure = 0.12,
               .write_fraction = 0.30,
               .comm_latency_s = 0.020,
               .comm_surface_coeff = 0.020,
               .has_predefined_process_counts = true,
               .expected_class = SC::kLogarithmic});
  v.push_back({.name = "LU-MZ",
               .parameters = "C",
               .pattern = WP::kComputeMemory,
               .node_base_time_s = 300.0,
               .serial_fraction = 0.010,
               .memory_boundedness = 0.45,
               .bw_per_core_gbps = 5.0,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 0.0,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.25,
               .compute_intensity = 0.80,
               .ipc = 1.7,
               .icache_pressure = 0.10,
               .write_fraction = 0.33,
               .comm_latency_s = 0.020,
               .comm_surface_coeff = 0.022,
               .has_predefined_process_counts = true,
               .expected_class = SC::kLogarithmic});
  v.push_back({.name = "CloverLeaf",
               .parameters = "clover128_short.in",
               .pattern = WP::kComputeMemory,
               .node_base_time_s = 260.0,
               .serial_fraction = 0.010,
               .memory_boundedness = 0.55,
               .bw_per_core_gbps = 7.0,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 0.0,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.15,
               .compute_intensity = 0.75,
               .ipc = 1.5,
               .icache_pressure = 0.08,
               .write_fraction = 0.40,
               .comm_latency_s = 0.018,
               .comm_surface_coeff = 0.025,
               .has_predefined_process_counts = false,
               .expected_class = SC::kLogarithmic});
  v.push_back({.name = "CloverLeaf",
               .parameters = "clover16.in",
               .pattern = WP::kComputeMemory,
               .node_base_time_s = 120.0,
               .serial_fraction = 0.020,
               .memory_boundedness = 0.50,
               .bw_per_core_gbps = 8.0,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 0.0,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.20,
               .compute_intensity = 0.72,
               .ipc = 1.4,
               .icache_pressure = 0.08,
               .write_fraction = 0.40,
               .comm_latency_s = 0.030,
               .comm_surface_coeff = 0.040,
               .has_predefined_process_counts = false,
               .expected_class = SC::kLogarithmic});

  // --- parabolic ----------------------------------------------------------
  v.push_back({.name = "SP-MZ",
               .parameters = "C",
               .pattern = WP::kComputeMemory,
               .node_base_time_s = 320.0,
               .serial_fraction = 0.010,
               .memory_boundedness = 0.45,
               .bw_per_core_gbps = 6.0,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 1.2e-4,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.20,
               .compute_intensity = 0.78,
               .ipc = 1.6,
               .icache_pressure = 0.15,
               .write_fraction = 0.35,
               .comm_latency_s = 0.022,
               .comm_surface_coeff = 0.022,
               .has_predefined_process_counts = true,
               .expected_class = SC::kParabolic});
  v.push_back({.name = "miniAero",
               .parameters = "default",
               .pattern = WP::kCompute,
               .node_base_time_s = 220.0,
               .serial_fraction = 0.008,
               .memory_boundedness = 0.30,
               .bw_per_core_gbps = 4.0,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 2.5e-4,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.15,
               .compute_intensity = 0.88,
               .ipc = 2.0,
               .icache_pressure = 0.20,
               .write_fraction = 0.28,
               .comm_latency_s = 0.020,
               .comm_surface_coeff = 0.020,
               .has_predefined_process_counts = false,
               .expected_class = SC::kParabolic});
  v.push_back({.name = "TeaLeaf",
               .parameters = "Tea10.in",
               .pattern = WP::kComputeMemory,
               .node_base_time_s = 280.0,
               .serial_fraction = 0.012,
               .memory_boundedness = 0.60,
               .bw_per_core_gbps = 7.0,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 1.5e-4,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.25,
               .compute_intensity = 0.70,
               .ipc = 1.3,
               .icache_pressure = 0.06,
               .write_fraction = 0.38,
               .comm_latency_s = 0.020,
               .comm_surface_coeff = 0.028,
               .has_predefined_process_counts = false,
               .expected_class = SC::kParabolic});

  // --- linear -------------------------------------------------------------
  v.push_back({.name = "CoMD",
               .parameters = "-n 240 240 240",
               .pattern = WP::kCompute,
               .node_base_time_s = 380.0,
               .serial_fraction = 0.004,
               .memory_boundedness = 0.05,
               .bw_per_core_gbps = 0.8,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 0.0,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.10,
               .compute_intensity = 0.95,
               .ipc = 2.2,
               .icache_pressure = 0.05,
               .write_fraction = 0.20,
               .comm_latency_s = 0.015,
               .comm_surface_coeff = 0.015,
               .has_predefined_process_counts = false,
               .expected_class = SC::kLinear});
  v.push_back({.name = "AMG",
               .parameters = "-n 300 300 300",
               .pattern = WP::kComputeMemory,
               .node_base_time_s = 330.0,
               .serial_fraction = 0.008,
               .memory_boundedness = 0.25,
               .bw_per_core_gbps = 1.8,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 0.0,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.25,
               .compute_intensity = 0.82,
               .ipc = 1.8,
               .icache_pressure = 0.10,
               .write_fraction = 0.30,
               .comm_latency_s = 0.018,
               .comm_surface_coeff = 0.018,
               .has_predefined_process_counts = false,
               .expected_class = SC::kLinear});
  v.push_back({.name = "miniMD",
               .parameters = "default",
               .pattern = WP::kCompute,
               .node_base_time_s = 260.0,
               .serial_fraction = 0.006,
               .memory_boundedness = 0.04,
               .bw_per_core_gbps = 0.6,
               .fork_overhead_s = 1e-3,
               .sync_coeff_s = 0.0,
               .sync_exponent = 2.0,
               .shared_data_fraction = 0.10,
               .compute_intensity = 0.97,
               .ipc = 2.4,
               .icache_pressure = 0.04,
               .write_fraction = 0.18,
               .comm_latency_s = 0.015,
               .comm_surface_coeff = 0.014,
               .has_predefined_process_counts = false,
               .expected_class = SC::kLinear});

  for (const auto& w : v) w.validate();
  return v;
}

// A compact helper for the training suite where most microarchitectural
// details follow from the class archetype.
struct TrainSpec {
  const char* name;
  const char* params;
  WP pattern;
  double base_time;
  double serial;
  double mem_bound;
  double bw_core;
  double sync_coeff;
  double shared;
  double ci;
  double ipc;
  double icache;
  double writes;
  SC cls;
};

WorkloadSignature from_spec(const TrainSpec& t) {
  WorkloadSignature w;
  w.name = t.name;
  w.parameters = t.params;
  w.pattern = t.pattern;
  w.node_base_time_s = t.base_time;
  w.serial_fraction = t.serial;
  w.memory_boundedness = t.mem_bound;
  w.bw_per_core_gbps = t.bw_core;
  w.sync_coeff_s = t.sync_coeff;
  w.shared_data_fraction = t.shared;
  w.compute_intensity = t.ci;
  w.ipc = t.ipc;
  w.icache_pressure = t.icache;
  w.write_fraction = t.writes;
  w.comm_latency_s = 0.02;
  w.comm_surface_coeff = 0.02;
  w.has_predefined_process_counts = true;
  w.expected_class = t.cls;
  w.validate();
  return w;
}

std::vector<WorkloadSignature> build_training_benchmarks() {
  // NPB / HPCC / STREAM / PolyBench analogues plus a few proxy apps,
  // spanning the three classes with diverse event signatures.
  const TrainSpec specs[] = {
      // name            params     pattern              base   serial mem   bw    sync     shared ci    ipc  icache writes class
      {"EP",             "C",       WP::kCompute,        180.0, 0.001, 0.00, 0.0,  0.0,     0.05,  1.00, 2.6, 0.02, 0.10, SC::kLinear},
      {"HPL",            "N=40k",   WP::kCompute,        420.0, 0.005, 0.10, 1.2,  0.0,     0.10,  1.05, 2.8, 0.03, 0.15, SC::kLinear},
      {"PolyBench-gemm", "LARGE",   WP::kCompute,        150.0, 0.002, 0.08, 1.0,  0.0,     0.05,  1.10, 3.0, 0.02, 0.12, SC::kLinear},
      {"PolyBench-3mm",  "LARGE",   WP::kCompute,        190.0, 0.003, 0.12, 1.4,  0.0,     0.08,  1.05, 2.7, 0.03, 0.15, SC::kLinear},
      {"Nekbone",        "p12",     WP::kCompute,        260.0, 0.006, 0.18, 1.6,  0.0,     0.12,  0.92, 2.2, 0.06, 0.20, SC::kLinear},
      {"SNAP-proxy",     "default", WP::kCompute,        230.0, 0.005, 0.15, 1.5,  0.0,     0.10,  0.90, 2.1, 0.08, 0.20, SC::kLinear},

      {"FT",             "C",       WP::kComputeMemory,  240.0, 0.010, 0.55, 6.5,  0.0,     0.20,  0.75, 1.6, 0.07, 0.35, SC::kLogarithmic},
      {"CG",             "C",       WP::kMemory,         200.0, 0.012, 0.70, 8.0,  0.0,     0.22,  0.60, 1.0, 0.05, 0.25, SC::kLogarithmic},
      {"MG",             "C",       WP::kComputeMemory,  170.0, 0.010, 0.60, 7.5,  0.0,     0.18,  0.68, 1.3, 0.05, 0.33, SC::kLogarithmic},
      {"IS",             "C",       WP::kMemory,         90.0,  0.015, 0.80, 9.0,  0.0,     0.30,  0.55, 0.9, 0.04, 0.45, SC::kLogarithmic},
      {"BT",             "C",       WP::kCompute,        330.0, 0.010, 0.48, 5.5,  0.0,     0.20,  0.84, 1.9, 0.12, 0.30, SC::kLogarithmic},
      {"LU",             "C",       WP::kComputeMemory,  310.0, 0.010, 0.46, 5.2,  0.0,     0.24,  0.80, 1.7, 0.10, 0.32, SC::kLogarithmic},
      {"STREAM-Triad",   "N=80M",   WP::kMemory,         60.0,  0.010, 0.95, 10.0, 0.0,     0.10,  0.45, 0.7, 0.02, 0.35, SC::kLogarithmic},
      {"STREAM-Copy",    "N=80M",   WP::kMemory,         55.0,  0.010, 0.96, 11.0, 0.0,     0.10,  0.42, 0.6, 0.02, 0.50, SC::kLogarithmic},
      {"HPCC-PTRANS",    "default", WP::kMemory,         140.0, 0.015, 0.75, 8.5,  0.0,     0.35,  0.52, 0.9, 0.04, 0.50, SC::kLogarithmic},
      {"HPCC-FFT",       "default", WP::kComputeMemory,  160.0, 0.012, 0.58, 7.0,  0.0,     0.25,  0.70, 1.4, 0.06, 0.35, SC::kLogarithmic},
      {"PolyBench-jacobi2d", "LARGE", WP::kMemory,       110.0, 0.008, 0.65, 7.8,  0.0,     0.15,  0.62, 1.2, 0.03, 0.40, SC::kLogarithmic},
      {"PolyBench-fdtd2d", "LARGE", WP::kComputeMemory,  130.0, 0.010, 0.55, 6.8,  0.0,     0.18,  0.70, 1.4, 0.04, 0.38, SC::kLogarithmic},
      {"LULESH",         "s=90",    WP::kComputeMemory,  280.0, 0.010, 0.50, 5.8,  0.0,     0.22,  0.78, 1.6, 0.09, 0.30, SC::kLogarithmic},
      {"HPCG",           "104^3",   WP::kMemory,         210.0, 0.012, 0.72, 8.2,  0.0,     0.20,  0.58, 1.0, 0.05, 0.28, SC::kLogarithmic},
      {"XSBench",        "large",   WP::kMemory,         170.0, 0.010, 0.68, 7.6,  0.0,     0.28,  0.56, 0.8, 0.10, 0.10, SC::kLogarithmic},

      {"SP",             "C",       WP::kComputeMemory,  300.0, 0.010, 0.45, 6.0,  1.5e-4,  0.20,  0.78, 1.6, 0.15, 0.35, SC::kParabolic},
      {"UA",             "C",       WP::kComputeMemory,  260.0, 0.012, 0.40, 5.0,  2.0e-4,  0.25,  0.76, 1.5, 0.12, 0.30, SC::kParabolic},
      {"PolyBench-seidel2d", "LARGE", WP::kComputeMemory, 140.0, 0.015, 0.45, 5.5, 3.0e-4,  0.30,  0.72, 1.3, 0.04, 0.42, SC::kParabolic},
      {"Quicksilver",    "default", WP::kCompute,        240.0, 0.010, 0.28, 3.8,  2.8e-4,  0.18,  0.86, 1.8, 0.18, 0.22, SC::kParabolic},
      {"HPCC-RandomAccess", "default", WP::kMemory,      120.0, 0.015, 0.78, 8.8,  1.2e-4,  0.40,  0.50, 0.5, 0.03, 0.50, SC::kParabolic},
      {"Graph500-proxy", "scale24", WP::kMemory,         160.0, 0.020, 0.70, 8.0,  2.2e-4,  0.45,  0.52, 0.6, 0.12, 0.30, SC::kParabolic},
  };

  std::vector<WorkloadSignature> v;
  v.reserve(std::size(specs));
  for (const auto& s : specs) v.push_back(from_spec(s));
  return v;
}

}  // namespace

const std::vector<WorkloadSignature>& paper_benchmarks() {
  static const std::vector<WorkloadSignature> v = build_paper_benchmarks();
  return v;
}

const std::vector<WorkloadSignature>& training_benchmarks() {
  static const std::vector<WorkloadSignature> v = build_training_benchmarks();
  return v;
}

std::vector<WorkloadSignature> all_benchmarks() {
  std::vector<WorkloadSignature> v = paper_benchmarks();
  const auto& t = training_benchmarks();
  v.insert(v.end(), t.begin(), t.end());
  return v;
}

std::optional<WorkloadSignature> find_benchmark(const std::string& name,
                                                const std::string& parameters) {
  for (const auto& w : all_benchmarks()) {
    if (w.name != name) continue;
    if (!parameters.empty() && w.parameters != parameters) continue;
    return w;
  }
  return std::nullopt;
}

}  // namespace clip::workloads
