// Performance prediction (paper §III-A2, Eqs. 1–3).
//
// From at most three sample profiles, predict execution time at any
// (threads, frequency) operating point:
//
//  * linear (Eq. 1):        T(t) = a/t + c fitted through the half- and
//    all-core samples — the "linear function of sample configuration run
//    times" with α_(t,i) the per-sample scaling and λ_t the overhead term.
//  * logarithmic (Eq. 2):   two segments joined at N_P: ideal scaling below
//    (anchored at the half-core and validation samples), a reduced-slope
//    linear segment from (N_P, T(N_P)) to the measured all-core time above.
//  * parabolic (Eq. 3):     the paper predicts only the t <= N_P segment and
//    disregards t > N_P; we additionally interpolate toward the *measured*
//    all-core sample when asked about t > N_P (that is data, not model).
//
// Frequency scaling splits predicted time into a frequency-sensitive share
// and a bandwidth-saturated (frequency-insensitive) share:
//     T(t, f) = T(t) * ((1 - mu_t)/f_rel + mu_t).
// mu_t is derived from the Table I events: the all-core active-cycle
// utilization u = Event5 / (threads * f) reveals the memory-stall fraction,
// and with the observed bandwidth ceiling this recovers the workload's
// memory-boundedness m̂ = (1-u)/(1-sat); mu_t is then the time share of the
// saturated memory term at t threads (zero while t's demand fits under the
// ceiling — frequency fully converts to performance there).
#pragma once

#include "core/profile.hpp"
#include "sim/machine.hpp"
#include "workloads/signature.hpp"

namespace clip::core {

class PerfPredictor {
 public:
  /// `np` is required (>=2) for non-linear classes; ignored for linear.
  PerfPredictor(const sim::MachineSpec& spec, const ProfileData& profile,
                workloads::ScalabilityClass cls, int np = 0);

  /// Predicted full-problem single-node time at `threads`, full frequency,
  /// full memory bandwidth.
  [[nodiscard]] Seconds predict_time(int threads) const;

  /// Predicted time at `threads` and relative frequency f/f_nominal.
  [[nodiscard]] Seconds predict_time(int threads, double f_rel) const;

  /// Predicted time at `threads`, relative frequency, and a DRAM bandwidth
  /// ceiling (GB/s) — the memory-power-level / DRAM-cap knob. Derived from
  /// the recovered memory-boundedness m̂:
  ///   T(t,f,bw) = T(t) * [ (1-m̂)/f + m̂/(f*sat(f,bw)) ]
  ///                     / [ (1-m̂)   + m̂/sat0 ]
  /// where sat(f,bw) = min(1, bw/(t*b*f)) and sat0 is the saturation at
  /// the profiled operating point. The saturated memory term is frequency-
  /// insensitive (f cancels), reproducing the Fig. 2/3 behaviour.
  [[nodiscard]] Seconds predict_time(int threads, double f_rel,
                                     double bw_cap_gbps) const;

  /// The bandwidth ceiling observed while profiling (NUMA effects folded
  /// in) — the natural reference for scaling memory-level capacities.
  [[nodiscard]] double observed_bw_ceiling() const { return bw_ceiling_; }

  /// The recovered memory-boundedness m̂. Zero also when the profile never
  /// saturated (an unsaturated profile cannot reveal m — callers must then
  /// treat bandwidth cuts below the measured demand as unpriced risk).
  [[nodiscard]] double recovered_memory_boundedness() const {
    return memory_boundedness_;
  }

  /// Estimated share of execution time bound by DRAM bandwidth at `threads`
  /// (the frequency-insensitive fraction).
  [[nodiscard]] double memory_time_share(int threads) const;

  [[nodiscard]] workloads::ScalabilityClass scalability() const {
    return cls_;
  }
  [[nodiscard]] int inflection() const { return np_; }

 private:
  [[nodiscard]] double segment1_time(double t) const;  // t <= np (or all t, linear)

  const sim::MachineSpec* spec_;
  workloads::ScalabilityClass cls_;
  int np_ = 0;

  // Fitted hyperbolic model T(t) = a/t + c for the scaling segment.
  double coef_a_ = 0.0;
  double coef_c_ = 0.0;

  // Anchors for the second segment (non-linear classes).
  double time_all_ = 0.0;
  int threads_all_ = 0;

  // Frequency-scaling inputs recovered from the profile.
  double per_core_bw_ = 0.0;      ///< per-thread DRAM demand (GB/s)
  double bw_ceiling_ = 0.0;       ///< observed achievable node bandwidth
  double memory_boundedness_ = 0.0;  ///< m̂ recovered from Event5 utilization
};

}  // namespace clip::core
