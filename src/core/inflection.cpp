#include "core/inflection.hpp"

#include <algorithm>
#include <cmath>

#include "stats/piecewise.hpp"
#include "util/check.hpp"

namespace clip::core {

namespace {

/// Floor to an even integer within [2, max_threads].
int to_even_clamped(double np, int max_threads) {
  int even = static_cast<int>(std::floor(np / 2.0)) * 2;
  return std::clamp(even, 2, max_threads);
}

}  // namespace

void InflectionPredictor::train(const std::vector<TrainingSample>& samples) {
  models_.clear();
  for (workloads::ScalabilityClass cls :
       {workloads::ScalabilityClass::kLogarithmic,
        workloads::ScalabilityClass::kParabolic}) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (const auto& s : samples) {
      if (s.cls != cls) continue;
      CLIP_REQUIRE(!s.features.empty(), "training sample without features");
      CLIP_REQUIRE(s.inflection >= 2.0, "implausible ground-truth N_P");
      x.push_back(s.features);
      y.push_back(s.inflection);
    }
    if (x.size() < 3) continue;  // too few samples for this class
    stats::LinRegOptions opt;
    opt.ridge_lambda = options_.ridge_lambda;
    opt.standardize = true;
    models_[cls] = stats::fit_linear(x, y, opt);
  }
}

bool InflectionPredictor::is_trained(workloads::ScalabilityClass cls) const {
  return models_.contains(cls);
}

int InflectionPredictor::predict(const ProfileData& profile,
                                 workloads::ScalabilityClass cls,
                                 int max_threads) const {
  CLIP_REQUIRE(cls != workloads::ScalabilityClass::kLinear,
               "linear workloads have no node-level inflection");
  const auto it = models_.find(cls);
  CLIP_REQUIRE(it != models_.end(),
               "inflection model not trained for this class");
  const double raw = it->second.predict(profile.features());
  return to_even_clamped(raw, max_threads);
}

double measure_inflection(sim::SimExecutor& executor,
                          const workloads::WorkloadSignature& w,
                          workloads::ScalabilityClass cls,
                          parallel::AffinityPolicy affinity) {
  CLIP_REQUIRE(cls != workloads::ScalabilityClass::kLinear,
               "linear workloads have no node-level inflection");
  const int max_threads = executor.spec().shape.total_cores();

  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.affinity = affinity;
  cfg.node.mem_level = sim::MemPowerLevel::kL0;
  cfg.node.cpu_cap = Watts(1e9);
  cfg.node.mem_cap = Watts(1e9);

  std::vector<double> threads, perf;
  double best_time = 0.0;
  int best_n = 2;
  bool first = true;
  for (int n = 2; n <= max_threads; n += 2) {
    cfg.node.threads = n;
    const sim::Measurement m = executor.run_exact(w, cfg);
    threads.push_back(static_cast<double>(n));
    perf.push_back(1.0 / m.time.value());
    if (first || m.time.value() < best_time) {
      best_time = m.time.value();
      best_n = n;
      first = false;
    }
  }

  if (cls == workloads::ScalabilityClass::kParabolic)
    return static_cast<double>(best_n);

  // Logarithmic: knee of the speedup curve via two-segment piecewise fit.
  const stats::PiecewiseLinearModel fit =
      stats::fit_piecewise_linear(threads, perf);
  const int even =
      static_cast<int>(std::floor(fit.breakpoint / 2.0)) * 2;
  return static_cast<double>(std::clamp(even, 2, max_threads));
}

std::vector<TrainingSample> build_training_set(
    SmartProfiler& profiler, const ScalabilityClassifier& classifier,
    const std::vector<workloads::WorkloadSignature>& suite) {
  std::vector<TrainingSample> out;
  out.reserve(suite.size());
  for (const auto& w : suite) {
    ProfileData p = profiler.profile(w);
    TrainingSample s;
    s.name = w.name;
    s.features = p.features();
    s.cls = classifier.classify(p);
    if (s.cls != workloads::ScalabilityClass::kLinear) {
      s.inflection = measure_inflection(profiler.executor(), w, s.cls,
                                        p.preferred_affinity);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace clip::core
