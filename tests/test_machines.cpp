// Machine-generality tests: the CLIP pipeline on every machine preset.
// The framework must behave correctly (budget respect, profitable
// decisions, class-appropriate throttling) on hardware it was not
// calibrated against — that separates an algorithm from a curve fit.
#include <gtest/gtest.h>

#include "baselines/all_in.hpp"
#include "core/inflection.hpp"
#include "core/scheduler.hpp"
#include "sim/executor.hpp"
#include "sim/presets.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

class PerMachine : public ::testing::TestWithParam<std::string> {
 protected:
  static sim::MachineSpec spec_for(const std::string& name) {
    for (const auto& p : sim::all_presets())
      if (name == p.name) return p.spec;
    throw PreconditionError("unknown preset " + name);
  }
};

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  for (const auto& p : sim::all_presets()) names.emplace_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Presets, PerMachine,
                         ::testing::ValuesIn(preset_names()));

TEST_P(PerMachine, SpecValidatesAndHasSanePeaks) {
  const sim::MachineSpec spec = spec_for(GetParam());
  EXPECT_NO_THROW(spec.validate());
  EXPECT_GT(spec.max_node_cpu_w(), 50.0);
  EXPECT_LT(spec.max_node_w(), 400.0);
  EXPECT_GE(spec.nodes, 8);
}

TEST_P(PerMachine, ClipRespectsBudgetsOnThisMachine) {
  const sim::MachineSpec spec = spec_for(GetParam());
  sim::SimExecutor ex(spec, no_noise());
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  // Budgets scaled to the machine's envelope.
  const double peak = spec.max_cluster_w();
  for (double fraction : {0.45, 0.7, 0.95}) {
    const Watts budget(peak * fraction);
    for (const char* name : {"CoMD", "BT-MZ", "TeaLeaf"}) {
      const auto w = *workloads::find_benchmark(name);
      const auto d = sched.schedule(w, budget);
      const auto m = ex.run_exact(w, d.cluster);
      EXPECT_LE(m.avg_power.value(), budget.value() * 1.01)
          << name << " @" << budget.value();
      EXPECT_LE(d.cluster.node.threads, spec.shape.total_cores());
      EXPECT_LE(d.cluster.nodes, spec.nodes);
    }
  }
}

TEST_P(PerMachine, ClipBeatsAllInOnAverageAtTightBudget) {
  const sim::MachineSpec spec = spec_for(GetParam());
  sim::SimExecutor ex(spec, no_noise());
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  baselines::AllInScheduler all_in(spec);
  const Watts budget(spec.max_cluster_w() * 0.5);

  double clip_total = 0.0, all_in_total = 0.0;
  for (const auto& w : workloads::paper_benchmarks()) {
    clip_total +=
        ex.run_exact(w, sched.schedule(w, budget).cluster).time.value();
    all_in_total +=
        ex.run_exact(w, all_in.plan(w, budget)).time.value();
  }
  EXPECT_LT(clip_total, all_in_total) << "at " << budget.value() << " W";
}

TEST_P(PerMachine, ParabolicAppsThrottledEverywhere) {
  const sim::MachineSpec spec = spec_for(GetParam());
  sim::SimExecutor ex(spec, no_noise());
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  const auto w = *workloads::find_benchmark("miniAero");
  const auto d = sched.schedule(w, Watts(spec.max_cluster_w() * 0.9));
  EXPECT_LT(d.cluster.node.threads, spec.shape.total_cores());
}

TEST_P(PerMachine, LinearAppsKeepAllCoresEverywhere) {
  const sim::MachineSpec spec = spec_for(GetParam());
  sim::SimExecutor ex(spec, no_noise());
  core::ClipScheduler sched(ex, workloads::training_benchmarks());
  const auto w = *workloads::find_benchmark("CoMD");
  const auto d = sched.schedule(w, Watts(spec.max_cluster_w() * 0.9));
  EXPECT_EQ(d.cluster.node.threads, spec.shape.total_cores());
}

TEST_P(PerMachine, BandwidthRichMachinesPushInflectionOut) {
  // Cross-preset property checked once (parameterization gives us the
  // spec lookup for free; only act on the pair we care about).
  if (GetParam() != "bandwidth_rich") GTEST_SKIP();
  sim::SimExecutor narrow(sim::haswell_testbed(), no_noise());
  sim::SimExecutor rich(spec_for("bandwidth_rich"), no_noise());
  const auto w = *workloads::find_benchmark("BT-MZ");
  const double np_narrow = core::measure_inflection(
      narrow, w, workloads::ScalabilityClass::kLogarithmic,
      parallel::AffinityPolicy::kScatter);
  const double np_rich = core::measure_inflection(
      rich, w, workloads::ScalabilityClass::kLogarithmic,
      parallel::AffinityPolicy::kScatter);
  EXPECT_GT(np_rich, np_narrow);
}

TEST_P(PerMachine, OddCoreCountMachineWorks) {
  if (GetParam() != "broadwell_fat") GTEST_SKIP();
  // 28-core nodes: half-core = 14, candidates must stay within bounds.
  const sim::MachineSpec spec = spec_for("broadwell_fat");
  sim::SimExecutor ex(spec, no_noise());
  core::SmartProfiler profiler(ex);
  const auto p =
      profiler.profile(*workloads::find_benchmark("SP-MZ"));
  EXPECT_EQ(p.all_core.config.threads, 28);
  EXPECT_EQ(p.half_core.config.threads, 14);
}

}  // namespace
}  // namespace clip
