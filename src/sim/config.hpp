// Run configurations and measurements — the interface between the schedulers
// (CLIP and the baselines) and the simulated cluster.
#pragma once

#include <string>
#include <vector>

#include "parallel/affinity.hpp"
#include "sim/events.hpp"
#include "sim/machine.hpp"
#include "util/units.hpp"

namespace clip::sim {

/// Per-node execution configuration: the four knobs the paper's node level
/// controls (threads, affinity, memory power level, CPU/DRAM power caps).
struct NodeConfig {
  int threads = 1;
  parallel::AffinityPolicy affinity = parallel::AffinityPolicy::kScatter;
  MemPowerLevel mem_level = MemPowerLevel::kL0;
  Watts cpu_cap{1e9};  ///< RAPL PKG cap for the node (both sockets combined)
  Watts mem_cap{1e9};  ///< RAPL DRAM cap for the node

  [[nodiscard]] std::string describe() const;
};

/// Cluster execution configuration: node count plus the (SPMD) node config;
/// per-node CPU-cap overrides express inter-node variability coordination.
struct ClusterConfig {
  int nodes = 1;
  NodeConfig node;
  /// Optional per-node CPU caps (size == nodes). Empty = uniform node.cpu_cap.
  std::vector<Watts> cpu_cap_overrides;

  [[nodiscard]] std::string describe() const;
};

/// What the "system interface helper tools" report for one node.
struct NodeMeasurement {
  Seconds time{0.0};
  GHz frequency{0.0};
  double duty_factor = 1.0;  ///< < 1 when even the lowest DVFS state exceeds the cap
  Watts cpu_power{0.0};
  Watts mem_power{0.0};
  double achieved_bw_gbps = 0.0;
  double saturation = 1.0;
  EventRates events;
};

/// Cluster-level measurement of one run.
struct Measurement {
  Seconds time{0.0};       ///< makespan: max node time + communication
  Seconds comm_time{0.0};
  Watts avg_power{0.0};    ///< average power of the active nodes
  Joules energy{0.0};
  std::vector<NodeMeasurement> nodes;

  /// Relative performance = 1 / time. The paper's figures plot performance
  /// relative to a reference method; callers divide two of these.
  [[nodiscard]] double performance() const { return 1.0 / time.value(); }
};

}  // namespace clip::sim
