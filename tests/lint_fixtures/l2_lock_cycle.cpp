// L2 fixture: two functions taking two tracked mutexes in opposite orders
// form a lock-order cycle (the labels are what cross-TU matching keys on).
// clip-lint: guards(a_mu_@fixture_a: x_)
// clip-lint: guards(b_mu_@fixture_b: y_)
#include <mutex>

struct Pair {
  void forward() {
    std::lock_guard<std::mutex> la(a_mu_);
    std::lock_guard<std::mutex> lb(b_mu_);
    x_ = 1;
    y_ = 2;
  }

  void backward() {
    std::lock_guard<std::mutex> lb(b_mu_);
    std::lock_guard<std::mutex> la(a_mu_);
    y_ = 3;
    x_ = 4;
  }

  std::mutex a_mu_;
  std::mutex b_mu_;
  int x_;
  int y_;
};
