#include "core/host_governor.hpp"

#include <algorithm>

#include "sim/power_model.hpp"
#include "util/check.hpp"

namespace clip::core {

HostGovernor::HostGovernor(sim::MachineSpec model,
                           NodeSelectorOptions options)
    : model_(std::move(model)), selector_(model_, options) {
  model_.validate();
}

GovernorDecision HostGovernor::govern(parallel::ThreadPool& pool,
                                      const GovernedKernel& kernel,
                                      Watts node_budget) {
  CLIP_REQUIRE(node_budget.value() > 0.0, "budget must be positive");
  const int full = std::min(pool.max_threads(), model_.shape.total_cores());
  const int half = std::max(1, full / 2);

  // Real sample-configuration runs.
  pool.set_concurrency(full);
  const workloads::KernelResult r_full = kernel(pool);
  pool.set_concurrency(half);
  const workloads::KernelResult r_half = kernel(pool);
  CLIP_REQUIRE(r_full.seconds > 0.0 && r_half.seconds > 0.0,
               "kernel must run for a measurable time");

  GovernorDecision decision;
  decision.full_time_s = r_full.seconds;
  decision.half_time_s = r_half.seconds;

  // Assemble a CLIP profile from the measurements. Power for the all-core
  // sample comes from the host model at full utilization (no RAPL counters
  // in this environment); bandwidth from the measured traffic.
  ProfileData& p = decision.profile;
  p.app_name = "governed-kernel";
  p.all_core.config.threads = full;
  p.all_core.time = Seconds(r_full.seconds);
  const double bw_full =
      r_full.bytes_moved / r_full.seconds / 1e9;  // GB/s
  const double bw_half = r_half.bytes_moved / r_half.seconds / 1e9;
  p.node_bw_gbps = bw_full;
  p.per_core_bw_gbps = std::max(bw_full / full, bw_half / half);
  const double peak_bw = model_.shape.sockets * model_.socket_bw_gbps;
  p.memory_intensity = std::min(1.0, bw_full / peak_bw);
  p.preferred_affinity = p.memory_intensity >= 0.35
                             ? parallel::AffinityPolicy::kScatter
                             : parallel::AffinityPolicy::kCompact;
  {
    // Model-based power for the profiled point (documented substitution).
    const sim::PowerModel power(model_);
    sim::NodeActivity activity{
        .placement = parallel::place_threads(model_.shape, full,
                                             parallel::AffinityPolicy::kScatter),
        .f_rel = 1.0,
        .utilization = 1.0,
        .compute_intensity = 0.9,
        .achieved_bw_gbps = bw_full,
        .cpu_load_multiplier = 1.0};
    p.all_core.cpu_power = power.cpu_power(activity);
    p.all_core.mem_power = power.mem_power(activity);
    p.all_core.events.cycles_active_per_s =
        full * model_.ladder.nominal().value() * 1e9;
  }
  p.half_core.config.threads = half;
  p.half_core.time = Seconds(r_half.seconds);
  p.perf_ratio_half_over_all = r_full.seconds / r_half.seconds;
  p.all_core.events.read_bw_gbps = bw_full;

  decision.cls = classifier_.classify(p);
  // The inflection for non-linear classes: without the MLR (no event
  // counters on the host), fall back to the half-core count — the paper's
  // conservative anchor (the half sample is the last point known to be on
  // the scaling segment, or past the peak when the ratio exceeds one).
  const int np = decision.cls == workloads::ScalabilityClass::kLinear
                     ? 0
                     : std::max(2, half);
  decision.node = selector_.select(p, decision.cls, np, node_budget);

  // Enforce on the real pool.
  pool.set_concurrency(decision.node.config.threads);
  pool.set_affinity(decision.node.config.affinity, model_.shape);
  return decision;
}

}  // namespace clip::core
