#include "runtime/launcher.hpp"

namespace clip::runtime {

Launcher::Launcher(
    sim::SimExecutor& executor,
    const std::vector<workloads::WorkloadSignature>& training_suite,
    std::optional<std::filesystem::path> db_path,
    core::SchedulerOptions options)
    : executor_(&executor),
      scheduler_(executor, training_suite, options),
      db_path_(std::move(db_path)) {
  if (db_path_ && std::filesystem::exists(*db_path_))
    scheduler_.knowledge_db().load(*db_path_);
}

void Launcher::set_observer(obs::ObsSession* obs) {
  obs_ = obs;
  scheduler_.set_observer(obs);
}

void Launcher::persist() {
  if (db_path_) scheduler_.knowledge_db().save(*db_path_);
}

JobResult Launcher::run(const JobSpec& spec) {
  obs::ScopedSpan span(obs_, "runtime.job", "runtime");
  span.arg("app", spec.app.name);
  span.arg("budget_w", spec.cluster_budget.value());
  obs::count(obs_, "runtime.jobs");
  const core::ScheduleDecision decision =
      scheduler_.schedule(spec.app, spec.cluster_budget);
  if (!decision.from_knowledge_db) persist();

  JobResult result;
  result.spec = spec;
  result.method = "CLIP";
  result.plan = decision.cluster;
  result.measurement = executor_->run(spec.app, decision.cluster);
  result.scheduling_overhead = decision.profiling_cost;
  return result;
}

std::string Launcher::plan_script(const JobSpec& spec) {
  const core::ScheduleDecision decision =
      scheduler_.schedule(spec.app, spec.cluster_budget);
  if (!decision.from_knowledge_db) persist();
  return render_launch_script(spec, decision.cluster);
}

}  // namespace clip::runtime
