// The node power model — paper Eqs. 5–9.
//
//   P_node  = P_ProcT + P_MemT (+ P_OtherT, zero by default: the budgets in
//             the paper's experiments cap the RAPL PKG+DRAM domains only)
//   P_ProcT = Σ_sockets P_proc,i ;  P_proc,i = P_base,i + Σ_cores P_cj(w)
//   P_MemT  = Σ_sockets P_mem,i  ;  P_mem,i  = P_mbase,i + P_mload,i(w)
//
// Per-core load power scales with the DVFS state (≈ f^2.2, capturing the
// V·f² dynamic term on a voltage/frequency curve) and with workload activity
// (memory-stalled cores draw less than busy ones). Memory load power is
// proportional to achieved DRAM bandwidth.
#pragma once

#include "parallel/affinity.hpp"
#include "sim/machine.hpp"
#include "util/units.hpp"

namespace clip::sim {

/// Workload-activity inputs to the power model for one node.
struct NodeActivity {
  parallel::Placement placement;  ///< threads per socket
  double f_rel = 1.0;             ///< frequency / nominal
  double utilization = 1.0;       ///< 0..1: (1-m) + m*saturation
  double compute_intensity = 1.0; ///< workload's dynamic-power scale
  double achieved_bw_gbps = 0.0;  ///< total DRAM traffic
  double cpu_load_multiplier = 1.0;  ///< manufacturing variability η_i
};

class PowerModel {
 public:
  explicit PowerModel(const MachineSpec& spec) : spec_(&spec) {}

  /// Processor-domain power of one node (both sockets) — Eqs. 6–7.
  [[nodiscard]] Watts cpu_power(const NodeActivity& a) const;

  /// Memory-domain power of one node — Eqs. 8–9. Activity power is split
  /// over the sockets that have threads (which is where traffic lands).
  [[nodiscard]] Watts mem_power(const NodeActivity& a) const;

  /// Total node power — Eq. 5 with P_OtherT = 0.
  [[nodiscard]] Watts node_power(const NodeActivity& a) const;

  /// One core's load power at the given state (before variability).
  [[nodiscard]] Watts core_power(double f_rel, double utilization,
                                 double compute_intensity) const;

 private:
  const MachineSpec* spec_;
};

}  // namespace clip::sim
