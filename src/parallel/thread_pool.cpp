#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace clip::parallel {

ThreadPool::ThreadPool(int max_threads) : max_threads_(max_threads) {
  CLIP_REQUIRE(max_threads >= 1, "pool needs at least one thread");
  concurrency_ = max_threads;
  // Worker 0 is the submitting thread itself; spawn the rest.
  workers_.reserve(static_cast<std::size_t>(max_threads - 1));
  for (int i = 1; i < max_threads; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  region_start_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::concurrency() const {
  std::lock_guard lock(mutex_);
  return concurrency_;
}

void ThreadPool::set_concurrency(int threads) {
  std::lock_guard lock(mutex_);
  CLIP_REQUIRE(active_fn_ == nullptr,
               "cannot throttle while a region is running");
  concurrency_ = std::clamp(threads, 1, max_threads_);
}

int ThreadPool::set_affinity(AffinityPolicy policy, const NodeShape& shape) {
  const int cpus = host_cpu_count();
  int pinned = 0;
  // Pin the calling thread as worker 0.
  if (pin_current_thread(worker_cpu(0, cpus, policy, shape))) ++pinned;
  // Pin the pool workers from inside themselves via a full-width region.
  const int saved = concurrency();
  set_concurrency(max_threads_);
  std::mutex m;
  run_region([&](int rank, int) {
    if (rank == 0) return;  // already pinned above
    if (pin_current_thread(worker_cpu(rank, cpus, policy, shape))) {
      std::lock_guard lock(m);
      ++pinned;
    }
  });
  set_concurrency(saved);
  return pinned;
}

void ThreadPool::run_region(const RegionFn& fn) {
  int team;
  {
    std::lock_guard lock(mutex_);
    CLIP_REQUIRE(active_fn_ == nullptr, "regions cannot nest on one pool");
    team = concurrency_;
    active_fn_ = &fn;
    active_team_ = team;
    remaining_in_region_ = team - 1;  // pool workers; rank 0 is us
    first_error_ = nullptr;
    ++generation_;
  }
  region_start_.notify_all();

  // The submitting thread is rank 0 of the team.
  std::exception_ptr my_error;
  try {
    fn(0, team);
  } catch (...) {
    my_error = std::current_exception();
  }

  std::unique_lock lock(mutex_);
  region_done_.wait(lock, [this] { return remaining_in_region_ == 0; });
  active_fn_ = nullptr;
  std::exception_ptr error = first_error_ ? first_error_ : my_error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_main(int worker_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const RegionFn* fn = nullptr;
    int team = 0;
    {
      std::unique_lock lock(mutex_);
      region_start_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
      if (worker_index >= active_team_) {
        // Throttled out of this region; wait for the next one.
        continue;
      }
      fn = active_fn_;
      team = active_team_;
    }
    std::exception_ptr error;
    try {
      (*fn)(worker_index, team);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_in_region_ == 0) region_done_.notify_all();
    }
  }
}

}  // namespace clip::parallel
