#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace clip {

std::string format_double(double v, int decimals) {
  char buf[64];
  // clip-lint: allow(D3) deliberate fixed-decimal rendering for human-facing tables; exact exports use obs::format_exact
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  // clip-lint: allow(D3) deliberate fixed-decimal percentage for human-facing tables; exact exports use obs::format_exact
  std::snprintf(buf, sizeof buf, "%+.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace clip
