// SimExecutor: the single entry point through which schedulers "run" a
// workload on the simulated cluster and observe time, power, energy, and
// hardware events. This is the stand-in for the paper's real 8-node Haswell
// testbed (see DESIGN.md §1 for the substitution argument).
#pragma once

#include <string>

#include "obs/session.hpp"
#include "sim/comm_model.hpp"
#include "sim/config.hpp"
#include "sim/exec_cache.hpp"
#include "sim/machine.hpp"
#include "sim/phased.hpp"
#include "sim/power_meter.hpp"
#include "sim/rapl.hpp"
#include "sim/variability.hpp"
#include "workloads/phases.hpp"
#include "workloads/signature.hpp"

namespace clip::sim {

class SimExecutor {
 public:
  /// `meter` options control measurement noise (disable for exact tests).
  explicit SimExecutor(MachineSpec spec, MeterOptions meter = MeterOptions{});

  [[nodiscard]] const MachineSpec& spec() const { return spec_; }
  [[nodiscard]] const Variability& variability() const {
    return variability_;
  }

  /// The measurement-noise meter run() reads through — exposed so callers
  /// can program faults or attach a flight recorder (meter.set_timeline).
  [[nodiscard]] PowerMeter& meter() { return meter_; }

  /// Attach an observability session (nullptr detaches): every run bumps
  /// `sim.runs`/`sim.node_solves` and, with a sink attached, emits a
  /// "sim.run" span. Detached cost is one branch per run.
  void set_observer(obs::ObsSession* obs) { obs_ = obs; }

  /// Attach a memoization cache for exact runs (nullptr detaches; not
  /// owned). The exact path is a pure function of (spec, workload, config),
  /// so hits return bit-identical measurements. Hits bump
  /// `sim.exact_cache_hits` and skip `sim.runs`; misses bump
  /// `sim.exact_cache_misses` and compute as before. One cache may be shared
  /// by several executors — keys embed the full machine spec.
  void set_exact_cache(ExactRunCache* cache);
  [[nodiscard]] ExactRunCache* exact_cache() const { return cache_; }

  /// Execute `w` under `cfg` and return the (noisy) measurement.
  ///
  /// The problem strong-scales across the active nodes; every node runs the
  /// same node config (optionally with per-node CPU-cap overrides from the
  /// variability coordinator); the job completes when the slowest node
  /// finishes plus communication time.
  [[nodiscard]] Measurement run(const workloads::WorkloadSignature& w,
                                const ClusterConfig& cfg);

  /// Ground-truth run with no measurement noise — used by oracle searches
  /// and tests. Identical model, exact values.
  [[nodiscard]] Measurement run_exact(const workloads::WorkloadSignature& w,
                                      const ClusterConfig& cfg) const;

  /// Execute a phased workload with per-phase node configurations over one
  /// node allocation (exact, noise-free). At each phase boundary the node
  /// runtime re-throttles, re-pins and re-programs the caps.
  [[nodiscard]] PhasedMeasurement run_phased_exact(
      const workloads::PhasedWorkload& w,
      const PhasedClusterConfig& cfg) const;

 private:
  /// The uncached model evaluation (the pre-memoization run_exact body).
  [[nodiscard]] Measurement compute_exact(const workloads::WorkloadSignature& w,
                                          const ClusterConfig& cfg) const;

  MachineSpec spec_;
  Variability variability_;
  RaplSolver rapl_;
  EventModel events_;
  PowerMeter meter_;
  obs::ObsSession* obs_ = nullptr;
  ExactRunCache* cache_ = nullptr;
  std::string cache_prefix_;  ///< encoded spec, computed once on attach
};

}  // namespace clip::sim
