// Unit tests for the runtime module: jobs, launch scripts, the launcher with
// persistent knowledge DB, the comparison harness, and telemetry (energy
// integral invariant + the Chrome-trace counter bridge).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "baselines/all_in.hpp"
#include "baselines/lower_limit.hpp"
#include "runtime/comparison.hpp"
#include "runtime/job.hpp"
#include "runtime/launcher.hpp"
#include "runtime/telemetry.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip::runtime {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

// --------------------------------------------------------------------- job ----

TEST(Job, LaunchScriptContainsConfiguration) {
  JobSpec spec;
  spec.app = *workloads::find_benchmark("BT-MZ");
  spec.cluster_budget = Watts(800.0);

  sim::ClusterConfig plan;
  plan.nodes = 4;
  plan.node.threads = 16;
  plan.node.affinity = parallel::AffinityPolicy::kScatter;
  plan.node.cpu_cap = Watts(110.0);
  plan.node.mem_cap = Watts(35.0);

  const std::string script = render_launch_script(spec, plan);
  EXPECT_NE(script.find("mpirun -np 4"), std::string::npos);
  EXPECT_NE(script.find("OMP_NUM_THREADS=16"), std::string::npos);
  EXPECT_NE(script.find("OMP_PROC_BIND=scatter"), std::string::npos);
  EXPECT_NE(script.find("--pkg-cap 110"), std::string::npos);
  EXPECT_NE(script.find("BT-MZ"), std::string::npos);
}

TEST(Job, LaunchScriptEmitsPerNodeOverrides) {
  JobSpec spec;
  spec.app = *workloads::find_benchmark("CoMD");
  spec.cluster_budget = Watts(400.0);
  sim::ClusterConfig plan;
  plan.nodes = 2;
  plan.node.cpu_cap = Watts(100.0);
  plan.cpu_cap_overrides = {Watts(95.0), Watts(105.0)};
  const std::string script = render_launch_script(spec, plan);
  EXPECT_NE(script.find("--pkg-cap 95"), std::string::npos);
  EXPECT_NE(script.find("--pkg-cap 105"), std::string::npos);
}

// ---------------------------------------------------------------- launcher ----

class LauncherTest : public ::testing::Test {
 protected:
  std::filesystem::path db_path_ =
      std::filesystem::temp_directory_path() / "clip_launcher_db.csv";
  void SetUp() override { std::filesystem::remove(db_path_); }
  void TearDown() override { std::filesystem::remove(db_path_); }
};

TEST_F(LauncherTest, RunProducesMeasurementWithinBudget) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  Launcher launcher(ex, workloads::training_benchmarks());
  JobSpec spec;
  spec.app = *workloads::find_benchmark("SP-MZ");
  spec.cluster_budget = Watts(900.0);
  const JobResult result = launcher.run(spec);
  EXPECT_EQ(result.method, "CLIP");
  EXPECT_GT(result.performance(), 0.0);
  EXPECT_LE(result.measurement.avg_power.value(), 900.0 * 1.01);
  EXPECT_GT(result.scheduling_overhead.value(), 0.0);
}

TEST_F(LauncherTest, KnowledgePersistsAcrossLauncherInstances) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  JobSpec spec;
  spec.app = *workloads::find_benchmark("TeaLeaf");
  spec.cluster_budget = Watts(800.0);
  {
    Launcher first(ex, workloads::training_benchmarks(), db_path_);
    (void)first.run(spec);
  }
  EXPECT_TRUE(std::filesystem::exists(db_path_));
  // A new launcher loads the DB: the job is scheduled with zero profiling.
  Launcher second(ex, workloads::training_benchmarks(), db_path_);
  const JobResult cached = second.run(spec);
  EXPECT_DOUBLE_EQ(cached.scheduling_overhead.value(), 0.0);
}

TEST_F(LauncherTest, PlanScriptIsRenderable) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  Launcher launcher(ex, workloads::training_benchmarks());
  JobSpec spec;
  spec.app = *workloads::find_benchmark("AMG");
  spec.cluster_budget = Watts(700.0);
  const std::string script = launcher.plan_script(spec);
  EXPECT_NE(script.find("#!/bin/sh"), std::string::npos);
  EXPECT_NE(script.find("AMG"), std::string::npos);
}

// -------------------------------------------------------------- comparison ----

class ComparisonTest : public ::testing::Test {
 protected:
  sim::SimExecutor ex_{sim::MachineSpec{}, no_noise()};
};

TEST_F(ComparisonTest, ProducesOneCellPerAppBudgetMethod) {
  ComparisonHarness h(ex_);
  h.add_method(std::make_shared<baselines::AllInScheduler>(ex_.spec()));
  h.add_method(std::make_shared<baselines::LowerLimitScheduler>(ex_.spec()));
  const std::vector<workloads::WorkloadSignature> apps = {
      *workloads::find_benchmark("CoMD"),
      *workloads::find_benchmark("BT-MZ")};
  const ComparisonResult r = h.run(apps, {600.0, 1000.0});
  EXPECT_EQ(r.cells.size(), 2u * 2u * 2u);
}

TEST_F(ComparisonTest, RelativePerformanceAgainstUnboundedAllIn) {
  ComparisonHarness h(ex_);
  h.add_method(std::make_shared<baselines::AllInScheduler>(ex_.spec()));
  const std::vector<workloads::WorkloadSignature> apps = {
      *workloads::find_benchmark("CoMD")};
  // At a huge budget All-In equals the unbounded reference: relative = 1.
  const ComparisonResult r = h.run(apps, {1e6});
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_NEAR(r.cells[0].relative_performance, 1.0, 1e-9);
}

TEST_F(ComparisonTest, MeanRelativeAggregates) {
  ComparisonHarness h(ex_);
  h.add_method(std::make_shared<baselines::AllInScheduler>(ex_.spec()));
  const std::vector<workloads::WorkloadSignature> apps = {
      *workloads::find_benchmark("CoMD"),
      *workloads::find_benchmark("miniMD")};
  const ComparisonResult r = h.run(apps, {800.0});
  const double mean = r.mean_relative("All-In", 800.0);
  EXPECT_GT(mean, 0.0);
  EXPECT_LT(mean, 1.0);  // bounded run is slower than unbounded reference
}

TEST_F(ComparisonTest, FindReturnsNullForMissingCell) {
  ComparisonResult r;
  EXPECT_EQ(r.find("x", "", 1.0, "m"), nullptr);
}

TEST_F(ComparisonTest, MeanImprovementIsZeroAgainstItself) {
  ComparisonHarness h(ex_);
  h.add_method(std::make_shared<baselines::AllInScheduler>(ex_.spec()));
  const std::vector<workloads::WorkloadSignature> apps = {
      *workloads::find_benchmark("CoMD")};
  const ComparisonResult r = h.run(apps, {800.0});
  EXPECT_NEAR(r.mean_improvement("All-In", "All-In"), 0.0, 1e-12);
}

TEST_F(ComparisonTest, EmptyHarnessRejected) {
  ComparisonHarness h(ex_);
  EXPECT_THROW(
      (void)h.run({*workloads::find_benchmark("CoMD")}, {800.0}),
      PreconditionError);
  EXPECT_THROW(h.add_method(nullptr), PreconditionError);
}

// --------------------------------------------------------------- telemetry ----

TEST(TelemetryTest, EnergyIntegralReproducesMeasuredEnergy) {
  // The invariant telemetry.hpp documents: with meter noise off, the
  // rectangle-rule integral of the power series equals the job's measured
  // energy up to the final partial sample period.
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  const auto app = *workloads::find_benchmark("CoMD");
  sim::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.node.threads = 16;
  const sim::Measurement m = ex.run_exact(app, cfg);

  TelemetryOptions opt;
  opt.noise_sigma = 0.0;
  const Telemetry telemetry(opt);
  const auto series = telemetry.record(m, cfg.node.threads);
  const double integral = Telemetry::energy_j(series, opt.sample_period_s);
  // One sample period of slack per node covers the truncated last interval.
  const double slack =
      m.avg_power.value() * opt.sample_period_s * (1.0 + cfg.nodes);
  EXPECT_NEAR(integral, m.energy.value(), slack);
}

TEST(TelemetryTest, TraceCounterBridgePreservesSeries) {
  sim::SimExecutor ex{sim::MachineSpec{}, no_noise()};
  const auto app = *workloads::find_benchmark("SP-MZ");
  sim::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.threads = 8;
  const sim::Measurement m = ex.run_exact(app, cfg);

  TelemetryOptions opt;
  opt.noise_sigma = 0.0;
  const auto series = Telemetry(opt).record(m, cfg.node.threads);
  const auto counters = Telemetry::to_trace_counters(series);
  ASSERT_EQ(counters.size(), series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(counters[i].name,
              "power.node" + std::to_string(series[i].node));
    EXPECT_DOUBLE_EQ(counters[i].time_us, series[i].time_s * 1e6);
    ASSERT_EQ(counters[i].series.size(), 2u);
    EXPECT_EQ(counters[i].series[0].first, "cpu_w");
    EXPECT_DOUBLE_EQ(counters[i].series[0].second, series[i].cpu_power_w);
    EXPECT_EQ(counters[i].series[1].first, "mem_w");
    EXPECT_DOUBLE_EQ(counters[i].series[1].second, series[i].mem_power_w);
  }
}

}  // namespace
}  // namespace clip::runtime
