// Adapter exposing the CLIP scheduler through the common PowerScheduler
// interface so comparison harnesses can treat all four methods uniformly.
#pragma once

#include <vector>

#include "baselines/scheduler_iface.hpp"
#include "core/scheduler.hpp"

namespace clip::baselines {

class ClipAdapter final : public PowerScheduler {
 public:
  ClipAdapter(sim::SimExecutor& executor,
              const std::vector<workloads::WorkloadSignature>& training_suite,
              core::SchedulerOptions options = core::SchedulerOptions{})
      : scheduler_(executor, training_suite, options) {}

  [[nodiscard]] std::string name() const override { return "CLIP"; }

  [[nodiscard]] sim::ClusterConfig plan(
      const workloads::WorkloadSignature& app,
      Watts cluster_budget) override {
    return scheduler_.schedule(app, cluster_budget).cluster;
  }

  [[nodiscard]] core::ClipScheduler& scheduler() { return scheduler_; }

 private:
  core::ClipScheduler scheduler_;
};

}  // namespace clip::baselines
