// Seeded random workload generation for property-based testing.
//
// The catalog covers the paper's benchmarks; these generators sample the
// whole physically valid signature space so the test suite can assert that
// the simulator's invariants and CLIP's guarantees (budget respect,
// feasible decisions) hold for *arbitrary* workloads, not just calibrated
// ones.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "workloads/signature.hpp"

namespace clip::workloads {

/// Draw a random valid signature. The distribution covers all three
/// scalability classes: ~1/3 compute-bound, ~1/3 bandwidth-saturating,
/// ~1/3 with a contention term.
[[nodiscard]] WorkloadSignature random_signature(Rng& rng);

/// A batch of `count` signatures from one seed (deterministic).
[[nodiscard]] std::vector<WorkloadSignature> random_signatures(
    std::uint64_t seed, int count);

}  // namespace clip::workloads
