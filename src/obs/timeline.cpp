#include "obs/timeline.hpp"

// The flight recorder is fed by the simulator thread and tailed by the
// telemetry server thread; sample/event storage and the ring-drop counter
// mutate only under mu_ (clip-analyze L1 enforces the write side).
// clip-lint: guards(mu_: samples_, events_, dropped_)

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "obs/chrome_trace.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace clip::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double parse_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  CLIP_REQUIRE(end != s.c_str() && *end == '\0',
               std::string("timeline CSV: bad ") + what + " '" + s + "'");
  return v;
}

/// Step-function value of a sorted point deque at `t_s` (NaN before the
/// first sample). std::upper_bound over the deque keeps queries O(log n).
double value_at_points(const std::deque<TimelinePoint>& pts, double t_s) {
  auto it = std::upper_bound(
      pts.begin(), pts.end(), t_s,
      [](double t, const TimelinePoint& p) { return t < p.t_s; });
  if (it == pts.begin()) return kNaN;
  return std::prev(it)->value;
}

}  // namespace

namespace {

/// The historical format_exact: %.*g at every precision until strtod
/// round-trips. Kept as the correctness fallback (and for non-finite
/// values); the fast path below must render byte-identically.
std::string format_exact_slow(double v) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

std::string format_exact(double v) {
  // One std::to_chars pass (scientific = shortest round-trip mantissa D and
  // decimal exponent E), then a hand-rendered %g at the minimal precision -
  // what the historical try-every-precision loop produced, without its up to
  // 17 snprintf+strtod round-trips. This is the journal/timeline hot path:
  // every snapshot serializes dozens of doubles through here. The
  // from_chars check at the end guards byte-compatibility (tests pin it
  // across a randomized sweep); any miss falls back to the loop.
  if (!std::isfinite(v)) return format_exact_slow(v);
  char sci[40];
  const auto r =
      std::to_chars(sci, sci + sizeof sci, v, std::chars_format::scientific);
  *r.ptr = '\0';  // to_chars does not terminate; strtol below needs it
  char digits[20] = {'0'};
  int precision = 0;
  int exponent = 0;
  const char* p = sci;
  const bool negative = *p == '-';
  if (negative) ++p;
  for (; p != r.ptr && *p != 'e'; ++p)
    if (*p != '.') digits[precision++] = *p;
  if (p != r.ptr) exponent = static_cast<int>(std::strtol(p + 1, nullptr, 10));

  char buf[40];
  char* o = buf;
  if (negative) *o++ = '-';
  if (exponent < -4 || exponent >= precision) {
    *o++ = digits[0];
    if (precision > 1) {
      *o++ = '.';
      for (int i = 1; i < precision; ++i) *o++ = digits[i];
    }
    *o++ = 'e';
    *o++ = exponent < 0 ? '-' : '+';
    const int e = exponent < 0 ? -exponent : exponent;
    if (e >= 100) *o++ = static_cast<char>('0' + e / 100);
    *o++ = static_cast<char>('0' + e / 10 % 10);
    *o++ = static_cast<char>('0' + e % 10);
  } else if (exponent >= precision - 1) {
    for (int i = 0; i < precision; ++i) *o++ = digits[i];
    for (int i = precision - 1; i < exponent; ++i) *o++ = '0';
  } else if (exponent >= 0) {
    for (int i = 0; i <= exponent; ++i) *o++ = digits[i];
    *o++ = '.';
    for (int i = exponent + 1; i < precision; ++i) *o++ = digits[i];
  } else {
    *o++ = '0';
    *o++ = '.';
    for (int i = -1; i > exponent; --i) *o++ = '0';
    for (int i = 0; i < precision; ++i) *o++ = digits[i];
  }
  *o = '\0';
  // Verify with from_chars, not strtod: both parse correctly rounded, but
  // from_chars skips the locale machinery (this check runs per double).
  double back = 0.0;
  const auto pr = std::from_chars(buf, o, back);
  if (pr.ec == std::errc() && pr.ptr == o && back == v)
    return std::string(buf, o);
  return format_exact_slow(v);
}

Timeline::Timeline(TimelineOptions options) : options_(options) {}

void Timeline::record(std::string_view series, double t_s, double value) {
  CLIP_REQUIRE(!series.empty(), "timeline series name must not be empty");
  CLIP_REQUIRE(std::isfinite(t_s), "timeline timestamp must be finite");
  std::lock_guard lock(mu_);
  auto it = samples_.find(series);
  if (it == samples_.end())
    it = samples_.emplace(std::string(series), SampleSeries{}).first;
  auto& pts = it->second.points;
  CLIP_REQUIRE(pts.empty() || t_s >= pts.back().t_s,
               "timeline series '" + it->first +
                   "' timestamps must be non-decreasing");
  if (options_.ring_capacity > 0 && pts.size() >= options_.ring_capacity) {
    pts.pop_front();
    ++dropped_;
  }
  pts.push_back(TimelinePoint{t_s, value});
}

void Timeline::event(std::string_view series, double t_s,
                     std::string_view label) {
  CLIP_REQUIRE(!series.empty(), "timeline series name must not be empty");
  CLIP_REQUIRE(std::isfinite(t_s), "timeline timestamp must be finite");
  std::lock_guard lock(mu_);
  auto it = events_.find(series);
  if (it == events_.end())
    it = events_.emplace(std::string(series), EventSeries{}).first;
  auto& entries = it->second.entries;
  CLIP_REQUIRE(entries.empty() || t_s >= entries.back().t_s,
               "timeline event series '" + it->first +
                   "' timestamps must be non-decreasing");
  if (options_.ring_capacity > 0 &&
      entries.size() >= options_.ring_capacity) {
    entries.pop_front();
    ++dropped_;
  }
  entries.push_back(TimelineEvent{t_s, std::string(label)});
}

std::vector<std::string> Timeline::series_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(samples_.size() + events_.size());
  for (const auto& [name, _] : samples_) names.push_back(name);
  for (const auto& [name, _] : events_)
    if (samples_.find(name) == samples_.end()) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<TimelinePoint> Timeline::samples(std::string_view series) const {
  std::lock_guard lock(mu_);
  const auto it = samples_.find(series);
  if (it == samples_.end()) return {};
  return {it->second.points.begin(), it->second.points.end()};
}

std::vector<TimelineEvent> Timeline::events(std::string_view series) const {
  std::lock_guard lock(mu_);
  const auto it = events_.find(series);
  if (it == events_.end()) return {};
  return {it->second.entries.begin(), it->second.entries.end()};
}

std::size_t Timeline::total_samples() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [_, s] : samples_) n += s.points.size();
  return n;
}

std::uint64_t Timeline::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

SeriesSummary Timeline::summary(std::string_view series) const {
  std::lock_guard lock(mu_);
  SeriesSummary s;
  const auto it = samples_.find(series);
  if (it == samples_.end() || it->second.points.empty()) return s;
  const auto& pts = it->second.points;
  s.count = pts.size();
  s.min = s.max = pts.front().value;
  double sum = 0.0;
  for (const auto& p : pts) {
    s.min = std::min(s.min, p.value);
    s.max = std::max(s.max, p.value);
    sum += p.value;
  }
  s.mean = sum / static_cast<double>(pts.size());
  s.first_t_s = pts.front().t_s;
  s.last_t_s = pts.back().t_s;
  return s;
}

double Timeline::value_at(std::string_view series, double t_s) const {
  std::lock_guard lock(mu_);
  const auto it = samples_.find(series);
  if (it == samples_.end()) return kNaN;
  return value_at_points(it->second.points, t_s);
}

std::vector<TimelinePoint> Timeline::resample(std::string_view series,
                                              double t0, double t1,
                                              std::size_t points) const {
  CLIP_REQUIRE(t1 >= t0, "resample needs t1 >= t0");
  CLIP_REQUIRE(points >= 1, "resample needs at least one point");
  std::lock_guard lock(mu_);
  const auto it = samples_.find(series);
  std::vector<TimelinePoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t =
        points == 1 ? t0
                    : t0 + (t1 - t0) * static_cast<double>(i) /
                               static_cast<double>(points - 1);
    const double v = it == samples_.end()
                         ? kNaN
                         : value_at_points(it->second.points, t);
    out.push_back(TimelinePoint{t, v});
  }
  return out;
}

double Timeline::integral(std::string_view series, double t0,
                          double t1) const {
  CLIP_REQUIRE(t1 >= t0, "integral needs t1 >= t0");
  std::lock_guard lock(mu_);
  const auto it = samples_.find(series);
  if (it == samples_.end()) return 0.0;
  const auto& pts = it->second.points;
  double acc = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double lo = std::max(pts[i].t_s, t0);
    const double hi =
        std::min(i + 1 < pts.size() ? pts[i + 1].t_s : t1, t1);
    if (hi > lo) acc += pts[i].value * (hi - lo);
  }
  return acc;
}

double Timeline::time_above(std::string_view series, double threshold,
                            double t0, double t1) const {
  CLIP_REQUIRE(t1 >= t0, "time_above needs t1 >= t0");
  std::lock_guard lock(mu_);
  const auto it = samples_.find(series);
  if (it == samples_.end()) return 0.0;
  const auto& pts = it->second.points;
  double acc = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!(pts[i].value > threshold)) continue;
    const double lo = std::max(pts[i].t_s, t0);
    const double hi =
        std::min(i + 1 < pts.size() ? pts[i + 1].t_s : t1, t1);
    if (hi > lo) acc += hi - lo;
  }
  return acc;
}

void Timeline::write_csv(const std::filesystem::path& path) const {
  clip::write_csv(path, to_csv_document());
}

std::string Timeline::to_csv_string() const {
  return render_csv(to_csv_document());
}

CsvDocument Timeline::to_csv_document() const {
  std::lock_guard lock(mu_);
  CsvDocument doc;
  doc.header = {"kind", "series", "t_s", "value", "label"};
  for (const auto& [name, s] : samples_)
    for (const auto& p : s.points)
      doc.rows.push_back(
          {"sample", name, format_exact(p.t_s), format_exact(p.value), ""});
  for (const auto& [name, e] : events_)
    for (const auto& ev : e.entries)
      doc.rows.push_back(
          {"event", name, format_exact(ev.t_s), "", ev.label});
  return doc;
}

void Timeline::write_jsonl(const std::filesystem::path& path) const {
  std::lock_guard lock(mu_);
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::trunc);
  CLIP_REQUIRE(out.good(), "cannot open " + path.string());
  for (const auto& [name, s] : samples_)
    for (const auto& p : s.points)
      out << "{\"kind\":\"sample\",\"series\":\"" << json_escape(name)
          << "\",\"t_s\":" << format_exact(p.t_s)
          << ",\"value\":" << format_exact(p.value) << "}\n";
  for (const auto& [name, e] : events_)
    for (const auto& ev : e.entries)
      out << "{\"kind\":\"event\",\"series\":\"" << json_escape(name)
          << "\",\"t_s\":" << format_exact(ev.t_s) << ",\"label\":\""
          << json_escape(ev.label) << "\"}\n";
  CLIP_REQUIRE(out.good(), "write failed: " + path.string());
}

void Timeline::load_csv(const std::filesystem::path& path) {
  load_csv_document(read_csv(path), path.string());
}

void Timeline::load_csv_string(const std::string& text,
                               const std::string& context) {
  load_csv_document(parse_csv(text, context), context);
}

void Timeline::load_csv_document(const CsvDocument& doc,
                                 const std::string& context) {
  CLIP_REQUIRE(doc.header ==
                   std::vector<std::string>(
                       {"kind", "series", "t_s", "value", "label"}),
               "not a timeline CSV: " + context);
  for (const auto& row : doc.rows) {
    const std::string& kind = row[0];
    const double t_s = parse_double(row[2], "t_s");
    if (kind == "sample") {
      record(row[1], t_s, parse_double(row[3], "value"));
    } else if (kind == "event") {
      event(row[1], t_s, row[4]);
    } else {
      CLIP_REQUIRE(false, "timeline CSV: unknown kind '" + kind + "'");
    }
  }
}

void Timeline::clear() {
  std::lock_guard lock(mu_);
  samples_.clear();
  events_.clear();
  dropped_ = 0;
}

}  // namespace clip::obs
