// Headline-claims summary — the quantitative statements of §V-C / §VII,
// each printed with our measured counterpart:
//   1. CLIP ≈ All-In unbounded for most apps; >=40%-class wins on the
//      standout parabolic applications.
//   2. CLIP close to optimal at unlimited/high budgets.
//   3. CLIP outperforms the compared methods by over 20% on average.
//   4. Up to ~60% over Coordinated on parabolic applications.
//   5. CLIP beats Coordinated on logarithmic apps at low budget.
//   Plus: profiling cost (<=3 samples) vs the oracle's exhaustive search.
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  ctx.attach(ex);

  runtime::ComparisonHarness harness(ex);
  auto oracle = std::make_shared<baselines::OracleScheduler>(
      ex, baselines::OracleOptions{ctx.prune});
  oracle->set_pool(ctx.pool());
  harness.add_method(
      std::make_shared<baselines::AllInScheduler>(ex.spec()));
  harness.add_method(
      std::make_shared<baselines::LowerLimitScheduler>(ex.spec()));
  harness.add_method(
      std::make_shared<baselines::CoordinatedScheduler>(ex));
  harness.add_method(std::make_shared<baselines::ClipAdapter>(
      ex, workloads::training_benchmarks()));
  harness.add_method(oracle);

  // 500 W is excluded from the means: below All-In's enforceable floor its
  // slowdown is unbounded and a single cliff point would dominate the mean
  // (fig9 reports that cliff separately).
  const std::vector<double> budgets = {600.0,  700.0,  800.0, 1000.0,
                                       1200.0, 1400.0, 5000.0};
  // No --budgets override here: the claim lookups below address specific
  // budget columns (600/1400/5000 W) by value.
  const auto& apps = workloads::paper_benchmarks();
  const auto result = harness.run(apps, budgets, ctx.pool());

  Table t({"paper claim", "paper value", "measured"});
  t.set_title("Summary — paper claims vs this reproduction");

  // 1. Unbounded behaviour.
  double parabolic_best = 0.0;
  for (const char* name : {"SP-MZ", "miniAero", "TeaLeaf"}) {
    const auto w = *workloads::find_benchmark(name);
    const double gain =
        result.find(w.name, w.parameters, 5000.0, "CLIP")
            ->relative_performance /
        result.find(w.name, w.parameters, 5000.0, "All-In")
            ->relative_performance;
    parabolic_best = std::max(parabolic_best, gain);
  }
  t.add_row({"unbounded win on parabolic apps (obs. 1)", ">= +40%",
             format_percent(parabolic_best - 1.0)});

  // 2. Close to optimal at high budget.
  double worst_vs_oracle = 1e9;
  for (const auto& w : apps) {
    const double ratio =
        result.find(w.name, w.parameters, 1400.0, "CLIP")
            ->relative_performance /
        result.find(w.name, w.parameters, 1400.0, "Oracle")
            ->relative_performance;
    worst_vs_oracle = std::min(worst_vs_oracle, ratio);
  }
  t.add_row({"worst CLIP/Oracle at high budget (obs. 2)",
             "close to optimal", format_percent(worst_vs_oracle - 1.0)});

  // 3. Headline average improvement.
  t.add_row({"mean improvement vs All-In (abstract)", "> +20%",
             format_percent(result.mean_improvement("CLIP", "All-In"))});
  t.add_row({"mean improvement vs Coordinated", "positive",
             format_percent(result.mean_improvement("CLIP", "Coordinated"))});
  t.add_row({"mean improvement vs Lower Limit", "positive",
             format_percent(result.mean_improvement("CLIP", "Lower Limit"))});

  // 4. Parabolic defence of Coordinated.
  double defence = 0.0;
  for (const char* name : {"SP-MZ", "miniAero", "TeaLeaf"}) {
    const auto w = *workloads::find_benchmark(name);
    for (double b : budgets) {
      if (b >= 5000.0) continue;
      defence = std::max(
          defence, result.find(w.name, w.parameters, b, "CLIP")
                           ->relative_performance /
                       result.find(w.name, w.parameters, b, "Coordinated")
                           ->relative_performance);
    }
  }
  t.add_row({"max win vs Coordinated, parabolic (obs. 4)", "up to +60%",
             format_percent(defence - 1.0)});

  // 5. Logarithmic at low budget.
  double log_low = 1e9;
  for (const char* name : {"BT-MZ", "LU-MZ"}) {
    const auto w = *workloads::find_benchmark(name);
    log_low = std::min(
        log_low, result.find(w.name, w.parameters, 600.0, "CLIP")
                         ->relative_performance /
                     result.find(w.name, w.parameters, 600.0, "Coordinated")
                         ->relative_performance);
  }
  t.add_row({"CLIP/Coordinated, logarithmic @600 W (obs. 5)", ">= 1.0x",
             format_double(log_low, 3) + "x"});

  // Scheduling cost: <=3 sample profiles vs exhaustive search.
  (void)oracle->plan(*workloads::find_benchmark("SP-MZ"), Watts(800.0));
  t.add_row({"configuration-search cost", "<= 3 sample runs (CLIP)",
             "oracle needs " + std::to_string(oracle->last_search_cost()) +
                 " executions"});

  ctx.print(t);
  return 0;
}
