// Fixture: a file that follows every invariant — clip-lint must stay
// silent (no findings, no suppressions needed).
#include <map>
#include <string>

struct Observer {
  void notify(int);
};

struct Clean {
  Observer* obs_ = nullptr;
  std::map<std::string, double> ordered;  // deterministic iteration

  void tick(int v) {
    if (obs_ != nullptr) obs_->notify(v);
  }
  double total() const {
    double sum = 0.0;
    for (const auto& [k, val] : ordered) sum += val;
    return sum;
  }
};
