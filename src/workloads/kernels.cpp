#include "workloads/kernels.hpp"

#include <chrono>
#include <cmath>
#include <utility>

#include "parallel/parallel_for.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace clip::workloads {

namespace {

double now_seconds() {
  // clip-lint: allow(D1) kernels time real host execution; wall time IS the measurement, not simulator state
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

class Timer {
 public:
  Timer() : start_(now_seconds()) {}
  [[nodiscard]] double elapsed() const { return now_seconds() - start_; }

 private:
  double start_;
};

}  // namespace

KernelResult stream_triad(parallel::ThreadPool& pool, std::size_t n,
                          int iters) {
  CLIP_REQUIRE(n > 0 && iters > 0, "stream_triad needs positive sizes");
  std::vector<double> a(n, 0.0), b(n, 1.5), c(n, 2.5);
  constexpr double kAlpha = 3.0;

  Timer timer;
  for (int it = 0; it < iters; ++it) {
    parallel::parallel_for(
        pool, 0, static_cast<std::int64_t>(n),
        [&](std::int64_t i) { a[i] = b[i] + kAlpha * c[i]; });
    std::swap(a, b);
  }
  KernelResult r;
  r.seconds = timer.elapsed();
  double sum = 0.0;
  for (double v : b) sum += v;
  r.checksum = sum / static_cast<double>(n);
  r.bytes_moved = static_cast<double>(n) * 24.0 * iters;
  r.flops = static_cast<double>(n) * 2.0 * iters;
  return r;
}

KernelResult blocked_dgemm(parallel::ThreadPool& pool, std::size_t n) {
  CLIP_REQUIRE(n > 0, "dgemm needs a positive order");
  constexpr std::size_t kBlock = 32;
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = static_cast<double>((i * 7 + 3) % 13) / 13.0;
    b[i] = static_cast<double>((i * 5 + 1) % 11) / 11.0;
  }

  const std::size_t blocks = (n + kBlock - 1) / kBlock;
  Timer timer;
  // Parallelize over row-blocks of C; each (bi, bj) tile is owned by one
  // iteration so no two workers write the same C element.
  parallel::parallel_for(
      pool, 0, static_cast<std::int64_t>(blocks * blocks),
      [&](std::int64_t tile) {
        const std::size_t bi = static_cast<std::size_t>(tile) / blocks;
        const std::size_t bj = static_cast<std::size_t>(tile) % blocks;
        const std::size_t i_end = std::min(n, (bi + 1) * kBlock);
        const std::size_t j_end = std::min(n, (bj + 1) * kBlock);
        for (std::size_t bk = 0; bk < blocks; ++bk) {
          const std::size_t k_end = std::min(n, (bk + 1) * kBlock);
          for (std::size_t i = bi * kBlock; i < i_end; ++i) {
            for (std::size_t k = bk * kBlock; k < k_end; ++k) {
              const double aik = a[i * n + k];
              for (std::size_t j = bj * kBlock; j < j_end; ++j)
                c[i * n + j] += aik * b[k * n + j];
            }
          }
        }
      },
      parallel::Schedule::kDynamic, 1);

  KernelResult r;
  r.seconds = timer.elapsed();
  double sum = 0.0;
  for (double v : c) sum += v;
  r.checksum = sum / static_cast<double>(n);
  r.flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
            static_cast<double>(n);
  r.bytes_moved = 3.0 * static_cast<double>(n) * static_cast<double>(n) * 8.0;
  return r;
}

KernelResult jacobi_stencil(parallel::ThreadPool& pool, std::size_t n,
                            int iters) {
  CLIP_REQUIRE(n >= 3 && iters > 0, "stencil needs n >= 3");
  std::vector<double> grid(n * n, 0.0), next(n * n, 0.0);
  // Hot left edge, cold elsewhere: classic heat-conduction setup.
  for (std::size_t i = 0; i < n; ++i) grid[i * n] = 100.0;
  next = grid;

  Timer timer;
  for (int it = 0; it < iters; ++it) {
    parallel::parallel_for(
        pool, 1, static_cast<std::int64_t>(n - 1), [&](std::int64_t row) {
          const std::size_t i = static_cast<std::size_t>(row);
          for (std::size_t j = 1; j + 1 < n; ++j) {
            next[i * n + j] = 0.25 * (grid[(i - 1) * n + j] +
                                      grid[(i + 1) * n + j] +
                                      grid[i * n + j - 1] +
                                      grid[i * n + j + 1]);
          }
        });
    std::swap(grid, next);
  }
  KernelResult r;
  r.seconds = timer.elapsed();
  double sum = 0.0;
  for (double v : grid) sum += v;
  r.checksum = sum;
  r.bytes_moved =
      static_cast<double>(n) * static_cast<double>(n) * 16.0 * iters;
  r.flops = static_cast<double>(n) * static_cast<double>(n) * 4.0 * iters;
  return r;
}

KernelResult lennard_jones(parallel::ThreadPool& pool, std::size_t n,
                           int steps) {
  CLIP_REQUIRE(n >= 2 && steps > 0, "lennard_jones needs n >= 2");
  const std::size_t atoms = n * n * n;
  const double spacing = 1.1225;  // near the LJ potential minimum 2^(1/6)
  std::vector<double> px(atoms), py(atoms), pz(atoms);
  std::vector<double> fx(atoms), fy(atoms), fz(atoms);
  for (std::size_t i = 0; i < atoms; ++i) {
    px[i] = spacing * static_cast<double>(i % n);
    py[i] = spacing * static_cast<double>((i / n) % n);
    pz[i] = spacing * static_cast<double>(i / (n * n));
  }
  const double cutoff2 = 2.5 * 2.5;

  Timer timer;
  double potential = 0.0;
  for (int step = 0; step < steps; ++step) {
    std::fill(fx.begin(), fx.end(), 0.0);
    std::fill(fy.begin(), fy.end(), 0.0);
    std::fill(fz.begin(), fz.end(), 0.0);
    potential = parallel::parallel_reduce(
        pool, 0, static_cast<std::int64_t>(atoms), 0.0,
        [&](std::int64_t ii, double& acc) {
          const std::size_t i = static_cast<std::size_t>(ii);
          // Half neighbor scan with owner-writes-own-force only (j-side force
          // contributions are recomputed by j's own scan), keeping the
          // parallel loop race-free.
          for (std::size_t j = 0; j < atoms; ++j) {
            if (i == j) continue;
            const double dx = px[i] - px[j];
            const double dy = py[i] - py[j];
            const double dz = pz[i] - pz[j];
            const double r2 = dx * dx + dy * dy + dz * dz;
            if (r2 > cutoff2) continue;
            const double inv2 = 1.0 / r2;
            const double inv6 = inv2 * inv2 * inv2;
            const double force = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
            fx[i] += force * dx;
            fy[i] += force * dy;
            fz[i] += force * dz;
            acc += 0.5 * 4.0 * inv6 * (inv6 - 1.0);
          }
        });
    // A tiny damped position update so successive steps differ.
    parallel::parallel_for(pool, 0, static_cast<std::int64_t>(atoms),
                           [&](std::int64_t ii) {
                             const std::size_t i =
                                 static_cast<std::size_t>(ii);
                             px[i] += 1e-5 * fx[i];
                             py[i] += 1e-5 * fy[i];
                             pz[i] += 1e-5 * fz[i];
                           });
  }
  KernelResult r;
  r.seconds = timer.elapsed();
  r.checksum = potential;
  r.flops = static_cast<double>(atoms) * static_cast<double>(atoms) * 12.0 *
            steps;
  r.bytes_moved = static_cast<double>(atoms) * 48.0 * steps;
  return r;
}

KernelResult monte_carlo_pi(parallel::ThreadPool& pool,
                            std::uint64_t samples) {
  CLIP_REQUIRE(samples > 0, "monte_carlo_pi needs samples");
  const int team = pool.concurrency();
  const std::uint64_t per_worker = samples / static_cast<std::uint64_t>(team);

  Timer timer;
  std::vector<std::uint64_t> hits(static_cast<std::size_t>(team), 0);
  pool.run_region([&](int rank, int) {
    // Independent deterministic stream per rank.
    Rng rng(0x9E3779B9u + static_cast<std::uint64_t>(rank) * 7919u);
    std::uint64_t local = 0;
    for (std::uint64_t s = 0; s < per_worker; ++s) {
      const double x = rng.uniform();
      const double y = rng.uniform();
      if (x * x + y * y <= 1.0) ++local;
    }
    hits[static_cast<std::size_t>(rank)] = local;
  });
  std::uint64_t total_hits = 0;
  for (auto h : hits) total_hits += h;
  const std::uint64_t total =
      per_worker * static_cast<std::uint64_t>(team);

  KernelResult r;
  r.seconds = timer.elapsed();
  r.checksum = 4.0 * static_cast<double>(total_hits) /
               static_cast<double>(total);
  r.flops = static_cast<double>(total) * 4.0;
  r.bytes_moved = 0.0;
  return r;
}

KernelResult spmv(parallel::ThreadPool& pool, std::size_t n, int iters) {
  CLIP_REQUIRE(n >= 4 && iters > 0, "spmv needs n >= 4");
  // Synthetic 5-diagonal matrix (offsets 0, ±1, ±3) in CSR-like band form.
  std::vector<double> x(n, 1.0), y(n, 0.0);
  const std::int64_t offsets[5] = {-3, -1, 0, 1, 3};
  const double values[5] = {-0.5, -1.0, 4.2, -1.0, -0.5};

  Timer timer;
  for (int it = 0; it < iters; ++it) {
    parallel::parallel_for(
        pool, 0, static_cast<std::int64_t>(n), [&](std::int64_t i) {
          double acc = 0.0;
          for (int d = 0; d < 5; ++d) {
            const std::int64_t j = i + offsets[d];
            if (j >= 0 && j < static_cast<std::int64_t>(n))
              acc += values[d] * x[static_cast<std::size_t>(j)];
          }
          y[static_cast<std::size_t>(i)] = acc;
        });
    // Normalize to keep values bounded, then feed back.
    const double norm = parallel::parallel_reduce(
        pool, 0, static_cast<std::int64_t>(n), 0.0,
        [&](std::int64_t i, double& acc) {
          acc += y[static_cast<std::size_t>(i)] *
                 y[static_cast<std::size_t>(i)];
        });
    const double scale = norm > 0.0 ? 1.0 / std::sqrt(norm) : 1.0;
    parallel::parallel_for(pool, 0, static_cast<std::int64_t>(n),
                           [&](std::int64_t i) {
                             x[static_cast<std::size_t>(i)] =
                                 y[static_cast<std::size_t>(i)] * scale;
                           });
  }
  KernelResult r;
  r.seconds = timer.elapsed();
  double sum = 0.0;
  for (double v : x) sum += v;
  r.checksum = sum;
  r.bytes_moved = static_cast<double>(n) * 5.0 * 8.0 * iters;
  r.flops = static_cast<double>(n) * 10.0 * iters;
  return r;
}

KernelResult batched_fft(parallel::ThreadPool& pool, std::size_t n,
                         int batches) {
  CLIP_REQUIRE(n >= 4 && (n & (n - 1)) == 0, "fft length must be a power of two >= 4");
  CLIP_REQUIRE(batches > 0, "fft needs batches");
  // Interleaved re/im, one signal per batch row.
  std::vector<double> re(n * batches), im(n * batches, 0.0);
  for (std::size_t i = 0; i < re.size(); ++i)
    re[i] = std::sin(0.37 * static_cast<double>(i % n)) +
            0.5 * std::cos(1.31 * static_cast<double>(i % n));

  const std::size_t log2n = static_cast<std::size_t>(std::round(std::log2(n)));

  Timer timer;
  parallel::parallel_for(
      pool, 0, batches,
      [&](std::int64_t b) {
        double* r = re.data() + static_cast<std::size_t>(b) * n;
        double* x = im.data() + static_cast<std::size_t>(b) * n;
        // Bit-reversal permutation.
        for (std::size_t i = 1, j = 0; i < n; ++i) {
          std::size_t bit = n >> 1;
          for (; j & bit; bit >>= 1) j ^= bit;
          j ^= bit;
          if (i < j) {
            std::swap(r[i], r[j]);
            std::swap(x[i], x[j]);
          }
        }
        // Iterative butterflies.
        for (std::size_t s = 1; s <= log2n; ++s) {
          const std::size_t m = std::size_t{1} << s;
          const double theta = -2.0 * 3.14159265358979323846 /
                               static_cast<double>(m);
          const double wr = std::cos(theta), wi = std::sin(theta);
          for (std::size_t k = 0; k < n; k += m) {
            double cr = 1.0, ci = 0.0;
            for (std::size_t j = 0; j < m / 2; ++j) {
              const std::size_t a = k + j, bidx = k + j + m / 2;
              const double tr = cr * r[bidx] - ci * x[bidx];
              const double ti = cr * x[bidx] + ci * r[bidx];
              r[bidx] = r[a] - tr;
              x[bidx] = x[a] - ti;
              r[a] += tr;
              x[a] += ti;
              const double ncr = cr * wr - ci * wi;
              ci = cr * wi + ci * wr;
              cr = ncr;
            }
          }
        }
      },
      parallel::Schedule::kDynamic, 1);

  KernelResult result;
  result.seconds = timer.elapsed();
  double energy_sum = 0.0;
  for (std::size_t i = 0; i < re.size(); ++i)
    energy_sum += re[i] * re[i] + im[i] * im[i];
  result.checksum = energy_sum / static_cast<double>(batches);
  result.flops = 5.0 * static_cast<double>(n) * log2n * batches;
  result.bytes_moved = 16.0 * static_cast<double>(n) * log2n * batches;
  return result;
}

KernelResult histogram(parallel::ThreadPool& pool, std::uint64_t samples,
                       std::size_t bins) {
  CLIP_REQUIRE(samples > 0 && bins > 0, "histogram needs samples and bins");
  const int team = pool.concurrency();
  std::vector<std::vector<std::uint64_t>> partial(
      static_cast<std::size_t>(pool.max_threads()));

  Timer timer;
  pool.run_region([&](int rank, int team_size) {
    auto& local = partial[static_cast<std::size_t>(rank)];
    local.assign(bins, 0);
    Rng rng(0xB1A5 + static_cast<std::uint64_t>(rank));
    const std::uint64_t per =
        samples / static_cast<std::uint64_t>(team_size);
    for (std::uint64_t s = 0; s < per; ++s) {
      // A peaked distribution so the histogram has structure.
      const double u = 0.5 * (rng.uniform() + rng.uniform());
      ++local[std::min(bins - 1,
                       static_cast<std::size_t>(u * static_cast<double>(bins)))];
    }
  });
  std::vector<std::uint64_t> merged(bins, 0);
  for (int rank = 0; rank < team; ++rank)
    for (std::size_t b = 0; b < bins; ++b)
      merged[b] += partial[static_cast<std::size_t>(rank)][b];

  KernelResult result;
  result.seconds = timer.elapsed();
  // Digest: index of the fullest bin plus total mass (deterministic per
  // team size via per-rank seeds).
  std::size_t peak = 0;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    total += merged[b];
    if (merged[b] > merged[peak]) peak = b;
  }
  result.checksum =
      static_cast<double>(peak) + static_cast<double>(total) * 1e-12;
  result.bytes_moved = static_cast<double>(samples) * 8.0;
  result.flops = static_cast<double>(samples) * 3.0;
  return result;
}

const std::vector<KernelInfo>& kernel_registry() {
  static const std::vector<KernelInfo> registry = {
      {"stream_triad", "STREAM / memory class"},
      {"blocked_dgemm", "HPL / compute class"},
      {"jacobi_stencil", "TeaLeaf / heat conduction"},
      {"lennard_jones", "miniMD, CoMD / molecular dynamics"},
      {"monte_carlo_pi", "NPB EP / embarrassingly parallel"},
      {"spmv", "AMG, CG / sparse solvers"},
      {"batched_fft", "HPCC-FFT, NPB FT / spectral methods"},
      {"histogram", "NPB IS / integer sort & binning"},
  };
  return registry;
}

KernelResult run_kernel_by_name(parallel::ThreadPool& pool,
                                const std::string& name) {
  if (name == "stream_triad") return stream_triad(pool, 1 << 18, 20);
  if (name == "blocked_dgemm") return blocked_dgemm(pool, 192);
  if (name == "jacobi_stencil") return jacobi_stencil(pool, 256, 30);
  if (name == "lennard_jones") return lennard_jones(pool, 6, 3);
  if (name == "monte_carlo_pi") return monte_carlo_pi(pool, 400000);
  if (name == "spmv") return spmv(pool, 1 << 16, 25);
  if (name == "batched_fft") return batched_fft(pool, 1 << 10, 48);
  if (name == "histogram") return histogram(pool, 600000, 256);
  CLIP_REQUIRE(false, "unknown kernel: " + name);
  return {};
}

}  // namespace clip::workloads
