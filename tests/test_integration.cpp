// Integration tests: the paper's evaluation claims (§V), asserted
// end-to-end through profiling → classification → prediction → allocation →
// enforcement → execution, with measurement noise enabled (as on the real
// testbed).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/all_in.hpp"
#include "baselines/clip_adapter.hpp"
#include "baselines/coordinated.hpp"
#include "baselines/lower_limit.hpp"
#include "baselines/oracle.hpp"
#include "runtime/comparison.hpp"
#include "workloads/catalog.hpp"

namespace clip {
namespace {

class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    executor_ = new sim::SimExecutor(sim::MachineSpec{});
    harness_ = new runtime::ComparisonHarness(*executor_);
    harness_->add_method(
        std::make_shared<baselines::AllInScheduler>(executor_->spec()));
    harness_->add_method(std::make_shared<baselines::LowerLimitScheduler>(
        executor_->spec()));
    harness_->add_method(
        std::make_shared<baselines::CoordinatedScheduler>(*executor_));
    harness_->add_method(std::make_shared<baselines::ClipAdapter>(
        *executor_, workloads::training_benchmarks()));
    harness_->add_method(
        std::make_shared<baselines::OracleScheduler>(*executor_));
    result_ = new runtime::ComparisonResult(harness_->run(
        workloads::paper_benchmarks(),
        {600.0, 800.0, 1000.0, 1400.0, 5000.0}));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete harness_;
    delete executor_;
    result_ = nullptr;
    harness_ = nullptr;
    executor_ = nullptr;
  }

  static double rel(const workloads::WorkloadSignature& w, double budget,
                    const std::string& method) {
    const auto* cell =
        result_->find(w.name, w.parameters, budget, method);
    EXPECT_NE(cell, nullptr) << w.name << " " << method;
    return cell ? cell->relative_performance : 0.0;
  }

  static sim::SimExecutor* executor_;
  static runtime::ComparisonHarness* harness_;
  static runtime::ComparisonResult* result_;
};

sim::SimExecutor* PaperClaims::executor_ = nullptr;
runtime::ComparisonHarness* PaperClaims::harness_ = nullptr;
runtime::ComparisonResult* PaperClaims::result_ = nullptr;

// Observation 1 (§V-C): with no power bound, CLIP ≈ All-In for most apps and
// >= 40% better for the standout parabolic applications.
TEST_F(PaperClaims, UnboundedClipMatchesAllInForLinearApps) {
  for (const char* name : {"CoMD", "AMG", "miniMD"}) {
    const auto w = *workloads::find_benchmark(name);
    EXPECT_GE(rel(w, 5000.0, "CLIP"), rel(w, 5000.0, "All-In") * 0.93)
        << name;
  }
}

TEST_F(PaperClaims, UnboundedClipWinsBigOnParabolicApps) {
  // miniAero's inflection is predicted accurately -> the full ~1.5x win.
  // SP-MZ's MLR underpredicts N_P (10 vs 14) — the error class the paper
  // itself reports in Fig. 7 ("only underestimate for LU-MZ and TeaLeaf") —
  // which trims its win; it must still be a clear double-digit gain.
  const auto mini = *workloads::find_benchmark("miniAero");
  EXPECT_GE(rel(mini, 5000.0, "CLIP") / rel(mini, 5000.0, "All-In"), 1.40);
  const auto sp = *workloads::find_benchmark("SP-MZ");
  EXPECT_GE(rel(sp, 5000.0, "CLIP") / rel(sp, 5000.0, "All-In"), 1.15);
}

// Observation 2: CLIP performs close to optimal at unlimited/high budgets.
TEST_F(PaperClaims, ClipCloseToOracleAtHighBudget) {
  // ≥0.85 of the exhaustive optimum everywhere: the residual gap is the
  // N_P prediction error on the parabolic apps (paper Fig. 7's tolerance).
  for (const auto& w : workloads::paper_benchmarks()) {
    const double clip = rel(w, 1400.0, "CLIP");
    const double oracle = rel(w, 1400.0, "Oracle");
    EXPECT_GE(clip / oracle, 0.85) << w.name << "/" << w.parameters;
  }
}

// Observation 3: CLIP outperforms the baselines in the mean.
TEST_F(PaperClaims, ClipBeatsEveryBaselineOnAverage) {
  EXPECT_GT(result_->mean_improvement("CLIP", "All-In"), 0.15);
  EXPECT_GT(result_->mean_improvement("CLIP", "Coordinated"), 0.08);
  EXPECT_GT(result_->mean_improvement("CLIP", "Lower Limit"), 0.30);
}

// The headline number: "outperforms compared methods by over 20% on
// average for various power budgets" (vs the conventional All-In).
TEST_F(PaperClaims, HeadlineTwentyPercentAverageImprovement) {
  EXPECT_GT(result_->mean_improvement("CLIP", "All-In"), 0.20);
}

// Observation 4: CLIP defends Coordinated on parabolic applications.
TEST_F(PaperClaims, ClipDefendsCoordinatedOnParabolic) {
  for (const char* name : {"SP-MZ", "miniAero", "TeaLeaf"}) {
    const auto w = *workloads::find_benchmark(name);
    double best_gain = 0.0;
    for (double budget : {600.0, 800.0, 1000.0, 1400.0}) {
      best_gain = std::max(best_gain, rel(w, budget, "CLIP") /
                                          rel(w, budget, "Coordinated"));
    }
    EXPECT_GE(best_gain, 1.25) << name;
  }
}

// Observation 5: CLIP >= Coordinated for logarithmic apps at low budget.
TEST_F(PaperClaims, ClipHoldsCoordinatedOnLogarithmicAtLowBudget) {
  for (const char* name : {"BT-MZ", "LU-MZ"}) {
    const auto w = *workloads::find_benchmark(name);
    EXPECT_GE(rel(w, 600.0, "CLIP"), rel(w, 600.0, "Coordinated") * 0.97)
        << name;
  }
}

// Sanity: the Lower Limit baseline is the weakest overall, as in Figs. 8–9.
TEST_F(PaperClaims, LowerLimitIsWeakestOnAverage) {
  for (double budget : {600.0, 1000.0, 1400.0}) {
    const double ll = result_->mean_relative("Lower Limit", budget);
    EXPECT_LT(ll, result_->mean_relative("CLIP", budget)) << budget;
    EXPECT_LT(ll, result_->mean_relative("All-In", budget)) << budget;
  }
}

// Every plan of every method stays within its budget when executed.
TEST_F(PaperClaims, AllPlansRespectTheBudget) {
  for (const auto& cell : result_->cells) {
    if (cell.budget_w >= 5000.0) continue;  // effectively unbounded
    const auto w =
        *workloads::find_benchmark(cell.app, cell.parameters);
    const sim::Measurement m = executor_->run_exact(w, cell.plan);
    EXPECT_LE(m.avg_power.value(), cell.budget_w * 1.01)
        << cell.app << " " << cell.method << " @" << cell.budget_w;
  }
}

// Performance is monotone (within tolerance) in the budget for CLIP.
TEST_F(PaperClaims, ClipPerformanceMonotoneInBudget) {
  for (const auto& w : workloads::paper_benchmarks()) {
    double prev = 0.0;
    for (double budget : {600.0, 800.0, 1000.0, 1400.0}) {
      const double perf = rel(w, budget, "CLIP");
      EXPECT_GE(perf, prev * 0.98) << w.name << " @" << budget;
      prev = perf;
    }
  }
}

// The oracle dominates every method everywhere — up to its cap-grid pitch:
// it searches a finite grid of CPU/DRAM splits, so a method landing between
// grid points can edge it by a fraction of a percent.
TEST_F(PaperClaims, OracleDominatesAllMethods) {
  for (const auto& w : workloads::paper_benchmarks()) {
    for (double budget : {600.0, 800.0, 1000.0, 1400.0}) {
      const double oracle = rel(w, budget, "Oracle");
      for (const char* m : {"All-In", "Lower Limit", "Coordinated", "CLIP"})
        EXPECT_GE(oracle, rel(w, budget, m) * 0.99)
            << w.name << " " << m << " @" << budget;
    }
  }
}

}  // namespace
}  // namespace clip
