#include "runtime/comparison.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <tuple>

#include "baselines/all_in.hpp"
#include "parallel/parallel_for.hpp"
#include "util/check.hpp"

namespace clip::runtime {

std::string ComparisonResult::cell_key(const std::string& app,
                                       const std::string& parameters,
                                       double budget_w,
                                       const std::string& method) {
  // Field lengths + raw budget bytes make the key unambiguous (no chosen
  // separator can collide with user strings, and no decimal formatting can
  // merge two distinct budgets).
  std::string key;
  key.reserve(app.size() + parameters.size() + method.size() + 32);
  const auto append_sized = [&key](const std::string& s) {
    const std::uint64_t n = s.size();
    char bytes[sizeof(n)];
    std::memcpy(bytes, &n, sizeof(n));
    key.append(bytes, sizeof(n));
    key.append(s);
  };
  append_sized(app);
  append_sized(parameters);
  char budget_bytes[sizeof(double)];
  std::memcpy(budget_bytes, &budget_w, sizeof(double));
  key.append(budget_bytes, sizeof(double));
  append_sized(method);
  return key;
}

void ComparisonResult::ensure_index() const {
  if (indexed_cells_ == cells.size()) return;
  index_.clear();
  index_.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ComparisonCell& c = cells[i];
    // First occurrence wins, matching the historical linear scan.
    index_.try_emplace(cell_key(c.app, c.parameters, c.budget_w, c.method),
                       i);
  }
  indexed_cells_ = cells.size();
}

const ComparisonCell* ComparisonResult::find(const std::string& app,
                                             const std::string& parameters,
                                             double budget_w,
                                             const std::string& method) const {
  ensure_index();
  const auto it = index_.find(cell_key(app, parameters, budget_w, method));
  return it == index_.end() ? nullptr : &cells[it->second];
}

double ComparisonResult::mean_relative(const std::string& method,
                                       double budget_w) const {
  double acc = 0.0;
  int count = 0;
  for (const auto& c : cells) {
    if (c.method != method || c.budget_w != budget_w) continue;
    acc += c.relative_performance;
    ++count;
  }
  CLIP_REQUIRE(count > 0, "no cells for method " + method);
  return acc / count;
}

double ComparisonResult::mean_improvement(
    const std::string& method, const std::string& reference,
    const std::vector<double>& budgets) const {
  double acc = 0.0;
  int count = 0;
  for (const auto& c : cells) {
    if (c.method != method) continue;
    if (!budgets.empty() &&
        std::find(budgets.begin(), budgets.end(), c.budget_w) ==
            budgets.end())
      continue;
    const ComparisonCell* ref =
        find(c.app, c.parameters, c.budget_w, reference);
    if (ref == nullptr || ref->relative_performance <= 0.0) continue;
    acc += c.relative_performance / ref->relative_performance - 1.0;
    ++count;
  }
  CLIP_REQUIRE(count > 0, "no comparable cells");
  return acc / count;
}

void ComparisonHarness::add_method(
    std::shared_ptr<baselines::PowerScheduler> method) {
  CLIP_REQUIRE(method != nullptr, "null method");
  methods_.push_back(std::move(method));
}

double ComparisonHarness::unbounded_reference_time(
    const workloads::WorkloadSignature& app) {
  baselines::AllInScheduler all_in(executor_->spec());
  const Watts unlimited(1e6);
  const sim::ClusterConfig cfg = all_in.plan(app, unlimited);
  return executor_->run_exact(app, cfg).time.value();
}

ComparisonResult ComparisonHarness::run(
    const std::vector<workloads::WorkloadSignature>& apps,
    const std::vector<double>& budgets_w, parallel::ThreadPool* pool) {
  CLIP_REQUIRE(!methods_.empty(), "register at least one method");
  ComparisonResult result;

  // Phase 1 — plan every cell in the canonical (app → budget → method)
  // order. Schedulers are stateful (knowledge DBs, search counters) and
  // their profiling runs draw measurement noise from the executor's meter,
  // so this order is what keeps the noisy stream — and with it the output —
  // identical to the historical serial harness. The expensive member of the
  // loop, the oracle, parallelizes internally over its own candidate grid.
  std::vector<double> reference_time(apps.size(), 0.0);
  std::vector<std::size_t> cell_app;  // app index per cell, for phase 2
  for (std::size_t ai = 0; ai < apps.size(); ++ai) {
    const auto& app = apps[ai];
    reference_time[ai] = unbounded_reference_time(app);
    for (double budget : budgets_w) {
      for (const auto& method : methods_) {
        ComparisonCell cell;
        cell.app = app.name;
        cell.parameters = app.parameters;
        cell.budget_w = budget;
        cell.method = method->name();
        cell.plan = method->plan(app, Watts(budget));
        cell_app.push_back(ai);
        result.cells.push_back(std::move(cell));
      }
    }
  }

  // Phase 2 — time every planned cell with the exact (noise-free, pure)
  // executor. Order-independent, so it fans out across the pool; each task
  // writes only its own cell, which makes the merge deterministic.
  //
  // Different methods and budgets regularly plan the same (workload,
  // placement) with only the caps differing — run_batch's frontier shape.
  // Group the cells by that prefix (an ordered map keeps the grouping walk
  // deterministic — clip-lint D2); cells with per-node cap overrides stay
  // on the scalar path, which run_batch requires.
  using GroupKey = std::tuple<std::size_t, int, int, int, int>;
  std::map<GroupKey, std::vector<std::size_t>> groups;
  std::vector<std::size_t> singles;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const sim::ClusterConfig& plan = result.cells[i].plan;
    if (!plan.cpu_cap_overrides.empty()) {
      singles.push_back(i);
      continue;
    }
    groups[GroupKey{cell_app[i], plan.nodes, plan.node.threads,
                    static_cast<int>(plan.node.affinity),
                    static_cast<int>(plan.node.mem_level)}]
        .push_back(i);
  }
  std::vector<const std::vector<std::size_t>*> batches;
  batches.reserve(groups.size());
  for (const auto& [key, members] : groups) batches.push_back(&members);

  const auto time_cell = [&](std::size_t i) {
    ComparisonCell& cell = result.cells[i];
    const sim::Measurement m =
        executor_->run_exact(apps[cell_app[i]], cell.plan);
    cell.time_s = m.time.value();
    cell.relative_performance = reference_time[cell_app[i]] / cell.time_s;
  };
  const auto time_group = [&](const std::vector<std::size_t>& members) {
    const sim::ClusterConfig& base = result.cells[members.front()].plan;
    std::vector<sim::CapPoint> caps(members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      caps[k].cpu_cap = result.cells[members[k]].plan.node.cpu_cap;
      caps[k].mem_cap = result.cells[members[k]].plan.node.mem_cap;
    }
    const sim::FrontierResult ms =
        executor_->run_batch(apps[cell_app[members.front()]], base, caps);
    for (std::size_t k = 0; k < members.size(); ++k) {
      ComparisonCell& cell = result.cells[members[k]];
      cell.time_s = (*ms)[k].time.value();
      cell.relative_performance =
          reference_time[cell_app[members[k]]] / cell.time_s;
    }
  };
  if (pool != nullptr) {
    parallel::parallel_for(*pool, 0,
                           static_cast<std::int64_t>(batches.size()),
                           [&](std::int64_t g) {
                             time_group(*batches[static_cast<std::size_t>(g)]);
                           },
                           parallel::Schedule::kDynamic, 1);
    parallel::parallel_for_chunks(
        *pool, 0, static_cast<std::int64_t>(singles.size()),
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i)
            time_cell(singles[static_cast<std::size_t>(i)]);
        },
        parallel::Schedule::kDynamic, 4);
  } else {
    for (const auto* members : batches) time_group(*members);
    for (const std::size_t i : singles) time_cell(i);
  }
  return result;
}

}  // namespace clip::runtime
