// clip-analyze's own test suite: every rule must fire on its violation
// fixture at the exact line, stay silent on the clean fixture, and the
// suppression machinery must reject reasonless or unknown-rule entries.
// Fixture files live in tests/lint_fixtures/ and are lint *inputs*, never
// compiled. The J/L/E families are additionally proven against mutants of
// the real sources under CLIP_SRC_DIR: each family must catch its defect
// when deliberately injected into the code it was built to protect, and
// must stay quiet on the pristine tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace clip::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing file " << path;
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(LINT_FIXTURES_DIR) + "/" + name;
}

std::vector<Finding> lint_fixture(const std::string& name) {
  return lint_source(read_file(fixture_path(name)), name);
}

FileResult analyze_fixture(const std::string& name) {
  return analyze_source(read_file(fixture_path(name)), name);
}

std::string src_path(const std::string& rel) {
  return std::string(CLIP_SRC_DIR) + "/" + rel;
}

/// All findings (per-file + project passes) over a set of already-analyzed
/// files — the same composition main.cpp performs.
std::vector<Finding> all_findings(std::vector<FileResult> results) {
  std::vector<Finding> findings;
  for (const FileResult& r : results)
    findings.insert(findings.end(), r.findings.begin(), r.findings.end());
  const std::vector<Finding> project = project_rules(results);
  findings.insert(findings.end(), project.begin(), project.end());
  return findings;
}

int open_count(const std::vector<Finding>& findings) {
  int n = 0;
  for (const Finding& f : findings)
    if (!f.suppressed) ++n;
  return n;
}

/// Replace the unique occurrence of `from` with `to`; fails the test when
/// the anchor text drifted out of the real source.
std::string mutate(std::string src, const std::string& from,
                   const std::string& to) {
  const std::size_t pos = src.find(from);
  EXPECT_NE(pos, std::string::npos) << "mutant anchor not found: " << from;
  if (pos != std::string::npos) src.replace(pos, from.size(), to);
  return src;
}

/// (rule, line) pairs of the findings matching `suppressed`.
std::vector<std::pair<std::string, int>> hits(
    const std::vector<Finding>& findings, bool suppressed) {
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& f : findings)
    if (f.suppressed == suppressed) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

using Hits = std::vector<std::pair<std::string, int>>;

TEST(LintRules, D1FiresOnEveryWallClockSource) {
  const auto f = lint_fixture("d1_wall_clock.cpp");
  EXPECT_EQ(hits(f, false),
            (Hits{{"D1", 6}, {"D1", 11}, {"D1", 14}}));
}

TEST(LintRules, D2FiresOnDeclarationAndIteration) {
  const auto f = lint_fixture("d2_unordered.cpp");
  EXPECT_EQ(hits(f, false),
            (Hits{{"D2", 5}, {"D2", 9}, {"D2", 14}, {"D2", 16}}));
}

TEST(LintRules, D3FiresOnFixedPrecisionFormatting) {
  const auto f = lint_fixture("d3_raw_double.cpp");
  EXPECT_EQ(hits(f, false),
            (Hits{{"D3", 6}, {"D3", 11}, {"D3", 15}}));
}

TEST(LintRules, D4FiresOnStdRngPrimitives) {
  const auto f = lint_fixture("d4_rng.cpp");
  EXPECT_EQ(hits(f, false),
            (Hits{{"D4", 6}, {"D4", 11}, {"D4", 12}, {"D4", 16}}));
}

TEST(LintRules, C1FiresOnlyOnUnguardedHookDereferences) {
  const auto f = lint_fixture("c1_unguarded_hook.cpp");
  EXPECT_EQ(hits(f, false), (Hits{{"C1", 27}, {"C1", 33}}));
}

TEST(LintRules, H1FiresOnGuardlessHeaderAndUsingNamespace) {
  const auto f = lint_fixture("h1_header_hygiene.hpp");
  EXPECT_EQ(hits(f, false), (Hits{{"H1", 1}, {"H1", 5}}));
}

TEST(LintRules, CleanFixtureIsSilent) {
  const auto f = lint_fixture("clean.cpp");
  EXPECT_TRUE(f.empty()) << to_text(f, 1);
}

// ---------------------------------------------------------------------------
// J family — crash-consistency.
// ---------------------------------------------------------------------------

TEST(LintRules, J1FiresOnUnjournaledMutationAtFirstWrite) {
  const auto f = lint_fixture("j1_unjournaled_mutation.cpp");
  EXPECT_EQ(hits(f, false), (Hits{{"J1", 7}}));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_NE(f[0].message.find("'bare_mutation'"), std::string::npos);
  EXPECT_NE(f[0].message.find("attempts_, state_"), std::string::npos);
}

TEST(LintRules, J2FlagsBothDirectionsOfRegistryDrift) {
  std::vector<FileResult> results;
  results.push_back(analyze_fixture("j2_kinds_producer.cpp"));
  results.push_back(analyze_fixture("j2_kinds_registry.cpp"));
  const auto findings = project_rules(results);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "J2");
  EXPECT_EQ(findings[0].file, "j2_kinds_producer.cpp");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("'rogue'"), std::string::npos);
  EXPECT_EQ(findings[1].rule, "J2");
  EXPECT_EQ(findings[1].file, "j2_kinds_registry.cpp");
  EXPECT_EQ(findings[1].line, 10);
  EXPECT_NE(findings[1].message.find("'ghost'"), std::string::npos);
}

TEST(LintRules, J2StaysSilentWithoutARegistryInTheScannedSet) {
  std::vector<FileResult> results;
  results.push_back(analyze_fixture("j2_kinds_producer.cpp"));
  EXPECT_TRUE(project_rules(results).empty());
}

// ---------------------------------------------------------------------------
// L family — lock discipline.
// ---------------------------------------------------------------------------

TEST(LintRules, L1FiresOnWritesOutsideTheLockScope) {
  const auto f = lint_fixture("l1_unlocked_write.cpp");
  EXPECT_EQ(hits(f, false), (Hits{{"L1", 13}, {"L1", 14}, {"L1", 22}}));
}

TEST(LintRules, L2ReportsTheLockOrderCycleOnce) {
  std::vector<FileResult> results;
  results.push_back(analyze_fixture("l2_lock_cycle.cpp"));
  EXPECT_TRUE(results[0].findings.empty())
      << to_text(results[0].findings, 1);
  const auto findings = project_rules(results);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "L2");
  EXPECT_EQ(findings[0].line, 17);
  EXPECT_NE(findings[0].message.find(
                "@fixture_a -> @fixture_b -> @fixture_a"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// E family — error handling.
// ---------------------------------------------------------------------------

TEST(LintRules, E1FiresOnlyOnDiscardedResults) {
  const auto f = lint_fixture("e1_discarded_result.cpp");
  EXPECT_EQ(hits(f, false), (Hits{{"E1", 7}, {"E1", 8}}));
}

// ---------------------------------------------------------------------------
// Mutants of the real sources: each family must catch its defect when
// injected into the code it protects, and stay quiet on the pristine tree.
// ---------------------------------------------------------------------------

TEST(LintMutants, PristineJournaledSourcesScanClean) {
  std::vector<FileResult> results;
  results.push_back(analyze_source(read_file(src_path("runtime/queue.cpp")),
                                   "src/runtime/queue.cpp"));
  results.push_back(analyze_source(read_file(src_path("runtime/journal.cpp")),
                                   "src/runtime/journal.cpp"));
  const auto findings = all_findings(std::move(results));
  EXPECT_EQ(open_count(findings), 0) << to_text(findings, 2);
}

TEST(LintMutants, J1CatchesAnUnjournaledModeTransition) {
  std::string src = read_file(src_path("runtime/queue.cpp"));
  src = mutate(src,
               "  if (journal_ != nullptr)\n"
               "    jlog(\"mode\", std::string(\"to=\") + to_string(mode_)",
               "  if (false)\n"
               "    jlog_disabled(std::string(\"to=\") + to_string(mode_)");
  src = mutate(src, "    if (factor < applied_factor_) brownout_clawback();\n",
               "");
  const FileResult r = analyze_source(src, "src/runtime/queue.cpp");
  bool caught = false;
  for (const Finding& f : r.findings)
    if (!f.suppressed && f.rule == "J1" &&
        f.message.find("'update_mode'") != std::string::npos)
      caught = true;
  EXPECT_TRUE(caught) << to_text(r.findings, 1);
}

TEST(LintMutants, J2CatchesARenamedRecordKind) {
  std::vector<FileResult> results;
  results.push_back(analyze_source(
      mutate(read_file(src_path("runtime/queue.cpp")), "jlog(\"complete\",",
             "jlog(\"completed\","),
      "src/runtime/queue.cpp"));
  results.push_back(analyze_source(read_file(src_path("runtime/journal.cpp")),
                                   "src/runtime/journal.cpp"));
  const auto findings = project_rules(results);
  int j2 = 0;
  for (const Finding& f : findings)
    if (!f.suppressed && f.rule == "J2") ++j2;
  EXPECT_EQ(j2, 2) << to_text(findings, 2);  // produced-side + registry-side
}

TEST(LintMutants, L1CatchesARemovedLockGuard) {
  const FileResult pristine = analyze_source(
      read_file(src_path("obs/telemetry_server.cpp")),
      "src/obs/telemetry_server.cpp");
  EXPECT_EQ(open_count(pristine.findings), 0)
      << to_text(pristine.findings, 1);

  const std::string src = mutate(
      read_file(src_path("obs/telemetry_server.cpp")),
      "  const std::lock_guard<std::mutex> lock(mu_);\n  snapshot_ = snapshot;",
      "  snapshot_ = snapshot;");
  const FileResult r =
      analyze_source(src, "src/obs/telemetry_server.cpp");
  bool caught = false;
  for (const Finding& f : r.findings)
    if (!f.suppressed && f.rule == "L1" &&
        f.message.find("'snapshot_'") != std::string::npos)
      caught = true;
  EXPECT_TRUE(caught) << to_text(r.findings, 1);
}

TEST(LintMutants, E1CatchesADiscardedJournalLoad) {
  const FileResult pristine = analyze_source(
      read_file(src_path("runtime/run_report.cpp")),
      "src/runtime/run_report.cpp");
  EXPECT_EQ(open_count(pristine.findings), 0)
      << to_text(pristine.findings, 1);

  const std::string src = mutate(
      read_file(src_path("runtime/run_report.cpp")),
      "const JournalLoadResult loaded = journal.load(journal_path);",
      "journal.load(journal_path);");
  const FileResult r =
      analyze_source(src, "src/runtime/run_report.cpp");
  bool caught = false;
  for (const Finding& f : r.findings)
    if (!f.suppressed && f.rule == "E1" &&
        f.message.find("'load'") != std::string::npos)
      caught = true;
  EXPECT_TRUE(caught) << to_text(r.findings, 1);
}

// ---------------------------------------------------------------------------
// Suppressions and reports.
// ---------------------------------------------------------------------------

TEST(LintSuppressions, ValidFormsSuppressAndInvalidFormsAreFindings) {
  const auto f = lint_fixture("suppressions.cpp");
  // Same-line and standalone-comment suppressions take effect...
  EXPECT_EQ(hits(f, true), (Hits{{"D1", 7}, {"D1", 13}}));
  // ...while a reasonless one leaves its D1 open and adds a LINT finding,
  // an unknown rule id is rejected, and an unused entry is reported.
  EXPECT_EQ(hits(f, false),
            (Hits{{"D1", 18}, {"LINT", 18}, {"LINT", 22}, {"LINT", 25}}));
}

TEST(LintSuppressions, ReasonsAreCarriedIntoTheReport) {
  const auto f = lint_fixture("suppressions.cpp");
  for (const Finding& fi : f) {
    if (fi.suppressed) {
      EXPECT_FALSE(fi.reason.empty());
    }
  }
}

TEST(LintSuppressions, FileScopeSuppressionCoversEveryLine) {
  const std::string src =
      "// clip-lint: allow-file(D4) fixture exercises file scope\n"
      "#include <random>\n"
      "int a() { std::random_device rd; return 0; }\n"
      "int b() { return rand() % 2; }\n";
  const auto f = lint_source(src, "virtual.cpp");
  EXPECT_TRUE(hits(f, false).empty()) << to_text(f, 1);
  EXPECT_EQ(hits(f, true).size(), 2u);
}

TEST(LintSuppressions, ProjectRuleSuppressionAppliesAtTheProjectPass) {
  std::vector<FileResult> results;
  std::string producer = read_file(fixture_path("j2_kinds_producer.cpp"));
  producer.insert(producer.find("    jlog(\"rogue\""),
                  "    // clip-lint: allow(J2) fixture exercises deferred "
                  "project suppression\n");
  results.push_back(analyze_source(producer, "j2_kinds_producer.cpp"));
  results.push_back(analyze_fixture("j2_kinds_registry.cpp"));
  const auto findings = project_rules(results);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(findings[0].suppressed);  // rogue: suppressed with the reason
  EXPECT_FALSE(findings[0].reason.empty());
  EXPECT_FALSE(findings[1].suppressed);  // ghost stays open
}

TEST(LintReport, JsonCarriesCountsAndSuppressionTrend) {
  auto findings = lint_fixture("suppressions.cpp");
  const std::string json = to_json(findings, 1);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"per_rule\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\""), std::string::npos);
}

TEST(LintReport, SarifCarriesRulesLevelsAndInSourceSuppressions) {
  const auto findings = lint_fixture("suppressions.cpp");
  const std::string sarif = to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"clip-analyze\""), std::string::npos);
  // Every known rule is declared in the driver's rule table.
  for (const std::string& r : known_rules())
    EXPECT_NE(sarif.find("{\"id\": \"" + r + "\""), std::string::npos) << r;
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"note\""), std::string::npos);
  EXPECT_NE(sarif.find("\"kind\": \"inSource\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
}

TEST(LintReport, SummaryCountsMatch) {
  const auto f = lint_fixture("suppressions.cpp");
  const Summary s = summarize(f, 1);
  EXPECT_EQ(s.files_scanned, 1);
  EXPECT_EQ(s.unsuppressed, 4);
  EXPECT_EQ(s.suppressed, 2);
}

TEST(LintRules, KnownRuleListIsStable) {
  const auto& rules = known_rules();
  EXPECT_EQ(rules,
            (std::vector<std::string>{"D1", "D2", "D3", "D4", "C1", "H1",
                                      "J1", "J2", "L1", "L2", "E1", "LINT"}));
  EXPECT_TRUE(is_project_rule("J2"));
  EXPECT_TRUE(is_project_rule("L2"));
  EXPECT_FALSE(is_project_rule("J1"));
  for (const std::string& r : rules)
    EXPECT_FALSE(rule_description(r).empty()) << r;
}

// ---------------------------------------------------------------------------
// Incremental cache: a pure accelerator — identical findings served from a
// warm entry, invalidated by content or rule-list drift, resilient to a
// corrupt file on disk.
// ---------------------------------------------------------------------------

TEST(LintCache, RoundTripsFindingsFactsAndSuppressions) {
  const std::string path = ::testing::TempDir() + "clip_lint_cache_rt.txt";
  const std::string src = read_file(fixture_path("l2_lock_cycle.cpp"));
  const std::uint64_t hash = content_hash(src);
  {
    ResultCache cache;
    cache.put(hash, analyze_source(src, "l2_lock_cycle.cpp"));
    ASSERT_TRUE(cache.save(path));
  }
  ResultCache cache;
  ASSERT_TRUE(cache.load(path));
  const FileResult* hit = cache.find("l2_lock_cycle.cpp", hash);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->facts.lock_edges.size(), 2u);
  EXPECT_EQ(hit->facts.lock_edges[0].held, "@fixture_a");
  EXPECT_EQ(hit->facts.lock_edges[0].acquired, "@fixture_b");
  // A different hash for the same path must miss.
  EXPECT_EQ(cache.find("l2_lock_cycle.cpp", hash + 1), nullptr);
  std::remove(path.c_str());
}

TEST(LintCache, WarmEntriesReproduceTheColdScanExactly) {
  const std::string path = ::testing::TempDir() + "clip_lint_cache_eq.txt";
  const std::vector<std::string> names = {
      "j1_unjournaled_mutation.cpp", "j2_kinds_producer.cpp",
      "j2_kinds_registry.cpp",       "l1_unlocked_write.cpp",
      "l2_lock_cycle.cpp",           "e1_discarded_result.cpp",
      "suppressions.cpp"};
  std::vector<FileResult> cold;
  {
    ResultCache cache;
    for (const std::string& n : names) {
      const std::string src = read_file(fixture_path(n));
      cold.push_back(analyze_source(src, n));
      cache.put(content_hash(src), cold.back());
    }
    ASSERT_TRUE(cache.save(path));
  }
  ResultCache cache;
  ASSERT_TRUE(cache.load(path));
  std::vector<FileResult> warm;
  for (const std::string& n : names) {
    const FileResult* hit = cache.find(n, content_hash(read_file(fixture_path(n))));
    ASSERT_NE(hit, nullptr) << n;
    warm.push_back(*hit);
  }
  const auto cold_findings = all_findings(std::move(cold));
  const auto warm_findings = all_findings(std::move(warm));
  ASSERT_EQ(cold_findings.size(), warm_findings.size());
  for (std::size_t i = 0; i < cold_findings.size(); ++i) {
    EXPECT_EQ(cold_findings[i].file, warm_findings[i].file);
    EXPECT_EQ(cold_findings[i].line, warm_findings[i].line);
    EXPECT_EQ(cold_findings[i].rule, warm_findings[i].rule);
    EXPECT_EQ(cold_findings[i].suppressed, warm_findings[i].suppressed);
    EXPECT_EQ(cold_findings[i].message, warm_findings[i].message);
    EXPECT_EQ(cold_findings[i].reason, warm_findings[i].reason);
  }
  std::remove(path.c_str());
}

TEST(LintCache, CorruptOrForeignFilesLoadAsEmpty) {
  const std::string path = ::testing::TempDir() + "clip_lint_cache_bad.txt";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a cache header\nfile\tx\tzzzz\n";
  }
  ResultCache cache;
  EXPECT_FALSE(cache.load(path));
  EXPECT_EQ(cache.size(), 0u);
  {
    // Right magic, corrupt numeric field: load must reject, not throw.
    ResultCache seed;
    seed.put(1, FileResult{"a.cpp", {}, {}, {}});
    ASSERT_TRUE(seed.save(path));
    std::string text = read_file(path);
    text += "F\tnot_a_number\tD1\t0\t\tmsg\n";
    std::ofstream os(path, std::ios::binary);
    os << text;
  }
  ResultCache cache2;
  EXPECT_FALSE(cache2.load(path));
  EXPECT_EQ(cache2.size(), 0u);
  std::remove(path.c_str());
}

TEST(LintLexer, StringsAndCommentsDoNotLeakIdentifiers) {
  // Identifier-like text inside strings/comments must not trip rules.
  const std::string src =
      "/* steady_clock in a block comment */\n"
      "const char* s = \"std::random_device\";  // system_clock\n";
  const auto f = lint_source(src, "virtual.cpp");
  EXPECT_TRUE(f.empty()) << to_text(f, 1);
}

TEST(LintLexer, IncludeDirectivesAreNotFindings) {
  const std::string src =
      "#include <unordered_map>\n#include <random>\n#include <ctime>\n";
  const auto f = lint_source(src, "virtual.cpp");
  EXPECT_TRUE(f.empty()) << to_text(f, 1);
}

TEST(LintLexer, DirectiveMentionsInProseDoNotParse) {
  // A comment *about* the directive syntax (docs, this suite) must not be
  // treated as a directive: only an anchored `clip-lint:` prefix counts.
  const std::string src =
      "// The marker `// clip-lint: allow(D1) reason` suppresses a line.\n"
      "// see clip-lint: it is documented in docs/static-analysis.md\n"
      "int x;\n";
  const auto f = lint_source(src, "virtual.cpp");
  EXPECT_TRUE(f.empty()) << to_text(f, 1);
}

}  // namespace
}  // namespace clip::lint
