// Error handling primitives used across the CLIP libraries.
//
// CLIP is a decision framework: a violated precondition means a scheduling
// decision would be made from garbage inputs, so we fail fast with a
// descriptive exception rather than assert/abort (callers such as the job
// launcher can catch and reject a single job without taking the runtime down).
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace clip {

/// Raised when a public-API precondition is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Raised when an internal invariant fails (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr,
                                            const std::string& msg,
                                            std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": precondition failed: "
     << expr;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr,
                                         const std::string& msg,
                                         std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": invariant failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail

}  // namespace clip

/// Validate a caller-supplied argument; throws clip::PreconditionError.
#define CLIP_REQUIRE(expr, msg)                                       \
  do {                                                                \
    if (!(expr))                                                      \
      ::clip::detail::throw_precondition(#expr, (msg),                \
                                         std::source_location::current()); \
  } while (false)

/// Validate an internal invariant; throws clip::InvariantError.
#define CLIP_ENSURE(expr, msg)                                        \
  do {                                                                \
    if (!(expr))                                                      \
      ::clip::detail::throw_invariant(#expr, (msg),                   \
                                      std::source_location::current()); \
  } while (false)
