#include "core/classifier.hpp"

#include "util/check.hpp"

namespace clip::core {

workloads::ScalabilityClass ScalabilityClassifier::classify(
    double ratio) const {
  CLIP_REQUIRE(ratio > 0.0, "perf ratio must be positive");
  if (ratio < thresholds_.linear_below)
    return workloads::ScalabilityClass::kLinear;
  if (ratio < thresholds_.parabolic_at_or_above)
    return workloads::ScalabilityClass::kLogarithmic;
  return workloads::ScalabilityClass::kParabolic;
}

workloads::ScalabilityClass ScalabilityClassifier::classify(
    const ProfileData& profile) const {
  return classify(profile.perf_ratio_half_over_all);
}

}  // namespace clip::core
