// L1 fixture: guarded fields must be written under their mutex.
// clip-lint: guards(mu_: table_, count_)
#include <mutex>

struct Registry {
  void locked_write(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    table_ = v;
    count_ += 1;
  }

  void unlocked_write(int v) {
    table_ = v;
    count_++;
  }

  void scope_ends_early(int v) {
    {
      std::lock_guard lock(mu_);
      table_ = v;
    }
    count_ = 0;
  }

  int read() const { return table_; }

  std::mutex mu_;
  int table_;
  int count_;
};
