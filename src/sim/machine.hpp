// MachineSpec: every physical parameter of the simulated cluster in one
// place, defaulted to the paper's testbed — an 8-node cluster of dual-socket
// 12-core Haswell (Xeon E5-2670 v3 @ 2.3 GHz) nodes with NUMA DDR4 memory.
//
// Power parameters follow the paper's decomposition (Eqs. 5–9): per-socket
// base power plus per-active-core load power for the processor domain, and
// per-socket base plus bandwidth-proportional activity power for the memory
// domain.
#pragma once

#include <cstdint>

#include "parallel/affinity.hpp"
#include "sim/frequency.hpp"
#include "util/units.hpp"

namespace clip::sim {

/// Discrete DRAM power levels — the paper's "memory power level setting".
/// Each level caps the achievable bandwidth fraction (and with it the
/// activity power the DIMMs can draw).
enum class MemPowerLevel { kL0 = 0, kL1 = 1, kL2 = 2, kL3 = 3 };

[[nodiscard]] constexpr double bw_fraction(MemPowerLevel level) {
  switch (level) {
    case MemPowerLevel::kL0:
      return 1.00;
    case MemPowerLevel::kL1:
      return 0.75;
    case MemPowerLevel::kL2:
      return 0.50;
    case MemPowerLevel::kL3:
      return 0.30;
  }
  return 1.0;
}

[[nodiscard]] constexpr const char* to_string(MemPowerLevel level) {
  switch (level) {
    case MemPowerLevel::kL0:
      return "L0";
    case MemPowerLevel::kL1:
      return "L1";
    case MemPowerLevel::kL2:
      return "L2";
    case MemPowerLevel::kL3:
      return "L3";
  }
  return "?";
}

inline constexpr MemPowerLevel kAllMemLevels[] = {
    MemPowerLevel::kL0, MemPowerLevel::kL1, MemPowerLevel::kL2,
    MemPowerLevel::kL3};

struct MachineSpec {
  // --- topology ------------------------------------------------------------
  int nodes = 8;
  parallel::NodeShape shape{.sockets = 2, .cores_per_socket = 12};
  FrequencyLadder ladder = FrequencyLadder::haswell();

  // --- processor power (per node) -------------------------------------------
  double socket_base_w = 16.0;    ///< uncore + static power, socket with threads
  double socket_parked_w = 2.0;   ///< deep-sleep socket with no threads
  double core_max_w = 4.0;        ///< one core, full utilization, nominal freq
  double core_power_floor = 0.35; ///< active-core power floor (fraction of max)
  double power_exponent = 2.2;    ///< dynamic power ∝ f_rel^exponent

  // --- memory system ---------------------------------------------------------
  double socket_bw_gbps = 34.0;          ///< peak DRAM bandwidth per socket
  double mem_base_w_per_socket = 5.0;    ///< DIMMs powered, idle
  double mem_parked_w_per_socket = 1.0;  ///< self-refresh (unused socket)
  double mem_activity_w_per_socket = 14.0;  ///< at full socket bandwidth
  double remote_numa_penalty = 0.35;  ///< bandwidth loss factor on remote traffic

  // --- cluster ----------------------------------------------------------------
  double variability_sigma = 0.0;  ///< log-normal sigma of per-node CPU power
  std::uint64_t variability_seed = 42;

  /// Watts of DRAM activity per GB/s of achieved bandwidth.
  [[nodiscard]] double mem_w_per_gbps() const {
    return mem_activity_w_per_socket / socket_bw_gbps;
  }

  /// Peak node-level quantities, used for budget sanity checks.
  [[nodiscard]] double max_node_cpu_w() const {
    return shape.sockets * socket_base_w +
           shape.total_cores() * core_max_w;
  }
  [[nodiscard]] double max_node_mem_w() const {
    return shape.sockets *
           (mem_base_w_per_socket + mem_activity_w_per_socket);
  }
  [[nodiscard]] double max_node_w() const {
    return max_node_cpu_w() + max_node_mem_w();
  }
  [[nodiscard]] double max_cluster_w() const { return nodes * max_node_w(); }

  void validate() const;

  /// A short identity string of everything a profile's validity depends on
  /// (topology, ladder, power and bandwidth parameters). Knowledge-database
  /// records are stamped with it so profiles recorded on one machine never
  /// silently drive decisions on another.
  [[nodiscard]] std::string fingerprint() const;
};

}  // namespace clip::sim
