// Unit tests for CLIP's models: inflection predictor (MLR), performance
// predictor (Eqs. 1–3), power estimator and the acceptable power range.
#include <gtest/gtest.h>

#include <cmath>

#include "core/classifier.hpp"
#include "core/inflection.hpp"
#include "core/power_range.hpp"
#include "core/predictor.hpp"
#include "core/profiler.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "util/check.hpp"
#include "workloads/catalog.hpp"

namespace clip::core {
namespace {

sim::MeterOptions no_noise() {
  sim::MeterOptions m;
  m.enabled = false;
  return m;
}

class ModelTest : public ::testing::Test {
 protected:
  sim::SimExecutor ex_{sim::MachineSpec{}, no_noise()};
  SmartProfiler profiler_{ex_};
  ScalabilityClassifier classifier_;

  ProfileData profile(const std::string& name) {
    return profiler_.profile(*workloads::find_benchmark(name));
  }
};

// -------------------------------------------------------------- inflection ----

TEST_F(ModelTest, GroundTruthInflectionParabolicIsThePeak) {
  const auto w = *workloads::find_benchmark("SP-MZ");
  const double np = measure_inflection(
      ex_, w, workloads::ScalabilityClass::kParabolic,
      parallel::AffinityPolicy::kScatter);
  // Exhaustive search earlier found the peak at 14 for SP-MZ.
  EXPECT_GE(np, 10.0);
  EXPECT_LE(np, 16.0);
}

TEST_F(ModelTest, GroundTruthInflectionLogarithmicIsTheKnee) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  const double np = measure_inflection(
      ex_, w, workloads::ScalabilityClass::kLogarithmic,
      parallel::AffinityPolicy::kScatter);
  // BT-MZ saturates around bw_eff / bw_per_core ≈ 10.
  EXPECT_GE(np, 6.0);
  EXPECT_LE(np, 16.0);
  EXPECT_EQ(static_cast<int>(np) % 2, 0);  // reported even
}

TEST_F(ModelTest, MeasureInflectionRejectsLinearClass) {
  const auto w = *workloads::find_benchmark("EP");
  EXPECT_THROW((void)measure_inflection(
                   ex_, w, workloads::ScalabilityClass::kLinear,
                   parallel::AffinityPolicy::kCompact),
               PreconditionError);
}

TEST_F(ModelTest, TrainingSetCoversNonLinearClassesWithTruth) {
  const auto samples = build_training_set(profiler_, classifier_,
                                          workloads::training_benchmarks());
  EXPECT_EQ(samples.size(), workloads::training_benchmarks().size());
  int with_truth = 0;
  for (const auto& s : samples) {
    EXPECT_EQ(s.features.size(), 8u);
    if (s.cls != workloads::ScalabilityClass::kLinear) {
      EXPECT_GE(s.inflection, 2.0) << s.name;
      ++with_truth;
    }
  }
  EXPECT_GE(with_truth, 10);
}

TEST_F(ModelTest, PredictorTrainsAndPredictsInRange) {
  const auto samples = build_training_set(profiler_, classifier_,
                                          workloads::training_benchmarks());
  InflectionPredictor pred;
  pred.train(samples);
  EXPECT_TRUE(pred.is_trained(workloads::ScalabilityClass::kLogarithmic));
  EXPECT_TRUE(pred.is_trained(workloads::ScalabilityClass::kParabolic));

  for (const char* name : {"BT-MZ", "LU-MZ", "SP-MZ", "TeaLeaf"}) {
    const ProfileData p = profile(name);
    const auto cls = classifier_.classify(p);
    const int np = pred.predict(p, cls, 24);
    EXPECT_GE(np, 2) << name;
    EXPECT_LE(np, 24) << name;
    EXPECT_EQ(np % 2, 0) << name << " must be floored to even";
  }
}

TEST_F(ModelTest, PredictionsTrackGroundTruthAcrossPaperSet) {
  // The Fig. 7 criterion: predictions should be accurate for most
  // applications (the paper tolerates underestimates on two of them).
  const auto samples = build_training_set(profiler_, classifier_,
                                          workloads::training_benchmarks());
  InflectionPredictor pred;
  pred.train(samples);
  std::vector<double> truth, predicted;
  for (const auto& w : workloads::paper_benchmarks()) {
    const ProfileData p = profiler_.profile(w);
    const auto cls = classifier_.classify(p);
    if (cls == workloads::ScalabilityClass::kLinear) continue;
    truth.push_back(
        measure_inflection(ex_, w, cls, p.preferred_affinity));
    predicted.push_back(pred.predict(p, cls, 24));
  }
  ASSERT_GE(truth.size(), 6u);
  EXPECT_LE(stats::mean_absolute_error(truth, predicted), 4.0);
}

TEST(InflectionPredictor, PredictUntrainedThrows) {
  InflectionPredictor pred;
  ProfileData p;
  p.all_core.events.read_bw_gbps = 1.0;
  EXPECT_THROW(
      (void)pred.predict(p, workloads::ScalabilityClass::kLogarithmic, 24),
      PreconditionError);
}

TEST(InflectionPredictor, PredictLinearClassThrows) {
  InflectionPredictor pred;
  ProfileData p;
  EXPECT_THROW(
      (void)pred.predict(p, workloads::ScalabilityClass::kLinear, 24),
      PreconditionError);
}

TEST(InflectionPredictor, TooFewSamplesPerClassSkipsTraining) {
  InflectionPredictor pred;
  std::vector<TrainingSample> samples(2);
  for (auto& s : samples) {
    s.features.assign(8, 1.0);
    s.cls = workloads::ScalabilityClass::kParabolic;
    s.inflection = 12.0;
  }
  pred.train(samples);
  EXPECT_FALSE(pred.is_trained(workloads::ScalabilityClass::kParabolic));
}

// ---------------------------------------------------------- perf predictor ----

TEST_F(ModelTest, LinearPredictionInterpolatesSamples) {
  const ProfileData p = profile("CoMD");
  const PerfPredictor pred(ex_.spec(), p,
                           workloads::ScalabilityClass::kLinear);
  // Exact at the two sample points.
  EXPECT_NEAR(pred.predict_time(12).value(), p.half_core.time.value(),
              1e-9);
  EXPECT_NEAR(pred.predict_time(24).value(), p.all_core.time.value(),
              1e-9);
  // Monotone decreasing between them.
  EXPECT_GT(pred.predict_time(8).value(), pred.predict_time(16).value());
}

TEST_F(ModelTest, LinearPredictionAccurateAgainstSimulator) {
  const auto w = *workloads::find_benchmark("CoMD");
  const ProfileData p = profiler_.profile(w);
  const PerfPredictor pred(ex_.spec(), p,
                           workloads::ScalabilityClass::kLinear);
  sim::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.node.affinity = parallel::AffinityPolicy::kScatter;
  for (int t : {4, 8, 16, 20}) {
    cfg.node.threads = t;
    const double actual = ex_.run_exact(w, cfg).time.value();
    const double predicted = pred.predict_time(t).value();
    EXPECT_NEAR(predicted / actual, 1.0, 0.15) << "t=" << t;
  }
}

TEST_F(ModelTest, NonLinearPredictionRequiresInflection) {
  const ProfileData p = profile("BT-MZ");
  EXPECT_THROW(PerfPredictor(ex_.spec(), p,
                             workloads::ScalabilityClass::kLogarithmic, 0),
               PreconditionError);
}

TEST_F(ModelTest, LogarithmicSecondSegmentHasReducedSlope) {
  const auto w = *workloads::find_benchmark("BT-MZ");
  ProfileData p = profiler_.profile(w);
  profiler_.validate_at(w, p, 10);
  const PerfPredictor pred(
      ex_.spec(), p, workloads::ScalabilityClass::kLogarithmic, 10);
  // Performance still improves past N_P but at a visibly lower rate.
  const double gain_before = pred.predict_time(6).value() /
                             pred.predict_time(8).value();
  const double gain_after = pred.predict_time(18).value() /
                            pred.predict_time(20).value();
  EXPECT_GT(gain_before, gain_after);
  EXPECT_GE(gain_after, 0.99);  // never predicts a slowdown for log apps
}

TEST_F(ModelTest, ParabolicGuardAgainstInvertedFit) {
  // Validation at a predicted N_P past the true peak must not produce an
  // increasing-time "scaling" fit (the TeaLeaf bug class).
  const auto w = *workloads::find_benchmark("TeaLeaf");
  ProfileData p = profiler_.profile(w);
  profiler_.validate_at(w, p, 14);  // true peak is ~12
  const PerfPredictor pred(ex_.spec(), p,
                           workloads::ScalabilityClass::kParabolic, 14);
  EXPECT_GT(pred.predict_time(2).value(), pred.predict_time(12).value());
}

TEST_F(ModelTest, FrequencyScalingMatchesMemoryIntensity) {
  const ProfileData compute = profile("EP");
  const PerfPredictor pred_c(ex_.spec(), compute,
                             workloads::ScalabilityClass::kLinear);
  const double slowdown_compute =
      pred_c.predict_time(24, 1.2 / 2.3).value() /
      pred_c.predict_time(24, 1.0).value();
  EXPECT_NEAR(slowdown_compute, 2.3 / 1.2, 0.05);

  const auto w = *workloads::find_benchmark("STREAM-Triad");
  ProfileData mem = profiler_.profile(w);
  profiler_.validate_at(w, mem, 6);
  const PerfPredictor pred_m(ex_.spec(), mem,
                             workloads::ScalabilityClass::kLogarithmic, 6);
  const double slowdown_mem = pred_m.predict_time(24, 1.2 / 2.3).value() /
                              pred_m.predict_time(24, 1.0).value();
  EXPECT_LT(slowdown_mem, 1.35);  // saturated: frequency barely matters
}

TEST_F(ModelTest, MemoryTimeShareBounds) {
  const ProfileData p = profile("TeaLeaf");
  const PerfPredictor pred(ex_.spec(), p,
                           workloads::ScalabilityClass::kParabolic, 12);
  for (int t : {2, 8, 16, 24}) {
    const double mu = pred.memory_time_share(t);
    EXPECT_GE(mu, 0.0);
    EXPECT_LE(mu, 0.95);
  }
  EXPECT_GT(pred.memory_time_share(24), pred.memory_time_share(2));
}

TEST_F(ModelTest, PredictOutsideNodeThrows) {
  const ProfileData p = profile("CoMD");
  const PerfPredictor pred(ex_.spec(), p,
                           workloads::ScalabilityClass::kLinear);
  EXPECT_THROW((void)pred.predict_time(0), PreconditionError);
  EXPECT_THROW((void)pred.predict_time(25), PreconditionError);
}

// ------------------------------------------------------------ power range ----

TEST_F(ModelTest, EstimatedCpuPowerTracksSimulator) {
  const auto w = *workloads::find_benchmark("CoMD");
  const ProfileData p = profiler_.profile(w);
  const PowerEstimator est(ex_.spec(), p);
  // At the profiled configuration the estimate must be nearly exact.
  EXPECT_NEAR(
      est.cpu_power(24, parallel::AffinityPolicy::kScatter, 1.0).value(),
      p.all_core.cpu_power.value(), 1.0);
}

TEST_F(ModelTest, EstimatedPowerAtLowFrequencyFollowsExponent) {
  const ProfileData p = profile("CoMD");
  const PowerEstimator est(ex_.spec(), p);
  const double hi =
      est.cpu_power(24, parallel::AffinityPolicy::kScatter, 1.0).value();
  const double lo =
      est.cpu_power(24, parallel::AffinityPolicy::kScatter, 1.2 / 2.3)
          .value();
  const double base = 2 * ex_.spec().socket_base_w;
  EXPECT_NEAR((lo - base) / (hi - base), std::pow(1.2 / 2.3, 2.2), 1e-6);
}

TEST_F(ModelTest, CompactPlacementSavesParkedSocketPower) {
  const ProfileData p = profile("EP");
  const PowerEstimator est(ex_.spec(), p);
  const double compact =
      est.cpu_power(12, parallel::AffinityPolicy::kCompact, 1.0).value();
  const double scatter =
      est.cpu_power(12, parallel::AffinityPolicy::kScatter, 1.0).value();
  EXPECT_NEAR(scatter - compact,
              ex_.spec().socket_base_w - ex_.spec().socket_parked_w, 1e-9);
}

TEST_F(ModelTest, MemPowerRespectsLevelCapacity) {
  const ProfileData p = profile("STREAM-Triad");
  const PowerEstimator est(ex_.spec(), p);
  const double l0 =
      est.mem_power(24, parallel::AffinityPolicy::kScatter,
                    sim::MemPowerLevel::kL0)
          .value();
  const double l3 =
      est.mem_power(24, parallel::AffinityPolicy::kScatter,
                    sim::MemPowerLevel::kL3)
          .value();
  EXPECT_GT(l0, l3);  // L3 caps achieved bandwidth, hence activity power
}

TEST_F(ModelTest, AcceptableRangeOrderedAndPlausible) {
  const ProfileData p = profile("BT-MZ");
  const PowerEstimator est(ex_.spec(), p);
  const PowerRange r = est.acceptable_range(
      24, parallel::AffinityPolicy::kScatter, sim::MemPowerLevel::kL0);
  EXPECT_LT(r.low.value(), r.high.value());
  EXPECT_GT(r.low.value(), 40.0);
  EXPECT_LT(r.high.value(), ex_.spec().max_node_w() + 1.0);
}

TEST_F(ModelTest, BwDemandScalesWithThreads) {
  const ProfileData p = profile("TeaLeaf");
  const PowerEstimator est(ex_.spec(), p);
  EXPECT_NEAR(est.bw_demand_gbps(24), 2.0 * est.bw_demand_gbps(12), 1e-9);
}

}  // namespace
}  // namespace clip::core
