#include "sim/frequency.hpp"

#include "util/check.hpp"

namespace clip::sim {

FrequencyLadder::FrequencyLadder(GHz min, GHz max, GHz step, GHz nominal)
    : nominal_(nominal) {
  CLIP_REQUIRE(min.value() > 0.0, "minimum frequency must be positive");
  CLIP_REQUIRE(min <= max, "ladder needs min <= max");
  CLIP_REQUIRE(step.value() > 0.0, "step must be positive");
  CLIP_REQUIRE(nominal.value() > 0.0, "nominal frequency must be positive");
  for (double f = min.value(); f <= max.value() + 1e-9; f += step.value())
    states_.emplace_back(f);
  CLIP_ENSURE(!states_.empty(), "empty frequency ladder");
}

FrequencyLadder FrequencyLadder::haswell() {
  using namespace clip::literals;
  return FrequencyLadder(1.2_GHz, 2.3_GHz, 0.1_GHz, 2.3_GHz);
}

GHz FrequencyLadder::snap_down(GHz f) const {
  GHz best = states_.front();
  for (GHz s : states_) {
    if (s.value() <= f.value() + 1e-9) best = s;
  }
  return best;
}

}  // namespace clip::sim
