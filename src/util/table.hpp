// ASCII table writer used by the figure/table benchmark harnesses to print
// the same rows/series the paper reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace clip {

/// Accumulates rows of string cells and renders an aligned ASCII table.
///
/// Usage:
///   Table t({"benchmark", "class", "speedup"});
///   t.add_row({"SP-MZ", "parabolic", "1.62"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Optional title printed above the table.
  void set_title(std::string title);

  /// Add a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed decimals, strings verbatim.
  struct Cell {
    std::string text;
    Cell(std::string s) : text(std::move(s)) {}             // NOLINT implicit
    Cell(const char* s) : text(s) {}                        // NOLINT implicit
    Cell(double v);                                         // NOLINT implicit
    Cell(int v);                                            // NOLINT implicit
    Cell(std::size_t v);                                    // NOLINT implicit
  };
  void add(std::initializer_list<Cell> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace clip
