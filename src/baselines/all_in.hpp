// The "All-In" baseline (paper §V-C).
//
// Utilizes every supplied node regardless of the budget, allocates a fixed
// 30 W to memory per node ("meets most applications' memory power
// requirement") and the remainder of the per-node share to the CPU, and
// runs with every core active. With generous budgets this is the
// conventional HPC configuration; with tight budgets each node's CPU cap
// collapses and RAPL throttles deeply.
#pragma once

#include "baselines/scheduler_iface.hpp"
#include "sim/machine.hpp"

namespace clip::baselines {

class AllInScheduler final : public PowerScheduler {
 public:
  explicit AllInScheduler(const sim::MachineSpec& spec,
                          Watts mem_per_node = Watts(30.0))
      : spec_(&spec), mem_per_node_(mem_per_node) {}

  [[nodiscard]] std::string name() const override { return "All-In"; }

  [[nodiscard]] sim::ClusterConfig plan(
      const workloads::WorkloadSignature& app,
      Watts cluster_budget) override;

 private:
  const sim::MachineSpec* spec_;
  Watts mem_per_node_;
};

}  // namespace clip::baselines
