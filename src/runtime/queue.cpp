#include "runtime/queue.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace clip::runtime {

PowerAwareJobQueue::PowerAwareJobQueue(sim::SimExecutor& executor,
                                       core::ClipScheduler& scheduler,
                                       QueueOptions options)
    : executor_(&executor), scheduler_(&scheduler), options_(options) {
  CLIP_REQUIRE(options.cluster_budget.value() > 0.0,
               "queue needs a positive budget");
  CLIP_REQUIRE(options.min_node_power_w > 0.0,
               "minimum node power must be positive");
}

namespace {

struct Running {
  std::size_t job_index;
  double end_s;
  int nodes;
  double power_w;
};

/// Simulated-seconds wait times: 0.125 s … ~2000 s.
const obs::HistogramSpec& wait_s_spec() {
  static const obs::HistogramSpec spec =
      obs::HistogramSpec::exponential(0.125, 2.0, 14);
  return spec;
}

}  // namespace

QueueReport PowerAwareJobQueue::run(
    const std::vector<workloads::WorkloadSignature>& jobs) {
  CLIP_REQUIRE(!jobs.empty(), "queue needs at least one job");
  const int total_nodes = executor_->spec().nodes;
  const double total_budget = options_.cluster_budget.value();

  QueueReport report;
  report.jobs.resize(jobs.size());
  std::vector<bool> started(jobs.size(), false);
  std::vector<Running> running;
  double now = 0.0;

  auto free_nodes = [&] {
    int used = 0;
    for (const auto& r : running) used += r.nodes;
    return total_nodes - used;
  };
  auto free_power = [&] {
    double used = 0.0;
    for (const auto& r : running) used += r.power_w;
    return total_budget - used;
  };

  auto try_start = [&](std::size_t j) -> bool {
    obs::ScopedSpan span(obs_, "queue.try_start", "runtime");
    span.arg("app", jobs[j].name);
    const int nodes_avail = free_nodes();
    const double watts_avail = free_power();
    span.arg("free_nodes", nodes_avail);
    span.arg("free_watts", watts_avail);
    if (nodes_avail < 1 ||
        watts_avail < options_.min_node_power_w)
      return false;

    // Shape the job as if the free watts were all its own...
    const core::ScheduleDecision ideal =
        scheduler_->schedule(jobs[j], Watts(watts_avail));
    // ...then constrain to the free nodes with a proportional power slice.
    const int nodes_used = std::min(ideal.cluster.nodes, nodes_avail);
    const double slice =
        watts_avail * nodes_used / ideal.cluster.nodes;
    if (slice < options_.min_node_power_w * nodes_used) return false;

    const core::ScheduleDecision constrained =
        nodes_used == ideal.cluster.nodes
            ? ideal
            : scheduler_->schedule_constrained(jobs[j], Watts(slice),
                                               nodes_used);
    const sim::Measurement m =
        executor_->run_exact(jobs[j], constrained.cluster);
    CLIP_ENSURE(m.avg_power.value() <= slice * 1.01 + 1.0,
                "job exceeded its power slice");

    Running r;
    r.job_index = j;
    r.end_s = now + m.time.value() + constrained.profiling_cost.value();
    r.nodes = nodes_used;
    // Reserve the job's full slice, not its measured draw: the RAPL caps
    // guarantee the slice is never exceeded, and only reserving the caps
    // keeps the cluster-wide bound airtight under transients.
    r.power_w = slice;
    running.push_back(r);

    auto& out = report.jobs[j];
    out.app = jobs[j].name;
    out.parameters = jobs[j].parameters;
    out.submit_s = 0.0;
    out.start_s = now;
    out.end_s = r.end_s;
    out.nodes = nodes_used;
    out.budget_w = slice;
    out.power_w = m.avg_power.value();
    report.total_energy_j += m.energy.value();
    report.node_seconds_used += nodes_used * (r.end_s - now);
    started[j] = true;
    obs::count(obs_, "queue.jobs_started");
    obs::observe(obs_, "queue.job_wait_s", wait_s_spec(), out.wait_s());
    return true;
  };

  auto start_eligible = [&] {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (started[j]) continue;
      const bool ok = try_start(j);
      if (!ok && !options_.backfill) break;  // strict FCFS: head blocks
    }
    std::size_t waiting = 0;
    for (std::size_t j = 0; j < jobs.size(); ++j)
      if (!started[j]) ++waiting;
    obs::gauge_set(obs_, "queue.depth", static_cast<double>(waiting));
    obs::gauge_set(obs_, "queue.running",
                   static_cast<double>(running.size()));
  };

  start_eligible();
  while (!running.empty()) {
    // Advance to the next completion.
    auto next = std::min_element(
        running.begin(), running.end(),
        [](const Running& a, const Running& b) { return a.end_s < b.end_s; });
    now = next->end_s;
    running.erase(next);
    start_eligible();
  }

  // Everything must have run: with all nodes and the full budget free, a
  // single job always fits (the scheduler scales down to one node).
  for (std::size_t j = 0; j < jobs.size(); ++j)
    CLIP_ENSURE(started[j], "job never started: " + jobs[j].name);

  report.makespan_s = 0.0;
  double turnaround = 0.0;
  for (const auto& r : report.jobs) {
    report.makespan_s = std::max(report.makespan_s, r.end_s);
    turnaround += r.turnaround_s();
  }
  report.mean_turnaround_s = turnaround / static_cast<double>(jobs.size());
  report.node_seconds_available = report.makespan_s * total_nodes;
  return report;
}

QueueReport run_serially(
    sim::SimExecutor& executor, core::ClipScheduler& scheduler,
    Watts cluster_budget,
    const std::vector<workloads::WorkloadSignature>& jobs) {
  CLIP_REQUIRE(!jobs.empty(), "need at least one job");
  QueueReport report;
  double now = 0.0;
  for (const auto& job : jobs) {
    const core::ScheduleDecision d =
        scheduler.schedule(job, cluster_budget);
    const sim::Measurement m = executor.run_exact(job, d.cluster);
    QueuedJobResult r;
    r.app = job.name;
    r.parameters = job.parameters;
    r.submit_s = 0.0;
    r.start_s = now;
    now += m.time.value() + d.profiling_cost.value();
    r.end_s = now;
    r.nodes = d.cluster.nodes;
    r.budget_w = cluster_budget.value();
    r.power_w = m.avg_power.value();
    report.total_energy_j += m.energy.value();
    report.node_seconds_used += r.nodes * (r.end_s - r.start_s);
    report.jobs.push_back(std::move(r));
  }
  report.makespan_s = now;
  double turnaround = 0.0;
  for (const auto& r : report.jobs) turnaround += r.turnaround_s();
  report.mean_turnaround_s =
      turnaround / static_cast<double>(jobs.size());
  report.node_seconds_available =
      report.makespan_s * executor.spec().nodes;
  return report;
}

}  // namespace clip::runtime
