// RAPL-style power-cap enforcement for one node.
//
// The contract mirrors Intel RAPL as the paper uses it (§IV-B4, §V-A): the
// scheduler writes a PKG-domain and a DRAM-domain wattage limit; the
// "hardware" then picks the highest DVFS state whose modeled power fits the
// PKG limit, and throttles DRAM bandwidth so memory power fits the DRAM
// limit. When even the lowest DVFS state exceeds the PKG cap, RAPL
// duty-cycles the clock: we model that as a proportional slowdown with
// power clamped at the cap.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "workloads/signature.hpp"

namespace clip::sim {

/// The solved operating point of one node under its caps.
struct OperatingPoint {
  GHz frequency{0.0};
  double f_rel = 1.0;
  double duty_factor = 1.0;  ///< <1 = clock duty-cycling below min frequency
  NodePerfOutput perf;
  Watts cpu_power{0.0};
  Watts mem_power{0.0};
  parallel::Placement placement;
};

class RaplSolver {
 public:
  explicit RaplSolver(const MachineSpec& spec)
      : spec_(&spec), power_(spec) {}

  /// Cap-independent context of one (workload, work share, placement): every
  /// term the ladder walk reads that depends on neither cap, hoisted out of
  /// the per-cap loop. Each stored value is a *whole* subexpression of the
  /// scalar model, evaluated with the identical operation tree — reusing it
  /// across cap points cannot change a bit of any result, because no sum or
  /// product is reassociated (see docs/performance.md, "hoisting
  /// invariants").
  struct Prepared {
    parallel::Placement placement;
    double work_s = 0.0;
    int threads = 1;
    double level_bw_gbps = 0.0;  ///< active * socket_bw * bw_fraction(level)
    double mem_base_w = 0.0;     ///< DRAM base draw of the socket mix
    double w_per_gbps = 0.0;     ///< spec.mem_w_per_gbps()
    double numa_factor = 0.0;    ///< 1 - remote_numa_penalty * remote_frac
    double remote_fraction = 0.0;
    double one_minus_m = 0.0;    ///< 1 - memory_boundedness
    double mem_numerator = 0.0;  ///< (1 - s) * m
    double fork_s = 0.0;         ///< fork_overhead_s * (n - 1)
    /// Per-DVFS-state terms, stored in ladder *walk* order (highest state
    /// first) and laid out contiguously so the frontier kernel streams them.
    struct State {
      GHz freq{0.0};
      double f_rel = 0.0;
      double pow_f = 0.0;        ///< pow(f_rel, power_exponent)
      double demand_gbps = 0.0;  ///< (n * bw_per_core) * f_rel
      double serial_t = 0.0;     ///< s / f_rel
      double compute_t = 0.0;    ///< ((1-s)*(1-m)) / (n * f_rel)
      double nf = 0.0;           ///< n * f_rel
      double sync_t = 0.0;       ///< (sync_coeff * pow(n-1, e)) / f_rel
    };
    std::vector<State> states;
  };

  /// Hoist the cap-independent work of `solve` for `w` at `work_s` under
  /// `cfg`'s placement knobs (threads, affinity, mem_level — the caps in
  /// `cfg` are ignored). Build once per candidate frontier.
  [[nodiscard]] Prepared prepare(const workloads::WorkloadSignature& w,
                                 double work_s, const NodeConfig& cfg) const;

  /// Solve one cap point against a prepared context. `solve` delegates
  /// here, so the scalar and batch paths share one implementation and are
  /// bit-identical by construction.
  [[nodiscard]] OperatingPoint solve_prepared(
      const workloads::WorkloadSignature& w, const Prepared& p, Watts cpu_cap,
      Watts mem_cap, double cpu_multiplier = 1.0) const;

  /// Solve a whole cap frontier (parallel arrays of PKG/DRAM caps) against
  /// one prepared context. With `use_simd` and the CMake SSE2 probe passed
  /// (CLIP_SIM_SIMD), the ladder walk evaluates two cap points per
  /// instruction; the scalar fallback is always compiled and produces
  /// bit-identical OperatingPoints (the kernel mirrors the scalar operation
  /// trees with IEEE-exact SSE2 ops — no FMA contraction, no reassociation).
  void solve_frontier(const workloads::WorkloadSignature& w, const Prepared& p,
                      const Watts* cpu_caps, const Watts* mem_caps,
                      std::size_t count, double cpu_multiplier,
                      OperatingPoint* out, bool use_simd) const;

  /// True when the SSE2 frontier kernel was compiled in (CLIP_SIM_SIMD).
  [[nodiscard]] static bool simd_compiled();

  /// Solve the operating point of a node executing `work_s` 1-core-seconds
  /// of `w` under `cfg`, with manufacturing multiplier `cpu_multiplier`.
  [[nodiscard]] OperatingPoint solve(const workloads::WorkloadSignature& w,
                                     double work_s, const NodeConfig& cfg,
                                     double cpu_multiplier = 1.0) const;

  /// DRAM bandwidth ceiling implied by the memory power level and DRAM cap
  /// for a given placement (before NUMA penalties).
  [[nodiscard]] double bandwidth_ceiling(const parallel::Placement& placement,
                                         MemPowerLevel level,
                                         Watts mem_cap) const;

 private:
  /// The clock-modulation fallback when even the lowest DVFS state exceeds
  /// the PKG cap; shared by the scalar and frontier paths.
  void apply_duty_cycle(const workloads::WorkloadSignature& w, Watts cpu_cap,
                        double cpu_multiplier, OperatingPoint& op) const;

  /// Memory-domain power from hoisted terms — value-identical to
  /// PowerModel::mem_power at the same activity.
  [[nodiscard]] Watts mem_power_prepared(const Prepared& p,
                                         double achieved_bw_gbps) const;

#if defined(CLIP_SIM_SIMD)
  void solve_frontier_sse2(const workloads::WorkloadSignature& w,
                           const Prepared& p, const Watts* cpu_caps,
                           const Watts* mem_caps, std::size_t count,
                           double cpu_multiplier, OperatingPoint* out) const;
#endif

  const MachineSpec* spec_;
  PowerModel power_;
};

}  // namespace clip::sim
