// Figure 6 — "Parallel speedup ratio (half-core/all-core) comparison":
// the classification statistic for every evaluation benchmark, grouped into
// the paper's green (linear) / blue (logarithmic) / red (parabolic) bands.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/profiler.hpp"
#include "util/strings.hpp"

using namespace clip;

int main(int argc, char** argv) {
  const bench::BenchContext ctx(argc, argv);
  sim::SimExecutor ex = bench::make_testbed();
  core::SmartProfiler profiler(ex);
  const core::ScalabilityClassifier classifier;

  struct Row {
    std::string name;
    double ratio;
    workloads::ScalabilityClass cls;
  };
  std::vector<Row> rows;
  for (const auto& w : workloads::paper_benchmarks()) {
    const auto p = profiler.profile(w);
    rows.push_back({w.name + " (" + w.parameters + ")",
                    p.perf_ratio_half_over_all, classifier.classify(p)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ratio < b.ratio; });

  Table t({"benchmark", "Perf_half / Perf_all", "band", "class"});
  t.set_title(
      "Fig. 6 — parallel speedup ratio (half-core/all-core); thresholds: "
      "<0.7 linear, [0.7,1) logarithmic, >=1 parabolic");
  for (const auto& r : rows) {
    // An ASCII bar standing in for the paper's colored bars.
    const int len = static_cast<int>(r.ratio * 30.0);
    std::string bar(static_cast<std::size_t>(std::min(len, 54)), '#');
    t.add_row({r.name, format_double(r.ratio, 3) + "  " + bar,
               r.cls == workloads::ScalabilityClass::kLinear ? "green"
               : r.cls == workloads::ScalabilityClass::kLogarithmic
                   ? "blue"
                   : "red",
               workloads::to_string(r.cls)});
  }
  ctx.print(t);
  return 0;
}
