#include "obs/telemetry_server.hpp"

// The status snapshot is pushed by the queue thread and served by the
// accept thread; every touch goes through mu_ (clip-analyze L1 enforces
// the write side).
// clip-lint: guards(mu_: snapshot_)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "util/check.hpp"

namespace clip::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;
constexpr std::size_t kMaxResponseBytes = 8u << 20;

/// Bounded receive/send deadlines so a stalled peer cannot wedge the
/// accept thread. A plain socket option, not a clock read.
void set_io_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

std::string http_response(int code, std::string_view reason,
                          std::string_view content_type,
                          const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << code << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

/// `key` from a query string "a=1&b=2"; empty when absent.
std::string query_param(std::string_view query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    auto amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const auto eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key)
      return std::string(pair.substr(eq + 1));
    pos = amp + 1;
  }
  return "";
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string StatusSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"now_s\":" << format_exact(now_s)
      << ",\"queue_depth\":" << queue_depth
      << ",\"running_jobs\":" << running_jobs
      << ",\"free_watts\":" << format_exact(free_watts) << ",\"mode\":\""
      << json_escape(mode) << "\",\"journal_seq\":" << journal_seq
      << ",\"jobs_completed\":" << jobs_completed
      << ",\"jobs_failed\":" << jobs_failed
      << ",\"run_active\":" << (run_active ? "true" : "false") << "}\n";
  return out.str();
}

TelemetryServer::TelemetryServer(TelemetryServerOptions options)
    : options_(options) {
  CLIP_REQUIRE(options_.port >= 0 && options_.port <= 65535,
               "telemetry port out of range: " +
                   std::to_string(options_.port));
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CLIP_REQUIRE(listen_fd_ >= 0, "telemetry server: socket() failed");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    CLIP_REQUIRE(false, "telemetry server: cannot bind 127.0.0.1:" +
                            std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  CLIP_REQUIRE(::getsockname(listen_fd_,
                             reinterpret_cast<sockaddr*>(&bound),
                             &len) == 0,
               "telemetry server: getsockname() failed");
  port_ = static_cast<int>(ntohs(bound.sin_port));

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Wake the blocking accept(): shutdown + close makes it return with an
  // error on every platform we target.
  if (listen_fd_ >= 0) {
    (void)::shutdown(listen_fd_, SHUT_RDWR);
    (void)::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

void TelemetryServer::publish(const StatusSnapshot& snapshot) {
  const std::lock_guard<std::mutex> lock(mu_);
  snapshot_ = snapshot;
}

void TelemetryServer::serve() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      continue;  // transient (EINTR, aborted connection)
    }
    handle_connection(fd);
    (void)::close(fd);
  }
}

void TelemetryServer::handle_connection(int fd) {
  set_io_timeouts(fd);
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const auto line_end = request.find('\n');
  if (line_end == std::string::npos) return;
  std::istringstream line(request.substr(0, line_end));
  std::string method;
  std::string target;
  line >> method >> target;
  if (method != "GET" || target.empty()) {
    send_all(fd, http_response(400, "Bad Request", "text/plain",
                               "only GET is supported\n"));
    return;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  send_all(fd, respond(target));
}

std::string TelemetryServer::respond(const std::string& target) const {
  std::string path = target;
  std::string query;
  if (const auto q = target.find('?'); q != std::string::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }

  if (path == "/metrics") {
    const std::string body =
        options_.metrics != nullptr ? options_.metrics->render_prometheus()
                                    : std::string();
    return http_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8", body);
  }

  if (path == "/healthz") {
    StatusSnapshot snap;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      snap = snapshot_;
    }
    if (snap.mode == "NORMAL")
      return http_response(200, "OK", "text/plain",
                           "ok mode=NORMAL\n");
    return http_response(503, "Service Unavailable", "text/plain",
                         "degraded mode=" + snap.mode + "\n");
  }

  if (path == "/status") {
    StatusSnapshot snap;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      snap = snapshot_;
    }
    return http_response(200, "OK", "application/json", snap.to_json());
  }

  if (path == "/timeline") {
    const std::string series = query_param(query, "series");
    if (series.empty())
      return http_response(400, "Bad Request", "text/plain",
                           "usage: /timeline?series=<name>[&n=<tail>]\n");
    std::size_t tail = options_.timeline_tail;
    if (const std::string n = query_param(query, "n"); !n.empty()) {
      char* end = nullptr;
      const long v = std::strtol(n.c_str(), &end, 10);
      if (end != n.c_str() && *end == '\0' && v > 0)
        tail = static_cast<std::size_t>(v);
    }
    std::ostringstream body;
    if (options_.timeline != nullptr) {
      auto samples = options_.timeline->samples(series);
      if (samples.size() > tail)
        samples.erase(samples.begin(),
                      samples.end() - static_cast<std::ptrdiff_t>(tail));
      for (const auto& p : samples)
        body << "{\"kind\":\"sample\",\"series\":\"" << json_escape(series)
             << "\",\"t_s\":" << format_exact(p.t_s)
             << ",\"value\":" << format_exact(p.value) << "}\n";
      auto events = options_.timeline->events(series);
      if (events.size() > tail)
        events.erase(events.begin(),
                     events.end() - static_cast<std::ptrdiff_t>(tail));
      for (const auto& e : events)
        body << "{\"kind\":\"event\",\"series\":\"" << json_escape(series)
             << "\",\"t_s\":" << format_exact(e.t_s) << ",\"label\":\""
             << json_escape(e.label) << "\"}\n";
    }
    return http_response(200, "OK", "application/x-ndjson", body.str());
  }

  return http_response(404, "Not Found", "text/plain",
                       "unknown endpoint; try /metrics /healthz /status "
                       "/timeline?series=<name>\n");
}

std::string http_get(const std::string& host, int port,
                     const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CLIP_REQUIRE(fd >= 0, "http_get: socket() failed");
  set_io_timeouts(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    CLIP_REQUIRE(false, "http_get: bad host '" + host +
                            "' (use a dotted quad or localhost)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    CLIP_REQUIRE(false, "http_get: cannot connect to " + ip + ":" +
                            std::to_string(port));
  }
  const std::string request = "GET " + target +
                              " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  send_all(fd, request);

  std::string response;
  char buf[4096];
  while (response.size() < kMaxResponseBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_body(const std::string& response) {
  if (const auto p = response.find("\r\n\r\n"); p != std::string::npos)
    return response.substr(p + 4);
  if (const auto p = response.find("\n\n"); p != std::string::npos)
    return response.substr(p + 2);
  return response;
}

}  // namespace clip::obs
