#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace clip::bench {

namespace {

int parse_int(const std::string& flag, const std::string& value) {
  try {
    return std::stoi(value);
  } catch (const std::exception&) {
    CLIP_REQUIRE(false, "bad value for " + flag + ": " + value);
    return 0;
  }
}

std::vector<double> parse_budgets(const std::string& value) {
  std::vector<double> budgets;
  for (const std::string& part : split(value, ',')) {
    if (part.empty()) continue;
    try {
      budgets.push_back(std::stod(part));
    } catch (const std::exception&) {
      CLIP_REQUIRE(false, "bad value for --budgets: " + value);
    }
  }
  CLIP_REQUIRE(!budgets.empty(), "empty --budgets list");
  return budgets;
}

}  // namespace

BenchContext::BenchContext(int argc, char** argv) {
  const auto take_value = [&](int& i, const std::string& arg,
                              const std::string& flag,
                              std::string& out) -> bool {
    if (arg == flag) {
      CLIP_REQUIRE(i + 1 < argc, flag + " needs a value");
      out = argv[++i];
      return true;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
      out = arg.substr(flag.size() + 1);
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--no-prune") {
      prune = false;
    } else if (take_value(i, arg, "--jobs", value)) {
      jobs = parse_int("--jobs", value);
      if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? static_cast<int>(hw) : 1;
      }
    } else if (take_value(i, arg, "--budgets", value)) {
      budgets_override = parse_budgets(value);
    }
    // Unknown arguments are left for the individual bench to interpret.
  }
}

BenchContext::~BenchContext() {
  if (!stats || obs_ == nullptr) return;
  // One parse-friendly line, on stderr so --csv output stays clean.
  const auto value = [this](std::string_view name) -> std::uint64_t {
    const obs::Counter* c = obs_->metrics().find_counter(name);
    return c == nullptr ? 0 : c->value();
  };
  // Median frontier width of the batch path, as an integer (clip-lint D3:
  // the stats line carries counters, not formatted floats).
  const obs::Histogram* widths =
      obs_->metrics().find_histogram("sim.batch_width");
  const std::uint64_t width_p50 =
      widths == nullptr || widths->count() == 0
          ? 0
          : static_cast<std::uint64_t>(std::llround(widths->quantile(0.5)));
  std::cerr << "bench-stats:"
            << " sim.runs=" << value("sim.runs")
            << " sim.exact_cache_hits=" << value("sim.exact_cache_hits")
            << " sim.exact_cache_misses=" << value("sim.exact_cache_misses")
            << " sim.batch_runs=" << value("sim.batch_runs")
            << " sim.batch_width_p50=" << width_p50
            << " jobs=" << jobs << '\n';
}

parallel::ThreadPool* BenchContext::pool() const {
  if (jobs <= 1) return nullptr;
  if (pool_ == nullptr)
    pool_ = std::make_unique<parallel::ThreadPool>(jobs);
  return pool_.get();
}

void BenchContext::attach(sim::SimExecutor& executor) const {
  if (use_cache) {
    if (cache_ == nullptr) cache_ = std::make_unique<sim::ExactRunCache>();
    executor.set_exact_cache(cache_.get());
  }
  if (stats) {
    if (obs_ == nullptr) obs_ = std::make_unique<obs::ObsSession>();
    executor.set_observer(obs_.get());
  }
}

void register_all_methods(runtime::ComparisonHarness& harness,
                          sim::SimExecutor& executor,
                          const BenchContext* ctx) {
  harness.add_method(
      std::make_shared<baselines::AllInScheduler>(executor.spec()));
  harness.add_method(
      std::make_shared<baselines::LowerLimitScheduler>(executor.spec()));
  harness.add_method(
      std::make_shared<baselines::CoordinatedScheduler>(executor));
  harness.add_method(std::make_shared<baselines::ClipAdapter>(
      executor, workloads::training_benchmarks()));
  baselines::OracleOptions opts;
  if (ctx != nullptr) opts.prune = ctx->prune;
  auto oracle =
      std::make_shared<baselines::OracleScheduler>(executor, opts);
  if (ctx != nullptr) oracle->set_pool(ctx->pool());
  harness.add_method(std::move(oracle));
}

Table render_method_comparison(
    const runtime::ComparisonResult& result,
    const std::vector<workloads::WorkloadSignature>& apps, double budget,
    const std::string& title) {
  static const char* kMethods[] = {"All-In", "Lower Limit", "Coordinated",
                                   "CLIP", "Oracle"};
  Table t({"benchmark", "class", "All-In", "Lower Limit", "Coordinated",
           "CLIP", "Oracle", "CLIP vs best baseline"});
  t.set_title(title);
  for (const auto& w : apps) {
    std::vector<std::string> row;
    row.push_back(w.name + " (" + w.parameters + ")");
    row.push_back(workloads::to_string(w.expected_class));
    double clip = 0.0, best_baseline = 0.0;
    for (const char* method : kMethods) {
      const auto* cell =
          result.find(w.name, w.parameters, budget, method);
      const double rel = cell ? cell->relative_performance : 0.0;
      row.push_back(format_double(rel, 3));
      if (std::string(method) == "CLIP")
        clip = rel;
      else if (std::string(method) != "Oracle")
        best_baseline = std::max(best_baseline, rel);
    }
    row.push_back(best_baseline > 0.0
                      ? format_percent(clip / best_baseline - 1.0)
                      : "n/a");
    t.add_row(std::move(row));
  }
  return t;
}

void print_method_comparison(
    const BenchContext& ctx, const runtime::ComparisonResult& result,
    const std::vector<workloads::WorkloadSignature>& apps, double budget,
    const std::string& title) {
  ctx.print(render_method_comparison(result, apps, budget, title));
}

}  // namespace clip::bench
