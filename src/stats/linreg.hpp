// Ordinary least squares / ridge multivariate linear regression.
//
// This is the "MLR" model of paper §III-A2: CLIP predicts the scalability
// inflection point N_P from hardware-event rates using multivariate linear
// regression, deliberately avoiding heavier machine learning ("more
// sophisticated machine learning methods may generate overfit ... because
// the amount of data collected is insufficient").
#pragma once

#include <cstddef>
#include <vector>

namespace clip::stats {

/// Feature standardization parameters (z-score per column).
struct Standardizer {
  std::vector<double> mean;
  std::vector<double> stddev;

  /// Fit to a design matrix (rows = samples).
  static Standardizer fit(const std::vector<std::vector<double>>& x);

  [[nodiscard]] std::vector<double> apply(
      const std::vector<double>& features) const;
};

/// A fitted linear model: y ≈ intercept + Σ coef[i] * x[i].
struct LinearModel {
  double intercept = 0.0;
  std::vector<double> coefficients;
  Standardizer standardizer;  // applied to features before the dot product
  bool standardized = false;

  [[nodiscard]] double predict(const std::vector<double>& features) const;
};

struct LinRegOptions {
  /// L2 penalty on coefficients (0 = plain OLS). Small ridge keeps the
  /// normal equations well-conditioned when event rates are correlated.
  double ridge_lambda = 0.0;
  /// Standardize features to zero mean / unit variance before fitting.
  bool standardize = true;
};

/// Fit y ≈ X·β + β0 by (regularized) least squares via the normal equations.
/// Throws clip::PreconditionError on shape mismatch or degenerate input.
[[nodiscard]] LinearModel fit_linear(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    const LinRegOptions& options = {});

}  // namespace clip::stats
